//! Integration tests for the extensions beyond the paper's core scope:
//! the data-race checker (Section 4.1's "beyond the scope" remark), the
//! cone-of-influence front end, and the EMN netlist interchange format.

use emm_verif::aig::coi::cone_of_influence;
use emm_verif::aig::emn::{parse_emn, write_emn};
use emm_verif::aig::{Design, MemInit};
use emm_verif::bmc::{AbstractionSpec, BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::core::add_race_checkers;
use emm_verif::designs::quicksort::{QuickSort, QuickSortConfig};
use emm_verif::designs::regfile::{RegFile, RegFileConfig};

/// A two-write-port design with unconstrained enables: the race checker's
/// property must yield a real, validated witness.
#[test]
fn race_witness_found_and_validated() {
    let mut d = Design::new();
    let mem = d.add_memory("m", 3, 4, MemInit::Zero);
    for p in 0..2 {
        let a = d.new_input_word(&format!("a{p}"), 3);
        let e = d.new_input(&format!("e{p}"));
        let data = d.new_input_word(&format!("d{p}"), 4);
        d.add_write_port(mem, a, e, data);
    }
    let checks = add_race_checkers(&mut d);
    d.check().expect("valid");
    let prop = checks[0].1 .0 as usize;
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(prop, 4).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            assert_eq!(trace.depth(), 1, "a race is reachable immediately");
            trace.validate(&d).expect("race witness re-simulates");
        }
        other => panic!("expected race witness, got {other:?}"),
    }
}

/// The register file's arbiter makes it race-free — provable, not just
/// unfalsifiable: the arbiter logic is combinational, so the race property
/// is unsatisfiable in a single floating frame (backward induction depth 0).
#[test]
fn arbitrated_regfile_is_provably_race_free() {
    let rf = RegFile::new(RegFileConfig {
        addr_width: 3,
        data_width: 2,
        read_ports: 1,
        write_ports: 3,
        watched: 0,
    });
    let mut d = rf.design.clone();
    let checks = add_race_checkers(&mut d);
    assert_eq!(checks.len(), 1);
    d.check().expect("valid");
    let prop = checks[0].1 .0 as usize;
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(prop, 10).expect("run");
    assert!(
        run.verdict.is_proof(),
        "race freedom must be proved: {:?}",
        run.verdict
    );
}

/// COI as a static abstraction: quicksort P2's cone excludes nothing by
/// itself (control reaches everything), but on a two-subsystem design the
/// cone-based reduced model proves the property outright.
#[test]
fn coi_abstraction_supports_proofs() {
    use emm_verif::aig::LatchInit;
    let mut d = Design::new();
    // Relevant: mod-3 counter. Irrelevant: a big shift register.
    let c = d.new_latch_word("c", 2, LatchInit::Zero);
    let wrap = d.aig.eq_const(&c, 2);
    let inc = d.aig.inc(&c);
    let zero = d.aig.const_word(0, 2);
    let next = d.aig.mux_word(wrap, &zero, &inc);
    d.set_next_word(&c, &next);
    let noise_in = d.new_input_word("noise", 8);
    let mut prev = noise_in;
    for s in 0..6 {
        let stage = d.new_latch_word(&format!("s{s}"), 8, LatchInit::Free);
        d.set_next_word(&stage, &prev);
        prev = stage;
    }
    let bad = d.aig.eq_const(&c, 3);
    d.add_property("c_ne_3", bad);
    d.check().expect("valid");

    let cone = cone_of_influence(&d, &[0]);
    assert_eq!(cone.num_latches(), 2, "only the counter");
    let spec = AbstractionSpec::from_cone(&cone);
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            abstraction: Some(spec),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 10).expect("run");
    assert!(
        run.verdict.is_proof(),
        "COI-reduced proof: {:?}",
        run.verdict
    );
}

/// COI on quicksort: P2's structural cone still contains both memories
/// (the FSM reads the array), which is exactly why the paper needs
/// *proof-based* abstraction to discover the array is semantically
/// irrelevant — COI alone cannot.
#[test]
fn coi_is_weaker_than_pba_on_quicksort() {
    let qs = QuickSort::new(QuickSortConfig::small(3));
    let cone = cone_of_influence(&qs.design, &[qs.p2.0 as usize]);
    assert!(
        cone.memories[qs.array.0 as usize],
        "COI keeps the array (structural dependence), unlike PBA (Table 2)"
    );
    assert!(cone.memories[qs.stack.0 as usize]);
}

/// EMN round-trip on a real case-study design: identical structure and
/// identical BMC verdicts.
#[test]
fn emn_roundtrip_preserves_verification_results() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 2,
        addr_width: 3,
        data_width: 3,
        bug: Default::default(),
    });
    let text = write_emn(&qs.design);
    let back = parse_emn(&text).expect("parse");
    assert_eq!(back.aig.num_nodes(), qs.design.aig.num_nodes());
    assert_eq!(back.num_latches(), qs.design.num_latches());

    let mut original = BmcEngine::new(
        &qs.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run_a = original
        .check(qs.p1.0 as usize, qs.cycle_bound())
        .expect("a");
    let mut reparsed = BmcEngine::new(
        &back,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run_b = reparsed
        .check(qs.p1.0 as usize, qs.cycle_bound())
        .expect("b");
    match (&run_a.verdict, &run_b.verdict) {
        (BmcVerdict::Proof { depth: da, .. }, BmcVerdict::Proof { depth: db, .. }) => {
            assert_eq!(da, db, "identical proof depth after round-trip")
        }
        (x, y) => panic!("verdicts diverged: {x:?} vs {y:?}"),
    }
}
