//! Cross-crate integration tests: the paper's case-study workflows end to
//! end, at test-friendly scale.

use emm_verif::bmc::{pba, AbstractionSpec, BmcEngine, BmcOptions, BmcVerdict, ProofKind};
use emm_verif::designs::image_filter::{ImageFilter, ImageFilterConfig};
use emm_verif::designs::industry2::{Industry2, Industry2Config};
use emm_verif::designs::quicksort::{QuickSort, QuickSortConfig};

/// Table 1's EMM rows: P1 and P2 are proved by forward induction, with
/// diameters growing with N.
#[test]
fn quicksort_proofs_scale_with_n() {
    let mut diameters = Vec::new();
    for n in [2usize, 3] {
        let qs = QuickSort::new(QuickSortConfig {
            n,
            addr_width: 3,
            data_width: 3,
            bug: Default::default(),
        });
        for prop in [qs.p1.0 as usize, qs.p2.0 as usize] {
            let mut engine = BmcEngine::new(
                &qs.design,
                BmcOptions {
                    proofs: true,
                    ..BmcOptions::default()
                },
            );
            let run = engine.check(prop, qs.cycle_bound()).expect("run");
            match run.verdict {
                BmcVerdict::Proof { depth, .. } => {
                    if prop == qs.p1.0 as usize {
                        diameters.push(depth);
                    }
                }
                other => panic!("n={n} prop {prop}: expected proof, got {other:?}"),
            }
        }
    }
    assert!(
        diameters[1] > diameters[0],
        "proof diameter must grow with N: {diameters:?}"
    );
}

/// A buggy sort (comparison inverted) must yield a real, validated
/// counterexample for P1 — EMM's falsification side.
#[test]
fn quicksort_p1_holds_only_for_correct_comparison() {
    // We cannot easily invert the comparison inside the canned design, so
    // check the dual: P1's bad latch is reachable in no run; asserting the
    // *negation* (sortedness observed) must produce a witness, confirming
    // the property machinery is not vacuous.
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 3,
        bug: Default::default(),
    });
    // Property: the checker reaches HALT (vacuity check: executions finish).
    let mut d = qs.design.clone();
    let halted = qs.halted;
    d.add_property("reaches_halt", halted);
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(2, qs.cycle_bound()).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            trace
                .validate(&d)
                .expect("the halt witness must re-simulate");
        }
        other => panic!("expected a halt witness, got {other:?}"),
    }
}

/// Table 2's flow: PBA discovers that P2 does not need the array memory,
/// and the reduced model still proves P2.
#[test]
fn quicksort_pba_drops_array_for_p2() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 3,
        bug: Default::default(),
    });
    // Stability depth 10, as the paper uses for Table 2; the
    // discover-and-prove loop handles the case where the proof needs
    // reasons from deeper than the discovery window.
    let config = pba::PbaConfig {
        stability_depth: 10,
        max_depth: qs.cycle_bound(),
        ..pba::PbaConfig::default()
    };
    let result =
        pba::discover_and_prove(&qs.design, qs.p2.0 as usize, &config, qs.cycle_bound(), 4)
            .expect("discover and prove");
    assert!(
        matches!(result.verdict, BmcVerdict::Proof { .. }),
        "reduced-model proof failed: {:?}",
        result.verdict
    );
    assert!(
        !result.abstraction.kept_memories[qs.array.0 as usize],
        "the array module must be abstracted away for P2 (Table 2)"
    );
    assert!(
        result.abstraction.kept_memories[qs.stack.0 as usize],
        "the stack module is needed for P2"
    );
    assert!(
        result.abstraction.num_kept_latches() < qs.design.num_latches(),
        "the reduced model must be smaller"
    );
}

/// Industry I: every reachable property has a witness at its target depth;
/// every invariant property is proved by induction quickly.
#[test]
fn image_filter_property_bank() {
    let config = ImageFilterConfig::small();
    let filter = ImageFilter::new(config);
    let mut engine = BmcEngine::new(&filter.design, BmcOptions::default());
    let mut max_depth = 0usize;
    for &p in &filter.reachable {
        let run = engine.check(p, config.max_witness_depth + 4).expect("run");
        match run.verdict {
            BmcVerdict::Counterexample(trace) => {
                trace
                    .validate(&filter.design)
                    .expect("witness re-simulates");
                max_depth = max_depth.max(trace.depth());
            }
            other => panic!("property {p}: expected witness, got {other:?}"),
        }
    }
    assert!(max_depth >= 8, "depths should spread out (max {max_depth})");

    let mut engine = BmcEngine::new(
        &filter.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    for &p in &filter.unreachable {
        let run = engine.check(p, 24).expect("run");
        assert!(
            run.verdict.is_proof(),
            "invariant property {p} should be proved: {:?}",
            run.verdict
        );
    }
}

/// Industry II: the full four-step workflow from the paper.
#[test]
fn industry2_full_workflow() {
    let config = Industry2Config::small();
    let lookup = Industry2::new(config);
    let d = &lookup.design;

    // 1. Memory abstracted: spurious witness exactly at the pipeline depth.
    let no_memory = AbstractionSpec {
        kept_latches: vec![true; d.num_latches()],
        kept_memories: vec![false; d.memories().len()],
    };
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            abstraction: Some(no_memory.clone()),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lookup.lookups[0], 20).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(t) => {
            assert_eq!(
                t.depth() - 1,
                config.pipeline_depth,
                "paper: spurious CE at depth 7"
            );
        }
        other => panic!("expected spurious CE, got {other:?}"),
    }

    // 2. EMM: no witness.
    let mut engine = BmcEngine::new(d, BmcOptions::default());
    for &p in &lookup.lookups {
        let run = engine.check(p, 25).expect("run");
        assert!(
            matches!(run.verdict, BmcVerdict::BoundReached),
            "property {p} must have no witness under EMM: {:?}",
            run.verdict
        );
    }

    // 3. Invariant proved by backward induction at small depth.
    let mut engine = BmcEngine::new(
        d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lookup.invariant, 10).expect("run");
    match run.verdict {
        BmcVerdict::Proof { kind, depth } => {
            assert_eq!(kind, ProofKind::BackwardInduction);
            assert!(depth <= 2, "paper proves at depth 2; got {depth}");
        }
        other => panic!("invariant not proved: {other:?}"),
    }

    // 4. Invariant applied to RD + memory abstracted: all properties proved.
    let constrained = Industry2::new(Industry2Config {
        assume_rd_zero: true,
        ..config
    });
    let cd = &constrained.design;
    let no_memory = AbstractionSpec {
        kept_latches: vec![true; cd.num_latches()],
        kept_memories: vec![false; cd.memories().len()],
    };
    let mut engine = BmcEngine::new(
        cd,
        BmcOptions {
            proofs: true,
            abstraction: Some(no_memory),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    for &p in &constrained.lookups {
        let run = engine.check(p, 25).expect("run");
        assert!(
            run.verdict.is_proof(),
            "lookup property {p}: {:?}",
            run.verdict
        );
    }
}

/// The tiny-CPU workload: a concrete program's result proved correct, and
/// halt-stickiness proved over all programs (arbitrary-init instruction
/// memory, the second structurally different eq. (6) workload).
#[test]
fn cpu_program_correctness_and_any_program_invariant() {
    use emm_verif::designs::cpu::{emulate, CpuConfig, Instr, Op, TinyCpu};
    let config = CpuConfig {
        imem_addr_width: 3,
        dmem_addr_width: 2,
        data_width: 3,
    };
    let program = vec![
        Instr {
            op: Op::Ldi,
            arg: 3,
        },
        Instr {
            op: Op::Store,
            arg: 0,
        },
        Instr {
            op: Op::Add,
            arg: 0,
        },
        Instr {
            op: Op::Halt,
            arg: 0,
        },
    ];
    let expected = emulate(&config, &program, &[], 50);
    assert!(expected.halted);
    let cpu = TinyCpu::with_program(config, &program, expected.acc);
    let prop = cpu.result_correct.expect("concrete").0 as usize;
    let mut engine = BmcEngine::new(
        &cpu.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine
        .check(prop, cpu.load_cycles + expected.cycles + 20)
        .expect("run");
    assert!(
        run.verdict.is_proof(),
        "program result proof: {:?}",
        run.verdict
    );

    // A wrong expectation must be refuted with a validated witness.
    let wrong = TinyCpu::with_program(config, &program, expected.acc ^ 1);
    let prop = wrong.result_correct.expect("concrete").0 as usize;
    let mut engine = BmcEngine::new(&wrong.design, BmcOptions::default());
    let run = engine
        .check(prop, wrong.load_cycles + expected.cycles + 4)
        .expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            trace.validate(&wrong.design).expect("witness replays");
        }
        other => panic!("wrong expectation must be refuted: {other:?}"),
    }

    // Any-program invariant.
    let any = TinyCpu::any_program(config);
    let mut engine = BmcEngine::new(
        &any.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(any.halt_sticky.0 as usize, 20).expect("run");
    assert!(
        run.verdict.is_proof(),
        "halt_sticky over all programs: {:?}",
        run.verdict
    );
}

/// The falsification side of Table 1's story: injected defects produce
/// real, validated counterexamples — BMC-2 "finding real bugs" with EMM,
/// including the arbitrary-initial-stack contents a witness needs.
#[test]
fn quicksort_injected_bugs_are_found() {
    use emm_verif::designs::quicksort::Bug;
    // Inverted comparison: P1 witness.
    let qs = QuickSort::new(QuickSortConfig {
        bug: Bug::InvertedComparison,
        n: 3,
        addr_width: 3,
        data_width: 3,
    });
    let mut engine = BmcEngine::new(&qs.design, BmcOptions::default());
    let run = engine
        .check(qs.p1.0 as usize, qs.cycle_bound())
        .expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            trace.validate(&qs.design).expect("P1 bug witness replays");
        }
        other => panic!("inverted comparison must violate P1: {other:?}"),
    }

    // Missing empty check: P2 witness (stack underflow reads garbage).
    let qs = QuickSort::new(QuickSortConfig {
        bug: Bug::MissingEmptyCheck,
        n: 2,
        addr_width: 3,
        data_width: 3,
    });
    let mut engine = BmcEngine::new(&qs.design, BmcOptions::default());
    let run = engine
        .check(qs.p2.0 as usize, qs.cycle_bound())
        .expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            trace
                .validate(&qs.design)
                .expect("P2 underflow witness replays");
            assert!(
                !trace.memory_seeds[qs.stack.0 as usize].is_empty(),
                "the witness must pin garbage initial stack contents"
            );
        }
        other => panic!("missing empty check must violate P2: {other:?}"),
    }
}
