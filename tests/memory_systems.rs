//! Integration tests for the supporting memory-system designs under both
//! memory models, plus the BDD engine as a second opinion.

use emm_verif::bdd::{SymbolicChecker, SymbolicOptions, SymbolicVerdict};
use emm_verif::bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_verif::core::explicit_model;
use emm_verif::designs::fifo::{Fifo, FifoConfig};
use emm_verif::designs::lifo::{Lifo, LifoConfig};
use emm_verif::designs::memcpy::{Memcpy, MemcpyConfig};
use emm_verif::designs::regfile::{RegFile, RegFileConfig};

/// FIFO safety properties are provable with EMM.
#[test]
fn fifo_properties_hold() {
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    let mut engine = BmcEngine::new(
        &fifo.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(fifo.no_overflow.0 as usize, 30).expect("run");
    assert!(run.verdict.is_proof(), "no_overflow: {:?}", run.verdict);
    // Integrity needs more depth to close inductively; check falsification
    // emptiness to a healthy bound instead (the randomized simulation test
    // already covers the positive side).
    let mut engine = BmcEngine::new(&fifo.design, BmcOptions::default());
    let run = engine.check(fifo.integrity.0 as usize, 8).expect("run");
    assert!(
        matches!(run.verdict, BmcVerdict::BoundReached),
        "integrity must have no shallow counterexample: {:?}",
        run.verdict
    );
}

/// LIFO push/pop identity has no counterexample; the overflow property is
/// provable.
#[test]
fn lifo_properties_hold() {
    let lifo = Lifo::new(LifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    let mut engine = BmcEngine::new(&lifo.design, BmcOptions::default());
    let run = engine
        .check(lifo.push_pop_identity.0 as usize, 8)
        .expect("run");
    assert!(
        matches!(run.verdict, BmcVerdict::BoundReached),
        "{:?}",
        run.verdict
    );
    let mut engine = BmcEngine::new(
        &lifo.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(lifo.no_overflow.0 as usize, 30).expect("run");
    assert!(run.verdict.is_proof(), "no_overflow: {:?}", run.verdict);
}

/// The multi-port register file's shadow consistency: no counterexample
/// under EMM with multiple write and read ports.
#[test]
fn regfile_shadow_consistency_multiport() {
    for (r, w) in [(2usize, 1usize), (3, 1), (2, 2)] {
        let rf = RegFile::new(RegFileConfig {
            addr_width: 2,
            data_width: 2,
            read_ports: r,
            write_ports: w,
            watched: 1,
        });
        let mut engine = BmcEngine::new(&rf.design, BmcOptions::default());
        let run = engine
            .check(rf.shadow_consistency.0 as usize, 6)
            .expect("run");
        assert!(
            matches!(run.verdict, BmcVerdict::BoundReached),
            "R={r} W={w}: {:?}",
            run.verdict
        );
    }
}

/// Mutating the regfile property to an off-by-one creates a witness that
/// validates — guarding against vacuous "no counterexample" results.
#[test]
fn regfile_detects_injected_bug() {
    // Watch register 1 but shadow register 2's writes: inconsistency is
    // reachable and must be found and validated.
    let rf = RegFile::new(RegFileConfig {
        addr_width: 2,
        data_width: 2,
        read_ports: 1,
        write_ports: 1,
        watched: 1,
    });
    // Rebuild with a mismatch by watching a different address in the
    // property: simplest path is to add a new property comparing a read of
    // address 2 against the shadow of address 1.
    let mut d = rf.design.clone();
    let raddr = d.aig.const_word(2, 2);
    let rd = d.add_read_port(rf.memory, raddr, emm_verif::aig::Aig::TRUE);
    let shadow_bits: Vec<emm_verif::aig::Bit> = d
        .latches()
        .iter()
        .filter(|l| l.name.starts_with("shadow["))
        .map(|l| l.output)
        .collect();
    let shadow = emm_verif::aig::Word::from(shadow_bits);
    let eq = d.aig.eq_word(&rd, &shadow);
    // Force divergence: write nonzero to addr 2 while shadow (addr 1)
    // stays zero. "bad" = values differ.
    d.add_property("cross_check", !eq);
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(1, 6).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            trace.validate(&d).expect("bug witness must re-simulate");
        }
        other => panic!("expected a witness for the injected bug, got {other:?}"),
    }
}

/// The memcpy engine's copy_correct property has no counterexample under
/// EMM with arbitrary-init source — a workload where eq. (6) carries the
/// proof — and *does* have one when eq. (6) is disabled.
#[test]
fn memcpy_needs_init_consistency() {
    let engine_design = Memcpy::new(MemcpyConfig {
        len: 2,
        addr_width: 2,
        data_width: 2,
    });
    let bound = engine_design.cycle_bound();
    // Proof with eq. (6).
    let mut engine = BmcEngine::new(
        &engine_design.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine
        .check(engine_design.copy_correct.0 as usize, bound)
        .expect("run");
    assert!(run.verdict.is_proof(), "copy_correct: {:?}", run.verdict);
    // Spurious CE without eq. (6) — the paper's Section 4.2 caveat.
    let mut engine = BmcEngine::new(
        &engine_design.design,
        BmcOptions {
            validate_traces: false,
            emm: emm_verif::core::EmmOptions {
                skip_init_consistency: true,
                ..emm_verif::core::EmmOptions::default()
            },
            ..BmcOptions::default()
        },
    );
    let run = engine
        .check(engine_design.copy_correct.0 as usize, bound)
        .expect("run");
    assert!(
        run.verdict.is_counterexample(),
        "without eq. (6) the copy check must fail: {:?}",
        run.verdict
    );
}

/// EMM and the explicit expansion agree on the FIFO design, and the BDD
/// engine agrees with both on the explicit model.
#[test]
fn three_engines_agree_on_fifo() {
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 1,
    });
    let prop = fifo.no_overflow.0 as usize;

    // EMM proof.
    let mut emm = BmcEngine::new(
        &fifo.design,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let emm_run = emm.check(prop, 40).expect("emm");
    assert!(emm_run.verdict.is_proof(), "EMM: {:?}", emm_run.verdict);

    // Explicit-model proof.
    let (expl, _) = explicit_model(&fifo.design);
    let mut exp = BmcEngine::new(
        &expl,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let exp_run = exp.check(prop, 60).expect("explicit");
    assert!(
        exp_run.verdict.is_proof(),
        "explicit: {:?}",
        exp_run.verdict
    );

    // BDD reachability on the explicit model.
    let mut mc = SymbolicChecker::new(&expl, SymbolicOptions::default()).expect("bdd build");
    assert!(
        matches!(mc.check(prop), SymbolicVerdict::Proof { .. }),
        "the BDD engine must also prove no_overflow"
    );
}

/// The explicit model is larger than the EMM model by design — the size
/// gap the whole paper is about.
#[test]
fn explicit_blowup_is_real() {
    let fifo = Fifo::new(FifoConfig {
        addr_width: 4,
        data_width: 8,
    });
    let (expl, _) = explicit_model(&fifo.design);
    let original = fifo.design.stats();
    let expanded = expl.stats();
    assert_eq!(
        expanded.latches,
        original.latches + 16 * 8,
        "memory bits become latches"
    );
    assert!(
        expanded.gates > original.gates * 4,
        "decoder/mux logic dominates: {} vs {}",
        expanded.gates,
        original.gates
    );
}
