//! Differential testing of the solver inprocessing loop (vivification,
//! subsumption + self-subsuming resolution, failed-literal probing) run
//! between BMC bounds and k-induction depths: every workload is checked
//! inprocessing-on (the default) against inprocessing-off
//! (`InprocessConfig::disabled()` threaded through
//! `VerifyOptions::solver`), and verdicts *and* counterexample traces
//! must agree exactly — database rewriting may only ever remove models
//! that were never reachable.
//!
//! The suite also guards against a vacuous differential: the "on" legs
//! assert through the engine's solver counters that inprocessing
//! actually fired on these workloads.

use emm_aig::Design;
use emm_bmc::{BmcEngine, BmcVerdict, KInduction, VerifyOptions};
use emm_designs::fifo::{Fifo, FifoConfig};
use emm_designs::industry2::{Industry2, Industry2Config};
use emm_designs::quicksort::{Bug, QuickSort, QuickSortConfig};
use emm_sat::{InprocessConfig, RestartPolicy, SimplifyConfig, SolverConfig};

mod random_mem {
    use emm_aig::{Design, LatchInit, MemInit};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// The random memory design family shared by the differential
    /// suites: a memory driven by a free-running counter and inputs,
    /// with a reachability property on the read port.
    pub fn design(rng: &mut StdRng) -> Design {
        let aw = rng.random_range(2..=3usize);
        let dw = rng.random_range(1..=3usize);
        let init = if rng.random_bool(0.5) {
            MemInit::Zero
        } else {
            MemInit::Arbitrary
        };
        let mut d = Design::new();
        let mem = d.add_memory("m", aw, dw, init);
        let t = d.new_latch_word("t", 3, LatchInit::Zero);
        let next_t = d.aig.inc(&t);
        d.set_next_word(&t, &next_t);
        let wa = if rng.random_bool(0.5) {
            d.new_input_word("wa", aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let we = d.new_input("we");
        let wd = d.new_input_word("wd", dw);
        d.add_write_port(mem, wa, we, wd);
        let ra = if rng.random_bool(0.5) {
            d.new_input_word("ra", aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let rd = d.add_read_port(mem, ra, emm_aig::Aig::TRUE);
        let c = rng.random_range(0..(1u64 << dw));
        let bad = d.aig.eq_const(&rd, c);
        d.add_property("p", bad);
        d.check().expect("valid");
        d
    }
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

fn opts(inprocess: bool, proofs: bool) -> VerifyOptions {
    let solver = if inprocess {
        SolverConfig::default()
    } else {
        SolverConfig::default().inprocess(InprocessConfig::disabled())
    };
    VerifyOptions::default()
        .proofs(proofs)
        .simplify(SimplifyConfig::sweeping())
        .solver(solver)
}

fn run(design: &Design, prop: usize, bound: usize, inprocess: bool, proofs: bool) -> BmcVerdict {
    let mut engine = BmcEngine::new(design, opts(inprocess, proofs));
    let run = engine.check(prop, bound).expect("no spurious traces");
    // Inprocessing first fires between bounds 0 and 1, so a run decided
    // at bound 0 legitimately never inprocesses.
    if inprocess && run.depth_reached >= 1 {
        let (_, stats) = engine.solver_stats();
        assert!(
            stats.inprocess_rounds > 0,
            "the on-leg must actually inprocess (reached {})",
            run.depth_reached
        );
    }
    run.verdict
}

/// Verdict agreement on the (scaled) Table 1/2 quicksort proof
/// workloads, proofs on: inprocessing must not move or destroy the
/// induction proofs.
#[test]
fn inprocessing_agrees_on_quicksort_proofs() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 1,
        bug: Bug::None,
    });
    let bound = qs.cycle_bound();
    for (name, prop) in [("table1_p1_n3", qs.p1.0), ("table2_p2_n3", qs.p2.0)] {
        let on = run(&qs.design, prop as usize, bound, true, true);
        let off = run(&qs.design, prop as usize, bound, false, true);
        assert!(on.is_proof(), "{name}: expected a proof, got {on:?}");
        assert_eq!(
            verdict_shape(&on),
            verdict_shape(&off),
            "{name}: inprocessing-on {on:?} vs -off {off:?}"
        );
    }
}

/// Trace agreement on the buggy quicksort variants (the Table 1
/// falsification workloads): both legs must falsify at the same depth
/// with identical per-frame inputs.
#[test]
fn inprocessing_agrees_on_quicksort_counterexamples() {
    // P1 witnesses the inverted comparison, P2 the stack underflow.
    for (bug, use_p2) in [
        (Bug::InvertedComparison, false),
        (Bug::MissingEmptyCheck, true),
    ] {
        let qs = QuickSort::new(QuickSortConfig {
            n: 3,
            addr_width: 4,
            data_width: 3,
            bug,
        });
        let prop = if use_p2 { qs.p2.0 } else { qs.p1.0 } as usize;
        let bound = qs.cycle_bound();
        let on = run(&qs.design, prop, bound, true, false);
        let off = run(&qs.design, prop, bound, false, false);
        let (BmcVerdict::Counterexample(ton), BmcVerdict::Counterexample(toff)) = (&on, &off)
        else {
            panic!("{bug:?}: expected counterexamples, got {on:?} vs {off:?}");
        };
        assert_eq!(ton.depth(), toff.depth(), "{bug:?}: depths diverge");
        assert_eq!(ton.frames, toff.frames, "{bug:?}: input frames diverge");
    }
}

/// Randomized agreement sweep over the random-memory family, proofs on
/// and off, with the sweeping simplifier so inprocessing runs on top of
/// the full retirement machinery.
#[test]
fn inprocessing_agrees_on_random_designs() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1A9C);
    for round in 0..12 {
        let d = random_mem::design(&mut rng);
        let proofs = round % 2 == 0;
        let on = run(&d, 0, 6, true, proofs);
        let off = run(&d, 0, 6, false, proofs);
        assert_eq!(
            verdict_shape(&on),
            verdict_shape(&off),
            "round {round}: inprocessing-on {on:?} vs -off {off:?}"
        );
    }
}

/// K-induction closure workloads: the step context inprocesses between
/// depths, and the closing depth must not move. Industry2 closes at
/// `k = 2`, the FIFO no-overflow invariant at `k = 1`.
#[test]
fn inprocessing_agrees_on_kinduction_closures() {
    let ind2 = Industry2::new(Industry2Config::small());
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    let workloads: [(&str, &Design, usize, usize); 2] = [
        ("industry2", &ind2.design, ind2.invariant, 2),
        (
            "fifo_no_overflow",
            &fifo.design,
            fifo.no_overflow.0 as usize,
            1,
        ),
    ];
    for (name, design, prop, close_k) in workloads {
        let mut on_engine = KInduction::new(design, opts(true, false));
        let on = on_engine.check(prop, 10).expect("on").verdict;
        let mut off_engine = KInduction::new(design, opts(false, false));
        let off = off_engine.check(prop, 10).expect("off").verdict;
        assert!(
            matches!(on, BmcVerdict::Proved { k } if k == close_k),
            "{name}: closes at k = {close_k}, got {on:?}"
        );
        assert_eq!(
            verdict_shape(&on),
            verdict_shape(&off),
            "{name}: inprocessing-on {on:?} vs -off {off:?}"
        );
        let (_, step_stats) = on_engine.step_solver_stats();
        let (_, base_stats) = on_engine.base().solver_stats();
        assert!(
            step_stats.inprocess_rounds + base_stats.inprocess_rounds > 0,
            "{name}: the on-leg must actually inprocess"
        );
    }
}

/// The redesigned `SolverConfig` surface end to end: EMA restarts and
/// chronological backtracking selected through `VerifyOptions::solver`
/// must preserve verdicts and traces against the default Luby policy.
#[test]
fn ema_restarts_and_chrono_backtracking_agree_with_default() {
    let tuned = SolverConfig::default()
        .restart_policy(RestartPolicy::Ema)
        .chrono_backtrack(Some(64));
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::InvertedComparison,
    });
    let prop = qs.p1.0 as usize;
    let bound = qs.cycle_bound();
    let mut default_engine = BmcEngine::new(&qs.design, opts(true, false));
    let default_verdict = default_engine.check(prop, bound).expect("default").verdict;
    let mut tuned_engine = BmcEngine::new(&qs.design, opts(true, false).solver(tuned.clone()));
    let tuned_verdict = tuned_engine.check(prop, bound).expect("tuned").verdict;
    let (BmcVerdict::Counterexample(td), BmcVerdict::Counterexample(tt)) =
        (&default_verdict, &tuned_verdict)
    else {
        panic!("expected counterexamples, got {default_verdict:?} vs {tuned_verdict:?}");
    };
    assert_eq!(td.depth(), tt.depth(), "falsification depth moved");

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1A9D);
    for round in 0..6 {
        let d = random_mem::design(&mut rng);
        let mut default_engine = BmcEngine::new(&d, opts(true, false));
        let default_verdict = default_engine.check(0, 6).expect("default").verdict;
        let mut tuned_engine = BmcEngine::new(&d, opts(true, false).solver(tuned.clone()));
        let tuned_verdict = tuned_engine.check(0, 6).expect("tuned").verdict;
        assert_eq!(
            verdict_shape(&default_verdict),
            verdict_shape(&tuned_verdict),
            "round {round}: Luby {default_verdict:?} vs Ema+chrono {tuned_verdict:?}"
        );
    }
}
