//! Differential testing of wide-cut rewriting (`RewriteConfig::wide()`:
//! k = 6 cuts over `u64` truth tables, global selection): BMC over random
//! designs must produce identical verdicts with the wide pass enabled and
//! with rewriting disabled, and the wide pass must agree with the default
//! k = 4 configuration.
//!
//! This mirrors `rewrite_differential.rs` for the widened tables — the
//! system-level soundness harness for the 5- and 6-input recipe classes
//! and the semicanonical NPN path, which the default configuration never
//! exercises. Because `validate_traces` stays on, every counterexample
//! found on the reduced model is re-simulated against the *original*
//! design, so an unsound wide-cone replacement surfaces as a hard
//! `SpuriousTrace` error, not just a flaky disagreement.

use emm_aig::{rewrite_design, Design, LatchInit, MemInit, RewriteConfig};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random memory design driven by a free-running counter and inputs
/// (mirrors the generator of `rewrite_differential.rs`).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let n_read = rng.random_range(1..=2usize);
    let n_write = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    for w in 0..n_write {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("wa{w}"), aw)
        } else {
            let r = d.aig.resize(&t, aw);
            let c = d.aig.const_word(rng.random_range(0..(1 << aw) as u64), aw);
            d.aig.word_xor(&r, &c)
        };
        let en = d.new_input(&format!("we{w}"));
        let data = d.new_input_word(&format!("wd{w}"), dw);
        d.add_write_port(mem, addr, en, data);
    }
    let mut read_words = Vec::new();
    for r in 0..n_read {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("ra{r}"), aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let en = if rng.random_bool(0.7) {
            emm_aig::Aig::TRUE
        } else {
            d.new_input(&format!("re{r}"))
        };
        let rd = d.add_read_port(mem, addr, en);
        read_words.push(rd);
    }
    let c = rng.random_range(0..(1u64 << dw));
    let mut bad = d.aig.eq_const(&read_words[0], c);
    if read_words.len() > 1 && rng.random_bool(0.5) {
        let nz = d.aig.redor(&read_words[1].clone());
        bad = d.aig.and(bad, nz);
    }
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// A random memory-free sequential design whose property cone contains
/// shapes only a wide window can collapse: the same multi-bit reduction
/// built with two different associations behind a mux (Shannon bloat), on
/// top of the comparator chains and disguised wires of the k = 4 suite.
fn random_latch_design(rng: &mut StdRng) -> Design {
    let w = rng.random_range(3..=5usize);
    let mut d = Design::new();
    let s = d.new_latch_word("s", w, LatchInit::Zero);
    let i = d.new_input_word("i", w);
    let mixed = if rng.random_bool(0.5) {
        d.aig.word_xor(&s, &i)
    } else {
        d.aig.add(&s, &i)
    };
    let next = if rng.random_bool(0.5) {
        mixed.clone()
    } else {
        let sel = d.new_input("sel");
        let inc = d.aig.inc(&s);
        d.aig.mux_word(sel, &inc, &mixed)
    };
    d.set_next_word(&s, &next);
    // Shannon bloat over the state bits: reduce `s` left-to-right and
    // right-to-left — equal functions, different shapes, so strash keeps
    // both cones — and mux them on a fresh input. Only a cut spanning the
    // selector plus all reduced bits sees that the arms agree.
    let bits = s.bits();
    let mut fwd = bits[0];
    for &b in &bits[1..] {
        fwd = if rng.random_bool(0.5) {
            d.aig.and(fwd, b)
        } else {
            d.aig.xor(fwd, b)
        };
    }
    let mut bwd = bits[w - 1];
    for &b in bits[..w - 1].iter().rev() {
        bwd = if rng.random_bool(0.5) {
            d.aig.and(b, bwd)
        } else {
            d.aig.xor(b, bwd)
        };
    }
    let sel2 = d.new_input("bloat_sel");
    let arm = d.aig.mux(sel2, fwd, bwd);
    let target = rng.random_range(1..(1u64 << w));
    let cmp = if rng.random_bool(0.5) {
        let k = d.aig.const_word(target, w);
        d.aig.ult(&s, &k)
    } else {
        d.aig.eq_const(&s, target)
    };
    let bad = d.aig.and(cmp, arm);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

fn check_with(design: &Design, rewrite: RewriteConfig, proofs: bool, bound: usize) -> (u8, usize) {
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs,
            rewrite,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, bound).expect("no spurious traces");
    verdict_shape(&run.verdict)
}

/// Engine-level agreement on random memory designs (falsification mode);
/// traces from the wide-rewritten model must validate on the original.
#[test]
fn rewrite6_engine_agrees_with_unrewritten_on_random_mem_designs() {
    let mut rng = StdRng::seed_from_u64(0x6E581);
    for round in 0..20 {
        let d = random_mem_design(&mut rng);
        let wide = check_with(&d, RewriteConfig::wide(), false, 5);
        let plain = check_with(&d, RewriteConfig::disabled(), false, 5);
        assert_eq!(wide, plain, "round {round}: verdicts diverge");
    }
}

/// Agreement with induction proofs enabled (floating context included),
/// crossing wide against both disabled and the default k = 4 pass.
#[test]
fn rewrite6_proof_engine_agrees_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0x6E582);
    for round in 0..12 {
        let d = if round % 2 == 0 {
            random_latch_design(&mut rng)
        } else {
            random_mem_design(&mut rng)
        };
        let wide = check_with(&d, RewriteConfig::wide(), true, 6);
        let plain = check_with(&d, RewriteConfig::disabled(), true, 6);
        let narrow = check_with(&d, RewriteConfig::default(), true, 6);
        assert_eq!(wide, plain, "round {round}: wide vs disabled diverge");
        assert_eq!(wide, narrow, "round {round}: wide vs k=4 diverge");
    }
}

/// The wide pass must find reductions on the Shannon-bloated designs, run
/// at its configured width, and keep the design well-formed.
#[test]
fn rewrite6_shrinks_shannon_bloated_designs() {
    let mut rng = StdRng::seed_from_u64(0x6E583);
    let mut total_removed = 0usize;
    for _ in 0..8 {
        let mut d = random_latch_design(&mut rng);
        let before = d.num_gates();
        let stats = rewrite_design(&mut d, &RewriteConfig::wide());
        d.check().expect("rewrite keeps the design well-formed");
        assert_eq!(stats.cut_size, 6);
        assert_eq!(stats.ands_before, before);
        assert_eq!(stats.ands_after, d.num_gates());
        assert!(d.num_gates() <= before);
        total_removed += stats.ands_removed();
    }
    assert!(
        total_removed > 0,
        "the bloated mux arms must yield at least one rewrite"
    );
}
