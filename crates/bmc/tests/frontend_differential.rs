//! Parse-then-verify differentials for the AIGER and BTOR2 frontends.
//!
//! The round-trip suite (`emm-designs/tests/frontend_roundtrip.rs`)
//! proves the writers and parsers invert each other *syntactically*;
//! this suite proves the parsed designs mean the same thing to the
//! verification engines:
//!
//! * **Seeded sweep** — 200 generated designs per format are written,
//!   re-parsed, and bounded-checked on every property; the verdict
//!   (including counterexample and proof depths) must be identical to
//!   the in-memory original's. BTOR2's guarded-read lowering turns
//!   disabled reads into oracle inputs, which is exactly the
//!   nondeterminism the EMM encoder gives an unconstrained read — the
//!   sweep pins that equivalence.
//! * **Three-way subset** — a smaller seed family goes through bounded
//!   BMC, k-induction, *and* the BDD reachability oracle on both the
//!   original and the parsed design; all verdicts must agree
//!   pairwise and none of the three engines may contradict another.
//! * **Golden corpus** — every file under `corpus/` (the Table 1/2
//!   workloads plus the case studies, emitted by
//!   `cargo run -p emm-bench --bin corpus -- --emit`) is parsed with
//!   [`ModelSource`] and checked against a freshly constructed design
//!   of the identical configuration, bounded and k-induction, with
//!   [`dump_bmc_cnf`] instances cross-solved for the small entries.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use emm_aig::aiger::{read_aiger, write_aiger_ascii, write_aiger_binary};
use emm_aig::btor2::{read_btor2, write_btor2};
use emm_aig::Design;
use emm_bdd::{check_invariant, OracleVerdict, SymbolicOptions};
use emm_bmc::{dump_bmc_cnf, BmcEngine, BmcVerdict, KInduction, ModelSource, VerifyOptions};
use emm_core::explicit_model;
use emm_designs::fifo::{Fifo, FifoConfig};
use emm_designs::gen::{random_design, GenConfig};
use emm_designs::image_filter::{ImageFilter, ImageFilterConfig};
use emm_designs::lifo::{Lifo, LifoConfig};
use emm_designs::memcpy::{Memcpy, MemcpyConfig};
use emm_designs::quicksort::{Bug, QuickSort, QuickSortConfig};
use emm_designs::regfile::{RegFile, RegFileConfig};
use proptest::prelude::*;

/// Comparable rendering of a verdict, depths included.
fn verdict_key(v: &BmcVerdict) -> String {
    match v {
        BmcVerdict::Proof { kind, depth } => format!("proof:{kind:?}@{depth}"),
        BmcVerdict::Counterexample(t) => format!("cex@{}", t.frames.len() - 1),
        BmcVerdict::Proved { k } => format!("proved@{k}"),
        BmcVerdict::BoundReached => "bound".to_string(),
        BmcVerdict::Unknown { reason, .. } => format!("unknown:{reason:?}"),
    }
}

/// Bounded verdict key of one property.
fn bounded_key(d: &Design, prop: usize, max_depth: usize) -> String {
    let run = BmcEngine::new(d, VerifyOptions::default())
        .check(prop, max_depth)
        .expect("bounded check");
    verdict_key(&run.verdict)
}

/// K-induction verdict key of one property.
fn induction_key(d: &Design, prop: usize, max_k: usize) -> String {
    let run = KInduction::new(d, VerifyOptions::default())
        .check(prop, max_k)
        .expect("induction check");
    verdict_key(&run.verdict)
}

/// Asserts every property of `parsed` gets the same bounded verdict as
/// the matching property of `original`.
fn assert_bounded_agree(original: &Design, parsed: &Design, max_depth: usize, label: &str) {
    assert_eq!(
        parsed.properties().len(),
        original.properties().len(),
        "{label}: property count changed across the frontend"
    );
    for prop in 0..original.properties().len() {
        assert_eq!(
            bounded_key(original, prop, max_depth),
            bounded_key(parsed, prop, max_depth),
            "{label}: bounded verdict diverged on property {prop}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn aiger_parse_then_verify_agrees(seed in any::<u64>()) {
        let d = random_design(&GenConfig::aiger(), seed);
        let parsed = read_aiger(&write_aiger_binary(&d).unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_bounded_agree(&d, &parsed, 6, &format!("aiger seed {seed}"));
    }

    #[test]
    fn btor2_parse_then_verify_agrees(seed in any::<u64>()) {
        let d = random_design(&GenConfig::btor2(), seed);
        let parsed = read_btor2(&write_btor2(&d).unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_bounded_agree(&d, &parsed, 6, &format!("btor2 seed {seed}"));
    }

    #[test]
    fn btor2_guarded_parse_then_verify_agrees(seed in any::<u64>()) {
        // Guarded reads lower to oracle inputs; an unconstrained EMM read
        // and a free input are the same nondeterminism, so even cex
        // depths must survive the lowering.
        let d = random_design(&GenConfig::btor2_guarded(), seed);
        let parsed = read_btor2(&write_btor2(&d).unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_bounded_agree(&d, &parsed, 6, &format!("guarded seed {seed}"));
    }
}

/// Three-way check of one (original, parsed) pair on one property:
/// bounded, k-induction and BDD verdicts must agree across the frontend,
/// and within the parsed design no engine may contradict another.
fn three_way(original: &Design, parsed: &Design, prop: usize, max_k: usize, label: &str) {
    let bounded_orig = bounded_key(original, prop, max_k);
    let bounded_parsed = bounded_key(parsed, prop, max_k);
    assert_eq!(bounded_orig, bounded_parsed, "{label}: bounded diverged");

    let ki_orig = induction_key(original, prop, max_k);
    let ki_parsed = induction_key(parsed, prop, max_k);
    assert_eq!(ki_orig, ki_parsed, "{label}: k-induction diverged");

    // A node-limit abort while *building* the relation surfaces as `Err`;
    // for the differential it is the same "no oracle opinion" as an
    // in-check abort. The limit is far below the library default so that
    // the seeds whose expansions genuinely blow up give up in
    // milliseconds instead of minutes.
    let oracle = |d: &Design| {
        check_invariant(
            d,
            prop,
            SymbolicOptions {
                node_limit: 100_000,
            },
        )
        .unwrap_or(OracleVerdict::Inconclusive)
    };
    let oracle_orig = oracle(original);
    let oracle_parsed = oracle(parsed);
    match (&oracle_orig, &oracle_parsed) {
        (OracleVerdict::Holds { .. }, OracleVerdict::Holds { .. }) => {}
        (OracleVerdict::Violated { depth: a }, OracleVerdict::Violated { depth: b }) => {
            assert_eq!(a, b, "{label}: oracle violation depth diverged");
        }
        (OracleVerdict::Inconclusive, _) | (_, OracleVerdict::Inconclusive) => {}
        (a, b) => panic!("{label}: oracle diverged across the frontend: {a:?} vs {b:?}"),
    }

    // Internal consistency on the parsed design.
    if let OracleVerdict::Violated { depth } = oracle_parsed {
        if depth <= max_k {
            assert_eq!(
                bounded_parsed,
                format!("cex@{depth}"),
                "{label}: oracle violates at {depth} inside the bound"
            );
        }
        assert!(
            !ki_parsed.starts_with("proved"),
            "{label}: k-induction proved a violated property"
        );
    }
    if oracle_parsed.holds() {
        assert!(
            !bounded_parsed.starts_with("cex") && !ki_parsed.starts_with("cex"),
            "{label}: SAT engine cex on a property the oracle proves \
             (bounded {bounded_parsed}, induction {ki_parsed})"
        );
    }
}

#[test]
fn three_way_on_seeded_designs() {
    for seed in 0..8u64 {
        let d = random_design(&GenConfig::btor2_guarded(), seed);
        let parsed = read_btor2(&write_btor2(&d).unwrap()).expect("parse");
        for prop in 0..d.properties().len() {
            three_way(
                &d,
                &parsed,
                prop,
                8,
                &format!("guarded seed {seed} p{prop}"),
            );
        }
        let d = random_design(&GenConfig::aiger(), seed);
        let parsed = read_aiger(write_aiger_ascii(&d).unwrap().as_bytes()).expect("parse");
        for prop in 0..d.properties().len() {
            three_way(&d, &parsed, prop, 8, &format!("aiger seed {seed} p{prop}"));
        }
    }
}

/// `corpus/` relative to this crate's manifest.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Loads one golden corpus file, panicking with a regeneration hint.
fn load_corpus(name: &str) -> Arc<Design> {
    let path = corpus_dir().join(name);
    ModelSource::from_path(&path).load().unwrap_or_else(|e| {
        panic!(
            "cannot load {}: {e}\n(regenerate with `cargo run -p emm-bench --bin corpus -- --emit`)",
            path.display()
        )
    })
}

/// The freshly constructed counterpart of each golden corpus file —
/// configurations must mirror `emm-bench/src/bin/corpus.rs` exactly.
fn constructed(name: &str) -> Design {
    let fifo = || {
        Fifo::new(FifoConfig {
            addr_width: 2,
            data_width: 2,
        })
        .design
    };
    let lifo = || {
        Lifo::new(LifoConfig {
            addr_width: 2,
            data_width: 2,
        })
        .design
    };
    match name {
        "quicksort_n3.btor2" | "quicksort_n4.btor2" => {
            let n = if name.contains("n3") { 3 } else { 4 };
            QuickSort::new(QuickSortConfig {
                n,
                addr_width: 4,
                data_width: 3,
                bug: Default::default(),
            })
            .design
        }
        "fifo_a2d2.btor2" => fifo(),
        "lifo_a2d2.btor2" => lifo(),
        "regfile_r2w1.btor2" => {
            RegFile::new(RegFileConfig {
                addr_width: 2,
                data_width: 2,
                read_ports: 2,
                write_ports: 1,
                watched: 1,
            })
            .design
        }
        "memcpy_l3.btor2" => {
            Memcpy::new(MemcpyConfig {
                len: 3,
                addr_width: 2,
                data_width: 2,
            })
            .design
        }
        "image_filter_l4.btor2" => {
            ImageFilter::new(ImageFilterConfig {
                line_length: 4,
                addr_width: 2,
                data_width: 2,
                reachable_properties: 4,
                unreachable_properties: 2,
                max_witness_depth: 8,
            })
            .design
        }
        "fifo_a2d2_explicit.aag" => explicit_model(&fifo()).0,
        "lifo_a2d2_explicit.aig" => explicit_model(&lifo()).0,
        "gen_s7.aag" => random_design(&GenConfig::aiger(), 7),
        "gen_s11.aig" => random_design(&GenConfig::aiger(), 11),
        other => panic!("no constructor known for corpus file {other}"),
    }
}

/// Every golden file this suite pins; `golden_corpus_is_complete` fails
/// when `corpus/` gains a file the list does not cover.
const GOLDEN: &[&str] = &[
    "quicksort_n3.btor2",
    "quicksort_n4.btor2",
    "fifo_a2d2.btor2",
    "lifo_a2d2.btor2",
    "regfile_r2w1.btor2",
    "memcpy_l3.btor2",
    "image_filter_l4.btor2",
    "fifo_a2d2_explicit.aag",
    "lifo_a2d2_explicit.aig",
    "gen_s7.aag",
    "gen_s11.aig",
];

#[test]
fn golden_corpus_is_complete() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir exists (regenerate with the corpus bin's --emit)")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| !n.starts_with('.'))
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = GOLDEN.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(on_disk, expected, "corpus/ and the golden list diverged");
}

#[test]
fn golden_corpus_reserializes_from_construction() {
    // The on-disk bytes must be exactly what serializing today's
    // constructors produces — any semantic drift in a workload or a
    // writer shows up here before it can skew the differential below.
    for name in GOLDEN {
        let path = corpus_dir().join(name);
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let d = constructed(name);
        let fresh = if name.ends_with(".btor2") {
            write_btor2(&d).expect("btor2").into_bytes()
        } else if name.ends_with(".aag") {
            write_aiger_ascii(&d).expect("aiger").into_bytes()
        } else {
            write_aiger_binary(&d).expect("aiger")
        };
        assert_eq!(
            fresh, bytes,
            "{name}: corpus file no longer matches its constructor \
             (regenerate with `cargo run -p emm-bench --bin corpus -- --emit`)"
        );
    }
}

#[test]
fn golden_corpus_parse_matches_construction_bounded_and_induction() {
    // The acceptance differential: every Table 1/2 workload and case
    // study, parsed from its golden file, must verify identically to the
    // in-tree construction under both SAT engines.
    for name in GOLDEN {
        let parsed = load_corpus(name);
        let built = constructed(name);
        assert_eq!(
            parsed.properties().len(),
            built.properties().len(),
            "{name}: property count diverged"
        );
        for prop in 0..built.properties().len() {
            let label = format!("{name} p{prop}");
            assert_eq!(
                bounded_key(&built, prop, 10),
                bounded_key(&parsed, prop, 10),
                "{label}: bounded verdict diverged"
            );
            assert_eq!(
                induction_key(&built, prop, 10),
                induction_key(&parsed, prop, 10),
                "{label}: k-induction verdict diverged"
            );
        }
    }
}

#[test]
fn golden_corpus_small_entries_pass_the_bdd_oracle() {
    // Third leg of the three-way on the corpus entries small enough for
    // exhaustive reachability (quicksort's aw=4 memories are out of BDD
    // range by design — the paper's point).
    for name in [
        "fifo_a2d2.btor2",
        "lifo_a2d2.btor2",
        "memcpy_l3.btor2",
        "fifo_a2d2_explicit.aag",
        "lifo_a2d2_explicit.aig",
        "gen_s7.aag",
        "gen_s11.aig",
    ] {
        let parsed = load_corpus(name);
        let built = constructed(name);
        for prop in 0..built.properties().len() {
            three_way(&built, &parsed, prop, 10, &format!("{name} p{prop}"));
        }
    }
}

#[test]
fn buggy_quicksort_cex_survives_the_frontend() {
    // A definite Table 1 verdict (the golden files are all clean): the
    // seeded bug's counterexample must come back at the same depth after
    // a write→parse trip, under both engines.
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::InvertedComparison,
    });
    let parsed = read_btor2(&write_btor2(&qs.design).expect("btor2")).expect("parse");
    let prop = qs.p1.0 as usize;
    let bound = qs.cycle_bound();
    let direct = bounded_key(&qs.design, prop, bound);
    assert!(direct.starts_with("cex@"), "expected a cex, got {direct}");
    assert_eq!(
        direct,
        bounded_key(&parsed, prop, bound),
        "buggy quicksort: bounded cex diverged across the frontend"
    );
    assert_eq!(
        induction_key(&qs.design, prop, bound),
        induction_key(&parsed, prop, bound),
        "buggy quicksort: k-induction cex diverged across the frontend"
    );
}

#[test]
fn golden_corpus_dimacs_dumps_agree() {
    // The external-solver path: the parsed design's graph is renumbered,
    // so the dumps differ textually — but both must solve to the same
    // answer, and that answer must match the bounded verdict.
    for (name, depth) in [("fifo_a2d2.btor2", 4usize), ("gen_s7.aag", 4)] {
        let parsed = load_corpus(name);
        let built = constructed(name);
        for prop in 0..built.properties().len() {
            let a = dump_bmc_cnf(&built, prop, depth, VerifyOptions::default()).expect("dump");
            let b = dump_bmc_cnf(&parsed, prop, depth, VerifyOptions::default()).expect("dump");
            let sat_built = a.cnf.to_solver().solve();
            let sat_parsed = b.cnf.to_solver().solve();
            assert_eq!(
                sat_built, sat_parsed,
                "{name} p{prop}: dump satisfiability diverged across the frontend"
            );
            let bounded = bounded_key(&parsed, prop, depth);
            assert_eq!(
                bounded.starts_with("cex@"),
                sat_parsed == emm_sat::SolveResult::Sat,
                "{name} p{prop}: dump satisfiability ({sat_parsed:?}) contradicts \
                 the engine verdict ({bounded})"
            );
        }
    }
}
