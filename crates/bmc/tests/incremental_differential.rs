//! Differential testing of bound-to-bound incremental solving: one
//! long-lived solver per context, per-bound property clauses in
//! activation groups retired on refutation, sweep-merged Tseitin
//! definitions physically deleted — against the restart-from-scratch
//! baseline (`BmcOptions { incremental: false, .. }`), which rebuilds
//! every context at every bound.
//!
//! Verdicts *and* counterexample traces must agree exactly: the
//! incremental solver carries learned clauses, retired-clause holes, and
//! activation-group state across bounds, and none of it may change what
//! is reachable. The white-box accounting tests additionally pin the
//! retirement bookkeeping: every clause the solver reports retired is
//! either a swept gate's Tseitin clause (3 per merge, counted by the
//! simplifier) or a refuted bound's property clause (counted by the
//! engine).

use emm_aig::{Design, LatchInit, MemInit};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use emm_designs::quicksort::{Bug, QuickSort, QuickSortConfig};
use emm_sat::SimplifyConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scaled-down Table 1 / Table 2 quicksort workloads (same machine, same
/// properties, smaller widths — and `n = 3` only — so the quadratic
/// restart-from-scratch legs stay affordable in a test).
fn quicksort_workloads(bug: Bug) -> Vec<(String, QuickSort, usize)> {
    let make = || {
        QuickSort::new(QuickSortConfig {
            n: 3,
            addr_width: 3,
            data_width: 1,
            bug,
        })
    };
    let qs = make();
    let p1 = qs.p1.0 as usize;
    let p2 = qs.p2.0 as usize;
    vec![
        ("table1_p1_n3".to_string(), qs, p1),
        ("table2_p2_n3".to_string(), make(), p2),
    ]
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

fn run(design: &Design, prop: usize, bound: usize, incremental: bool, proofs: bool) -> BmcVerdict {
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            proofs,
            incremental,
            simplify: SimplifyConfig::sweeping(),
            ..BmcOptions::default()
        },
    );
    engine
        .check(prop, bound)
        .expect("no spurious traces")
        .verdict
}

/// Verdict agreement on the (scaled) Table 1/2 workloads, proofs on:
/// the correct machine proves both properties, both solving modes must
/// find the same proof kind at the same depth. The quadratic
/// restart-from-scratch leg is only affordable on one workload in a
/// debug-build test, so P1 carries the full differential; P2's
/// incremental proof is still pinned (its restart agreement runs in the
/// release-mode bench gate, which measures exactly this pair).
#[test]
fn incremental_agrees_on_quicksort_proofs() {
    let mut workloads = quicksort_workloads(Bug::None).into_iter();
    let (name, qs, prop) = workloads.next().expect("p1 workload");
    let bound = qs.cycle_bound();
    let inc = run(&qs.design, prop, bound, true, true);
    let rst = run(&qs.design, prop, bound, false, true);
    assert!(
        inc.is_proof(),
        "{name}: expected a proof, got {inc:?} (incremental)"
    );
    assert_eq!(
        verdict_shape(&inc),
        verdict_shape(&rst),
        "{name}: incremental {inc:?} vs restart {rst:?}"
    );
    let (name, qs, prop) = workloads.next().expect("p2 workload");
    let p2 = run(&qs.design, prop, qs.cycle_bound(), true, true);
    assert!(p2.is_proof(), "{name}: expected a proof, got {p2:?}");
    assert_eq!(
        verdict_shape(&p2),
        verdict_shape(&inc),
        "{name}: P1 and P2 prove at the machine's diameter"
    );
}

/// Trace agreement on the buggy quicksort variants: both modes must
/// falsify at the same depth, and the traces must replay identically on
/// the original design (validated inside the engine) with the same
/// per-frame inputs.
#[test]
fn incremental_agrees_on_quicksort_counterexamples() {
    // P1 witnesses the inverted comparison, P2 the stack underflow.
    for (bug, use_p2) in [
        (Bug::InvertedComparison, false),
        (Bug::MissingEmptyCheck, true),
    ] {
        let qs = QuickSort::new(QuickSortConfig {
            n: 3,
            addr_width: 4,
            data_width: 3,
            bug,
        });
        let prop = if use_p2 { qs.p2.0 } else { qs.p1.0 } as usize;
        let bound = qs.cycle_bound();
        let inc = run(&qs.design, prop, bound, true, false);
        let rst = run(&qs.design, prop, bound, false, false);
        let (BmcVerdict::Counterexample(ti), BmcVerdict::Counterexample(tr)) = (&inc, &rst) else {
            panic!("{bug:?}: expected counterexamples, got {inc:?} vs {rst:?}");
        };
        assert_eq!(ti.depth(), tr.depth(), "{bug:?}: depths diverge");
        assert_eq!(ti.frames, tr.frames, "{bug:?}: input frames diverge");
    }
}

/// A random memory design driven by a free-running counter and inputs
/// (the generator family of `simplify_differential.rs`).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    let wa = if rng.random_bool(0.5) {
        d.new_input_word("wa", aw)
    } else {
        d.aig.resize(&t, aw)
    };
    let we = d.new_input("we");
    let wd = d.new_input_word("wd", dw);
    d.add_write_port(mem, wa, we, wd);
    let ra = if rng.random_bool(0.5) {
        d.new_input_word("ra", aw)
    } else {
        d.aig.resize(&t, aw)
    };
    let rd = d.add_read_port(mem, ra, emm_aig::Aig::TRUE);
    let c = rng.random_range(0..(1u64 << dw));
    let bad = d.aig.eq_const(&rd, c);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// Randomized agreement sweep, proofs on and off, with the most
/// aggressive simplifier configuration (sweeping + retirement) so the
/// clause-deletion path is the one under differential test.
#[test]
fn incremental_agrees_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0x1BC5);
    for round in 0..12 {
        let d = random_mem_design(&mut rng);
        let proofs = round % 2 == 0;
        let inc = run(&d, 0, 6, true, proofs);
        let rst = run(&d, 0, 6, false, proofs);
        assert_eq!(
            verdict_shape(&inc),
            verdict_shape(&rst),
            "round {round}: incremental {inc:?} vs restart {rst:?}"
        );
    }
}

/// Repeated `check` calls on one incremental engine (the PBA discovery
/// access pattern) must agree with one deep check: cleared bounds are
/// skipped, not forgotten.
#[test]
fn repeated_shallow_checks_match_one_deep_check() {
    let mut rng = StdRng::seed_from_u64(0x1BC6);
    for round in 0..6 {
        let d = random_mem_design(&mut rng);
        let mut stepped = BmcEngine::new(
            &d,
            BmcOptions {
                simplify: SimplifyConfig::sweeping(),
                ..BmcOptions::default()
            },
        );
        let mut verdict = None;
        for depth in 0..=6 {
            let run = stepped.check(0, depth).expect("stepped");
            if !matches!(run.verdict, BmcVerdict::BoundReached) {
                verdict = Some(run.verdict);
                break;
            }
        }
        let deep = run(&d, 0, 6, true, false);
        let expect = match &verdict {
            Some(v) => verdict_shape(v),
            None => verdict_shape(&BmcVerdict::BoundReached),
        };
        assert_eq!(
            expect,
            verdict_shape(&deep),
            "round {round}: stepped {verdict:?} vs deep {deep:?}"
        );
    }
}

/// Regression: with proofs on, a repeated `check` call must not re-run
/// a bound's termination queries against a *deeper* unrolling — the
/// shared LFP activation literal would then enforce distinctness over
/// frames beyond the bound, and an absorbing bad state (which cannot
/// extend to more distinct frames) would yield a spurious UNSAT, i.e. a
/// proof masking a real counterexample.
#[test]
fn repeated_checks_with_proofs_stay_sound() {
    // 4-bit counter, bad at 10, absorbing: next = bad ? count : count+1.
    let mut d = Design::new();
    let count = d.new_latch_word("count", 4, LatchInit::Zero);
    let inc = d.aig.inc(&count);
    let bad = d.aig.eq_const(&count, 10);
    let next = d.aig.mux_word(bad, &count, &inc);
    d.set_next_word(&count, &next);
    d.add_property("reaches10", bad);
    d.check().expect("well-formed");

    let mut fresh = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let reference = fresh.check(0, 20).expect("fresh").verdict;
    let BmcVerdict::Counterexample(ref t) = reference else {
        panic!("expected a counterexample, got {reference:?}");
    };
    let expect_depth = t.depth();

    let mut reused = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let shallow = reused.check(0, 3).expect("shallow").verdict;
    assert!(
        matches!(shallow, BmcVerdict::BoundReached),
        "nothing decidable by bound 3: {shallow:?}"
    );
    let deep = reused.check(0, 20).expect("deep").verdict;
    match deep {
        BmcVerdict::Counterexample(t) => assert_eq!(t.depth(), expect_depth),
        other => panic!("unsound verdict after a shallow check: {other:?}"),
    }
}

/// Regression: a proof-mode engine reused for a *different* property
/// must match fresh-engine verdicts. The termination queries are
/// bound-exact, so the engine rebuilds its contexts on a property
/// switch — without that, the second property's backward-induction
/// checks could never run at the already-unrolled bounds and the proof
/// would be silently missed (BoundReached instead of Proof).
#[test]
fn property_switch_keeps_proofs_complete() {
    // Mod-5 counter: count==2 is reachable (cex), count==7 is not
    // (proved at the diameter).
    let mut d = Design::new();
    let count = d.new_latch_word("count", 3, LatchInit::Zero);
    let inc = d.aig.inc(&count);
    let wrap = d.aig.eq_const(&count, 4);
    let zero = d.aig.const_word(0, 3);
    let next = d.aig.mux_word(wrap, &zero, &inc);
    d.set_next_word(&count, &next);
    let reachable = d.aig.eq_const(&count, 2);
    d.add_property("reaches2", reachable);
    let unreachable = d.aig.eq_const(&count, 7);
    d.add_property("reaches7", unreachable);
    d.check().expect("well-formed");

    let opts = || BmcOptions {
        proofs: true,
        ..BmcOptions::default()
    };
    let mut fresh = BmcEngine::new(&d, opts());
    let reference = fresh.check(1, 20).expect("fresh").verdict;
    assert!(reference.is_proof(), "expected a proof, got {reference:?}");

    let mut reused = BmcEngine::new(&d, opts());
    let first = reused.check(0, 20).expect("prop 0").verdict;
    assert!(
        first.is_counterexample(),
        "count==2 is reachable: {first:?}"
    );
    let second = reused.check(1, 20).expect("prop 1").verdict;
    assert_eq!(
        verdict_shape(&second),
        verdict_shape(&reference),
        "reused engine must not miss the proof: {second:?} vs {reference:?}"
    );
}

/// White-box retirement accounting at the engine level: the solver's
/// retired-clause total decomposes exactly into sweep-retired Tseitin
/// clauses (counted by the simplifier) plus refuted-bound property
/// clauses (counted by the engine), and a merge-rich workload retires
/// the full three clauses per merge.
#[test]
fn retired_clause_accounting_matches_sweep_merges() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::None,
    });
    let mut engine = BmcEngine::new(
        &qs.design,
        BmcOptions {
            simplify: SimplifyConfig::sweeping(),
            ..BmcOptions::default()
        },
    );
    let bound = 12;
    let run = engine.check(qs.p1.0 as usize, bound).expect("run");
    assert!(
        matches!(run.verdict, BmcVerdict::BoundReached),
        "P1 must hold this deep: {:?}",
        run.verdict
    );
    let simplify = engine.simplify_stats().expect("simplify on");
    let (_, solver) = engine.solver_stats();
    assert!(simplify.sweep_merges > 0, "workload must exercise sweeping");
    assert_eq!(
        simplify.clauses_retired,
        3 * simplify.sweep_merges,
        "every merge retires its full Tseitin triple"
    );
    // Every refuted bound retired its property clause.
    assert_eq!(engine.property_clauses_retired(), (bound + 1) as u64);
    assert_eq!(
        solver.retired_clauses,
        simplify.clauses_retired + engine.property_clauses_retired(),
        "solver-side retirements must be fully accounted for"
    );
}

/// The restart baseline never retires anything across bounds it doesn't
/// also re-create: its final-bound context still accounts cleanly.
#[test]
fn restart_mode_accounting_is_self_contained() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::None,
    });
    let mut engine = BmcEngine::new(
        &qs.design,
        BmcOptions {
            incremental: false,
            simplify: SimplifyConfig::sweeping(),
            ..BmcOptions::default()
        },
    );
    let run = engine.check(qs.p1.0 as usize, 6).expect("run");
    assert!(matches!(run.verdict, BmcVerdict::BoundReached));
    // The last rebuilt context holds frames 0..=6 and exactly one
    // refuted bound's worth of property-clause retirement.
    let simplify = engine.simplify_stats().expect("simplify on");
    let (_, solver) = engine.solver_stats();
    assert_eq!(
        solver.retired_clauses,
        simplify.clauses_retired + 1,
        "one property clause retired in the final context"
    );
}
