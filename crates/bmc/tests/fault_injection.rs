//! Deterministic fault-injection harness for the resource-governance
//! stack: every poll/accounting site in the pipeline can be tripped on
//! its Nth occurrence ([`ResourceGovernor::with_fault`]), and a degraded
//! run must stay *sound* — it may give up ([`BmcVerdict::Unknown`]) but
//! it must never flip a verdict, panic, hang, or leave the engine
//! unusable. Every injected failure is then resumed with an unlimited
//! governor and must reach the reference verdict, which also regresses
//! the resumability guarantee: in incremental mode, cleanly refuted
//! bounds are skipped on resume, not re-solved (pinned through the
//! property-clause retirement accounting).
//!
//! The sweep is seeded and budget-free, so each (site, N) pair replays
//! identically: a failure here is a deterministic repro, not a flake.
//!
//! The k-induction engine shares the governance contract: its sweeps at
//! the bottom of this file assert the same no-flip/resume guarantees,
//! plus the step-side resumability pin (cleanly failed step depths are
//! skipped on resume, witnessed by the step-group retirement counts).

use std::time::{Duration, Instant};

use emm_aig::{Design, LatchInit, MemInit};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict, KInduction, VerifyOptions};
use emm_designs::fifo::{Fifo, FifoConfig};
use emm_designs::industry2::{Industry2, Industry2Config};
use emm_designs::quicksort::{Bug, QuickSort, QuickSortConfig};
use emm_sat::{ExhaustionReason, FaultSite, ResourceGovernor, SimplifyConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ALL_SITES: [FaultSite; 11] = [
    FaultSite::Conflict,
    FaultSite::RetiredClause,
    FaultSite::FraigCheck,
    FaultSite::FraigMerge,
    FaultSite::SweepCheck,
    FaultSite::EmmComparator,
    FaultSite::RewriteIteration,
    FaultSite::Frame,
    FaultSite::Vivify,
    FaultSite::Subsume,
    FaultSite::Probe,
];

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

/// A degraded run is sound when it either reaches the reference verdict
/// or honestly gives up; anything else is a flipped verdict.
fn assert_sound(context: &str, reference: &BmcVerdict, degraded: &BmcVerdict) {
    if let BmcVerdict::Unknown { reason, .. } = degraded {
        assert_eq!(
            *reason,
            ExhaustionReason::Cancelled,
            "{context}: a fault trip must surface as cancellation, got {degraded:?}"
        );
        return;
    }
    assert_eq!(
        verdict_shape(reference),
        verdict_shape(degraded),
        "{context}: verdict flipped — reference {reference:?}, degraded {degraded:?}"
    );
}

fn opts(governor: ResourceGovernor, proofs: bool) -> BmcOptions {
    BmcOptions {
        proofs,
        governor,
        simplify: SimplifyConfig::sweeping(),
        ..BmcOptions::default()
    }
}

/// The random memory design family of the differential suites: a memory
/// driven by a free-running counter and inputs, with a reachability
/// property on the read port.
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    let wa = if rng.random_bool(0.5) {
        d.new_input_word("wa", aw)
    } else {
        d.aig.resize(&t, aw)
    };
    let we = d.new_input("we");
    let wd = d.new_input_word("wd", dw);
    d.add_write_port(mem, wa, we, wd);
    let ra = if rng.random_bool(0.5) {
        d.new_input_word("ra", aw)
    } else {
        d.aig.resize(&t, aw)
    };
    let rd = d.add_read_port(mem, ra, emm_aig::Aig::TRUE);
    let c = rng.random_range(0..(1u64 << dw));
    let bad = d.aig.eq_const(&rd, c);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// Injects a fault at `site` on the `n`-th occurrence, checks the run
/// stayed sound, then resumes the *same engine* with an unlimited
/// governor and requires the reference verdict.
fn inject_and_resume(
    design: &Design,
    prop: usize,
    bound: usize,
    proofs: bool,
    reference: &BmcVerdict,
    site: FaultSite,
    n: u64,
) {
    let context = format!("fault ({site:?}, {n})");
    let governor = ResourceGovernor::unlimited().with_fault(site, n);
    let mut engine = BmcEngine::new(design, opts(governor, proofs));
    let degraded = engine.check(prop, bound).expect("no spurious traces");
    assert_sound(&context, reference, &degraded.verdict);
    engine.set_governor(ResourceGovernor::unlimited());
    let resumed = engine.check(prop, bound).expect("no spurious traces");
    assert_eq!(
        verdict_shape(reference),
        verdict_shape(&resumed.verdict),
        "{context}: resume with unlimited budget must reach the reference \
         verdict, got {:?} (reference {reference:?})",
        resumed.verdict
    );
}

/// Full (site, N) sweep over the random design family, proofs off and
/// on: no panic, no verdict flip, and every degraded engine resumes to
/// the reference verdict.
#[test]
fn fault_sweep_on_random_designs_never_flips_verdicts() {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    // Proofs off: every site, two trip counts (first occurrence and
    // mid-stream).
    let d = random_mem_design(&mut rng);
    let reference = {
        let mut engine = BmcEngine::new(&d, opts(ResourceGovernor::unlimited(), false));
        engine.check(0, 6).expect("reference").verdict
    };
    for site in ALL_SITES {
        for n in [1, 7] {
            inject_and_resume(&d, 0, 6, false, &reference, site, n);
        }
    }
    // Proofs on: the floating context and the termination queries join
    // the blast radius.
    let d = random_mem_design(&mut rng);
    let reference = {
        let mut engine = BmcEngine::new(&d, opts(ResourceGovernor::unlimited(), true));
        engine.check(0, 6).expect("reference").verdict
    };
    for site in [
        FaultSite::Conflict,
        FaultSite::RetiredClause,
        FaultSite::SweepCheck,
        FaultSite::EmmComparator,
        FaultSite::Frame,
    ] {
        for n in [1, 7] {
            inject_and_resume(&d, 0, 6, true, &reference, site, n);
        }
    }
}

/// The Table 1 falsification workload (buggy quicksort, P1 witnesses
/// the inverted comparison): a fault anywhere in the pipeline must not
/// move or destroy the counterexample.
#[test]
fn fault_sweep_on_quicksort_counterexample() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::InvertedComparison,
    });
    let prop = qs.p1.0 as usize;
    let bound = qs.cycle_bound();
    let reference = {
        let mut engine = BmcEngine::new(&qs.design, opts(ResourceGovernor::unlimited(), false));
        engine.check(prop, bound).expect("reference").verdict
    };
    assert!(
        reference.is_counterexample(),
        "P1 must fail under the inverted comparison: {reference:?}"
    );
    for site in [
        FaultSite::Conflict,
        FaultSite::Frame,
        FaultSite::EmmComparator,
        FaultSite::FraigCheck,
    ] {
        for n in [1, 30] {
            inject_and_resume(&qs.design, prop, bound, false, &reference, site, n);
        }
    }
}

/// Resumability regression (white-box): a deterministic frame-site
/// fault stops the bound loop mid-way with
/// `deepest_clean_bound = Some(d)`; the resumed check must *skip* the
/// cleanly refuted bounds, pinned through the property-clause
/// retirement count.
#[test]
fn resume_skips_cleanly_refuted_bounds() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::None,
    });
    let prop = qs.p1.0 as usize;
    let bound = 12;
    // The 5th unrolled frame cancels the pipeline: bounds 0..=3 are
    // refuted cleanly, bound 4's counterexample check opens a group and
    // hits the tripped governor.
    let governor = ResourceGovernor::unlimited().with_fault(FaultSite::Frame, 5);
    let mut engine = BmcEngine::new(&qs.design, opts(governor, false));
    let degraded = engine.check(prop, bound).expect("run").verdict;
    let BmcVerdict::Unknown {
        reason,
        deepest_clean_bound,
    } = degraded
    else {
        panic!("frame fault must degrade the run, got {degraded:?}");
    };
    assert_eq!(reason, ExhaustionReason::Cancelled);
    assert_eq!(
        deepest_clean_bound,
        Some(3),
        "bounds 0..=3 were refuted before the 5th frame tripped"
    );
    engine.set_governor(ResourceGovernor::unlimited());
    let resumed = engine.check(prop, bound).expect("resume").verdict;
    assert!(
        matches!(resumed, BmcVerdict::BoundReached),
        "P1 holds to bound 12: {resumed:?}"
    );
    // 13 refuted bounds retire one property clause each, plus the group
    // abandoned by the interrupted bound-4 check. If the resume had
    // re-solved bounds 0..=3 instead of skipping them, each would have
    // retired a second clause and the total would be at least 18.
    assert_eq!(
        engine.property_clauses_retired(),
        14,
        "resume must continue from the deepest clean bound"
    );
    let simplify = engine.simplify_stats().expect("simplify on");
    let (_, solver) = engine.solver_stats();
    assert_eq!(
        solver.retired_clauses,
        simplify.clauses_retired + engine.property_clauses_retired(),
        "retirement accounting must survive a degrade/resume cycle"
    );
}

/// Memory-pressure degradation: a ceiling the workload cannot fit under
/// yields `Unknown { reason: MemoryLimit }` (not a panic, not an OOM),
/// and raising the ceiling resumes to the reference verdict.
#[test]
fn memory_ceiling_degrades_to_unknown_and_resumes() {
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::None,
    });
    let prop = qs.p1.0 as usize;
    let bound = 12;
    let governor = ResourceGovernor::unlimited().with_memory_limit(64 * 1024);
    let mut engine = BmcEngine::new(&qs.design, opts(governor, false));
    let degraded = engine.check(prop, bound).expect("run").verdict;
    let BmcVerdict::Unknown { reason, .. } = degraded else {
        panic!("a 64 KiB arena ceiling must trip on this workload, got {degraded:?}");
    };
    assert_eq!(reason, ExhaustionReason::MemoryLimit);
    engine.set_governor(ResourceGovernor::unlimited());
    let resumed = engine.check(prop, bound).expect("resume").verdict;
    assert!(
        matches!(resumed, BmcVerdict::BoundReached),
        "P1 holds to bound 12: {resumed:?}"
    );
}

/// Cooperative cancellation: a pre-cancelled governor returns
/// immediately — before any frame is unrolled — and
/// [`ResourceGovernor::reset_cancellation`] makes the same engine
/// usable again without replacing the governor.
#[test]
fn pre_cancelled_run_returns_immediately_and_resets() {
    let mut rng = StdRng::seed_from_u64(0xFA18);
    let d = random_mem_design(&mut rng);
    let governor = ResourceGovernor::unlimited();
    governor.cancel();
    let mut engine = BmcEngine::new(&d, opts(governor.clone(), false));
    let started = Instant::now();
    let degraded = engine.check(0, 6).expect("run").verdict;
    assert!(
        matches!(
            degraded,
            BmcVerdict::Unknown {
                reason: ExhaustionReason::Cancelled,
                deepest_clean_bound: None,
            }
        ),
        "cancelled before any bound: {degraded:?}"
    );
    assert_eq!(engine.depth(), 0, "no frame may be unrolled when cancelled");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancellation latency must be bounded"
    );
    governor.reset_cancellation();
    let resumed = engine.check(0, 6).expect("resume").verdict;
    assert!(
        !resumed.is_unknown(),
        "reset_cancellation must restore the pipeline: {resumed:?}"
    );
}

/// [`VerifyOptions`] twin of [`opts`] for the k-induction engine.
fn ki_opts(governor: ResourceGovernor) -> VerifyOptions {
    VerifyOptions::default()
        .governor(governor)
        .simplify(SimplifyConfig::sweeping())
}

/// Like [`inject_and_resume`], for the k-induction engine: the degraded
/// run must stay sound and the same engine must resume to the reference
/// verdict under an unlimited governor.
fn ki_inject_and_resume(
    design: &Design,
    prop: usize,
    max_k: usize,
    reference: &BmcVerdict,
    site: FaultSite,
    n: u64,
) {
    let context = format!("kinduction fault ({site:?}, {n})");
    let governor = ResourceGovernor::unlimited().with_fault(site, n);
    let mut engine = KInduction::new(design, ki_opts(governor));
    let degraded = engine.check(prop, max_k).expect("no spurious traces");
    assert_sound(&context, reference, &degraded.verdict);
    engine.set_governor(ResourceGovernor::unlimited());
    let resumed = engine.check(prop, max_k).expect("no spurious traces");
    assert_eq!(
        verdict_shape(reference),
        verdict_shape(&resumed.verdict),
        "{context}: resume with unlimited budget must reach the reference \
         verdict, got {:?} (reference {reference:?})",
        resumed.verdict
    );
}

/// Full (site, N) sweep over the k-induction engine: the random design
/// family (counterexamples and open bounds) and a workload it proves.
/// No panic, no verdict flip, and every degraded engine resumes to the
/// reference verdict.
#[test]
fn fault_sweep_on_kinduction_never_flips_verdicts() {
    let sites = [
        FaultSite::Conflict,
        FaultSite::RetiredClause,
        FaultSite::SweepCheck,
        FaultSite::EmmComparator,
        FaultSite::Frame,
        FaultSite::Vivify,
        FaultSite::Subsume,
        FaultSite::Probe,
    ];
    let mut rng = StdRng::seed_from_u64(0xFA19);
    let d = random_mem_design(&mut rng);
    let reference = {
        let mut engine = KInduction::new(&d, ki_opts(ResourceGovernor::unlimited()));
        engine.check(0, 6).expect("reference").verdict
    };
    for site in sites {
        for n in [1, 7] {
            ki_inject_and_resume(&d, 0, 6, &reference, site, n);
        }
    }
    // A proving workload: the verdict at stake is `Proved { k }` itself.
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    let prop = fifo.no_overflow.0 as usize;
    let reference = {
        let mut engine = KInduction::new(&fifo.design, ki_opts(ResourceGovernor::unlimited()));
        engine.check(prop, 6).expect("reference").verdict
    };
    assert!(
        matches!(reference, BmcVerdict::Proved { k: 1 }),
        "fifo no_overflow is 1-inductive: {reference:?}"
    );
    for site in sites {
        for n in [1, 4] {
            ki_inject_and_resume(&fifo.design, prop, 6, &reference, site, n);
        }
    }
}

/// Step-side resumability regression (white-box): a frame-site fault
/// interrupts the k-induction loop after some inductive steps failed
/// cleanly; the resumed check must skip those step depths. The pin: the
/// step group at depth `k` holds `k + 1` clauses and is always retired,
/// so a clean close at `k = 2` with every depth queried exactly once
/// retires `1 + 2 + 3 = 6` clauses over `3` queries — across the
/// degrade/resume cycle combined. Re-running a skipped depth would
/// inflate both counts.
#[test]
fn kinduction_resume_skips_completed_step_depths() {
    let ind2 = Industry2::new(Industry2Config::small());
    let prop = ind2.invariant;
    // Reference: closes at k = 2 (see the differential suite).
    let governor = ResourceGovernor::unlimited().with_fault(FaultSite::Frame, 5);
    let mut engine = KInduction::new(&ind2.design, ki_opts(governor));
    let degraded = engine.check(prop, 10).expect("run").verdict;
    let BmcVerdict::Unknown { reason, .. } = degraded else {
        panic!("the 5th frame event must interrupt the loop, got {degraded:?}");
    };
    assert_eq!(reason, ExhaustionReason::Cancelled);
    let failed_before = engine
        .steps_failed()
        .expect("at least one step depth completed before the trip");
    engine.set_governor(ResourceGovernor::unlimited());
    let resumed = engine.check(prop, 10).expect("resume").verdict;
    assert!(
        matches!(resumed, BmcVerdict::Proved { k: 2 }),
        "the invariant is 2-inductive: {resumed:?}"
    );
    assert!(failed_before < 2, "the trip preceded the closing depth");
    assert_eq!(
        engine.step_queries(),
        3,
        "each step depth 0..=2 must be queried exactly once across the \
         degrade/resume cycle"
    );
    assert_eq!(
        engine.step_clauses_retired(),
        6,
        "step groups must retire 1 + 2 + 3 clauses; more means a skipped \
         depth was re-solved"
    );
}

/// Differential soundness of partial reductions: a fault inside the
/// rewrite or fraig preprocessing leaves a partially reduced model
/// (only proven merges committed), and checking that model must still
/// reproduce the reference verdicts — a counterexample at the same
/// depth and the proof at the same diameter.
#[test]
fn degraded_preprocessing_stays_sound() {
    let buggy = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::InvertedComparison,
    });
    let clean = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 1,
        bug: Bug::None,
    });
    let workloads = [
        ("buggy_p1", &buggy, buggy.p1.0 as usize, false),
        ("clean_p1", &clean, clean.p1.0 as usize, true),
    ];
    for (name, qs, prop, proofs) in workloads {
        let bound = qs.cycle_bound();
        let reference = {
            let mut engine =
                BmcEngine::new(&qs.design, opts(ResourceGovernor::unlimited(), proofs));
            engine.check(prop, bound).expect("reference").verdict
        };
        for (site, n) in [
            (FaultSite::RewriteIteration, 1),
            (FaultSite::FraigCheck, 1),
            (FaultSite::FraigCheck, 10),
            (FaultSite::FraigMerge, 3),
        ] {
            // The fault trips during `BmcEngine::new` preprocessing; the
            // truncated pass must leave a semantics-preserving model.
            let governor = ResourceGovernor::unlimited().with_fault(site, n);
            let mut engine = BmcEngine::new(&qs.design, opts(governor, proofs));
            engine.set_governor(ResourceGovernor::unlimited());
            let run = engine.check(prop, bound).expect("no spurious traces");
            assert_eq!(
                verdict_shape(&reference),
                verdict_shape(&run.verdict),
                "{name} ({site:?}, {n}): partial reduction changed the verdict — \
                 reference {reference:?}, got {:?}",
                run.verdict
            );
        }
    }
}
