//! Differential testing of the simplifying sink layer: BMC over random
//! designs must produce identical verdicts with simplification enabled
//! (structural hashing + SAT sweeping + lazy emission, the default) and
//! disabled (the seed's naive per-frame Tseitin encoding).
//!
//! This is the soundness harness for `emm_sat::simplify` at the system
//! level, in the style of `emm-sat/tests/differential.rs`: randomized
//! inputs, an independent reference, and exact agreement required.

use emm_aig::{Design, LatchInit, MemInit};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict, UnrollConfig, Unroller};
use emm_sat::{Simplifier, SimplifyConfig, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random memory design driven by a free-running counter and inputs
/// (mirrors the generator of `tests/engine.rs`).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let n_read = rng.random_range(1..=2usize);
    let n_write = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    for w in 0..n_write {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("wa{w}"), aw)
        } else {
            let r = d.aig.resize(&t, aw);
            let c = d.aig.const_word(rng.random_range(0..(1 << aw) as u64), aw);
            d.aig.word_xor(&r, &c)
        };
        let en = d.new_input(&format!("we{w}"));
        let data = d.new_input_word(&format!("wd{w}"), dw);
        d.add_write_port(mem, addr, en, data);
    }
    let mut read_words = Vec::new();
    for r in 0..n_read {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("ra{r}"), aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let en = if rng.random_bool(0.7) {
            emm_aig::Aig::TRUE
        } else {
            d.new_input(&format!("re{r}"))
        };
        let rd = d.add_read_port(mem, addr, en);
        read_words.push(rd);
    }
    let c = rng.random_range(0..(1u64 << dw));
    let mut bad = d.aig.eq_const(&read_words[0], c);
    if read_words.len() > 1 && rng.random_bool(0.5) {
        let nz = d.aig.redor(&read_words[1].clone());
        bad = d.aig.and(bad, nz);
    }
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// A random memory-free sequential design: latch words mixed through
/// xor/add/mux cones of inputs, with an equality property.
fn random_latch_design(rng: &mut StdRng) -> Design {
    let w = rng.random_range(2..=4usize);
    let mut d = Design::new();
    let s = d.new_latch_word("s", w, LatchInit::Zero);
    let i = d.new_input_word("i", w);
    let mixed = if rng.random_bool(0.5) {
        d.aig.word_xor(&s, &i)
    } else {
        d.aig.add(&s, &i)
    };
    let next = if rng.random_bool(0.5) {
        mixed
    } else {
        let sel = d.new_input("sel");
        let inc = d.aig.inc(&s);
        d.aig.mux_word(sel, &inc, &mixed)
    };
    d.set_next_word(&s, &next);
    let bad = d.aig.eq_const(&s, rng.random_range(1..(1u64 << w)));
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

/// Engine-level agreement on random memory designs (falsification mode).
#[test]
fn simplified_engine_agrees_with_naive_on_random_mem_designs() {
    let mut rng = StdRng::seed_from_u64(0x51313);
    for round in 0..25 {
        let d = random_mem_design(&mut rng);
        // Use the most aggressive configuration (sweeping included) so the
        // riskiest merge path is the one differentially tested.
        let mut simplified = BmcEngine::new(
            &d,
            BmcOptions {
                simplify: SimplifyConfig::sweeping(),
                ..BmcOptions::default()
            },
        );
        let simp_run = simplified.check(0, 5).expect("simplified run");
        let mut naive = BmcEngine::new(
            &d,
            BmcOptions {
                simplify: SimplifyConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let naive_run = naive.check(0, 5).expect("naive run");
        assert_eq!(
            verdict_shape(&simp_run.verdict),
            verdict_shape(&naive_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            simp_run.verdict,
            naive_run.verdict
        );
    }
}

/// Engine-level agreement with induction proofs enabled, on memory designs
/// (exercises the floating context, LFP constraints, and arbitrary-init
/// handling through the simplifying sink).
#[test]
fn simplified_proof_engine_agrees_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0x51314);
    for round in 0..15 {
        let d = if round % 2 == 0 {
            random_latch_design(&mut rng)
        } else {
            random_mem_design(&mut rng)
        };
        let mut simplified = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                ..BmcOptions::default()
            },
        );
        let simp_run = simplified.check(0, 6).expect("simplified run");
        let mut naive = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                simplify: SimplifyConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let naive_run = naive.check(0, 6).expect("naive run");
        assert_eq!(
            verdict_shape(&simp_run.verdict),
            verdict_shape(&naive_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            simp_run.verdict,
            naive_run.verdict
        );
    }
}

/// Unroller-level equisatisfiability: at every frame, the bad literal is
/// satisfiable through a `SimplifySink` exactly when it is through a bare
/// solver — and the simplified encoding never emits more clauses.
#[test]
fn simplified_unrolling_is_equisatisfiable_per_frame() {
    let mut rng = StdRng::seed_from_u64(0x51315);
    for round in 0..20 {
        let d = random_latch_design(&mut rng);
        let bad_bit = d.properties()[0].bad;
        let config = UnrollConfig {
            initial_state: true,
            ..UnrollConfig::default()
        };

        let mut plain_solver = Solver::new();
        let mut plain = Unroller::new(&d, &mut plain_solver, config.clone());

        let mut simp_solver = Solver::new();
        let mut simp = Simplifier::new(SimplifyConfig::sweeping());
        let mut sink = simp.attach(&mut simp_solver);
        let mut simplified = Unroller::new(&d, &mut sink, config);

        for k in 0..6 {
            plain.extend(&d, &mut plain_solver);
            let mut sink = simp.attach(&mut simp_solver);
            simplified.extend(&d, &mut sink);
            let bad = sink.materialize(simplified.lit(k, bad_bit));
            let expect = plain_solver.solve_with(&[plain.lit(k, bad_bit)]);
            let got = simp_solver.solve_with(&[bad]);
            assert_eq!(expect, got, "round {round} depth {k}");
            assert_ne!(got, SolveResult::Unknown, "round {round} depth {k}");
        }
        assert!(
            simp_solver.stats().original_clauses <= plain_solver.stats().original_clauses,
            "round {round}: simplification must not grow the formula"
        );
    }
}
