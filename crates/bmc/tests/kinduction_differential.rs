//! Differential tests for the k-induction engine.
//!
//! Three oracles keep [`KInduction`] honest:
//!
//! * **BDD exhaustive reachability** (`emm_bdd::check_invariant`) on
//!   small designs (aw ≤ 3): `Proved` must imply the invariant holds in
//!   every reachable state, counterexamples must agree with the exact
//!   violation depth and replay on the original design, and a
//!   `BoundReached` run must not have missed a violation inside its
//!   explored prefix.
//! * **The bounded engine** on the same designs and on the Table 1/2
//!   workloads: the two SAT engines may differ in *power* (diameter
//!   arguments vs induction) but must never contradict each other.
//! * **The design suite's own ground truth**: workloads whose properties
//!   are known-inductive must close as `Proved { k }` at the expected
//!   depth.

use emm_aig::{Aig, Design, LatchInit, MemInit};
use emm_bdd::{check_invariant, OracleVerdict, SymbolicOptions};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict, KInduction, VerifyOptions};
use emm_designs::fifo::{Fifo, FifoConfig};
use emm_designs::image_filter::{ImageFilter, ImageFilterConfig};
use emm_designs::industry2::{Industry2, Industry2Config};
use emm_designs::lifo::{Lifo, LifoConfig};
use emm_designs::quicksort::{Bug, QuickSort, QuickSortConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The random memory design family of the differential suites, extended
/// with read-modify-write feedback so the memory itself can act as state
/// (the case the write-aware LFP constraints exist for).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    let ra = if rng.random_bool(0.5) {
        d.new_input_word("ra", aw)
    } else {
        d.aig.resize(&t, aw)
    };
    let rd = d.add_read_port(mem, ra.clone(), Aig::TRUE);
    let wa = match rng.random_range(0..3u32) {
        0 => d.new_input_word("wa", aw),
        1 => d.aig.resize(&t, aw),
        _ => ra,
    };
    let we = if rng.random_bool(0.5) {
        d.new_input("we")
    } else {
        // Gated by the counter: writes stop being enabled in some frames,
        // letting pairs of frames become provably memory-equal.
        t.bit(0)
    };
    let wd = if rng.random_bool(0.5) {
        d.new_input_word("wd", dw)
    } else {
        // Read-modify-write: the memory is a counter, i.e. state beyond
        // the latches.
        d.aig.inc(&rd)
    };
    d.add_write_port(mem, wa, we, wd);
    let c = rng.random_range(0..(1u64 << dw));
    let bad = d.aig.eq_const(&rd, c);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// Checks one design against the BDD oracle and the bounded engine.
fn cross_check(d: &Design, max_k: usize, label: &str) {
    let oracle = check_invariant(d, 0, SymbolicOptions::default()).expect("oracle runs");
    let mut ki = KInduction::new(d, VerifyOptions::default());
    let ki_verdict = ki.check(0, max_k).expect("kinduction runs").verdict;
    let mut bounded = BmcEngine::new(
        d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let bounded_verdict = bounded.check(0, max_k).expect("bounded runs").verdict;

    match &ki_verdict {
        BmcVerdict::Proved { .. } => {
            assert!(
                matches!(
                    oracle,
                    OracleVerdict::Holds { .. } | OracleVerdict::Inconclusive
                ),
                "{label}: k-induction proved but oracle says {oracle:?}"
            );
            assert!(
                !matches!(bounded_verdict, BmcVerdict::Counterexample(_)),
                "{label}: k-induction proved but bounded found {bounded_verdict:?}"
            );
        }
        BmcVerdict::Counterexample(trace) => {
            let depth = trace.frames.len() - 1;
            trace
                .validate(d)
                .expect("trace replays on the original design");
            if let OracleVerdict::Violated { depth: od } = oracle {
                assert_eq!(od, depth, "{label}: violation depth disagrees with oracle");
            } else {
                assert!(
                    matches!(oracle, OracleVerdict::Inconclusive),
                    "{label}: k-induction cex at {depth} but oracle says {oracle:?}"
                );
            }
            // The bounded engine searches the same bounds in the same
            // order, so it must find a same-depth counterexample.
            match &bounded_verdict {
                BmcVerdict::Counterexample(bt) => {
                    assert_eq!(
                        bt.frames.len(),
                        trace.frames.len(),
                        "{label}: cex depths differ"
                    );
                }
                other => panic!("{label}: bounded engine returned {other:?} instead of a cex"),
            }
        }
        BmcVerdict::BoundReached => {
            // No claim — but the explored prefix must really be clean.
            if let OracleVerdict::Violated { depth } = oracle {
                assert!(
                    depth > max_k,
                    "{label}: bound reached at {max_k} but oracle violates at {depth}"
                );
            }
        }
        other => panic!("{label}: unexpected k-induction verdict {other:?}"),
    }

    // And the reverse direction: a definite bounded verdict may not be
    // contradicted by k-induction.
    if bounded_verdict.is_proof() {
        assert!(
            !matches!(ki_verdict, BmcVerdict::Counterexample(_)),
            "{label}: bounded proved but k-induction found a cex"
        );
        assert!(
            matches!(
                oracle,
                OracleVerdict::Holds { .. } | OracleVerdict::Inconclusive
            ),
            "{label}: bounded proved but oracle says {oracle:?}"
        );
    }
}

#[test]
fn kinduction_agrees_with_bdd_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0x41BD);
    for i in 0..12 {
        let d = random_mem_design(&mut rng);
        cross_check(&d, 14, &format!("random design {i}"));
    }
}

/// The regression the write-aware LFP constraints exist for: a memory
/// cell used as a counter makes the counterexample deeper than the latch
/// diameter. A latch-only simple-path constraint proves this property
/// "unreachable" at depth 2; all three engines must report the violation.
#[test]
fn memory_as_state_is_not_spuriously_proved() {
    let mut d = Design::new();
    let mem = d.add_memory("m", 1, 2, MemInit::Zero);
    let (_, x) = d.new_latch("x", LatchInit::Zero);
    d.set_next(x, !x);
    let zero_addr = d.aig.const_word(0, 1);
    let rd = d.add_read_port(mem, zero_addr.clone(), Aig::TRUE);
    let inc = d.aig.inc(&rd);
    d.add_write_port(mem, zero_addr, x, inc);
    let is3 = d.aig.eq_const(&rd, 3);
    let bad = d.aig.and(is3, !x);
    d.add_property("p", bad);
    d.check().expect("valid");

    let oracle = check_invariant(&d, 0, SymbolicOptions::default()).expect("oracle");
    assert_eq!(oracle, OracleVerdict::Violated { depth: 6 });

    let run = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    )
    .check(0, 20)
    .expect("bounded");
    match run.verdict {
        BmcVerdict::Counterexample(t) => assert_eq!(t.frames.len() - 1, 6),
        other => panic!("bounded engine returned {other:?} on the memory counter"),
    }

    let run = KInduction::new(&d, VerifyOptions::default())
        .check(0, 20)
        .expect("kinduction");
    match run.verdict {
        BmcVerdict::Counterexample(t) => {
            assert_eq!(t.frames.len() - 1, 6);
            t.validate(&d).expect("trace replays");
        }
        other => panic!("k-induction returned {other:?} on the memory counter"),
    }
}

/// Known-inductive workload properties close as `Proved { k }` at their
/// expected induction depths, and the BDD oracle confirms the small ones.
#[test]
fn workload_properties_close_by_induction() {
    let fifo = Fifo::new(FifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    let mut ki = KInduction::new(&fifo.design, VerifyOptions::default());
    let run = ki.check(fifo.no_overflow.0 as usize, 10).expect("fifo");
    assert!(
        matches!(run.verdict, BmcVerdict::Proved { k: 1 }),
        "fifo no_overflow: {:?}",
        run.verdict
    );
    let oracle = check_invariant(
        &fifo.design,
        fifo.no_overflow.0 as usize,
        SymbolicOptions::default(),
    )
    .expect("oracle");
    assert!(oracle.holds(), "fifo no_overflow oracle: {oracle:?}");

    let lifo = Lifo::new(LifoConfig {
        addr_width: 2,
        data_width: 2,
    });
    for (name, prop) in [
        ("push_pop_identity", lifo.push_pop_identity.0 as usize),
        ("no_overflow", lifo.no_overflow.0 as usize),
    ] {
        let mut ki = KInduction::new(&lifo.design, VerifyOptions::default());
        let run = ki.check(prop, 10).expect("lifo");
        assert!(
            matches!(run.verdict, BmcVerdict::Proved { k: 1 }),
            "lifo {name}: {:?}",
            run.verdict
        );
        let oracle =
            check_invariant(&lifo.design, prop, SymbolicOptions::default()).expect("oracle");
        assert!(oracle.holds(), "lifo {name} oracle: {oracle:?}");
    }
}

/// The paper's industry-design proof properties close by induction: the
/// `G(WE=0 ∨ WD=0)` invariant of Industry Design II and the unreachable
/// bank of Industry Design I. These are too large for the BDD oracle, so
/// the bounded engine arbitrates instead.
#[test]
fn industry_proof_properties_close_by_induction() {
    let ind2 = Industry2::new(Industry2Config::small());
    let mut ki = KInduction::new(&ind2.design, VerifyOptions::default());
    let run = ki.check(ind2.invariant, 10).expect("industry2");
    assert!(
        matches!(run.verdict, BmcVerdict::Proved { k: 2 }),
        "industry2 invariant: {:?}",
        run.verdict
    );

    let imf = ImageFilter::new(ImageFilterConfig::small());
    let prop = imf.unreachable[0];
    let mut ki = KInduction::new(&imf.design, VerifyOptions::default());
    let run = ki.check(prop, 10).expect("image_filter");
    assert!(
        matches!(run.verdict, BmcVerdict::Proved { k: 1 }),
        "image_filter unreachable: {:?}",
        run.verdict
    );

    // The bounded engine must agree these hold within the same window
    // (whether it closes them or merely finds no counterexample).
    for (d, p, label) in [
        (&ind2.design, ind2.invariant, "industry2"),
        (&imf.design, prop, "image_filter"),
    ] {
        let run = BmcEngine::new(
            d,
            BmcOptions {
                proofs: true,
                ..BmcOptions::default()
            },
        )
        .check(p, 10)
        .expect("bounded");
        assert!(
            !matches!(run.verdict, BmcVerdict::Counterexample(_)),
            "{label}: bounded engine contradicts the induction proof: {:?}",
            run.verdict
        );
    }
}

/// Table 1/2 agreement: on the quicksort workloads the two SAT engines
/// must coincide on counterexamples (same depth) and never contradict
/// each other on clean variants. Quicksort's recurrence diameter is far
/// beyond any feasible k, so k-induction is expected to leave the clean
/// variants open where the bounded engine's anchored diameter argument
/// closes them — that asymmetry is legitimate; opposite verdicts are not.
#[test]
fn quicksort_agreement_with_bounded_engine() {
    // Buggy variant: both engines find the same-depth counterexample.
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 4,
        data_width: 3,
        bug: Bug::InvertedComparison,
    });
    {
        let (name, prop) = ("p1", qs.p1.0 as usize);
        let bound = qs.cycle_bound();
        let bounded = BmcEngine::new(&qs.design, BmcOptions::default())
            .check(prop, bound)
            .expect("bounded")
            .verdict;
        let ki = KInduction::new(&qs.design, VerifyOptions::default())
            .check(prop, bound)
            .expect("kinduction")
            .verdict;
        match (&bounded, &ki) {
            (BmcVerdict::Counterexample(a), BmcVerdict::Counterexample(b)) => {
                assert_eq!(a.frames.len(), b.frames.len(), "buggy quicksort {name}");
                b.validate(&qs.design).expect("trace replays");
            }
            other => panic!("buggy quicksort {name}: unexpected verdict pair {other:?}"),
        }
    }

    // Clean variant: k-induction must not contradict the bounded engine
    // within a shared modest window (neither engine is expected to close
    // the property this shallow; both must simply report clean bounds).
    let qs = QuickSort::new(QuickSortConfig {
        n: 3,
        addr_width: 3,
        data_width: 2,
        bug: Bug::None,
    });
    let ki = KInduction::new(&qs.design, VerifyOptions::default())
        .check(qs.p1.0 as usize, 10)
        .expect("kinduction")
        .verdict;
    assert!(
        !matches!(ki, BmcVerdict::Counterexample(_)),
        "clean quicksort refuted by k-induction: {ki:?}"
    );
}
