//! Differential tests of the parallel verification paths: the batched
//! fraig sweep, the parallel PBA dispatch, and the verification server
//! must produce **bit-identical** results at every pool worker count —
//! with and without deterministic fault injection — because every
//! parallel schedule commits its merges/results in a canonical order
//! that does not depend on thread interleaving.
//!
//! The CI `parallel` matrix leg runs this suite under `EMM_WORKERS=1`
//! and `EMM_WORKERS=4`; the suite itself additionally sweeps explicit
//! worker counts so a single run covers 1/2/4.

use std::sync::Arc;

use emm_aig::{fraig_design_pooled, Design, FraigConfig, LatchInit};
use emm_bmc::pba::{self, PbaConfig};
use emm_bmc::{VerificationServer, VerifyBudget, VerifyOptions, VerifyRequest};
use emm_core::Pool;
use emm_sat::{FaultSite, ResourceGovernor};

/// A counter design with redundant logic (fraig fodder) and a mix of
/// reachable and unreachable properties.
fn redundant_counter() -> Design {
    let mut d = Design::new();
    let count = d.new_latch_word("count", 4, LatchInit::Zero);
    let inc_a = d.aig.inc(&count);
    // A structurally different duplicate of the same increment: an
    // adder of the constant 1, giving fraig equivalent cones to merge.
    let one = d.aig.const_word(1, 4);
    let inc_b = d.aig.add(&count, &one);
    d.set_next_word(&count, &inc_a);
    let hit9_a = d.aig.eq_const(&count, 9);
    let hit9_b = d.aig.eq_const(&inc_b, 10);
    let both = d.aig.and(hit9_a, hit9_b);
    d.add_property("reaches9", both);
    let at8 = d.aig.eq_const(&count, 8);
    let inc7 = d.aig.eq_const(&inc_b, 7);
    let never = d.aig.and(at8, inc7);
    d.add_property("contradiction", never);
    d.check().expect("well-formed design");
    d
}

/// A memory-backed design so PBA has selectors to reason about.
fn memory_design() -> Design {
    let mut d = Design::new();
    let mem = d.add_memory("buf", 3, 4, emm_aig::MemInit::Zero);
    let ptr = d.new_latch_word("ptr", 3, LatchInit::Zero);
    let next = d.aig.inc(&ptr);
    d.set_next_word(&ptr, &next);
    let data = d.new_input_word("data", 4);
    let t = emm_aig::Aig::TRUE;
    d.add_write_port(mem, ptr.clone(), t, data);
    let rd = d.add_read_port(mem, ptr.clone(), t);
    let bad = d.aig.eq_const(&rd, 0xF);
    d.add_property("read_f", bad);
    let unrelated = d.new_latch_word("tick", 2, LatchInit::Zero);
    let tnext = d.aig.inc(&unrelated);
    d.set_next_word(&unrelated, &tnext);
    let stuck = d.aig.eq_const(&unrelated, 2);
    d.add_property("tick2", stuck);
    d.check().expect("well-formed design");
    d
}

#[test]
fn pooled_fraig_is_bit_identical_across_worker_counts() {
    let base = redundant_counter();
    let governor = ResourceGovernor::unlimited();
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut model = base.clone();
        let pool = Pool::new(workers);
        let stats = fraig_design_pooled(&mut model, &FraigConfig::default(), &governor, &pool);
        outcomes.push((stats, model.num_gates(), format!("{:?}", model.stats())));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

#[test]
fn pooled_fraig_fault_injection_is_bit_identical() {
    let base = redundant_counter();
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let governor = ResourceGovernor::unlimited().with_fault(FaultSite::FraigCheck, 2);
        let mut model = base.clone();
        let pool = Pool::new(workers);
        let stats = fraig_design_pooled(&mut model, &FraigConfig::default(), &governor, &pool);
        outcomes.push((stats, model.num_gates()));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

/// Flattens a discovery result into a comparable record.
fn discovery_key(d: &pba::PbaDiscovery) -> (Vec<bool>, Vec<bool>, Option<usize>, usize, bool) {
    (
        d.abstraction.kept_latches.clone(),
        d.abstraction.kept_memories.clone(),
        d.stable_at,
        d.depth_reached,
        d.found_counterexample,
    )
}

#[test]
fn parallel_pba_discovery_matches_across_worker_counts() {
    let design = memory_design();
    let props = [0usize, 1];
    let config = PbaConfig::default().stability_depth(3).max_depth(12);
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = Pool::new(workers);
        let results = pba::discover_all(&design, &props, &config, &pool).expect("discovery");
        outcomes.push(results.iter().map(discovery_key).collect::<Vec<_>>());
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

#[test]
fn parallel_pba_fault_injection_is_deterministic() {
    let design = memory_design();
    let props = [0usize, 1];
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        // Each job forks the governor, so the fault counts each job's
        // own frames — the trip point cannot depend on scheduling.
        let config = PbaConfig::default()
            .stability_depth(3)
            .max_depth(12)
            .governor(ResourceGovernor::unlimited().with_fault(FaultSite::Frame, 4));
        let pool = Pool::new(workers);
        let results = pba::discover_all(&design, &props, &config, &pool).expect("discovery");
        outcomes.push(results.iter().map(discovery_key).collect::<Vec<_>>());
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

/// Flattens server responses into comparable records. Traces carry no
/// `PartialEq`, so verdicts are compared through their `Debug` form.
fn response_keys(responses: &[emm_bmc::VerifyResponse]) -> Vec<(usize, String, usize, bool)> {
    responses
        .iter()
        .map(|r| {
            (
                r.id,
                format!("{:?}", r.verdict),
                r.depth_reached,
                r.error.is_some(),
            )
        })
        .collect()
}

fn submit_batch(server: &mut VerificationServer, governor: &ResourceGovernor) {
    let counter = Arc::new(redundant_counter());
    let memory = Arc::new(memory_design());
    let options = VerifyOptions::default().governor(governor.clone());
    for (design, property, max_depth) in [
        (Arc::clone(&counter), 0usize, 16usize),
        (Arc::clone(&counter), 1, 8),
        (Arc::clone(&memory), 0, 10),
        (Arc::clone(&memory), 1, 10),
        (counter, 0, 6),
    ] {
        server.submit(VerifyRequest {
            design,
            property,
            budget: VerifyBudget {
                max_depth,
                ..VerifyBudget::default()
            },
            options: options.clone(),
        });
    }
}

#[test]
fn server_responses_are_bit_identical_across_worker_counts() {
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut server = VerificationServer::new(workers);
        submit_batch(&mut server, &ResourceGovernor::unlimited());
        let responses = server.run();
        assert_eq!(server.stats().jobs, 5);
        assert_eq!(server.stats().workers, workers);
        outcomes.push(response_keys(&responses));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

#[test]
fn server_fault_injection_is_deterministic() {
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let governor = ResourceGovernor::unlimited().with_fault(FaultSite::Frame, 5);
        let mut server = VerificationServer::new(workers);
        submit_batch(&mut server, &governor);
        let responses = server.run();
        outcomes.push(response_keys(&responses));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
}

#[test]
fn server_matches_a_direct_engine() {
    let design = Arc::new(redundant_counter());
    let mut server = VerificationServer::new(2);
    let id = server.submit(VerifyRequest {
        design: Arc::clone(&design),
        property: 0,
        budget: VerifyBudget {
            max_depth: 16,
            ..VerifyBudget::default()
        },
        options: VerifyOptions::default(),
    });
    let responses = server.run();
    let mut engine = emm_bmc::BmcEngine::new(&design, VerifyOptions::default());
    let direct = engine.check(0, 16).expect("direct check");
    assert_eq!(responses[id].id, id);
    assert_eq!(
        format!("{:?}", responses[id].verdict),
        format!("{:?}", direct.verdict)
    );
}

#[test]
fn server_kinduction_matches_direct_engine_across_worker_counts() {
    // The server dispatches on ProofEngine like ModelSource::verify does;
    // k-induction jobs must be bit-identical at every worker count and
    // must agree with a direct KInduction run job-for-job.
    let counter = Arc::new(redundant_counter());
    let memory = Arc::new(memory_design());
    let options = VerifyOptions::default().proof_engine(emm_bmc::ProofEngine::KInduction);
    let jobs: Vec<(Arc<Design>, usize, usize)> = vec![
        (Arc::clone(&counter), 0, 16),
        (Arc::clone(&counter), 1, 8),
        (Arc::clone(&memory), 0, 10),
        (Arc::clone(&memory), 1, 10),
    ];
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut server = VerificationServer::new(workers);
        for (design, property, max_depth) in &jobs {
            server.submit(VerifyRequest {
                design: Arc::clone(design),
                property: *property,
                budget: VerifyBudget {
                    max_depth: *max_depth,
                    ..VerifyBudget::default()
                },
                options: options.clone(),
            });
        }
        outcomes.push(response_keys(&server.run()));
    }
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 workers diverged");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 4 workers diverged");
    for (i, (design, property, max_depth)) in jobs.iter().enumerate() {
        let direct = emm_bmc::KInduction::new(design.as_ref(), options.clone())
            .check(*property, *max_depth)
            .expect("direct k-induction");
        assert_eq!(
            outcomes[0][i].1,
            format!("{:?}", direct.verdict),
            "job {i}: server k-induction verdict diverged from the direct engine"
        );
        assert_eq!(
            outcomes[0][i].2, direct.depth_reached,
            "job {i}: depth reached diverged"
        );
    }
}

#[test]
fn env_sized_pool_matches_explicit_pools() {
    // Under the CI matrix EMM_WORKERS is 1 or 4; either must agree with
    // an explicit single-worker pool on the fraig result.
    let base = redundant_counter();
    let governor = ResourceGovernor::unlimited();
    let mut reference = base.clone();
    let expected = fraig_design_pooled(
        &mut reference,
        &FraigConfig::default(),
        &governor,
        &Pool::new(1),
    );
    let mut model = base.clone();
    let got = fraig_design_pooled(
        &mut model,
        &FraigConfig::default(),
        &governor,
        &Pool::from_env(),
    );
    assert_eq!(expected, got);
    assert_eq!(reference.num_gates(), model.num_gates());
}
