//! Differential testing of the AIG-level fraig pass: BMC over random
//! designs must produce identical verdicts with fraiging enabled (the
//! default — the engine encodes a functionally reduced rewrite of the
//! design) and disabled (the unreduced netlist).
//!
//! This is the system-level soundness harness for `emm_aig::fraig`, in the
//! style of `simplify_differential.rs`: randomized memory and latch
//! designs, exact verdict agreement required, and — because
//! `validate_traces` stays on — every counterexample found on the reduced
//! model is re-simulated against the *original* design, so an unsound
//! merge surfaces as a hard `SpuriousTrace` error, not just a flaky
//! disagreement.

use emm_aig::{fraig_design, Design, FraigConfig, LatchInit, MemInit};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random memory design driven by a free-running counter and inputs
/// (mirrors the generator of `simplify_differential.rs`).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let n_read = rng.random_range(1..=2usize);
    let n_write = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    for w in 0..n_write {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("wa{w}"), aw)
        } else {
            let r = d.aig.resize(&t, aw);
            let c = d.aig.const_word(rng.random_range(0..(1 << aw) as u64), aw);
            d.aig.word_xor(&r, &c)
        };
        let en = d.new_input(&format!("we{w}"));
        let data = d.new_input_word(&format!("wd{w}"), dw);
        d.add_write_port(mem, addr, en, data);
    }
    let mut read_words = Vec::new();
    for r in 0..n_read {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("ra{r}"), aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let en = if rng.random_bool(0.7) {
            emm_aig::Aig::TRUE
        } else {
            d.new_input(&format!("re{r}"))
        };
        let rd = d.add_read_port(mem, addr, en);
        read_words.push(rd);
    }
    let c = rng.random_range(0..(1u64 << dw));
    let mut bad = d.aig.eq_const(&read_words[0], c);
    if read_words.len() > 1 && rng.random_bool(0.5) {
        let nz = d.aig.redor(&read_words[1].clone());
        bad = d.aig.and(bad, nz);
    }
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// A random memory-free sequential design with deliberately redundant
/// cones (the same mix built twice through different structure), so the
/// fraig pass has real merges to find.
fn random_latch_design(rng: &mut StdRng) -> Design {
    let w = rng.random_range(2..=4usize);
    let mut d = Design::new();
    let s = d.new_latch_word("s", w, LatchInit::Zero);
    let i = d.new_input_word("i", w);
    let mixed = if rng.random_bool(0.5) {
        d.aig.word_xor(&s, &i)
    } else {
        d.aig.add(&s, &i)
    };
    let next = if rng.random_bool(0.5) {
        mixed.clone()
    } else {
        let sel = d.new_input("sel");
        let inc = d.aig.inc(&s);
        d.aig.mux_word(sel, &inc, &mixed)
    };
    d.set_next_word(&s, &next);
    // Redundant property cone: equality against a constant, built both as
    // an XNOR tree and as a negated XOR-reduction.
    let target = rng.random_range(1..(1u64 << w));
    let bad1 = d.aig.eq_const(&s, target);
    let konst = d.aig.const_word(target, w);
    let diff = d.aig.word_xor(&s, &konst);
    let any = d.aig.redor(&diff);
    let bad = d.aig.and(bad1, !any);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

/// Engine-level agreement on random memory designs (falsification mode);
/// traces from the fraiged model must validate on the original design.
#[test]
fn fraig_engine_agrees_with_unreduced_on_random_mem_designs() {
    let mut rng = StdRng::seed_from_u64(0xF4A16);
    for round in 0..25 {
        let d = random_mem_design(&mut rng);
        let mut fraiged = BmcEngine::new(&d, BmcOptions::default());
        let fraig_run = fraiged.check(0, 5).expect("fraiged run");
        let mut plain = BmcEngine::new(
            &d,
            BmcOptions {
                fraig: FraigConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let plain_run = plain.check(0, 5).expect("plain run");
        assert_eq!(
            verdict_shape(&fraig_run.verdict),
            verdict_shape(&plain_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            fraig_run.verdict,
            plain_run.verdict
        );
        let stats = fraiged.fraig_stats().expect("pass ran");
        assert!(stats.ands_after <= stats.ands_before, "round {round}");
    }
}

/// Agreement with induction proofs enabled (floating context included).
#[test]
fn fraig_proof_engine_agrees_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0xF4A17);
    for round in 0..15 {
        let d = if round % 2 == 0 {
            random_latch_design(&mut rng)
        } else {
            random_mem_design(&mut rng)
        };
        let mut fraiged = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                ..BmcOptions::default()
            },
        );
        let fraig_run = fraiged.check(0, 6).expect("fraiged run");
        let mut plain = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                fraig: FraigConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let plain_run = plain.check(0, 6).expect("plain run");
        assert_eq!(
            verdict_shape(&fraig_run.verdict),
            verdict_shape(&plain_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            fraig_run.verdict,
            plain_run.verdict
        );
    }
}

/// The pass itself must find merges on the redundant latch designs, and
/// the reduced model must cost the engine no more gates than the original
/// (per frame, every frame).
#[test]
fn fraig_shrinks_redundant_designs() {
    let mut rng = StdRng::seed_from_u64(0xF4A18);
    let mut total_removed = 0usize;
    for _ in 0..10 {
        let mut d = random_latch_design(&mut rng);
        let before = d.num_gates();
        let stats = fraig_design(&mut d, &FraigConfig::default());
        d.check().expect("rewrite keeps the design well-formed");
        assert_eq!(stats.ands_before, before);
        assert_eq!(stats.ands_after, d.num_gates());
        assert!(d.num_gates() <= before);
        total_removed += stats.ands_removed();
    }
    assert!(
        total_removed > 0,
        "the redundant comparator cones must yield at least one merge"
    );
}
