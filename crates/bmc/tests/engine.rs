//! End-to-end tests of the BMC engine: proofs, counterexamples, EMM vs
//! explicit-model agreement, arbitrary initial memory state, and PBA.

use emm_aig::{Design, LatchInit, MemInit, Word};
use emm_bmc::{pba, BmcEngine, BmcOptions, BmcVerdict, ProofKind};
use emm_core::{explicit_model, EmmOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A counter that wraps at `modulo`; property: `count != bad_at`.
fn mod_counter(width: usize, modulo: u64, bad_at: u64) -> Design {
    let mut d = Design::new();
    let count = d.new_latch_word("count", width, LatchInit::Zero);
    let wrap = d.aig.eq_const(&count, modulo - 1);
    let inc = d.aig.inc(&count);
    let zero = d.aig.const_word(0, width);
    let next = d.aig.mux_word(wrap, &zero, &inc);
    d.set_next_word(&count, &next);
    let bad = d.aig.eq_const(&count, bad_at);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

#[test]
fn counterexample_found_at_exact_depth() {
    let d = mod_counter(4, 12, 7);
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(0, 20).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            assert_eq!(
                trace.depth(),
                8,
                "count reaches 7 after 7 steps (frames 0..=7)"
            );
            trace.validate(&d).expect("trace must replay");
        }
        other => panic!("expected CE, got {other:?}"),
    }
}

#[test]
fn unreachable_state_proved_by_forward_diameter() {
    // Counter wraps at 5; 9 is unreachable. Diameter is 5.
    let d = mod_counter(4, 5, 9);
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 30).expect("run");
    match run.verdict {
        BmcVerdict::Proof { kind: _, depth } => {
            assert!(
                depth <= 5,
                "proof depth {depth} should be at most the diameter"
            );
        }
        other => panic!("expected proof, got {other:?}"),
    }
}

#[test]
fn inductive_invariant_proved_backward() {
    // Two toggles in lockstep: a == b is inductive; forward diameter is 2.
    let mut d = Design::new();
    let (_, a) = d.new_latch("a", LatchInit::Zero);
    let (_, b) = d.new_latch("b", LatchInit::Zero);
    d.set_next(a, !a);
    d.set_next(b, !b);
    let bad = d.aig.xor(a, b);
    d.add_property("lockstep", bad);
    d.check().expect("valid");
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 10).expect("run");
    match run.verdict {
        BmcVerdict::Proof { kind, depth } => {
            assert_eq!(kind, ProofKind::BackwardInduction, "induction closes first");
            assert!(depth <= 1);
        }
        other => panic!("expected proof, got {other:?}"),
    }
}

#[test]
fn bound_reached_when_nothing_concludes() {
    // An 8-bit free-running counter: diameter 256, bad at 200.
    let d = mod_counter(8, 256, 200);
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(0, 10).expect("run");
    assert!(matches!(run.verdict, BmcVerdict::BoundReached));
    assert_eq!(run.depth_reached, 10);
}

/// A pipeline that writes a constant to memory and reads it back later;
/// the "bad" event is observing the value at the read port.
fn write_then_read_design(init: MemInit) -> Design {
    let mut d = Design::new();
    let mem = d.add_memory("m", 3, 4, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    // Write 0xA to address 5 at cycle 1.
    let at1 = d.aig.eq_const(&t, 1);
    let waddr = d.aig.const_word(5, 3);
    let wdata = d.aig.const_word(0xA, 4);
    d.add_write_port(mem, waddr, at1, wdata);
    // Read address 5 from cycle 3 on.
    let c3 = d.aig.const_word(3, 3);
    let re = d.aig.ule(&c3, &t);
    let raddr = d.aig.const_word(5, 3);
    let rd = d.add_read_port(mem, raddr, re);
    let hit = d.aig.eq_const(&rd, 0xA);
    let bad = d.aig.and(hit, re);
    d.add_property("sees_0xA", bad);
    d.check().expect("valid");
    d
}

#[test]
fn emm_finds_memory_witness_and_validates() {
    let d = write_then_read_design(MemInit::Zero);
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(0, 10).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            assert_eq!(trace.depth(), 4, "witness at cycle 3 (frames 0..=3)");
            trace.validate(&d).expect("replay");
        }
        other => panic!("expected CE, got {other:?}"),
    }
}

#[test]
fn arbitrary_init_witness_carries_memory_seeds() {
    // Reading an arbitrary-init memory without writing: the witness for
    // "read 0xC at address 2" must seed the memory accordingly.
    let mut d = Design::new();
    let mem = d.add_memory("m", 3, 4, MemInit::Arbitrary);
    let raddr = d.aig.const_word(2, 3);
    let rd = d.add_read_port(mem, raddr, emm_aig::Aig::TRUE);
    let bad = d.aig.eq_const(&rd, 0xC);
    d.add_property("p", bad);
    d.check().expect("valid");
    let mut engine = BmcEngine::new(&d, BmcOptions::default());
    let run = engine.check(0, 4).expect("run");
    match run.verdict {
        BmcVerdict::Counterexample(trace) => {
            assert_eq!(trace.memory_seeds[0], vec![(2, 0xC)]);
            trace.validate(&d).expect("replay");
        }
        other => panic!("expected CE, got {other:?}"),
    }
}

/// The paper's Section 4.2 point: without the eq. (6) consistency
/// constraints, two reads of the same unwritten location may disagree and a
/// proof that depends on their equality fails.
#[test]
fn init_consistency_is_required_for_proofs() {
    // Design: read address 0 through two ports every cycle; bad = values
    // differ. With eq. (6) this is unreachable and provable; without it the
    // model has the extra behavior and a (spurious) witness appears.
    let mut d = Design::new();
    let mem = d.add_memory("m", 2, 3, MemInit::Arbitrary);
    let addr = d.aig.const_word(0, 2);
    let r0 = d.add_read_port(mem, addr.clone(), emm_aig::Aig::TRUE);
    let r1 = d.add_read_port(mem, addr, emm_aig::Aig::TRUE);
    let eq = d.aig.eq_word(&r0, &r1);
    d.add_property("reads_disagree", !eq);
    d.check().expect("valid");

    // With eq. (6): proof.
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 6).expect("run");
    assert!(
        run.verdict.is_proof(),
        "eq. (6) makes the equality provable: {:?}",
        run.verdict
    );

    // Without eq. (6): the spurious behavior is reachable.
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: false,
            validate_traces: false, // the trace is spurious by construction
            emm: EmmOptions {
                skip_init_consistency: true,
                ..EmmOptions::default()
            },
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 6).expect("run");
    assert!(
        run.verdict.is_counterexample(),
        "without eq. (6) the proof must fail: {:?}",
        run.verdict
    );
}

// ---------------------------------------------------------------------
// Randomized EMM vs Explicit agreement
// ---------------------------------------------------------------------

/// A random memory design driven by a free-running counter and inputs.
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let n_read = rng.random_range(1..=2usize);
    let n_write = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    for w in 0..n_write {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("wa{w}"), aw)
        } else {
            let r = d.aig.resize(&t, aw);
            let c = d.aig.const_word(rng.random_range(0..(1 << aw) as u64), aw);
            d.aig.word_xor(&r, &c)
        };
        let en = d.new_input(&format!("we{w}"));
        let data = d.new_input_word(&format!("wd{w}"), dw);
        d.add_write_port(mem, addr, en, data);
    }
    let mut read_words = Vec::new();
    for r in 0..n_read {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("ra{r}"), aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let en = if rng.random_bool(0.7) {
            emm_aig::Aig::TRUE
        } else {
            d.new_input(&format!("re{r}"))
        };
        let rd = d.add_read_port(mem, addr, en);
        read_words.push(rd);
    }
    // Property: first read equals a random constant (optionally tied to a
    // second read being nonzero).
    let c = rng.random_range(0..(1u64 << dw));
    let mut bad = d.aig.eq_const(&read_words[0], c);
    if read_words.len() > 1 && rng.random_bool(0.5) {
        let nz = d.aig.redor(&read_words[1].clone());
        bad = d.aig.and(bad, nz);
    }
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

#[test]
fn emm_agrees_with_explicit_model_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0xD47E2005);
    let max_depth = 5;
    let mut ce_count = 0;
    let mut agree_bound = 0;
    for round in 0..40 {
        let d = random_mem_design(&mut rng);
        let (expl, _) = explicit_model(&d);

        let mut emm_engine = BmcEngine::new(&d, BmcOptions::default());
        let emm_run = emm_engine.check(0, max_depth).expect("emm run");

        let mut expl_engine = BmcEngine::new(&expl, BmcOptions::default());
        let expl_run = expl_engine.check(0, max_depth).expect("explicit run");

        match (&emm_run.verdict, &expl_run.verdict) {
            (BmcVerdict::Counterexample(a), BmcVerdict::Counterexample(b)) => {
                assert_eq!(a.depth(), b.depth(), "round {round}: CE depth mismatch");
                a.validate(&d)
                    .expect("EMM trace replays on the original design");
                b.validate(&expl)
                    .expect("explicit trace replays on the explicit design");
                ce_count += 1;
            }
            (BmcVerdict::BoundReached, BmcVerdict::BoundReached) => agree_bound += 1,
            (x, y) => panic!("round {round}: verdict mismatch: EMM={x:?} explicit={y:?}"),
        }
    }
    assert!(
        ce_count >= 10,
        "want a healthy mix of outcomes, got {ce_count} CEs"
    );
    assert!(
        agree_bound >= 1,
        "want some unreachable rounds, got {agree_bound}"
    );
}

// ---------------------------------------------------------------------
// Proof-based abstraction
// ---------------------------------------------------------------------

/// Two independent subsystems: a relevant mod-4 counter and an irrelevant
/// 6-bit counter plus an irrelevant memory. The property only concerns the
/// small counter.
fn two_subsystem_design() -> Design {
    let mut d = Design::new();
    // Relevant: mod-4 counter, property says it never shows 7 (true: 3 bits
    // wide but wraps at 4).
    let small = d.new_latch_word("small", 3, LatchInit::Zero);
    let wrap = d.aig.eq_const(&small, 3);
    let inc = d.aig.inc(&small);
    let zero = d.aig.const_word(0, 3);
    let next = d.aig.mux_word(wrap, &zero, &inc);
    d.set_next_word(&small, &next);
    // Irrelevant: 6-bit counter.
    let big = d.new_latch_word("big", 6, LatchInit::Zero);
    let nb = d.aig.inc(&big);
    d.set_next_word(&big, &nb);
    // Irrelevant memory written/read by the big counter.
    let mem = d.add_memory("junk", 3, 4, MemInit::Zero);
    let waddr = d.aig.resize(&big, 3);
    let wdata = d.aig.resize(&big, 4);
    d.add_write_port(mem, waddr.clone(), emm_aig::Aig::TRUE, wdata);
    let _rd = d.add_read_port(mem, waddr, emm_aig::Aig::TRUE);
    let bad = d.aig.eq_const(&small, 7);
    d.add_property("small_ne_7", bad);
    d.check().expect("valid");
    d
}

#[test]
fn pba_discovery_drops_irrelevant_state() {
    let d = two_subsystem_design();
    let config = pba::PbaConfig {
        stability_depth: 4,
        max_depth: 30,
        ..pba::PbaConfig::default()
    };
    let disc = pba::discover(&d, 0, &config).expect("discovery");
    assert!(!disc.found_counterexample);
    assert!(disc.stable_at.is_some(), "reasons should stabilize");
    let kept = &disc.abstraction;
    // The three bits of the small counter must be kept...
    for i in 0..3 {
        assert!(kept.kept_latches[i], "small counter bit {i} is a reason");
    }
    // ...and the big counter must not be.
    for i in 3..9 {
        assert!(
            !kept.kept_latches[i],
            "big counter bit {} wrongly kept",
            i - 3
        );
    }
    // The junk memory is not needed for the refutations.
    assert_eq!(
        kept.num_kept_memories(),
        0,
        "memory should be abstracted away"
    );

    // The property is still provable on the reduced model.
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            abstraction: Some(kept.clone()),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 20).expect("run");
    assert!(
        run.verdict.is_proof(),
        "reduced-model proof: {:?}",
        run.verdict
    );
}

#[test]
fn abstraction_of_relevant_state_breaks_the_proof() {
    // Sanity check in the other direction: freeing the *relevant* latches
    // must make the property falsifiable on the abstract model.
    let d = two_subsystem_design();
    let mut kept_latches = vec![true; d.num_latches()];
    for bit in kept_latches.iter_mut().take(3) {
        *bit = false; // free the small counter
    }
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            abstraction: Some(emm_bmc::AbstractionSpec {
                kept_latches,
                kept_memories: vec![true],
            }),
            validate_traces: false,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 5).expect("run");
    assert!(run.verdict.is_counterexample(), "{:?}", run.verdict);
}

#[test]
fn iterative_abstraction_reaches_fixpoint() {
    let d = two_subsystem_design();
    let config = pba::PbaConfig {
        stability_depth: 3,
        max_depth: 25,
        ..pba::PbaConfig::default()
    };
    let disc = pba::iterative_abstraction(&d, 0, &config, 3).expect("iterate");
    assert!(disc.abstraction.num_kept_latches() <= 3);
    assert_eq!(disc.abstraction.num_kept_memories(), 0);
}

#[test]
fn multiport_memory_verified_end_to_end() {
    // 1 write port, 3 read ports (the Industry II shape, tiny widths): all
    // reads of the same written address agree.
    let mut d = Design::new();
    let mem = d.add_memory("m", 3, 4, MemInit::Zero);
    let t = d.new_latch_word("t", 2, LatchInit::Zero);
    let nt = d.aig.inc(&t);
    d.set_next_word(&t, &nt);
    let at0 = d.aig.eq_const(&t, 0);
    let waddr = d.aig.const_word(6, 3);
    let wdata = d.aig.const_word(0x9, 4);
    d.add_write_port(mem, waddr.clone(), at0, wdata);
    let re = d.aig.eq_const(&t, 2);
    let mut reads: Vec<Word> = Vec::new();
    for _ in 0..3 {
        reads.push(d.add_read_port(mem, waddr.clone(), re));
    }
    // Bad: at read time, some port disagrees with 0x9.
    let mut any_bad = emm_aig::Aig::FALSE;
    for r in &reads {
        let ok = d.aig.eq_const(r, 0x9);
        any_bad = d.aig.or(any_bad, !ok);
    }
    let bad = d.aig.and(any_bad, re);
    d.add_property("ports_agree", bad);
    d.check().expect("valid");
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 12).expect("run");
    assert!(run.verdict.is_proof(), "{:?}", run.verdict);
}

#[test]
fn wall_limit_yields_unknown_deadline() {
    let d = mod_counter(8, 256, 200);
    let mut engine = BmcEngine::new(
        &d,
        BmcOptions {
            proofs: true,
            wall_limit: Some(std::time::Duration::from_millis(0)),
            ..BmcOptions::default()
        },
    );
    let run = engine.check(0, 300).expect("run");
    assert!(
        matches!(
            run.verdict,
            BmcVerdict::Unknown {
                reason: emm_sat::ExhaustionReason::Deadline,
                deepest_clean_bound: None,
            }
        ),
        "{:?}",
        run.verdict
    );
}
