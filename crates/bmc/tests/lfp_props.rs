//! Property-based tests for the simple-path (LFP) constraint encoding.
//!
//! The contract under test: with the activation literal assumed, the
//! constraints are unsatisfiable **iff** two frames are *provably* the
//! same system state — equal kept-latch valuations with no enabled
//! memory write in any frame between them. Frames forced equal by
//! simulation must violate the uniqueness clauses; pairwise-distinct
//! (or write-separated) frames must satisfy them.

use emm_aig::{Design, LatchInit, MemInit, Simulator};
use emm_bmc::{LfpBuilder, UnrollConfig, Unroller};
use emm_sat::{Lit, SolveResult, Solver};
use proptest::prelude::*;

/// The conservative equality the encoding implements: frames `i < j`
/// collide iff their states match and no write fired in frames `i..j`.
fn expect_unsat(states: &[u64], writes: &[bool]) -> bool {
    for i in 0..states.len() {
        for j in i + 1..states.len() {
            if states[i] == states[j] && !writes[i..j].iter().any(|&w| w) {
                return true;
            }
        }
    }
    false
}

/// A 3-bit counter that increments only when its enable input is high,
/// writing its value to a memory when the write input is high. The
/// latch trajectory and the write-enable sequence are both fully
/// determined by the forced input sequence. Returns the design plus the
/// `en` and `we` input bits.
fn gated_design() -> (Design, emm_aig::Bit, emm_aig::Bit) {
    let mut d = Design::new();
    let mem = d.add_memory("m", 2, 2, MemInit::Zero);
    let count = d.new_latch_word("count", 3, LatchInit::Zero);
    let en = d.new_input("en");
    let we = d.new_input("we");
    let wd = d.new_input_word("wd", 2);
    let inc = d.aig.inc(&count);
    let next = d.aig.mux_word(en, &inc, &count);
    d.set_next_word(&count, &next);
    let wa = d.aig.resize(&count, 2);
    d.add_write_port(mem, wa, we, wd);
    let ra = d.new_input_word("ra", 2);
    let rd = d.add_read_port(mem, ra, emm_aig::Aig::TRUE);
    let bad = d.aig.eq_const(&rd, 3);
    d.add_property("p", bad);
    d.check().expect("valid");
    (d, en, we)
}

/// The latch state as a packed integer.
fn sim_state(sim: &Simulator, num_latches: usize) -> u64 {
    (0..num_latches).fold(0u64, |acc, i| acc | ((sim.latch(i) as u64) << i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encoding-level check against a reference model: force every frame
    /// literal to a chosen valuation and every write literal to a chosen
    /// flag; satisfiability must match the conservative-equality oracle.
    #[test]
    fn lfp_matches_conservative_state_equality(
        width in 1usize..=3,
        raw_states in proptest::collection::vec(0u64..8, 2..8usize),
        writes in proptest::collection::vec(any::<bool>(), 8usize),
    ) {
        let mask = (1u64 << width) - 1;
        let states: Vec<u64> = raw_states.iter().map(|s| s & mask).collect();
        let mut s = Solver::new();
        let mut lfp = LfpBuilder::new(&mut s, width, None);
        let mut assumptions = vec![lfp.activation()];
        for (f, &st) in states.iter().enumerate() {
            let latch_lits: Vec<Lit> = (0..width).map(|_| s.new_var().positive()).collect();
            for (b, &l) in latch_lits.iter().enumerate() {
                assumptions.push(if (st >> b) & 1 == 1 { l } else { !l });
            }
            let w = s.new_var().positive();
            assumptions.push(if writes[f] { w } else { !w });
            lfp.add_frame(&mut s, &latch_lits, &[w]);
        }
        let expected = if expect_unsat(&states, &writes[..states.len()]) {
            SolveResult::Unsat
        } else {
            SolveResult::Sat
        };
        prop_assert_eq!(s.solve_with(&assumptions), expected);
    }

    /// Design-level check: unroll the gated counter floating (no initial
    /// state), force frame 0 and the input sequence to match a concrete
    /// simulation, and compare LFP satisfiability with the simulated
    /// trajectory. States forced equal by simulation with no intervening
    /// write must violate the uniqueness clauses; distinct or
    /// write-separated ones must satisfy them.
    #[test]
    fn simulated_paths_decide_lfp(
        steps in proptest::collection::vec((any::<bool>(), any::<bool>()), 2..9usize),
    ) {
        let (d, en_bit, we_bit) = gated_design();
        // Reference trajectory. Free inputs in order: en, we, wd[2], ra[2].
        let mut sim = Simulator::new(&d);
        let mut states = vec![sim_state(&sim, d.num_latches())];
        let mut writes = Vec::new();
        for &(en, we) in &steps[..steps.len() - 1] {
            writes.push(we);
            sim.step(&[en, we, false, false, false, false]);
            states.push(sim_state(&sim, d.num_latches()));
        }
        writes.push(steps[steps.len() - 1].1);

        // Floating unrolling with forced frame 0 and inputs.
        let mut s = Solver::new();
        let mut u = Unroller::new(&d, &mut s, UnrollConfig::default());
        let mut lfp = LfpBuilder::new(&mut s, d.num_latches(), None);
        let mut assumptions = Vec::new();
        for (f, &(en, we)) in steps.iter().enumerate() {
            u.extend(&d, &mut s);
            let latch_lits = u.latch_lits(&d, f);
            if f == 0 {
                // Frame 0 latches are free in a floating window; pin
                // them to the simulation's initial state (zero).
                for &l in &latch_lits {
                    assumptions.push(!l);
                }
            }
            for (bit, value) in [(en_bit, en), (we_bit, we)] {
                let lit = u.lit(f, bit);
                assumptions.push(if value { lit } else { !lit });
            }
            lfp.add_frame(&mut s, &latch_lits, &[u.lit(f, we_bit)]);
        }
        assumptions.push(lfp.activation());
        let expected = if expect_unsat(&states, &writes) {
            SolveResult::Unsat
        } else {
            SolveResult::Sat
        };
        prop_assert_eq!(s.solve_with(&assumptions), expected);
    }
}
