//! Differential testing of the cut-based rewriting pass: BMC over random
//! designs must produce identical verdicts with rewriting enabled (the
//! default — the engine encodes a rewritten, fraig-reduced model) and
//! disabled.
//!
//! This is the system-level soundness harness for `emm_aig::rewrite`, in
//! the style of `fraig_differential.rs`: randomized memory and latch
//! designs, exact verdict agreement required, and — because
//! `validate_traces` stays on — every counterexample found on the reduced
//! model is re-simulated against the *original* design, so an unsound
//! cone replacement surfaces as a hard `SpuriousTrace` error, not just a
//! flaky disagreement.

use emm_aig::{rewrite_design, Design, LatchInit, MemInit, RewriteConfig};
use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random memory design driven by a free-running counter and inputs
/// (mirrors the generator of `fraig_differential.rs`).
fn random_mem_design(rng: &mut StdRng) -> Design {
    let aw = rng.random_range(2..=3usize);
    let dw = rng.random_range(1..=3usize);
    let n_read = rng.random_range(1..=2usize);
    let n_write = rng.random_range(1..=2usize);
    let init = if rng.random_bool(0.5) {
        MemInit::Zero
    } else {
        MemInit::Arbitrary
    };
    let mut d = Design::new();
    let mem = d.add_memory("m", aw, dw, init);
    let t = d.new_latch_word("t", 3, LatchInit::Zero);
    let next_t = d.aig.inc(&t);
    d.set_next_word(&t, &next_t);
    for w in 0..n_write {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("wa{w}"), aw)
        } else {
            let r = d.aig.resize(&t, aw);
            let c = d.aig.const_word(rng.random_range(0..(1 << aw) as u64), aw);
            d.aig.word_xor(&r, &c)
        };
        let en = d.new_input(&format!("we{w}"));
        let data = d.new_input_word(&format!("wd{w}"), dw);
        d.add_write_port(mem, addr, en, data);
    }
    let mut read_words = Vec::new();
    for r in 0..n_read {
        let addr = if rng.random_bool(0.5) {
            d.new_input_word(&format!("ra{r}"), aw)
        } else {
            d.aig.resize(&t, aw)
        };
        let en = if rng.random_bool(0.7) {
            emm_aig::Aig::TRUE
        } else {
            d.new_input(&format!("re{r}"))
        };
        let rd = d.add_read_port(mem, addr, en);
        read_words.push(rd);
    }
    let c = rng.random_range(0..(1u64 << dw));
    let mut bad = d.aig.eq_const(&read_words[0], c);
    if read_words.len() > 1 && rng.random_bool(0.5) {
        let nz = d.aig.redor(&read_words[1].clone());
        bad = d.aig.and(bad, nz);
    }
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

/// A random memory-free sequential design whose property cone contains
/// rewritable shapes: comparator chains, selected updates, and a
/// disguised-wire redundancy (`(s∧i) ∨ (s∧¬i) ≡ s` per bit).
fn random_latch_design(rng: &mut StdRng) -> Design {
    let w = rng.random_range(2..=4usize);
    let mut d = Design::new();
    let s = d.new_latch_word("s", w, LatchInit::Zero);
    let i = d.new_input_word("i", w);
    let mixed = if rng.random_bool(0.5) {
        d.aig.word_xor(&s, &i)
    } else {
        d.aig.add(&s, &i)
    };
    let next = if rng.random_bool(0.5) {
        mixed.clone()
    } else {
        let sel = d.new_input("sel");
        let inc = d.aig.inc(&s);
        d.aig.mux_word(sel, &inc, &mixed)
    };
    d.set_next_word(&s, &next);
    // Property cone with hidden structure: a bound comparison gated by a
    // disguised wire built bit by bit.
    let target = rng.random_range(1..(1u64 << w));
    let cmp = if rng.random_bool(0.5) {
        let k = d.aig.const_word(target, w);
        d.aig.ult(&s, &k)
    } else {
        d.aig.eq_const(&s, target)
    };
    let mut wire = emm_aig::Aig::TRUE;
    for (&sb, &ib) in s.bits().iter().zip(i.bits()) {
        let t = d.aig.and(sb, ib);
        let e = d.aig.and(sb, !ib);
        let redundant = d.aig.or(t, e); // ≡ sb
        wire = d.aig.and(wire, redundant);
    }
    let bad = d.aig.and(cmp, wire);
    d.add_property("p", bad);
    d.check().expect("valid");
    d
}

fn verdict_shape(v: &BmcVerdict) -> (u8, usize) {
    match v {
        BmcVerdict::Proof { depth, .. } => (0, *depth),
        BmcVerdict::Counterexample(t) => (1, t.depth()),
        BmcVerdict::Proved { k } => (4, *k),
        BmcVerdict::BoundReached => (2, usize::MAX),
        BmcVerdict::Unknown { .. } => (3, usize::MAX),
    }
}

/// Engine-level agreement on random memory designs (falsification mode);
/// traces from the rewritten model must validate on the original design.
#[test]
fn rewrite_engine_agrees_with_unrewritten_on_random_mem_designs() {
    let mut rng = StdRng::seed_from_u64(0x2E581);
    for round in 0..25 {
        let d = random_mem_design(&mut rng);
        let mut rewritten = BmcEngine::new(&d, BmcOptions::default());
        let rewrite_run = rewritten.check(0, 5).expect("rewritten run");
        let mut plain = BmcEngine::new(
            &d,
            BmcOptions {
                rewrite: RewriteConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let plain_run = plain.check(0, 5).expect("plain run");
        assert_eq!(
            verdict_shape(&rewrite_run.verdict),
            verdict_shape(&plain_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            rewrite_run.verdict,
            plain_run.verdict
        );
        let stats = rewritten.rewrite_stats().expect("pass ran");
        assert!(stats.ands_after <= stats.ands_before, "round {round}");
    }
}

/// Agreement with induction proofs enabled (floating context included),
/// also crossing rewrite-only against fraig-only configurations.
#[test]
fn rewrite_proof_engine_agrees_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0x2E582);
    for round in 0..15 {
        let d = if round % 2 == 0 {
            random_latch_design(&mut rng)
        } else {
            random_mem_design(&mut rng)
        };
        let mut rewritten = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                ..BmcOptions::default()
            },
        );
        let rewrite_run = rewritten.check(0, 6).expect("rewritten run");
        let mut plain = BmcEngine::new(
            &d,
            BmcOptions {
                proofs: true,
                rewrite: RewriteConfig::disabled(),
                ..BmcOptions::default()
            },
        );
        let plain_run = plain.check(0, 6).expect("plain run");
        assert_eq!(
            verdict_shape(&rewrite_run.verdict),
            verdict_shape(&plain_run.verdict),
            "round {round}: verdicts diverge: {:?} vs {:?}",
            rewrite_run.verdict,
            plain_run.verdict
        );
    }
}

/// The pass itself must find reductions on the redundant latch designs,
/// and the rewritten design must stay well-formed.
#[test]
fn rewrite_shrinks_redundant_designs() {
    let mut rng = StdRng::seed_from_u64(0x2E583);
    let mut total_removed = 0usize;
    for _ in 0..10 {
        let mut d = random_latch_design(&mut rng);
        let before = d.num_gates();
        let stats = rewrite_design(&mut d, &RewriteConfig::default());
        d.check().expect("rewrite keeps the design well-formed");
        assert_eq!(stats.ands_before, before);
        assert_eq!(stats.ands_after, d.num_gates());
        assert!(d.num_gates() <= before);
        total_removed += stats.ands_removed();
    }
    assert!(
        total_removed > 0,
        "the disguised-wire cones must yield at least one rewrite"
    );
}
