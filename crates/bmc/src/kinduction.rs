//! Unbounded proving by k-induction over the incremental BMC
//! infrastructure.
//!
//! [`KInduction`] interleaves two searches per depth `k`:
//!
//! * **Base case** — the bounded engine's incremental bound loop
//!   ([`BmcEngine::check`] with proofs off): no counterexample of length
//!   ≤ `k` from the initial state. Refuted bounds are skipped on the
//!   next iteration, so each base call solves exactly one new bound.
//! * **Inductive step** — an initial-state-free unrolling (the bounded
//!   engine's *floating* context: free frame-0 latches, every memory
//!   arbitrary-init) asking for a **simple path** `s_0 … s_k` with
//!   `¬bad` at `s_0 … s_{k-1}` and `bad` at `s_k`. The simple-path
//!   (loop-free-path) constraints come from the same [`crate::LfpBuilder`]
//!   rows the termination checks use, derived from the latch state of
//!   the EMM encoding; without them k-induction is incomplete (a lasso
//!   of good states could extend forever).
//!
//! If the base case finds no counterexample up to `k` and the step query
//! is unsatisfiable at `k`, the property holds in **all** reachable
//! states — [`BmcVerdict::Proved`]`{ k }` — because the shortest path to
//! any reachable bad state is loop-free, would have a `¬bad` prefix, and
//! would therefore satisfy the step query. The simple-path constraint
//! also makes the loop complete: at the recurrence diameter the step
//! formula is unsatisfiable outright.
//!
//! Structurally, one solver lives across the whole `k` loop. Each
//! depth's step clauses (`¬bad_0 … ¬bad_{k-1}, bad_k`) go into their own
//! activation group; when the step fails (SAT) the group is physically
//! retired ([`emm_sat::Solver::retire_group`]), so failed depths leave
//! learned clauses behind but no dead property clauses. The
//! [`ResourceGovernor`] is honored at every query — frame extension,
//! base bounds and step solves all poll it — and a run that degrades to
//! [`BmcVerdict::Unknown`] resumes exactly like the bounded engine:
//! install a fresh governor ([`KInduction::set_governor`]) and call
//! [`KInduction::check`] again; cleanly completed base bounds *and*
//! cleanly failed step depths are skipped, not re-solved.

use std::time::Instant;

use emm_aig::Design;
use emm_sat::{ExhaustionReason, ResourceGovernor, SolveResult};

use crate::engine::{BmcEngine, BmcError, BmcRun, BmcVerdict, Ctx, PhaseSeconds};
use crate::model::ReducedModel;
use crate::options::VerifyOptions;

/// The k-induction engine: interleaved base case and inductive step.
/// See the module docs above for the algorithm and the soundness
/// argument, and [`crate::options::ProofEngine`] for how drivers select
/// it.
///
/// The base case runs on an embedded [`BmcEngine`] (proofs off — the
/// step query below subsumes the backward termination check); the step
/// runs on a private floating context whose formula grows monotonically
/// with `k`. The step context is always incremental regardless of
/// [`crate::PipelineOptions::incremental`], which only governs the base
/// loop: restarting the step solver every depth would defeat the design.
///
/// # Examples
///
/// A saturating counter: `count` walks 0..=29 and then holds, `bad`
/// claims the unreachable value 63. The bounded engine needs the full
/// reachability diameter (`proof@30`); k-induction closes the property
/// too, from the garbage-state side — no loop-free ¬bad-path ends in 63
/// once `k` exceeds the longest unreachable chain:
///
/// ```
/// use emm_aig::{Design, LatchInit};
/// use emm_bmc::{BmcVerdict, KInduction, VerifyOptions};
///
/// let mut d = Design::new();
/// let count = d.new_latch_word("count", 6, LatchInit::Zero);
/// let top = d.aig.eq_const(&count, 29);
/// let inc = d.aig.inc(&count);
/// let hold = d.aig.mux_word(top, &count, &inc);
/// d.set_next_word(&count, &hold);
/// let bad = d.aig.eq_const(&count, 63);
/// d.add_property("ne63", bad);
/// d.check().expect("well-formed");
///
/// let mut engine = KInduction::new(&d, VerifyOptions::default());
/// let run = engine.check(0, 64).expect("no spurious traces");
/// assert!(matches!(run.verdict, BmcVerdict::Proved { .. }));
/// ```
pub struct KInduction<'d> {
    base: BmcEngine<'d>,
    step: Ctx,
    /// The options as handed in (the base engine holds a proofs-off,
    /// wall-limit-free copy; the wall limit is applied here, once per
    /// `check`, so the whole interleaved loop shares one deadline).
    options: VerifyOptions,
    /// The governor in force: the configured one with the current call's
    /// wall-limit deadline min-combined in.
    governor: ResourceGovernor,
    /// The property the step context has run for. Step queries are
    /// bound-exact over the shared LFP activation, so switching
    /// properties rebuilds the context (mirroring the bounded engine's
    /// proof-mode property switch).
    step_prop: Option<usize>,
    /// Deepest step depth that completed SAT (induction failed there).
    /// Monotone: a failed step stays failed — the step formula at `k+1`
    /// contains a copy of every shorter simple path — so resumed checks
    /// skip these depths instead of re-solving them.
    steps_failed: Option<usize>,
    /// Step queries that ran to completion (SAT or UNSAT).
    step_queries: u64,
    /// Clauses physically retired from completed or abandoned step
    /// groups (depth `k` contributes `k + 1`).
    step_clauses_retired: u64,
    encode_seconds: f64,
    solve_seconds: f64,
    inprocess_seconds: f64,
    /// Preprocessing times and PBA reasons of the most recent base run,
    /// passed through into this engine's [`BmcRun`]s.
    rewrite_seconds: f64,
    fraig_seconds: f64,
    latch_reasons: Vec<usize>,
    memory_reasons: Vec<usize>,
}

impl std::fmt::Debug for KInduction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KInduction")
            .field("steps_failed", &self.steps_failed)
            .field("step_queries", &self.step_queries)
            .finish()
    }
}

impl<'d> KInduction<'d> {
    /// Creates a k-induction engine for `design`, running the same
    /// rewrite → fraig preprocessing as [`BmcEngine::new`].
    ///
    /// # Panics
    ///
    /// Panics if the design is malformed or an abstraction mask has the
    /// wrong length.
    pub fn new(design: &'d Design, options: impl Into<VerifyOptions>) -> KInduction<'d> {
        let options = options.into();
        let base = BmcEngine::new(design, Self::base_options(&options));
        Self::assemble(base, options)
    }

    /// Creates an engine over an already-reduced model (see
    /// [`BmcEngine::with_model`]); drivers that race several engines
    /// share one [`ReducedModel::reduce`] pass this way.
    ///
    /// # Panics
    ///
    /// Panics if the design is malformed or an abstraction mask has the
    /// wrong length.
    pub fn with_model(
        reduced: &'d ReducedModel<'_>,
        options: impl Into<VerifyOptions>,
    ) -> KInduction<'d> {
        let options = options.into();
        let base = BmcEngine::with_model(reduced, Self::base_options(&options));
        Self::assemble(base, options)
    }

    /// The embedded bounded engine's options: proofs off (the step query
    /// subsumes the backward check, and the forward check belongs to the
    /// bounded engine's bounded-diameter strategy), and no wall limit —
    /// the k-induction loop owns the deadline.
    fn base_options(options: &VerifyOptions) -> VerifyOptions {
        let mut o = options.clone();
        o.proofs = false;
        o.pipeline.wall_limit = None;
        o
    }

    fn assemble(base: BmcEngine<'d>, options: VerifyOptions) -> KInduction<'d> {
        let governor = options.pipeline.governor.clone();
        let step = Self::make_step_ctx(&base, &options, &governor);
        KInduction {
            base,
            step,
            options,
            governor,
            step_prop: None,
            steps_failed: None,
            step_queries: 0,
            step_clauses_retired: 0,
            encode_seconds: 0.0,
            solve_seconds: 0.0,
            inprocess_seconds: 0.0,
            rewrite_seconds: 0.0,
            fraig_seconds: 0.0,
            latch_reasons: Vec::new(),
            memory_reasons: Vec::new(),
        }
    }

    /// Builds the floating step context: free initial state, every
    /// memory arbitrary-init, LFP rows on (`proofs: true` only toggles
    /// the LFP builder inside `make_ctx` — the embedded base engine
    /// never sees it).
    fn make_step_ctx(
        base: &BmcEngine<'_>,
        options: &VerifyOptions,
        governor: &ResourceGovernor,
    ) -> Ctx {
        let mut step_options = options.clone();
        step_options.proofs = true;
        BmcEngine::make_ctx(base.model(), &step_options, governor, false)
    }

    /// The design under verification.
    pub fn design(&self) -> &'d Design {
        self.base.design()
    }

    /// The model actually encoded (original or rewrite/fraig-reduced).
    pub fn model(&self) -> &Design {
        self.base.model()
    }

    /// The embedded bounded engine running the base case — its stats
    /// accessors ([`BmcEngine::solver_stats`],
    /// [`BmcEngine::property_clauses_retired`], …) describe the base
    /// loop's anchored context.
    pub fn base(&self) -> &BmcEngine<'d> {
        &self.base
    }

    /// Step queries that ran to completion (SAT or UNSAT) over the
    /// engine's lifetime.
    pub fn step_queries(&self) -> u64 {
        self.step_queries
    }

    /// Deepest step depth whose query completed SAT (induction failed
    /// there); `None` before the first completed step. Resumed checks
    /// skip depths up to this point.
    pub fn steps_failed(&self) -> Option<usize> {
        self.steps_failed
    }

    /// Clauses physically retired from completed or abandoned step
    /// activation groups (the step group of depth `k` holds `k + 1`
    /// clauses).
    pub fn step_clauses_retired(&self) -> u64 {
        self.step_clauses_retired
    }

    /// Variable count and raw CDCL statistics of the step solver.
    pub fn step_solver_stats(&self) -> (usize, emm_sat::SolverStats) {
        (self.step.solver.num_vars(), *self.step.solver.stats())
    }

    /// Replaces the pipeline governor on the base engine and the step
    /// context — the resume path after [`BmcVerdict::Unknown`], exactly
    /// as on [`BmcEngine::set_governor`].
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.options.pipeline.governor = governor.clone();
        self.governor = governor;
        self.base.set_governor(self.governor.clone());
        self.install_step_governor();
    }

    /// The governor currently in force.
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    fn install_step_governor(&mut self) {
        self.step.solver.set_governor(self.governor.clone());
        if let Some(simp) = &mut self.step.simplify {
            simp.set_governor(self.governor.clone());
        }
        self.step.emm.set_governor(self.governor.clone());
    }

    /// Drops and recreates the step context (poisoned EMM emission or a
    /// property switch); every failed-step record dies with it.
    fn rebuild_step(&mut self) {
        self.step = Self::make_step_ctx(&self.base, &self.options, &self.governor);
        self.steps_failed = None;
    }

    /// Runs interleaved base case + inductive step for property `prop`
    /// at depths `0..=max_k`.
    ///
    /// Verdicts: [`BmcVerdict::Proved`]`{ k }` when a step closes the
    /// property, [`BmcVerdict::Counterexample`] from the base case (the
    /// trace replays on the original design), [`BmcVerdict::BoundReached`]
    /// when every depth up to `max_k` ran without closing, and
    /// [`BmcVerdict::Unknown`] when the governor tripped (resume by
    /// [`KInduction::set_governor`] + a repeated call: completed base
    /// bounds and failed step depths are skipped).
    ///
    /// # Errors
    ///
    /// [`BmcError::SpuriousTrace`] if a base-case counterexample fails
    /// re-simulation (an internal bug, surfaced rather than returned).
    pub fn check(&mut self, prop: usize, max_k: usize) -> Result<BmcRun, BmcError> {
        let started = Instant::now();
        let deadline = self.options.pipeline.wall_limit.map(|d| started + d);
        self.governor = match deadline {
            Some(dl) => self.options.pipeline.governor.clone().with_deadline(dl),
            None => self.options.pipeline.governor.clone(),
        };
        self.base.set_governor(self.governor.clone());
        self.encode_seconds = 0.0;
        self.solve_seconds = 0.0;
        self.inprocess_seconds = 0.0;
        // An EMM encoder that aborted mid-frame left the newest step
        // frame under-constrained; rebuild before trusting any answer
        // (the base engine does the same for its own contexts).
        if self.step.emm.interrupted() {
            self.rebuild_step();
        } else {
            self.install_step_governor();
        }
        // Step queries are bound-exact over the single shared LFP
        // activation (see `BmcEngine::process_bound`); a context unrolled
        // for another property cannot run this one's shallow steps.
        if self.step_prop.is_some_and(|p| p != prop) && self.step.unroller.num_frames() > 0 {
            self.rebuild_step();
        }
        self.step_prop = Some(prop);

        let bad_bit = self.base.model().properties()[prop].bad;
        let mut per_bound: Vec<f64> = Vec::new();
        // Deepest base bound known clean in *this* call, for the resume
        // contract of step-side Unknowns.
        let mut clean_base: Option<u32> = None;

        for k in 0..=max_k {
            let bound_started = Instant::now();
            if let Some(reason) = self.governor.poll() {
                let v = self.unknown(reason, clean_base);
                return self.finish(v, k, started, per_bound);
            }

            // Base case: no counterexample of length ≤ k. Incremental
            // bound clearing makes the repeated call solve only bound k.
            let base_run = self.base.check(prop, k)?;
            self.encode_seconds += base_run.phase_seconds.encode;
            self.solve_seconds += base_run.phase_seconds.solve;
            self.inprocess_seconds += base_run.phase_seconds.inprocess;
            self.rewrite_seconds = base_run.phase_seconds.rewrite;
            self.fraig_seconds = base_run.phase_seconds.fraig;
            self.latch_reasons = base_run.latch_reasons.clone();
            self.memory_reasons = base_run.memory_reasons.clone();
            match base_run.verdict {
                BmcVerdict::BoundReached => clean_base = Some(k as u32),
                verdict @ (BmcVerdict::Counterexample(_) | BmcVerdict::Unknown { .. }) => {
                    per_bound.push(bound_started.elapsed().as_secs_f64());
                    return self.finish(verdict, k, started, per_bound);
                }
                // Unreachable: the base engine runs with proofs off.
                verdict => return self.finish(verdict, k, started, per_bound),
            }

            // Inductive step at k, unless an earlier call already watched
            // it fail (failure is monotone — see `steps_failed`).
            if self.steps_failed.is_some_and(|d| k <= d) {
                per_bound.push(bound_started.elapsed().as_secs_f64());
                continue;
            }
            match self.step_query(k, bad_bit, deadline) {
                StepOutcome::Closed => {
                    per_bound.push(bound_started.elapsed().as_secs_f64());
                    return self.finish(BmcVerdict::Proved { k }, k, started, per_bound);
                }
                StepOutcome::Failed => {
                    self.steps_failed = Some(k);
                    per_bound.push(bound_started.elapsed().as_secs_f64());
                }
                StepOutcome::Exhausted(reason) => {
                    per_bound.push(bound_started.elapsed().as_secs_f64());
                    let v = self.unknown(reason, clean_base);
                    return self.finish(v, k, started, per_bound);
                }
            }
        }
        self.finish(BmcVerdict::BoundReached, max_k, started, per_bound)
    }

    /// One inductive-step query at depth `k`: extend the floating
    /// context to frames `0..=k`, post `¬bad_0 … ¬bad_{k-1}, bad_k` in a
    /// fresh activation group, solve under the EMM selector assumptions
    /// plus the LFP activation, and retire the group once the query
    /// completes (or is abandoned by the governor).
    fn step_query(
        &mut self,
        k: usize,
        bad_bit: emm_aig::Bit,
        deadline: Option<Instant>,
    ) -> StepOutcome {
        let encode_started = Instant::now();
        let outcome =
            BmcEngine::extend_ctx_to(self.base.model(), &mut self.step, k, &self.governor);
        self.encode_seconds += encode_started.elapsed().as_secs_f64();
        if let Some(reason) = outcome {
            return StepOutcome::Exhausted(reason);
        }
        debug_assert_eq!(
            self.step.unroller.num_frames(),
            k + 1,
            "step queries are bound-exact"
        );
        let budget = self
            .options
            .pipeline
            .solve_budget
            .clone()
            .with_earlier_deadline(deadline);
        self.step.solver.set_budget(budget);

        // Inprocess the long-lived step context between depths: the
        // simplified database serves every deeper step query. A stop by
        // the governor/budget is ignored here — the pass is a sound
        // no-op-or-partial-run and the step solve below reports the
        // exhaustion through the normal outcome path.
        if k > 0 {
            let inprocess_started = Instant::now();
            let _ = self.step.solver.inprocess();
            self.inprocess_seconds += inprocess_started.elapsed().as_secs_f64();
        }

        let group = self.step.solver.new_activation_group();
        for j in 0..k {
            let bad_j = self.step.unroller.lit(j, bad_bit);
            let bad_j = self.step.assumption(bad_j);
            self.step.solver.add_clause_in_group(group, &[!bad_j]);
        }
        let bad_k = self.step.unroller.lit(k, bad_bit);
        let bad_k = self.step.assumption(bad_k);
        self.step.solver.add_clause_in_group(group, &[bad_k]);

        let mut assumptions = BmcEngine::base_assumptions(&self.step);
        assumptions.push(
            self.step
                .lfp
                .as_ref()
                .expect("step ctx has LFP")
                .activation(),
        );
        assumptions.push(group);
        let solve_started = Instant::now();
        let result = self.step.solver.solve_with_assumptions(&assumptions);
        self.solve_seconds += solve_started.elapsed().as_secs_f64();
        // Every step group is transient: retired on completion (the
        // learned clauses stay; the property clauses leave the arena)
        // and on abandonment alike.
        self.step_clauses_retired += self.step.solver.retire_group(group) as u64;
        match result {
            SolveResult::Unsat => {
                self.step_queries += 1;
                StepOutcome::Closed
            }
            SolveResult::Sat => {
                self.step_queries += 1;
                StepOutcome::Failed
            }
            SolveResult::Unknown => StepOutcome::Exhausted(
                self.step
                    .solver
                    .exhaustion_reason()
                    .or_else(|| self.governor.poll())
                    .unwrap_or(ExhaustionReason::Cancelled),
            ),
        }
    }

    fn unknown(&self, reason: ExhaustionReason, clean_base: Option<u32>) -> BmcVerdict {
        BmcVerdict::Unknown {
            reason,
            deepest_clean_bound: clean_base,
        }
    }

    fn finish(
        &self,
        verdict: BmcVerdict,
        depth: usize,
        started: Instant,
        per_bound_seconds: Vec<f64>,
    ) -> Result<BmcRun, BmcError> {
        Ok(BmcRun {
            verdict,
            depth_reached: depth,
            elapsed: started.elapsed(),
            per_bound_seconds,
            latch_reasons: self.latch_reasons.clone(),
            memory_reasons: self.memory_reasons.clone(),
            phase_seconds: PhaseSeconds {
                rewrite: self.rewrite_seconds,
                fraig: self.fraig_seconds,
                encode: self.encode_seconds,
                solve: self.solve_seconds,
                inprocess: self.inprocess_seconds,
            },
        })
    }
}

/// Outcome of one inductive-step query.
enum StepOutcome {
    /// UNSAT — together with the clean base case this closes the
    /// property.
    Closed,
    /// SAT — induction fails at this depth; try deeper.
    Failed,
    /// The governor or the solve budget ended the query.
    Exhausted(ExhaustionReason),
}
