//! [`ModelSource`] — the frontend entry point that turns AIGER/BTOR2
//! files into verification jobs.
//!
//! The readers themselves live with the AIG ([`emm_aig::aiger`],
//! [`emm_aig::btor2`]); this module is the glue that the engines and the
//! [`VerificationServer`] consume:
//!
//! * [`ModelSource`] names where a model comes from — an in-memory
//!   [`Design`], raw AIGER bytes, BTOR2 text, or a path whose extension
//!   selects the format (`.aag`/`.aig` → AIGER, `.btor`/`.btor2` →
//!   BTOR2);
//! * [`ModelSource::load`] parses it into an `Arc<Design>` ready for
//!   [`VerifyRequest`] submission or a direct
//!   [`BmcEngine`] construction;
//! * [`ModelSource::verify`] is the one-call path: load, then dispatch
//!   on [`ProofEngine`] exactly like a
//!   server worker would;
//! * [`VerificationServer::submit_model`](crate::VerificationServer::submit_model)
//!   loads a source **once** and queues every property of the design as
//!   its own job, sharing the pre-reduction across them.
//!
//! ```no_run
//! use emm_bmc::frontend::ModelSource;
//! use emm_bmc::{VerifyBudget, VerifyOptions};
//!
//! let source = ModelSource::from_path("designs/fifo.btor2");
//! let (verdict, depth) = source
//!     .verify(0, &VerifyBudget::default(), VerifyOptions::default())
//!     .expect("readable model");
//! println!("property 0: {verdict:?} at depth {depth}");
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use emm_aig::aiger::{read_aiger, ParseAigerError};
use emm_aig::btor2::{read_btor2, ParseBtor2Error};
use emm_aig::Design;

use crate::engine::{BmcEngine, BmcVerdict};
use crate::kinduction::KInduction;
use crate::options::{ProofEngine, VerifyOptions};
use crate::server::{VerificationServer, VerifyBudget, VerifyRequest};

/// A frontend file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFormat {
    /// AIGER, ASCII (`aag`) or binary (`aig`) — auto-detected by magic.
    Aiger,
    /// BTOR2 text.
    Btor2,
}

impl ModelFormat {
    /// Maps a file extension to a format, case-insensitively.
    pub fn from_extension(ext: &str) -> Option<ModelFormat> {
        match ext.to_ascii_lowercase().as_str() {
            "aag" | "aig" => Some(ModelFormat::Aiger),
            "btor" | "btor2" => Some(ModelFormat::Btor2),
            _ => None,
        }
    }

    /// Detects the format of a path from its extension.
    pub fn from_path(path: &Path) -> Option<ModelFormat> {
        path.extension()
            .and_then(|e| e.to_str())
            .and_then(ModelFormat::from_extension)
    }
}

/// Error loading or verifying a [`ModelSource`].
#[derive(Debug)]
pub enum FrontendError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The I/O error text.
        message: String,
    },
    /// The path's extension names no supported format.
    UnknownFormat(PathBuf),
    /// AIGER parsing failed.
    Aiger(ParseAigerError),
    /// BTOR2 parsing failed.
    Btor2(ParseBtor2Error),
    /// The requested property index does not exist.
    PropertyOutOfRange {
        /// The requested index.
        property: usize,
        /// Number of properties the design has.
        available: usize,
    },
    /// The engine reported an error (spurious trace).
    Engine(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            FrontendError::UnknownFormat(path) => write!(
                f,
                "{}: unknown model format (expected .aag, .aig, .btor or .btor2)",
                path.display()
            ),
            FrontendError::Aiger(e) => write!(f, "{e}"),
            FrontendError::Btor2(e) => write!(f, "{e}"),
            FrontendError::PropertyOutOfRange {
                property,
                available,
            } => write!(
                f,
                "property index {property} out of range (design has {available})"
            ),
            FrontendError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseAigerError> for FrontendError {
    fn from(e: ParseAigerError) -> FrontendError {
        FrontendError::Aiger(e)
    }
}

impl From<ParseBtor2Error> for FrontendError {
    fn from(e: ParseBtor2Error) -> FrontendError {
        FrontendError::Btor2(e)
    }
}

/// Where a model comes from. See the module docs.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// An already-built design.
    Design(Arc<Design>),
    /// AIGER bytes (ASCII or binary, auto-detected).
    AigerBytes(Vec<u8>),
    /// BTOR2 text.
    Btor2Text(String),
    /// A file on disk; the extension selects the parser.
    Path(PathBuf),
}

impl ModelSource {
    /// A source reading `path` at load time.
    pub fn from_path(path: impl Into<PathBuf>) -> ModelSource {
        ModelSource::Path(path.into())
    }

    /// Parses the source into a shareable design.
    ///
    /// Every call re-reads and re-parses file/byte sources; load once and
    /// clone the returned `Arc` when several jobs should share one
    /// pre-reduction (or use
    /// [`VerificationServer::submit_model`](crate::VerificationServer::submit_model),
    /// which does exactly that).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] on unreadable files, unknown extensions,
    /// and parse failures.
    pub fn load(&self) -> Result<Arc<Design>, FrontendError> {
        match self {
            ModelSource::Design(d) => Ok(Arc::clone(d)),
            ModelSource::AigerBytes(bytes) => Ok(Arc::new(read_aiger(bytes)?)),
            ModelSource::Btor2Text(text) => Ok(Arc::new(read_btor2(text)?)),
            ModelSource::Path(path) => {
                let format = ModelFormat::from_path(path)
                    .ok_or_else(|| FrontendError::UnknownFormat(path.clone()))?;
                let bytes = std::fs::read(path).map_err(|e| FrontendError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                match format {
                    ModelFormat::Aiger => Ok(Arc::new(read_aiger(&bytes)?)),
                    ModelFormat::Btor2 => {
                        let text = String::from_utf8(bytes).map_err(|e| FrontendError::Io {
                            path: path.clone(),
                            message: format!("not UTF-8: {e}"),
                        })?;
                        Ok(Arc::new(read_btor2(&text)?))
                    }
                }
            }
        }
    }

    /// Loads the source and checks one property with the engine
    /// [`VerifyOptions::pipeline`] selects ([`ProofEngine::Bounded`] or
    /// [`ProofEngine::KInduction`]), returning the verdict and the depth
    /// reached — the same dispatch a
    /// [`VerificationServer`] worker runs.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] on load failures, out-of-range property
    /// indices, and engine errors.
    pub fn verify(
        &self,
        property: usize,
        budget: &VerifyBudget,
        options: VerifyOptions,
    ) -> Result<(BmcVerdict, usize), FrontendError> {
        let design = self.load()?;
        if property >= design.properties().len() {
            return Err(FrontendError::PropertyOutOfRange {
                property,
                available: design.properties().len(),
            });
        }
        let options = options
            .solve_budget(budget.solve.clone())
            .wall_limit(budget.wall_limit);
        let checked = match options.pipeline.proof_engine {
            ProofEngine::Bounded => {
                BmcEngine::new(&design, options).check(property, budget.max_depth)
            }
            ProofEngine::KInduction => {
                KInduction::new(&design, options).check(property, budget.max_depth)
            }
        };
        let run = checked.map_err(|e| FrontendError::Engine(e.to_string()))?;
        Ok((run.verdict, run.depth_reached))
    }
}

impl VerificationServer {
    /// Loads `source` once and queues one job per property of the parsed
    /// design, all sharing the loaded `Arc` (and therefore one
    /// pre-reduction). Returns the job ids in property order.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError`] when loading fails; nothing is queued in
    /// that case.
    pub fn submit_model(
        &mut self,
        source: &ModelSource,
        budget: &VerifyBudget,
        options: &VerifyOptions,
    ) -> Result<Vec<usize>, FrontendError> {
        let design = source.load()?;
        let ids = (0..design.properties().len())
            .map(|property| {
                self.submit(VerifyRequest {
                    design: Arc::clone(&design),
                    property,
                    budget: budget.clone(),
                    options: options.clone(),
                })
            })
            .collect();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Design, LatchInit};

    fn counter_btor2() -> String {
        let mut d = Design::new();
        let count = d.new_latch_word("count", 3, LatchInit::Zero);
        let next = d.aig.inc(&count);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, 5);
        d.add_property("reaches5", bad);
        d.check().expect("well-formed");
        emm_aig::btor2::write_btor2(&d).expect("writable")
    }

    #[test]
    fn format_detection() {
        assert_eq!(
            ModelFormat::from_path(Path::new("x/y.AIG")),
            Some(ModelFormat::Aiger)
        );
        assert_eq!(
            ModelFormat::from_path(Path::new("z.btor2")),
            Some(ModelFormat::Btor2)
        );
        assert_eq!(ModelFormat::from_path(Path::new("z.vhdl")), None);
        assert!(matches!(
            ModelSource::from_path("z.vhdl").load(),
            Err(FrontendError::UnknownFormat(_))
        ));
        assert!(matches!(
            ModelSource::from_path("missing.aag").load(),
            Err(FrontendError::Io { .. })
        ));
    }

    #[test]
    fn verify_dispatches_both_engines() {
        let source = ModelSource::Btor2Text(counter_btor2());
        let (verdict, depth) = source
            .verify(0, &VerifyBudget::default(), VerifyOptions::default())
            .expect("verify");
        assert!(verdict.is_counterexample());
        assert_eq!(depth, 5);
        let kind = VerifyOptions::default().proof_engine(ProofEngine::KInduction);
        let (verdict, _) = source
            .verify(0, &VerifyBudget::default(), kind)
            .expect("verify");
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn submit_model_queues_every_property() {
        let mut text = counter_btor2();
        // A second property via a fresh design with two bads.
        let mut d2 = emm_aig::btor2::read_btor2(&text).expect("parse");
        let count = emm_aig::Word(d2.latches().iter().map(|l| l.output).collect());
        let bad2 = d2.aig.eq_const(&count, 7);
        d2.add_property("reaches7", bad2);
        d2.check().expect("well-formed");
        text = emm_aig::btor2::write_btor2(&d2).expect("writable");

        let mut server = VerificationServer::new(2);
        let ids = server
            .submit_model(
                &ModelSource::Btor2Text(text),
                &VerifyBudget::default(),
                &VerifyOptions::default(),
            )
            .expect("submit");
        assert_eq!(ids, vec![0, 1]);
        let responses = server.run();
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(|r| r.verdict.is_counterexample()));
    }
}
