//! Verification options: the [`PipelineOptions`] shared by every driver
//! and the builder-style [`VerifyOptions`] consumed by [`BmcEngine`],
//! the PBA drivers ([`crate::pba`]) and the
//! [`VerificationServer`](crate::server::VerificationServer).
//!
//! [`PipelineOptions`] collects the knobs every verification entry point
//! shares — the EMM encoder, the simplifying sink, the rewrite and fraig
//! preprocessing, incremental solving, per-call budgets and the pipeline
//! governor. [`VerifyOptions`] embeds one and adds the engine-level
//! switches (proofs, trace validation, abstraction, PBA discovery, the
//! worker count). The historical flat [`BmcOptions`] struct remains as a
//! thin shim: `From<BmcOptions> for VerifyOptions` lets every existing
//! call site keep compiling, and [`BmcEngine::new`] accepts either.
//!
//! ```
//! use emm_bmc::VerifyOptions;
//! use emm_aig::{FraigConfig, RewriteConfig};
//!
//! let options = VerifyOptions::default()
//!     .rewrite(RewriteConfig::wide())
//!     .fraig(FraigConfig::default())
//!     .incremental(true)
//!     .proofs(true);
//! assert!(options.proofs);
//! ```
//!
//! [`BmcEngine`]: crate::BmcEngine
//! [`BmcEngine::new`]: crate::BmcEngine::new
//! [`BmcOptions`]: crate::BmcOptions

use std::time::Duration;

use emm_aig::{FraigConfig, RewriteConfig};
use emm_core::EmmOptions;
use emm_sat::{Budget, ResourceGovernor, SimplifyConfig, SolverConfig};

use crate::engine::{AbstractionSpec, BmcOptions};

/// Which proving engine a driver dispatches to when proofs are requested.
///
/// The default, [`ProofEngine::Bounded`], is the paper's BMC loop in
/// [`crate::BmcEngine`]: bound-exact termination checks that report
/// `proof@k` ([`crate::BmcVerdict::Proof`]) — a proof *up to the
/// completeness threshold reached within the depth budget*.
/// [`ProofEngine::KInduction`] selects [`crate::KInduction`], which
/// interleaves the same base-case loop with an initial-state-free
/// inductive step and can close a property outright as
/// [`crate::BmcVerdict::Proved`], independent of any depth budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProofEngine {
    /// The bounded engine's BMC-1/BMC-3 termination checks (`proof@k`).
    #[default]
    Bounded,
    /// Interleaved base case + inductive step (`Proved { k }`).
    KInduction,
}

/// Knobs shared by every stage of the verification pipeline, embedded in
/// [`VerifyOptions`] and [`crate::pba::PbaConfig`]. Field semantics are
/// documented on [`BmcOptions`], whose flat layout this struct replaces.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// EMM encoder options (selector granularity, encoding, eq. (6)).
    pub emm: EmmOptions,
    /// Circuit simplification on the unrolled formula
    /// ([`BmcOptions::simplify`]).
    pub simplify: SimplifyConfig,
    /// Cut-based AIG rewriting before unrolling ([`BmcOptions::rewrite`]).
    pub rewrite: RewriteConfig,
    /// AIG-level fraiging before unrolling ([`BmcOptions::fraig`]).
    pub fraig: FraigConfig,
    /// Bound-to-bound incremental solving ([`BmcOptions::incremental`]).
    pub incremental: bool,
    /// Per-SAT-call resource budget.
    pub solve_budget: Budget,
    /// Overall wall-clock limit per `check` call.
    pub wall_limit: Option<Duration>,
    /// Pipeline-wide resource governor ([`BmcOptions::governor`]).
    pub governor: ResourceGovernor,
    /// Which proving engine drivers dispatch to when proofs are
    /// requested (see [`ProofEngine`]).
    pub proof_engine: ProofEngine,
    /// CDCL solver heuristics (restart policy, decay rates, clause-DB
    /// reduction, the inprocessing loop) used by every solver the
    /// pipeline creates — [`BmcEngine`](crate::BmcEngine)'s anchored and
    /// floating contexts, [`crate::KInduction`]'s step context, and the
    /// PBA/server drivers on top of them.
    pub solver: SolverConfig,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            emm: EmmOptions::default(),
            simplify: SimplifyConfig::default(),
            rewrite: RewriteConfig::default(),
            fraig: FraigConfig::default(),
            incremental: true,
            solve_budget: Budget::unlimited(),
            wall_limit: None,
            governor: ResourceGovernor::unlimited(),
            proof_engine: ProofEngine::default(),
            solver: SolverConfig::default(),
        }
    }
}

impl PipelineOptions {
    /// Sets the EMM encoder options.
    pub fn emm(mut self, emm: EmmOptions) -> Self {
        self.emm = emm;
        self
    }

    /// Sets the simplifying-sink configuration.
    pub fn simplify(mut self, simplify: SimplifyConfig) -> Self {
        self.simplify = simplify;
        self
    }

    /// Sets the rewrite preprocessing configuration.
    pub fn rewrite(mut self, rewrite: RewriteConfig) -> Self {
        self.rewrite = rewrite;
        self
    }

    /// Sets the fraig preprocessing configuration.
    pub fn fraig(mut self, fraig: FraigConfig) -> Self {
        self.fraig = fraig;
        self
    }

    /// Enables or disables bound-to-bound incremental solving.
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the per-SAT-call budget.
    pub fn solve_budget(mut self, budget: Budget) -> Self {
        self.solve_budget = budget;
        self
    }

    /// Sets the wall-clock limit per `check` call.
    pub fn wall_limit(mut self, limit: Option<Duration>) -> Self {
        self.wall_limit = limit;
        self
    }

    /// Installs the pipeline governor.
    pub fn governor(mut self, governor: ResourceGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// Selects the proving engine drivers dispatch to.
    pub fn proof_engine(mut self, engine: ProofEngine) -> Self {
        self.proof_engine = engine;
        self
    }

    /// Sets the CDCL solver configuration used by every pipeline solver.
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }
}

/// Options of one verification run, consumed by [`BmcEngine::new`],
/// [`crate::pba::PbaConfig`] and the
/// [`VerificationServer`](crate::server::VerificationServer).
///
/// Construction is builder-style from [`VerifyOptions::default`]; every
/// method moves `self`, so chains read top-to-bottom:
///
/// ```
/// use emm_bmc::VerifyOptions;
/// use emm_aig::{FraigConfig, RewriteConfig};
/// use emm_sat::ResourceGovernor;
///
/// let options = VerifyOptions::default()
///     .rewrite(RewriteConfig::default())
///     .fraig(FraigConfig::disabled())
///     .incremental(false)
///     .governor(ResourceGovernor::unlimited())
///     .workers(4);
/// assert_eq!(options.workers, 4);
/// ```
///
/// [`BmcEngine::new`]: crate::BmcEngine::new
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// The shared pipeline knobs (preprocessing, budgets, governor).
    pub pipeline: PipelineOptions,
    /// Run the induction-style termination checks (BMC-1/BMC-3).
    pub proofs: bool,
    /// Validate counterexample traces by re-simulation before returning.
    pub validate_traces: bool,
    /// Freeze an abstraction (the paper's *reduced model*).
    pub abstraction: Option<AbstractionSpec>,
    /// Enable proof-based-abstraction reason discovery.
    pub pba_discovery: bool,
    /// Worker threads for the parallel paths (the batched fraig sweep in
    /// preprocessing, and whatever driver consumes these options). `0`
    /// (the default) selects the classic sequential algorithms; `1` runs
    /// the parallel algorithms on their deterministic single-thread
    /// schedule — both are deterministic, but the two schedules may
    /// differ, so `0` stays bit-compatible with the historical passes.
    pub workers: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            pipeline: PipelineOptions::default(),
            proofs: false,
            validate_traces: true,
            abstraction: None,
            pba_discovery: false,
            workers: 0,
        }
    }
}

impl VerifyOptions {
    /// Replaces the whole pipeline-options block.
    pub fn pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the EMM encoder options.
    pub fn emm(mut self, emm: EmmOptions) -> Self {
        self.pipeline.emm = emm;
        self
    }

    /// Sets the simplifying-sink configuration.
    pub fn simplify(mut self, simplify: SimplifyConfig) -> Self {
        self.pipeline.simplify = simplify;
        self
    }

    /// Sets the rewrite preprocessing configuration.
    pub fn rewrite(mut self, rewrite: RewriteConfig) -> Self {
        self.pipeline.rewrite = rewrite;
        self
    }

    /// Sets the fraig preprocessing configuration.
    pub fn fraig(mut self, fraig: FraigConfig) -> Self {
        self.pipeline.fraig = fraig;
        self
    }

    /// Enables or disables bound-to-bound incremental solving.
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.pipeline.incremental = incremental;
        self
    }

    /// Sets the per-SAT-call budget.
    pub fn solve_budget(mut self, budget: Budget) -> Self {
        self.pipeline.solve_budget = budget;
        self
    }

    /// Sets the wall-clock limit per `check` call.
    pub fn wall_limit(mut self, limit: Option<Duration>) -> Self {
        self.pipeline.wall_limit = limit;
        self
    }

    /// Installs the pipeline governor.
    pub fn governor(mut self, governor: ResourceGovernor) -> Self {
        self.pipeline.governor = governor;
        self
    }

    /// Selects the proving engine drivers dispatch to.
    pub fn proof_engine(mut self, engine: ProofEngine) -> Self {
        self.pipeline.proof_engine = engine;
        self
    }

    /// Sets the CDCL solver configuration used by every pipeline solver.
    pub fn solver(mut self, solver: SolverConfig) -> Self {
        self.pipeline.solver = solver;
        self
    }

    /// Enables or disables the termination (proof) checks.
    pub fn proofs(mut self, proofs: bool) -> Self {
        self.proofs = proofs;
        self
    }

    /// Enables or disables counterexample re-simulation.
    pub fn validate_traces(mut self, validate: bool) -> Self {
        self.validate_traces = validate;
        self
    }

    /// Freezes an abstraction.
    pub fn abstraction(mut self, abstraction: Option<AbstractionSpec>) -> Self {
        self.abstraction = abstraction;
        self
    }

    /// Enables or disables PBA reason discovery.
    pub fn pba_discovery(mut self, pba: bool) -> Self {
        self.pba_discovery = pba;
        self
    }

    /// Sets the worker-thread count for the parallel paths (see the
    /// field docs for the `0` / `1` distinction).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl From<PipelineOptions> for VerifyOptions {
    fn from(pipeline: PipelineOptions) -> VerifyOptions {
        VerifyOptions {
            pipeline,
            ..VerifyOptions::default()
        }
    }
}

impl From<BmcOptions> for VerifyOptions {
    fn from(o: BmcOptions) -> VerifyOptions {
        VerifyOptions {
            pipeline: PipelineOptions {
                emm: o.emm,
                simplify: o.simplify,
                rewrite: o.rewrite,
                fraig: o.fraig,
                incremental: o.incremental,
                solve_budget: o.solve_budget,
                wall_limit: o.wall_limit,
                governor: o.governor,
                proof_engine: ProofEngine::Bounded,
                solver: SolverConfig::default(),
            },
            proofs: o.proofs,
            validate_traces: o.validate_traces,
            abstraction: o.abstraction,
            pba_discovery: o.pba_discovery,
            workers: 0,
        }
    }
}
