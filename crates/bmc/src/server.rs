//! [`VerificationServer`] — a queueing front-end over the BMC engine.
//!
//! Callers [`submit`](VerificationServer::submit) independent
//! [`VerifyRequest`]s (a design, a property, a [`VerifyBudget`], and the
//! [`VerifyOptions`] to run with) and then [`run`](VerificationServer::run)
//! the whole queue: requests sharing a design and preprocessing
//! configuration are reduced **once** ([`ReducedModel`]), every job gets
//! its own engine (own solver, own contexts) over the shared model with a
//! [forked](emm_sat::ResourceGovernor::fork) governor, and the jobs are
//! scheduled on the in-tree work-stealing [`Pool`]. Responses come back
//! ordered by job id — the order of submission — so the output is
//! identical at every worker count, fault injection included.
//!
//! After a batch, [`stats`](VerificationServer::stats) reports the
//! throughput ([`ServerStats::jobs_per_sec`]); the bench harness records
//! it per worker count in the `server` section of `BENCH_simplify.json`
//! to track core-scaling.
//!
//! ```
//! use std::sync::Arc;
//! use emm_aig::{Design, LatchInit};
//! use emm_bmc::{VerificationServer, VerifyBudget, VerifyOptions, VerifyRequest};
//!
//! let mut d = Design::new();
//! let count = d.new_latch_word("count", 3, LatchInit::Zero);
//! let next = d.aig.inc(&count);
//! d.set_next_word(&count, &next);
//! let bad = d.aig.eq_const(&count, 5);
//! d.add_property("reaches5", bad);
//! d.check().expect("well-formed");
//! let design = Arc::new(d);
//!
//! let mut server = VerificationServer::new(2);
//! let id = server.submit(VerifyRequest {
//!     design: Arc::clone(&design),
//!     property: 0,
//!     budget: VerifyBudget::default(),
//!     options: VerifyOptions::default(),
//! });
//! let responses = server.run();
//! assert_eq!(responses[0].id, id);
//! assert!(responses[0].verdict.is_counterexample());
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use emm_aig::Design;
use emm_core::{Job, JobResult, Pool};
use emm_sat::{Budget, ExhaustionReason};

use crate::engine::{BmcEngine, BmcVerdict};
use crate::kinduction::KInduction;
use crate::model::ReducedModel;
use crate::options::{ProofEngine, VerifyOptions};

/// What one verification job may spend: the depth bound of the `check`
/// call, the per-SAT-call budget, and an overall wall-clock limit.
#[derive(Clone, Debug)]
pub struct VerifyBudget {
    /// Depth bound of the check (inclusive).
    pub max_depth: usize,
    /// Per-SAT-call resource budget.
    pub solve: Budget,
    /// Wall-clock limit for the whole job.
    pub wall_limit: Option<Duration>,
}

impl Default for VerifyBudget {
    fn default() -> Self {
        VerifyBudget {
            max_depth: 32,
            solve: Budget::unlimited(),
            wall_limit: None,
        }
    }
}

/// One queued verification job.
#[derive(Clone, Debug)]
pub struct VerifyRequest {
    /// The design to verify. Requests sharing the same `Arc` (and the
    /// same rewrite/fraig configuration) share one pre-reduction.
    pub design: Arc<Design>,
    /// Property index within the design.
    pub property: usize,
    /// What the job may spend.
    pub budget: VerifyBudget,
    /// Engine options. The job's engine runs with a
    /// [forked](emm_sat::ResourceGovernor::fork) copy of
    /// `options.pipeline.governor`, so cancelling the governor handed in
    /// here stops the job, while per-job fault injection stays
    /// deterministic.
    pub options: VerifyOptions,
}

/// The answer to one [`VerifyRequest`].
#[derive(Clone, Debug)]
pub struct VerifyResponse {
    /// The id [`VerificationServer::submit`] returned for the request.
    pub id: usize,
    /// The verdict. A job the pool drained without running (cancelled
    /// governor) or that panicked reports
    /// [`BmcVerdict::Unknown`] with [`ExhaustionReason::Cancelled`].
    pub verdict: BmcVerdict,
    /// Last depth the job fully processed.
    pub depth_reached: usize,
    /// Wall-clock seconds the job spent checking.
    pub elapsed_seconds: f64,
    /// An engine error or worker panic, when one occurred.
    pub error: Option<String>,
}

/// Throughput of the most recent [`VerificationServer::run`] batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Jobs completed in the batch.
    pub jobs: usize,
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Wall-clock seconds of the whole batch (shared pre-reductions
    /// included).
    pub elapsed_seconds: f64,
    /// `jobs / elapsed_seconds`.
    pub jobs_per_sec: f64,
}

/// What one job hands back to the response merge: verdict, depth
/// reached, elapsed seconds, and an error message when one occurred.
type JobOutput = (BmcVerdict, usize, f64, Option<String>);

/// The queueing verification server. See the module docs.
#[derive(Debug, Default)]
pub struct VerificationServer {
    pool: Pool,
    queue: Vec<VerifyRequest>,
    stats: ServerStats,
}

impl VerificationServer {
    /// A server scheduling on `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> VerificationServer {
        Self::with_pool(Pool::new(workers))
    }

    /// A server scheduling on an existing pool (to share its governor).
    pub fn with_pool(pool: Pool) -> VerificationServer {
        VerificationServer {
            pool,
            queue: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Queues a request; returns its job id (its index in the batch).
    pub fn submit(&mut self, request: VerifyRequest) -> usize {
        self.queue.push(request);
        self.queue.len() - 1
    }

    /// Jobs queued and not yet run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Worker threads the server schedules on.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Runs every queued job and drains the queue. Responses are ordered
    /// by job id regardless of which worker ran which job.
    pub fn run(&mut self) -> Vec<VerifyResponse> {
        let started = Instant::now();
        let requests = std::mem::take(&mut self.queue);

        // Shared pre-reduction: one ReducedModel per distinct (design,
        // rewrite config, fraig config, workers) combination, resolved in
        // submission order so the grouping is deterministic.
        let mut groups: Vec<(*const Design, &VerifyRequest, ReducedModel<'_>)> = Vec::new();
        let mut group_of: Vec<usize> = Vec::with_capacity(requests.len());
        for req in &requests {
            let key = Arc::as_ptr(&req.design);
            let found = groups.iter().position(|(ptr, leader, _)| {
                *ptr == key
                    && leader.options.pipeline.rewrite == req.options.pipeline.rewrite
                    && leader.options.pipeline.fraig == req.options.pipeline.fraig
                    && leader.options.workers == req.options.workers
            });
            group_of.push(found.unwrap_or_else(|| {
                let reduced = ReducedModel::reduce(
                    &req.design,
                    &req.options.pipeline.rewrite,
                    &req.options.pipeline.fraig,
                    &req.options.pipeline.governor,
                    req.options.workers,
                );
                groups.push((key, req, reduced));
                groups.len() - 1
            }));
        }

        let jobs: Vec<Job<'_, JobOutput>> = requests
            .iter()
            .zip(&group_of)
            .map(|(req, &g)| {
                let reduced = &groups[g].2;
                Box::new(move || Self::run_one(reduced, req)) as Job<'_, _>
            })
            .collect();
        let results = self.pool.run(jobs);

        let responses: Vec<VerifyResponse> = results
            .into_iter()
            .enumerate()
            .map(|(id, result)| match result {
                JobResult::Done((verdict, depth_reached, elapsed_seconds, error)) => {
                    VerifyResponse {
                        id,
                        verdict,
                        depth_reached,
                        elapsed_seconds,
                        error,
                    }
                }
                JobResult::Skipped => VerifyResponse {
                    id,
                    verdict: cancelled_verdict(),
                    depth_reached: 0,
                    elapsed_seconds: 0.0,
                    error: None,
                },
                JobResult::Panicked(msg) => VerifyResponse {
                    id,
                    verdict: cancelled_verdict(),
                    depth_reached: 0,
                    elapsed_seconds: 0.0,
                    error: Some(msg),
                },
            })
            .collect();

        let elapsed = started.elapsed().as_secs_f64();
        self.stats = ServerStats {
            jobs: responses.len(),
            workers: self.pool.workers(),
            elapsed_seconds: elapsed,
            jobs_per_sec: if elapsed > 0.0 {
                responses.len() as f64 / elapsed
            } else {
                0.0
            },
        };
        responses
    }

    /// Throughput of the most recent batch (zeroed before the first).
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    fn run_one(reduced: &ReducedModel<'_>, req: &VerifyRequest) -> JobOutput {
        let options = req
            .options
            .clone()
            .governor(req.options.pipeline.governor.fork())
            .solve_budget(req.budget.solve.clone())
            .wall_limit(req.budget.wall_limit);
        let started = Instant::now();
        // Dispatch on the configured proving engine: the bounded BMC
        // loop, or the unbounded k-induction closure.
        let checked =
            match options.pipeline.proof_engine {
                ProofEngine::Bounded => BmcEngine::with_model(reduced, options)
                    .check(req.property, req.budget.max_depth),
                ProofEngine::KInduction => KInduction::with_model(reduced, options)
                    .check(req.property, req.budget.max_depth),
            };
        match checked {
            Ok(run) => (
                run.verdict,
                run.depth_reached,
                started.elapsed().as_secs_f64(),
                None,
            ),
            Err(e) => (
                cancelled_verdict(),
                0,
                started.elapsed().as_secs_f64(),
                Some(e.to_string()),
            ),
        }
    }
}

fn cancelled_verdict() -> BmcVerdict {
    BmcVerdict::Unknown {
        reason: ExhaustionReason::Cancelled,
        deepest_clean_bound: None,
    }
}
