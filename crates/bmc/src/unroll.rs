//! Transition-relation unrolling: AIG frames to CNF.
//!
//! The unroller instantiates the design's combinational core once per time
//! frame, Tseitin-encoding AND gates and wiring latch outputs at frame `k+1`
//! to their next-state literals at frame `k`. Constants are folded at the
//! literal level, so zero-initialized state collapses large cones in early
//! frames.
//!
//! Unrolling is **bound-to-bound incremental**: the per-frame literal
//! maps persist in the `Unroller`, and [`Unroller::extend`] emits only
//! the *new* frame's clauses into the sink — nothing already encoded is
//! revisited. That is what lets `BmcEngine` keep one long-lived solver
//! across its whole bound loop (see [`crate::BmcOptions::incremental`]).
//!
//! Three latch-handling modes support the different BMC configurations:
//!
//! * plain (anchored or floating initial state) — latch outputs reuse the
//!   previous frame's next-state literal structurally, adding no clauses;
//! * **selector mode** (`latch_selectors`) — each latch's transition link and
//!   initial-value constraint are guarded by a per-latch selector literal.
//!   Solving under the selectors and reading the failed assumptions yields
//!   the *latch reasons* of proof-based abstraction (`Get_Latch_Reasons` in
//!   the paper's Fig. 1/3);
//! * **frozen abstraction** (`kept_latches`) — latches outside the kept set
//!   become pseudo-primary inputs outright (fresh unconstrained variables
//!   per frame), the paper's reduced model.

use emm_aig::{Bit, Design, InputKind, LatchInit, Node, Word};
use emm_core::{MemoryFrameLits, PortLits};
use emm_sat::{CnfSink, Lit};

/// Unroller configuration.
#[derive(Clone, Debug, Default)]
pub struct UnrollConfig {
    /// Anchor frame 0 at the design's initial state. `false` gives the
    /// floating window used by backward-induction checks.
    pub initial_state: bool,
    /// Create a selector literal per latch guarding its transition/init
    /// constraints (for PBA reason discovery).
    pub latch_selectors: bool,
    /// When set, latches whose entry is `false` are freed (abstracted to
    /// pseudo-primary inputs). Length must equal the design's latch count.
    pub kept_latches: Option<Vec<bool>>,
}

/// Per-frame literal maps over a design.
///
/// The unroller does not borrow the design: every method that needs the
/// graph takes it as a parameter, so an engine can own both the (possibly
/// preprocessed) design and its unrollers in one struct. Callers must pass
/// the *same* design to every call — frame literal maps are indexed by its
/// node ids.
#[derive(Debug)]
pub struct Unroller {
    config: UnrollConfig,
    /// A literal fixed to false (for mapping AIG constants).
    const_false: Lit,
    /// `frames[k][node]` = literal of that node at frame `k`.
    frames: Vec<Vec<Lit>>,
    /// Selector literal per latch (selector mode only).
    latch_sel: Vec<Lit>,
}

impl Unroller {
    /// Creates an unroller; no frames exist yet.
    ///
    /// `sink` is any [`CnfSink`]: a live [`Solver`](emm_sat::Solver), a
    /// [`SimplifySink`](emm_sat::SimplifySink) wrapping one, or a counting
    /// sink for size experiments. The same sink (or at least the same
    /// underlying variable space) and the same design must be used for
    /// every later [`Unroller::extend`].
    ///
    /// # Panics
    ///
    /// Panics if the design fails [`Design::check`] or `kept_latches` has
    /// the wrong length.
    pub fn new<S: CnfSink + ?Sized>(
        design: &Design,
        sink: &mut S,
        config: UnrollConfig,
    ) -> Unroller {
        design.check().expect("design must be well-formed");
        if let Some(kept) = &config.kept_latches {
            assert_eq!(kept.len(), design.num_latches(), "kept mask length");
        }
        let cf = sink.new_var().positive();
        sink.add_clause(&[!cf]);
        let latch_sel = if config.latch_selectors {
            (0..design.num_latches())
                .map(|_| sink.new_var().positive())
                .collect()
        } else {
            Vec::new()
        };
        Unroller {
            config,
            const_false: cf,
            frames: Vec::new(),
            latch_sel,
        }
    }

    /// Number of frames unrolled so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Per-latch selector literals (selector mode only, else empty).
    pub fn latch_selectors(&self) -> &[Lit] {
        &self.latch_sel
    }

    /// Literal of `bit` at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` has not been unrolled.
    pub fn lit(&self, frame: usize, bit: Bit) -> Lit {
        let base = self.frames[frame][bit.node().index()];
        if bit.is_inverted() {
            !base
        } else {
            base
        }
    }

    /// Literals of a word at `frame`.
    pub fn word_lits(&self, frame: usize, word: &Word) -> Vec<Lit> {
        word.bits().iter().map(|&b| self.lit(frame, b)).collect()
    }

    /// Literals of every latch output at `frame` (for loop-free-path
    /// constraints and trace extraction).
    pub fn latch_lits(&self, design: &Design, frame: usize) -> Vec<Lit> {
        design
            .latches()
            .iter()
            .map(|l| self.lit(frame, l.output))
            .collect()
    }

    /// Unrolls the next frame, returning its index.
    pub fn extend<S: CnfSink + ?Sized>(&mut self, design: &Design, sink: &mut S) -> usize {
        let k = self.frames.len();
        let mut map: Vec<Lit> = Vec::with_capacity(design.aig.num_nodes());
        let tru = !self.const_false;
        let fal = self.const_false;
        for (id, node) in design.aig.iter() {
            let lit = match node {
                Node::Const => fal,
                Node::Input(i) => match design.input_kind(i as usize) {
                    InputKind::Free | InputKind::ReadData(..) => sink.new_var().positive(),
                    InputKind::Latch(l) => {
                        let li = l.0 as usize;
                        let latch = &design.latches()[li];
                        let kept = self
                            .config
                            .kept_latches
                            .as_ref()
                            .map(|m| m[li])
                            .unwrap_or(true);
                        if !kept {
                            // Abstracted: a fresh pseudo-primary input.
                            sink.new_var().positive()
                        } else if self.config.latch_selectors {
                            // Guarded link to init / previous next-state.
                            let v = sink.new_var().positive();
                            let sel = self.latch_sel[li];
                            if k == 0 {
                                if self.config.initial_state {
                                    match latch.init {
                                        LatchInit::Zero => {
                                            sink.add_clause(&[!sel, !v]);
                                        }
                                        LatchInit::One => {
                                            sink.add_clause(&[!sel, v]);
                                        }
                                        LatchInit::Free => {}
                                    }
                                }
                            } else {
                                let n = self.lit(k - 1, latch.next.expect("checked"));
                                sink.add_clause(&[!sel, !v, n]);
                                sink.add_clause(&[!sel, v, !n]);
                            }
                            v
                        } else if k == 0 {
                            if self.config.initial_state {
                                match latch.init {
                                    LatchInit::Zero => fal,
                                    LatchInit::One => tru,
                                    LatchInit::Free => sink.new_var().positive(),
                                }
                            } else {
                                sink.new_var().positive()
                            }
                        } else {
                            // Structural reuse: no new variable or clause.
                            self.lit(k - 1, latch.next.expect("checked"))
                        }
                    }
                },
                Node::And(a, b) => {
                    let x = apply(&map, a);
                    let y = apply(&map, b);
                    self.encode_and(sink, x, y)
                }
            };
            debug_assert_eq!(id.index(), map.len());
            map.push(lit);
        }
        self.frames.push(map);
        // Environment constraints hold at every frame.
        for &c in design.constraints() {
            let l = self.lit(k, c);
            sink.add_clause(&[l]);
        }
        k
    }

    /// AND gate with literal-level constant folding; the gate itself goes
    /// through the sink, so a [`SimplifySink`](emm_sat::SimplifySink) can
    /// additionally intern, sweep, or defer it.
    fn encode_and<S: CnfSink + ?Sized>(&self, sink: &mut S, a: Lit, b: Lit) -> Lit {
        let tru = !self.const_false;
        let fal = self.const_false;
        if a == fal || b == fal || a == !b {
            return fal;
        }
        if a == tru || a == b {
            return b;
        }
        if b == tru {
            return a;
        }
        sink.add_and_gate(a, b)
    }

    /// A literal that is always false in this solver (handy for callers).
    pub fn const_false(&self) -> Lit {
        self.const_false
    }

    /// Interface literals of memory `mem` at `frame`, for the EMM encoder.
    pub fn memory_frame_lits(&self, design: &Design, frame: usize, mem: usize) -> MemoryFrameLits {
        let m = &design.memories()[mem];
        MemoryFrameLits {
            reads: m
                .read_ports
                .iter()
                .map(|p| PortLits {
                    addr: self.word_lits(frame, &p.addr),
                    en: self.lit(frame, p.en),
                    data: self.word_lits(frame, &p.data),
                })
                .collect(),
            writes: m
                .write_ports
                .iter()
                .map(|p| PortLits {
                    addr: self.word_lits(frame, &p.addr),
                    en: self.lit(frame, p.en),
                    data: self.word_lits(frame, &p.data),
                })
                .collect(),
        }
    }
}

fn apply(map: &[Lit], bit: Bit) -> Lit {
    let base = map[bit.node().index()];
    if bit.is_inverted() {
        !base
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Design, LatchInit};
    use emm_sat::{SolveResult, Solver};

    fn counter(width: usize, bad_at: u64) -> Design {
        let mut d = Design::new();
        let count = d.new_latch_word("count", width, LatchInit::Zero);
        let next = d.aig.inc(&count);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, bad_at);
        d.add_property("p", bad);
        d.check().expect("valid");
        d
    }

    #[test]
    fn unrolled_counter_values_are_forced() {
        let d = counter(4, 9);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        for _ in 0..6 {
            u.extend(&d, &mut s);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let count_word = Word::from(d.latches().iter().map(|l| l.output).collect::<Vec<_>>());
        for k in 0..6u64 {
            let lits = u.word_lits(k as usize, &count_word);
            let v: u64 = lits
                .iter()
                .enumerate()
                .map(|(i, &l)| (s.model_value(l).expect("model") as u64) << i)
                .sum();
            assert_eq!(v, k, "frame {k}");
        }
    }

    #[test]
    fn bad_literal_reachable_exactly_at_depth() {
        let d = counter(4, 5);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        for k in 0..8 {
            u.extend(&d, &mut s);
            let bad = u.lit(k, d.properties()[0].bad);
            let expect = if k == 5 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(s.solve_with(&[bad]), expect, "depth {k}");
        }
    }

    #[test]
    fn floating_window_starts_anywhere() {
        let d = counter(4, 5);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: false,
                ..UnrollConfig::default()
            },
        );
        u.extend(&d, &mut s);
        let bad = u.lit(0, d.properties()[0].bad);
        // Unanchored: the bad state is immediately "reachable".
        assert_eq!(s.solve_with(&[bad]), SolveResult::Sat);
    }

    #[test]
    fn frozen_abstraction_frees_latches() {
        let d = counter(4, 5);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                kept_latches: Some(vec![false; 4]),
                ..UnrollConfig::default()
            },
        );
        u.extend(&d, &mut s);
        let bad = u.lit(0, d.properties()[0].bad);
        // All latches freed: counter value is unconstrained even at frame 0.
        assert_eq!(s.solve_with(&[bad]), SolveResult::Sat);
    }

    #[test]
    fn latch_selectors_gate_the_transition() {
        let d = counter(4, 5);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                latch_selectors: true,
                ..UnrollConfig::default()
            },
        );
        u.extend(&d, &mut s);
        let bad = u.lit(0, d.properties()[0].bad);
        let sels: Vec<Lit> = u.latch_selectors().to_vec();
        assert_eq!(sels.len(), 4);
        // Without selectors assumed the initial state is unconstrained.
        assert_eq!(s.solve_with(&[bad]), SolveResult::Sat);
        // With selectors the initial state pins count to 0, so bad@0 fails.
        let mut assumptions = sels.clone();
        assumptions.push(bad);
        assert_eq!(s.solve_with(&assumptions), SolveResult::Unsat);
        // The failed assumptions identify (a subset of) the latch reasons.
        let failed = s.failed_assumptions().to_vec();
        assert!(failed.iter().any(|l| sels.contains(l) || *l == bad));
    }

    #[test]
    fn constraints_asserted_every_frame() {
        // Constraint: input stays 0. Property: input is 1.
        let mut d = Design::new();
        let i = d.new_input("i");
        d.add_constraint(!i);
        d.add_property("p", i);
        d.check().expect("valid");
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        for k in 0..3 {
            u.extend(&d, &mut s);
            let bad = u.lit(k, d.properties()[0].bad);
            assert_eq!(s.solve_with(&[bad]), SolveResult::Unsat, "depth {k}");
        }
    }
}
