//! [`ReducedModel`] — a pre-reduced design handle.
//!
//! The rewrite → fraig preprocessing pipeline runs once, up front, and
//! the handle carries the reduced design together with the pass
//! statistics and wall times. Single-engine callers never see it
//! ([`crate::BmcEngine::new`] builds one internally), but multi-engine
//! drivers — [`crate::pba`]'s refinement loops and the
//! [`VerificationServer`](crate::server::VerificationServer) — reduce
//! once and hand every engine the same handle through
//! [`crate::BmcEngine::with_model`], instead of repeating the identical
//! passes per engine.

use std::borrow::Cow;
use std::time::Instant;

use emm_aig::{
    fraig_design_governed, fraig_design_pooled, rewrite_design_governed, Design, FraigConfig,
    FraigStats, RewriteConfig, RewriteStats,
};
use emm_core::Pool;
use emm_sat::ResourceGovernor;

/// A design together with its preprocessed (rewritten and/or fraiged)
/// copy: the model the engine actually encodes, plus the original the
/// counterexample traces are validated against. When neither pass ran
/// (or changed anything worth owning), the model borrows the original.
#[derive(Clone, Debug)]
pub struct ReducedModel<'d> {
    pub(crate) original: &'d Design,
    pub(crate) model: Cow<'d, Design>,
    pub(crate) rewrite_stats: Option<RewriteStats>,
    pub(crate) fraig_stats: Option<FraigStats>,
    pub(crate) rewrite_seconds: f64,
    pub(crate) fraig_seconds: f64,
}

impl<'d> ReducedModel<'d> {
    /// Runs the preprocessing pipeline (rewrite, then fraig — the order
    /// matters: rewriting restructures inequivalent logic and re-strashes
    /// the graph, which feeds fraig better merge candidates) on a private
    /// copy of `design`, honoring each pass's `enabled` flag.
    ///
    /// `workers >= 1` schedules the fraig SAT sweep on an in-tree
    /// [`Pool`] with that many workers ([`fraig_design_pooled`]); the
    /// result is bit-identical at every worker count. `workers == 0`
    /// keeps the classic sequential sweep ([`fraig_design_governed`]),
    /// whose schedule differs from the pooled one.
    pub fn reduce(
        design: &'d Design,
        rewrite: &RewriteConfig,
        fraig: &FraigConfig,
        governor: &ResourceGovernor,
        workers: usize,
    ) -> ReducedModel<'d> {
        let mut reduced: Option<Design> = None;
        let mut rewrite_stats = None;
        let mut fraig_stats = None;
        let mut rewrite_seconds = 0.0;
        let mut fraig_seconds = 0.0;
        if design.num_gates() > 0 {
            if rewrite.enabled {
                let model = reduced.get_or_insert_with(|| design.clone());
                let t = Instant::now();
                rewrite_stats = Some(rewrite_design_governed(model, rewrite, governor));
                rewrite_seconds = t.elapsed().as_secs_f64();
            }
            if fraig.enabled {
                let model = reduced.get_or_insert_with(|| design.clone());
                let t = Instant::now();
                fraig_stats = Some(if workers >= 1 {
                    let pool = Pool::new(workers).with_governor(governor.clone());
                    fraig_design_pooled(model, fraig, governor, &pool)
                } else {
                    fraig_design_governed(model, fraig, governor)
                });
                fraig_seconds = t.elapsed().as_secs_f64();
            }
        }
        let model = match reduced {
            Some(m) => Cow::Owned(m),
            None => Cow::Borrowed(design),
        };
        ReducedModel {
            original: design,
            model,
            rewrite_stats,
            fraig_stats,
            rewrite_seconds,
            fraig_seconds,
        }
    }

    /// Wraps `design` without running any pass — the identity handle, for
    /// callers that already reduced the design elsewhere or want none.
    pub fn unreduced(design: &'d Design) -> ReducedModel<'d> {
        ReducedModel {
            original: design,
            model: Cow::Borrowed(design),
            rewrite_stats: None,
            fraig_stats: None,
            rewrite_seconds: 0.0,
            fraig_seconds: 0.0,
        }
    }

    /// The design as handed in — the reference semantics.
    pub fn original(&self) -> &'d Design {
        self.original
    }

    /// The model to encode: the reduced copy, or the original when no
    /// pass ran. Interface structure (properties, latches, inputs,
    /// memories) is identical to the original.
    pub fn model(&self) -> &Design {
        &self.model
    }

    /// Counters of the rewrite pass, when it ran.
    pub fn rewrite_stats(&self) -> Option<&RewriteStats> {
        self.rewrite_stats.as_ref()
    }

    /// Counters of the fraig pass, when it ran.
    pub fn fraig_stats(&self) -> Option<&FraigStats> {
        self.fraig_stats.as_ref()
    }

    /// Wall-clock seconds of the two passes: `(rewrite, fraig)`.
    pub fn seconds(&self) -> (f64, f64) {
        (self.rewrite_seconds, self.fraig_seconds)
    }
}
