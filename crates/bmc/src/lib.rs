//! # emm-bmc — SAT-based Bounded Model Checking with EMM
//!
//! The verification algorithms of *"Verification of Embedded Memory Systems
//! using Efficient Memory Modeling"* (Ganai, Gupta, Ashar — DATE 2005):
//!
//! * [`Unroller`] — transition-relation unrolling of an
//!   [`emm_aig::Design`] into an incremental SAT solver, with support for
//!   latch selectors (PBA reason discovery) and frozen abstractions
//!   (reduced models);
//! * [`LfpBuilder`] — loop-free-path constraints for the induction-style
//!   termination checks of ref. \[19\], derived from the EMM state
//!   encoding: a pair of frames is pruned as "same state" only when the
//!   kept latches match *and* no enabled memory write separates them;
//! * [`BmcEngine`] — the paper's BMC-1 / BMC-2 / BMC-3 loops: witness
//!   search, forward-diameter and backward-induction proofs, counterexample
//!   extraction with re-simulation, and proof-based-abstraction reason
//!   collection;
//! * [`KInduction`] — unbounded proving by k-induction: the bounded
//!   engine as the base case, interleaved with initial-state-free
//!   inductive steps whose per-depth clauses live in their own solver
//!   activation groups (select with
//!   [`options::ProofEngine`] on the options surface);
//! * [`pba`] — stability-based abstraction discovery and iterative
//!   abstraction (ref. \[10\]), with a parallel per-property dispatch
//!   ([`pba::discover_all`]) on the work-stealing pool;
//! * [`options`] — the builder-style configuration surface:
//!   [`VerifyOptions`] and the shared [`PipelineOptions`] (the old
//!   [`BmcOptions`] struct converts losslessly — see its Migration
//!   rustdoc);
//! * [`model`] — [`ReducedModel`], the pre-reduced design handle that
//!   lets many engines share one rewrite + fraig pass;
//! * [`server`] — [`VerificationServer`], a queueing front-end that runs
//!   batches of independent verification jobs on the pool with
//!   bit-identical results at every worker count.
//!
//! All encoders emit through [`emm_sat::CnfSink`], and the engine threads
//! a simplifying sink ([`emm_sat::simplify`]) between them and the solver
//! by default: cross-frame structural hashing, constant folding, and lazy
//! gate emission, with SAT sweeping as an opt-in pass. See
//! [`BmcOptions::simplify`](crate::BmcOptions).
//!
//! Before any unrolling, the engine also reduces a private copy of the
//! design: cut-based rewriting ([`emm_aig::rewrite`]) restructures
//! inequivalent logic into cheaper shapes, then the AIG-level fraig pass
//! ([`emm_aig::fraig`]) merges functionally equivalent cones — both
//! savings multiply across every frame of every context. Counterexample
//! traces are still validated against the original design. See
//! [`BmcOptions::rewrite`](crate::BmcOptions),
//! [`BmcOptions::fraig`](crate::BmcOptions), and
//! [`BmcEngine::fraig_stats`]. The full pipeline, encoder by encoder, is
//! documented in `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Example: proving a counter property
//!
//! ```
//! use emm_aig::{Design, LatchInit};
//! use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
//!
//! let mut d = Design::new();
//! let count = d.new_latch_word("count", 3, LatchInit::Zero);
//! let wrap = d.aig.eq_const(&count, 4);
//! let inc = d.aig.inc(&count);
//! let zero = d.aig.const_word(0, 3);
//! let next = d.aig.mux_word(wrap, &zero, &inc);
//! d.set_next_word(&count, &next);
//! let bad = d.aig.eq_const(&count, 7); // never reached: wraps at 4
//! d.add_property("lt7", bad);
//! d.check().expect("well-formed");
//!
//! let mut engine = BmcEngine::new(&d, BmcOptions { proofs: true, ..BmcOptions::default() });
//! let run = engine.check(0, 32).expect("no spurious traces");
//! assert!(run.verdict.is_proof());
//! ```

#![warn(missing_docs)]

pub mod dimacs;
mod engine;
pub mod frontend;
mod kinduction;
mod lfp;
pub mod model;
pub mod options;
pub mod pba;
pub mod server;
mod unroll;

pub use dimacs::{dump_bmc_cnf, BmcCnf, DumpDimacsError};
pub use engine::{
    AbstractionSpec, BmcEngine, BmcError, BmcOptions, BmcRun, BmcVerdict, PhaseSeconds, ProofKind,
};
pub use frontend::{FrontendError, ModelFormat, ModelSource};
pub use kinduction::KInduction;
pub use lfp::LfpBuilder;
pub use model::ReducedModel;
pub use options::{PipelineOptions, ProofEngine, VerifyOptions};
pub use server::{ServerStats, VerificationServer, VerifyBudget, VerifyRequest, VerifyResponse};
pub use unroll::{UnrollConfig, Unroller};
