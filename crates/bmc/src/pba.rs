//! Proof-based abstraction driver (Sections 2.2 and 4.3 of the paper).
//!
//! [`discover`] runs the falsification loop of BMC with per-latch and
//! per-memory selectors, accumulating *latch reasons* `LR_i` from every
//! refutation. Following ref. \[10\], it stops when the reason set has been
//! stable for a configured number of depths and returns an
//! [`AbstractionSpec`] naming the latches and memory modules the proofs
//! actually used; everything else can be freed in a *reduced model*.
//!
//! [`iterative_abstraction`] repeats discovery on progressively more
//! abstract models until the kept set reaches a fixpoint — the paper's
//! iterative abstraction, which is what lets the quicksort array module be
//! dropped entirely when checking the stack-only property P2 (Table 2).

use std::time::Duration;

use emm_aig::{Design, FraigConfig, RewriteConfig};
use emm_core::{EmmOptions, Job, JobResult, Pool};
use emm_sat::{Budget, ResourceGovernor};

use crate::engine::{AbstractionSpec, BmcEngine, BmcVerdict};
use crate::model::ReducedModel;
use crate::options::{PipelineOptions, VerifyOptions};

/// PBA discovery configuration: the two discovery knobs plus the shared
/// [`PipelineOptions`] block every engine the drivers construct inherits
/// (preprocessing, budgets, the governor). Build it flat (the two
/// discovery fields are still plain) or through the builder methods:
///
/// ```
/// use emm_bmc::pba::PbaConfig;
/// use emm_aig::RewriteConfig;
///
/// let config = PbaConfig::default()
///     .stability_depth(5)
///     .max_depth(50)
///     .rewrite(RewriteConfig::wide());
/// assert_eq!(config.stability_depth, 5);
/// ```
#[derive(Clone, Debug)]
pub struct PbaConfig {
    /// Depths the reason set must remain unchanged before stopping (the
    /// paper uses 10 for Table 2).
    pub stability_depth: usize,
    /// Hard depth bound for discovery.
    pub max_depth: usize,
    /// The shared pipeline knobs. EMM selector granularity is forced on
    /// internally; the rewrite/fraig passes run **once** per multi-engine
    /// driver (see [`ReducedModel`]) and are disabled on the per-engine
    /// configs; `incremental` keeps the depth-by-depth discovery loop
    /// linear in solver calls instead of quadratic.
    pub pipeline: PipelineOptions,
}

impl Default for PbaConfig {
    fn default() -> Self {
        PbaConfig {
            stability_depth: 10,
            max_depth: 100,
            pipeline: PipelineOptions::default(),
        }
    }
}

impl PbaConfig {
    /// Sets the stability window.
    pub fn stability_depth(mut self, depth: usize) -> Self {
        self.stability_depth = depth;
        self
    }

    /// Sets the hard discovery depth bound.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Replaces the whole pipeline-options block.
    pub fn pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the EMM encoder options.
    pub fn emm(mut self, emm: EmmOptions) -> Self {
        self.pipeline.emm = emm;
        self
    }

    /// Sets the per-SAT-call budget.
    pub fn solve_budget(mut self, budget: Budget) -> Self {
        self.pipeline.solve_budget = budget;
        self
    }

    /// Sets the wall-clock limit per discovery run.
    pub fn wall_limit(mut self, limit: Option<Duration>) -> Self {
        self.pipeline.wall_limit = limit;
        self
    }

    /// Sets the fraig preprocessing configuration.
    pub fn fraig(mut self, fraig: FraigConfig) -> Self {
        self.pipeline.fraig = fraig;
        self
    }

    /// Sets the rewrite preprocessing configuration.
    pub fn rewrite(mut self, rewrite: RewriteConfig) -> Self {
        self.pipeline.rewrite = rewrite;
        self
    }

    /// Enables or disables bound-to-bound incremental solving.
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.pipeline.incremental = incremental;
        self
    }

    /// Installs the pipeline governor.
    pub fn governor(mut self, governor: ResourceGovernor) -> Self {
        self.pipeline.governor = governor;
        self
    }

    /// Selects the proving engine [`discover_and_prove`] dispatches to
    /// for its proof attempts.
    pub fn proof_engine(mut self, engine: crate::options::ProofEngine) -> Self {
        self.pipeline.proof_engine = engine;
        self
    }

    /// Sets the CDCL solver configuration used by every pipeline solver.
    pub fn solver(mut self, solver: emm_sat::SolverConfig) -> Self {
        self.pipeline.solver = solver;
        self
    }
}

impl From<PipelineOptions> for PbaConfig {
    fn from(pipeline: PipelineOptions) -> PbaConfig {
        PbaConfig {
            pipeline,
            ..PbaConfig::default()
        }
    }
}

/// Applies the configured rewrite and fraig passes once, returning the
/// model every engine of a multi-engine driver should share (with the
/// per-engine passes switched off in the returned config).
fn prereduce<'d>(
    design: &'d Design,
    config: &PbaConfig,
    workers: usize,
) -> (ReducedModel<'d>, PbaConfig) {
    let reduced = ReducedModel::reduce(
        design,
        &config.pipeline.rewrite,
        &config.pipeline.fraig,
        &config.pipeline.governor,
        workers,
    );
    let mut config = config.clone();
    config.pipeline.fraig = FraigConfig::disabled();
    config.pipeline.rewrite = RewriteConfig::disabled();
    (reduced, config)
}

/// Outcome of a discovery run.
#[derive(Clone, Debug)]
pub struct PbaDiscovery {
    /// The abstraction found (kept latches/memories).
    pub abstraction: AbstractionSpec,
    /// Depth at which the reason set became stable, if it did.
    pub stable_at: Option<usize>,
    /// Depth reached by the run.
    pub depth_reached: usize,
    /// `true` when discovery was cut short by a counterexample (the
    /// property fails; abstraction is moot).
    pub found_counterexample: bool,
    /// Wall time of the discovery run.
    pub elapsed: Duration,
}

/// Runs PBA reason discovery for `prop`, stopping at reason-set stability.
///
/// Discovery runs depth by depth so the stability criterion can be applied
/// between depths; each depth is one engine `check` call bounded to that
/// depth (the engine is incremental, so no work is repeated).
///
/// # Errors
///
/// Propagates [`crate::BmcError`] from the engine (spurious traces).
pub fn discover(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
) -> Result<PbaDiscovery, crate::BmcError> {
    discover_within(design, prop, config, None)
}

/// Like [`discover`], but starting from a prior abstraction: only kept
/// latches/memories are modeled, so the reason set can only shrink.
pub fn discover_within(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    within: Option<&AbstractionSpec>,
) -> Result<PbaDiscovery, crate::BmcError> {
    let started = std::time::Instant::now();
    let mut engine = BmcEngine::new(
        design,
        VerifyOptions::default()
            .pipeline(config.pipeline.clone())
            .validate_traces(false)
            .abstraction(within.cloned())
            .pba_discovery(true),
    );
    let mut last_reasons: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
    let mut stable_for = 0usize;
    let mut stable_at = None;
    let mut found_ce = false;
    let mut depth_reached = 0;
    for depth in 0..=config.max_depth {
        let run = engine.check(prop, depth)?;
        depth_reached = depth;
        match run.verdict {
            BmcVerdict::Counterexample(_) => {
                found_ce = true;
                break;
            }
            BmcVerdict::Unknown { .. } => break,
            _ => {}
        }
        let reasons = (run.latch_reasons.clone(), run.memory_reasons.clone());
        if depth > 0 && reasons == last_reasons {
            stable_for += 1;
            if stable_for >= config.stability_depth {
                stable_at = Some(depth);
                last_reasons = reasons;
                break;
            }
        } else {
            stable_for = 0;
        }
        last_reasons = reasons;
    }
    let mut kept_latches = vec![false; design.num_latches()];
    for &l in &last_reasons.0 {
        kept_latches[l] = true;
    }
    let mut kept_memories = vec![false; design.memories().len()];
    for &m in &last_reasons.1 {
        kept_memories[m] = true;
    }
    // Never keep less than the prior abstraction allowed.
    if let Some(w) = within {
        for (k, &was) in kept_latches.iter_mut().zip(&w.kept_latches) {
            *k = *k && was;
        }
        for (k, &was) in kept_memories.iter_mut().zip(&w.kept_memories) {
            *k = *k && was;
        }
    }
    Ok(PbaDiscovery {
        abstraction: AbstractionSpec {
            kept_latches,
            kept_memories,
        },
        stable_at,
        depth_reached,
        found_counterexample: found_ce,
        elapsed: started.elapsed(),
    })
}

/// Iterative abstraction (ref. \[10\]): repeat discovery on progressively
/// more abstract models until the kept sets stop shrinking or `max_iters`
/// runs have been performed.
///
/// # Errors
///
/// Propagates engine errors from any iteration.
pub fn iterative_abstraction(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    max_iters: usize,
) -> Result<PbaDiscovery, crate::BmcError> {
    let (reduced, config) = prereduce(design, config, 0);
    let (design, config) = (reduced.model(), &config);
    let mut current = discover(design, prop, config)?;
    if current.found_counterexample {
        return Ok(current);
    }
    for _ in 1..max_iters {
        let next = discover_within(design, prop, config, Some(&current.abstraction))?;
        if next.found_counterexample
            || next.abstraction.num_kept_latches() >= current.abstraction.num_kept_latches()
        {
            break;
        }
        current = next;
    }
    Ok(current)
}

/// Outcome of the discover-then-prove loop.
#[derive(Clone, Debug)]
pub struct AbstractProof {
    /// The abstraction that supported the proof.
    pub abstraction: AbstractionSpec,
    /// The proof obtained on the reduced model.
    pub verdict: crate::BmcVerdict,
    /// Discovery/refinement rounds taken.
    pub rounds: usize,
}

/// Discovers an abstraction, attempts the proof on the reduced model, and
/// refines when the reduced model produces a counterexample deeper than the
/// discovery depth — the outer loop the paper's methodology implies: PBA
/// "preserves the correctness of a property **up to a certain analysis
/// depth**", so a proof attempt beyond that depth may require more reasons.
///
/// Returns early with the counterexample if one is found on the *concrete*
/// model during discovery (the property simply fails).
///
/// # Errors
///
/// Propagates engine errors.
pub fn discover_and_prove(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    proof_depth: usize,
    max_rounds: usize,
) -> Result<AbstractProof, crate::BmcError> {
    let (reduced, config) = prereduce(design, config, 0);
    let design = reduced.model();
    let mut config = config;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let disc = discover(design, prop, &config)?;
        if disc.found_counterexample {
            // Re-run concretely to hand back a real, validated trace —
            // deliberately without the discovery budgets/wall limit, so
            // the witness search is not cut short.
            let mut engine = BmcEngine::new(
                design,
                VerifyOptions::default()
                    .emm(config.pipeline.emm)
                    .fraig(config.pipeline.fraig)
                    .rewrite(config.pipeline.rewrite)
                    .incremental(config.pipeline.incremental),
            );
            let run = engine.check(prop, disc.depth_reached)?;
            return Ok(AbstractProof {
                abstraction: disc.abstraction,
                verdict: run.verdict,
                rounds,
            });
        }
        let proof_options = VerifyOptions::default()
            .pipeline(config.pipeline.clone())
            .proofs(true)
            .validate_traces(false)
            .abstraction(Some(disc.abstraction.clone()));
        // The proof attempt honors the configured proving engine: the
        // bounded termination checks, or the k-induction closure (which
        // supports frozen abstractions through the same masks).
        let run = match config.pipeline.proof_engine {
            crate::options::ProofEngine::Bounded => {
                BmcEngine::new(design, proof_options).check(prop, proof_depth)?
            }
            crate::options::ProofEngine::KInduction => {
                crate::KInduction::new(design, proof_options).check(prop, proof_depth)?
            }
        };
        match run.verdict {
            crate::BmcVerdict::Counterexample(ref trace)
                if rounds < max_rounds && trace.depth() > disc.depth_reached =>
            {
                // The abstraction was too aggressive for depths beyond the
                // discovery window: extend discovery past the CE depth.
                config.stability_depth += config.stability_depth.max(4);
                config.max_depth = config.max_depth.max(trace.depth() + config.stability_depth);
                continue;
            }
            verdict => {
                return Ok(AbstractProof {
                    abstraction: disc.abstraction,
                    verdict,
                    rounds,
                })
            }
        }
    }
}

/// The placeholder result of a job the pool drained without running
/// (its governor was cancelled before the job was picked up): keep
/// everything — always sound — and report no progress.
fn cancelled_discovery(design: &Design) -> PbaDiscovery {
    PbaDiscovery {
        abstraction: AbstractionSpec::keep_all(design),
        stable_at: None,
        depth_reached: 0,
        found_counterexample: false,
        elapsed: Duration::ZERO,
    }
}

/// The per-job configuration of the parallel drivers: the shared config
/// with a [forked](ResourceGovernor::fork) governor, so each job counts
/// its own fault-injection events deterministically (independent of how
/// jobs interleave across workers) while still observing a cancellation
/// of the parent governor.
fn fork_config(config: &PbaConfig) -> PbaConfig {
    config.clone().governor(config.pipeline.governor.fork())
}

/// Runs [`discover`] for every property in `props` as one independent job
/// per property on `pool`, sharing one rewrite/fraig pre-reduction across
/// all of them. Each job builds its own engine (own solver, own contexts)
/// over the shared reduced model with a [forked](ResourceGovernor::fork)
/// governor; results come back merged **by job index** — `result[i]`
/// belongs to `props[i]` — so the output is identical at every pool
/// worker count, fault injection included.
///
/// The shared pre-reduction runs its fraig sweep on `pool` too
/// ([`ReducedModel::reduce`] with `pool.workers()` workers), which is
/// bit-identical at every worker count but schedules checks differently
/// from the classic sequential sweep the single-property [`discover`]
/// inherits through [`BmcEngine::new`].
///
/// # Errors
///
/// Propagates the first engine error in `props` order (spurious traces).
///
/// # Panics
///
/// Re-panics if a job panicked on its worker.
pub fn discover_all(
    design: &Design,
    props: &[usize],
    config: &PbaConfig,
    pool: &Pool,
) -> Result<Vec<PbaDiscovery>, crate::BmcError> {
    let (reduced, config) = prereduce(design, config, pool.workers());
    let model = reduced.model();
    let jobs: Vec<Job<'_, Result<PbaDiscovery, crate::BmcError>>> = props
        .iter()
        .map(|&prop| {
            let cfg = fork_config(&config);
            Box::new(move || discover(model, prop, &cfg)) as Job<'_, _>
        })
        .collect();
    pool.run(jobs)
        .into_iter()
        .map(|r| match r {
            JobResult::Done(d) => d,
            JobResult::Skipped => Ok(cancelled_discovery(model)),
            JobResult::Panicked(msg) => panic!("pba discovery job panicked: {msg}"),
        })
        .collect()
}

/// Runs [`discover_and_prove`] for every property in `props` as one
/// independent job per property on `pool`, with the same shared
/// pre-reduction, per-job forked governors, and by-index result merging
/// as [`discover_all`].
///
/// # Errors
///
/// Propagates the first engine error in `props` order.
///
/// # Panics
///
/// Re-panics if a job panicked on its worker.
pub fn discover_and_prove_all(
    design: &Design,
    props: &[usize],
    config: &PbaConfig,
    proof_depth: usize,
    max_rounds: usize,
    pool: &Pool,
) -> Result<Vec<AbstractProof>, crate::BmcError> {
    let (reduced, config) = prereduce(design, config, pool.workers());
    let model = reduced.model();
    let jobs: Vec<Job<'_, Result<AbstractProof, crate::BmcError>>> = props
        .iter()
        .map(|&prop| {
            let cfg = fork_config(&config);
            Box::new(move || discover_and_prove(model, prop, &cfg, proof_depth, max_rounds))
                as Job<'_, _>
        })
        .collect();
    pool.run(jobs)
        .into_iter()
        .map(|r| match r {
            JobResult::Done(d) => d,
            JobResult::Skipped => Ok(AbstractProof {
                abstraction: AbstractionSpec::keep_all(model),
                verdict: BmcVerdict::Unknown {
                    reason: emm_sat::ExhaustionReason::Cancelled,
                    deepest_clean_bound: None,
                },
                rounds: 0,
            }),
            JobResult::Panicked(msg) => panic!("pba prove job panicked: {msg}"),
        })
        .collect()
}
