//! Proof-based abstraction driver (Sections 2.2 and 4.3 of the paper).
//!
//! [`discover`] runs the falsification loop of BMC with per-latch and
//! per-memory selectors, accumulating *latch reasons* `LR_i` from every
//! refutation. Following ref. \[10\], it stops when the reason set has been
//! stable for a configured number of depths and returns an
//! [`AbstractionSpec`] naming the latches and memory modules the proofs
//! actually used; everything else can be freed in a *reduced model*.
//!
//! [`iterative_abstraction`] repeats discovery on progressively more
//! abstract models until the kept set reaches a fixpoint — the paper's
//! iterative abstraction, which is what lets the quicksort array module be
//! dropped entirely when checking the stack-only property P2 (Table 2).

use std::borrow::Cow;
use std::time::Duration;

use emm_aig::{fraig_design, rewrite_design, Design, FraigConfig, RewriteConfig};
use emm_core::EmmOptions;
use emm_sat::Budget;

use crate::engine::{AbstractionSpec, BmcEngine, BmcOptions, BmcVerdict};

/// PBA discovery configuration.
#[derive(Clone, Debug)]
pub struct PbaConfig {
    /// Depths the reason set must remain unchanged before stopping (the
    /// paper uses 10 for Table 2).
    pub stability_depth: usize,
    /// Hard depth bound for discovery.
    pub max_depth: usize,
    /// EMM options (selector granularity is forced on internally).
    pub emm: EmmOptions,
    /// Per-SAT-call budget.
    pub solve_budget: Budget,
    /// Wall-clock limit per discovery run.
    pub wall_limit: Option<Duration>,
    /// AIG-level fraig preprocessing. The multi-engine drivers
    /// ([`iterative_abstraction`], [`discover_and_prove`]) run the pass
    /// **once** on the input design and hand every engine the reduced
    /// model with fraiging disabled, instead of letting each
    /// [`BmcEngine::new`] repeat the identical pass.
    pub fraig: FraigConfig,
    /// Cut-based AIG rewriting, run (once, before fraig) by the same
    /// pre-reduction the multi-engine drivers apply to the fraig pass.
    /// The cut width and selection policy knobs (`cut_size`,
    /// `global_select`, [`RewriteConfig::wide`]) pass through unchanged.
    pub rewrite: RewriteConfig,
    /// Bound-to-bound incremental solving
    /// ([`BmcOptions::incremental`], default on). Discovery calls
    /// `check(prop, depth)` once per depth on one engine so the stability
    /// criterion can run between depths; with incremental solving the
    /// engine skips every counterexample check it already refuted, making
    /// the depth-by-depth loop (and each refinement iteration of
    /// [`iterative_abstraction`]) linear in solver calls instead of
    /// quadratic. `false` restores the restart-from-scratch baseline.
    pub incremental: bool,
}

impl Default for PbaConfig {
    fn default() -> Self {
        PbaConfig {
            stability_depth: 10,
            max_depth: 100,
            emm: EmmOptions::default(),
            solve_budget: Budget::unlimited(),
            wall_limit: None,
            fraig: FraigConfig::default(),
            rewrite: RewriteConfig::default(),
            incremental: true,
        }
    }
}

/// Applies the configured rewrite and fraig passes once, returning the
/// model every engine of a multi-engine driver should share (with the
/// per-engine passes switched off in the returned config).
fn prereduce<'d>(design: &'d Design, config: &PbaConfig) -> (Cow<'d, Design>, PbaConfig) {
    if !config.fraig.enabled && !config.rewrite.enabled {
        return (Cow::Borrowed(design), config.clone());
    }
    let mut model = design.clone();
    if config.rewrite.enabled {
        rewrite_design(&mut model, &config.rewrite);
    }
    if config.fraig.enabled {
        fraig_design(&mut model, &config.fraig);
    }
    let mut config = config.clone();
    config.fraig = FraigConfig::disabled();
    config.rewrite = RewriteConfig::disabled();
    (Cow::Owned(model), config)
}

/// Outcome of a discovery run.
#[derive(Clone, Debug)]
pub struct PbaDiscovery {
    /// The abstraction found (kept latches/memories).
    pub abstraction: AbstractionSpec,
    /// Depth at which the reason set became stable, if it did.
    pub stable_at: Option<usize>,
    /// Depth reached by the run.
    pub depth_reached: usize,
    /// `true` when discovery was cut short by a counterexample (the
    /// property fails; abstraction is moot).
    pub found_counterexample: bool,
    /// Wall time of the discovery run.
    pub elapsed: Duration,
}

/// Runs PBA reason discovery for `prop`, stopping at reason-set stability.
///
/// Discovery runs depth by depth so the stability criterion can be applied
/// between depths; each depth is one engine `check` call bounded to that
/// depth (the engine is incremental, so no work is repeated).
///
/// # Errors
///
/// Propagates [`crate::BmcError`] from the engine (spurious traces).
pub fn discover(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
) -> Result<PbaDiscovery, crate::BmcError> {
    discover_within(design, prop, config, None)
}

/// Like [`discover`], but starting from a prior abstraction: only kept
/// latches/memories are modeled, so the reason set can only shrink.
pub fn discover_within(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    within: Option<&AbstractionSpec>,
) -> Result<PbaDiscovery, crate::BmcError> {
    let started = std::time::Instant::now();
    let mut engine = BmcEngine::new(
        design,
        BmcOptions {
            emm: config.emm,
            proofs: false,
            solve_budget: config.solve_budget.clone(),
            wall_limit: config.wall_limit,
            validate_traces: false,
            abstraction: within.cloned(),
            pba_discovery: true,
            fraig: config.fraig,
            rewrite: config.rewrite,
            incremental: config.incremental,
            ..BmcOptions::default()
        },
    );
    let mut last_reasons: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
    let mut stable_for = 0usize;
    let mut stable_at = None;
    let mut found_ce = false;
    let mut depth_reached = 0;
    for depth in 0..=config.max_depth {
        let run = engine.check(prop, depth)?;
        depth_reached = depth;
        match run.verdict {
            BmcVerdict::Counterexample(_) => {
                found_ce = true;
                break;
            }
            BmcVerdict::Unknown { .. } => break,
            _ => {}
        }
        let reasons = (run.latch_reasons.clone(), run.memory_reasons.clone());
        if depth > 0 && reasons == last_reasons {
            stable_for += 1;
            if stable_for >= config.stability_depth {
                stable_at = Some(depth);
                last_reasons = reasons;
                break;
            }
        } else {
            stable_for = 0;
        }
        last_reasons = reasons;
    }
    let mut kept_latches = vec![false; design.num_latches()];
    for &l in &last_reasons.0 {
        kept_latches[l] = true;
    }
    let mut kept_memories = vec![false; design.memories().len()];
    for &m in &last_reasons.1 {
        kept_memories[m] = true;
    }
    // Never keep less than the prior abstraction allowed.
    if let Some(w) = within {
        for (k, &was) in kept_latches.iter_mut().zip(&w.kept_latches) {
            *k = *k && was;
        }
        for (k, &was) in kept_memories.iter_mut().zip(&w.kept_memories) {
            *k = *k && was;
        }
    }
    Ok(PbaDiscovery {
        abstraction: AbstractionSpec {
            kept_latches,
            kept_memories,
        },
        stable_at,
        depth_reached,
        found_counterexample: found_ce,
        elapsed: started.elapsed(),
    })
}

/// Iterative abstraction (ref. \[10\]): repeat discovery on progressively
/// more abstract models until the kept sets stop shrinking or `max_iters`
/// runs have been performed.
///
/// # Errors
///
/// Propagates engine errors from any iteration.
pub fn iterative_abstraction(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    max_iters: usize,
) -> Result<PbaDiscovery, crate::BmcError> {
    let (model, config) = prereduce(design, config);
    let (design, config) = (&*model, &config);
    let mut current = discover(design, prop, config)?;
    if current.found_counterexample {
        return Ok(current);
    }
    for _ in 1..max_iters {
        let next = discover_within(design, prop, config, Some(&current.abstraction))?;
        if next.found_counterexample
            || next.abstraction.num_kept_latches() >= current.abstraction.num_kept_latches()
        {
            break;
        }
        current = next;
    }
    Ok(current)
}

/// Outcome of the discover-then-prove loop.
#[derive(Clone, Debug)]
pub struct AbstractProof {
    /// The abstraction that supported the proof.
    pub abstraction: AbstractionSpec,
    /// The proof obtained on the reduced model.
    pub verdict: crate::BmcVerdict,
    /// Discovery/refinement rounds taken.
    pub rounds: usize,
}

/// Discovers an abstraction, attempts the proof on the reduced model, and
/// refines when the reduced model produces a counterexample deeper than the
/// discovery depth — the outer loop the paper's methodology implies: PBA
/// "preserves the correctness of a property **up to a certain analysis
/// depth**", so a proof attempt beyond that depth may require more reasons.
///
/// Returns early with the counterexample if one is found on the *concrete*
/// model during discovery (the property simply fails).
///
/// # Errors
///
/// Propagates engine errors.
pub fn discover_and_prove(
    design: &Design,
    prop: usize,
    config: &PbaConfig,
    proof_depth: usize,
    max_rounds: usize,
) -> Result<AbstractProof, crate::BmcError> {
    let (model, config) = prereduce(design, config);
    let design = &*model;
    let mut config = config;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let disc = discover(design, prop, &config)?;
        if disc.found_counterexample {
            // Re-run concretely to hand back a real, validated trace.
            let mut engine = BmcEngine::new(
                design,
                BmcOptions {
                    emm: config.emm,
                    fraig: config.fraig,
                    rewrite: config.rewrite,
                    incremental: config.incremental,
                    ..BmcOptions::default()
                },
            );
            let run = engine.check(prop, disc.depth_reached)?;
            return Ok(AbstractProof {
                abstraction: disc.abstraction,
                verdict: run.verdict,
                rounds,
            });
        }
        let mut engine = BmcEngine::new(
            design,
            BmcOptions {
                proofs: true,
                emm: config.emm,
                solve_budget: config.solve_budget.clone(),
                wall_limit: config.wall_limit,
                validate_traces: false,
                abstraction: Some(disc.abstraction.clone()),
                pba_discovery: false,
                fraig: config.fraig,
                rewrite: config.rewrite,
                incremental: config.incremental,
                ..BmcOptions::default()
            },
        );
        let run = engine.check(prop, proof_depth)?;
        match run.verdict {
            crate::BmcVerdict::Counterexample(ref trace)
                if rounds < max_rounds && trace.depth() > disc.depth_reached =>
            {
                // The abstraction was too aggressive for depths beyond the
                // discovery window: extend discovery past the CE depth.
                config.stability_depth += config.stability_depth.max(4);
                config.max_depth = config.max_depth.max(trace.depth() + config.stability_depth);
                continue;
            }
            verdict => {
                return Ok(AbstractProof {
                    abstraction: disc.abstraction,
                    verdict,
                    rounds,
                })
            }
        }
    }
}
