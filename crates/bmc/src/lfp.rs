//! Loop-free-path (`LFP`) constraints for the induction-style termination
//! checks of SAT-based BMC ([19] in the paper; lines 5–7 of Fig. 1 and 6–8
//! of Fig. 3).
//!
//! `LFP_i` states that the system states at frames `0..=i` are pairwise
//! distinct. The constraints are cumulative across depths — exactly the
//! monotone-growth shape the incremental solver lifecycle wants — so they
//! are added permanently to the solver but *activated* by a single shared
//! assumption literal: counterexample checks on the same solver simply do
//! not assume it. (Unlike the per-bound property clauses, which a refuted
//! bound retires via `emm_sat::Solver::retire_group`, LFP constraints stay
//! useful at every later bound, so a single never-retired activation
//! literal is the right granularity.)
//!
//! ## State under EMM
//!
//! With EMM the system state is the latches *plus the memory contents*,
//! but the whole point of the encoding is never to bit-blast the latter —
//! so frame-equality over memories cannot be compared directly. The sound
//! under-approximation used here prunes a pair of frames only when the
//! states are *provably* equal: all kept latches match **and no enabled
//! write separates the two frames** (memory contents at frame `j` equal
//! those at frame `i < j` whenever no write fired in frames `i..j-1`).
//! Each pair clause therefore carries the intervening write-enable
//! literals as additional "the states may differ" disjuncts. A write that
//! happens to store the value already present keeps the pair alive — a
//! completeness loss only, never a soundness one. Without this, a design
//! whose memory acts as state (say, a cell used as an extra counter) has
//! counterexamples deeper than its latch diameter, and a latch-only LFP
//! would prune every long window and "prove" the property.
//!
//! With an abstraction in force, only the *kept* latches constitute state;
//! freed latches are pseudo-primary inputs and must not count toward state
//! distinctness (otherwise no two frames would ever be provably equal).
//! Likewise only *kept* memories contribute write activity: a dropped
//! memory's reads are unconstrained pseudo-inputs, so it is not state in
//! the abstract model and its writes cannot distinguish frames.

use emm_sat::{CnfSink, Lit};

/// Incremental builder of pairwise-distinct-state constraints.
#[derive(Debug)]
pub struct LfpBuilder {
    /// Shared activation literal: assume it to enforce `LFP`.
    activation: Lit,
    /// Latch literals per recorded frame (already filtered to kept latches).
    frames: Vec<Vec<Lit>>,
    /// Write-activity literals per recorded frame: an enabled write at
    /// frame `t` means the memory contents at `t+1` may differ from `t`.
    write_frames: Vec<Vec<Lit>>,
    /// Positions (into the unfiltered latch vector) that participate.
    kept_positions: Vec<usize>,
    /// Total pair constraints added (for reporting).
    pairs: usize,
}

impl LfpBuilder {
    /// Creates a builder over `num_latches` latches, restricted to
    /// `kept_latches` when given.
    pub fn new<S: CnfSink + ?Sized>(
        sink: &mut S,
        num_latches: usize,
        kept_latches: Option<&[bool]>,
    ) -> Self {
        let kept_positions = match kept_latches {
            None => (0..num_latches).collect(),
            Some(mask) => {
                assert_eq!(mask.len(), num_latches);
                mask.iter()
                    .enumerate()
                    .filter(|(_, &k)| k)
                    .map(|(i, _)| i)
                    .collect()
            }
        };
        LfpBuilder {
            activation: sink.new_var().positive(),
            frames: Vec::new(),
            write_frames: Vec::new(),
            kept_positions,
            pairs: 0,
        }
    }

    /// The literal whose assumption activates all pair constraints.
    pub fn activation(&self) -> Lit {
        self.activation
    }

    /// Number of pairwise constraints emitted so far.
    pub fn num_pairs(&self) -> usize {
        self.pairs
    }

    /// Registers frame `k`'s latch literals (the full, unfiltered vector)
    /// and its write-activity literals (the enable of every kept-memory
    /// write port at frame `k`), then adds distinctness constraints
    /// against every earlier frame.
    pub fn add_frame<S: CnfSink + ?Sized>(
        &mut self,
        sink: &mut S,
        latch_lits: &[Lit],
        write_lits: &[Lit],
    ) {
        let state: Vec<Lit> = self.kept_positions.iter().map(|&i| latch_lits[i]).collect();
        for j in 0..self.frames.len() {
            self.add_pair(sink, j, &state);
        }
        self.frames.push(state);
        self.write_frames.push(write_lits.to_vec());
    }

    /// States at `frames[j]` and `state` must differ in some kept latch,
    /// or an enabled write in a frame between them may have changed the
    /// memory contents.
    fn add_pair<S: CnfSink + ?Sized>(&mut self, sink: &mut S, j: usize, state: &[Lit]) {
        self.pairs += 1;
        let old = self.frames[j].clone();
        let mut any_diff: Vec<Lit> = Vec::with_capacity(state.len() + 1);
        any_diff.push(!self.activation);
        for (&a, &b) in old.iter().zip(state) {
            if a == b {
                // Identical literals can never differ; contribute nothing.
                continue;
            }
            if a == !b {
                // Provably different: the pair constraint is trivially met.
                return;
            }
            let x = sink.new_var().positive();
            // x -> (a != b)
            sink.add_clause(&[!x, a, b]);
            sink.add_clause(&[!x, !a, !b]);
            any_diff.push(x);
        }
        // Writes in frames j..k-1 (k = the frame being added) may leave
        // the memory contents at k different from those at j, so the
        // states are not provably equal while any such write is enabled.
        for ws in &self.write_frames[j..] {
            any_diff.extend_from_slice(ws);
        }
        // If nothing can differ, the clause degenerates to !activation:
        // assuming activation then gives immediate UNSAT, which is exactly
        // the right semantics (two frames are provably equal).
        sink.add_clause(&any_diff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unroll::{UnrollConfig, Unroller};
    use emm_aig::{Design, LatchInit};
    use emm_sat::{SolveResult, Solver};

    /// A modulo-`m` counter design over `width` bits.
    fn mod_counter(width: usize, modulo: u64) -> Design {
        let mut d = Design::new();
        let count = d.new_latch_word("count", width, LatchInit::Zero);
        let inc = d.aig.inc(&count);
        let wrap = d.aig.eq_const(&count, modulo - 1);
        let zero = d.aig.const_word(0, width);
        let next = d.aig.mux_word(wrap, &zero, &inc);
        d.set_next_word(&count, &next);
        d.add_property("dummy", emm_aig::Aig::FALSE);
        d.check().expect("valid");
        d
    }

    /// The forward termination check I ∧ LFP_i becomes UNSAT exactly when
    /// the path length exceeds the number of distinct reachable states.
    #[test]
    fn forward_diameter_of_mod_counter() {
        let modulo = 5u64;
        let d = mod_counter(3, modulo);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        let mut lfp = LfpBuilder::new(&mut s, d.num_latches(), None);
        // A mod-5 counter has 5 distinct states: paths with 5 transitions
        // (6 states) must revisit.
        for k in 0..8usize {
            u.extend(&d, &mut s);
            lfp.add_frame(&mut s, &u.latch_lits(&d, k), &[]);
            let result = s.solve_with(&[lfp.activation()]);
            let expect = if (k as u64) < modulo {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(result, expect, "depth {k}");
        }
    }

    /// Without the activation assumption the pair constraints are inert.
    #[test]
    fn inactive_lfp_does_not_constrain() {
        let d = mod_counter(3, 2);
        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        let mut lfp = LfpBuilder::new(&mut s, d.num_latches(), None);
        for k in 0..6 {
            u.extend(&d, &mut s);
            lfp.add_frame(&mut s, &u.latch_lits(&d, k), &[]);
        }
        assert_eq!(s.solve(), SolveResult::Sat, "plain model stays satisfiable");
        assert_eq!(s.solve_with(&[lfp.activation()]), SolveResult::Unsat);
    }

    /// Restricting state to a kept subset changes the effective diameter.
    #[test]
    fn kept_mask_shrinks_state() {
        // Two independent counters; keep only the 1-bit one.
        let mut d = Design::new();
        let small = d.new_latch_word("small", 1, LatchInit::Zero);
        let ns = d.aig.word_not(&small);
        d.set_next_word(&small, &ns);
        let big = d.new_latch_word("big", 3, LatchInit::Zero);
        let nb = d.aig.inc(&big);
        d.set_next_word(&big, &nb);
        d.add_property("dummy", emm_aig::Aig::FALSE);
        d.check().expect("valid");

        let mut s = Solver::new();
        let mut u = Unroller::new(
            &d,
            &mut s,
            UnrollConfig {
                initial_state: true,
                ..UnrollConfig::default()
            },
        );
        let kept = vec![true, false, false, false]; // only the toggle bit
        let mut lfp = LfpBuilder::new(&mut s, d.num_latches(), Some(&kept));
        for k in 0..4 {
            u.extend(&d, &mut s);
            lfp.add_frame(&mut s, &u.latch_lits(&d, k), &[]);
        }
        // The toggle alone has 2 states; 3 frames must repeat.
        assert_eq!(s.solve_with(&[lfp.activation()]), SolveResult::Unsat);
    }
}
