//! Post-simplification DIMACS dumps of BMC instances, for external-solver
//! cross-checks.
//!
//! [`dump_bmc_cnf`] runs the exact clause pipeline of [`crate::BmcEngine`]
//! — [`Unroller`] unrolling, [`EmmEncoder`] memory constraints, and (when
//! enabled) the cross-frame [`Simplifier`] — but
//! targets a collecting [`VecSink`] instead of the in-tree CDCL solver.
//! The result is a plain [`Cnf`] that is **satisfiable iff the selected
//! property is falsifiable within the requested depth**, ready to be
//! handed to any external DIMACS solver:
//!
//! * every environment constraint is asserted at every frame (the
//!   unroller does this itself);
//! * the EMM encoder's active assumptions (exclusivity selectors) become
//!   unit clauses — a standalone instance has no assumption interface;
//! * the per-frame bad literals are materialized through the simplifier
//!   (emitting any lazily held gate clauses) and disjoined into one
//!   final clause.
//!
//! Because the dump shares the encoders with the live engine, its clause
//! and variable counts are the honest "what the solver saw" numbers for
//! the simplification settings in force — the corpus bench runner records
//! them per frontend file.

use emm_aig::Design;
use emm_core::{EmmEncoder, MemoryShape};
use emm_sat::dimacs::Cnf;
use emm_sat::simplify::Simplifier;
use emm_sat::{CnfSink, Lit, VecSink};

use crate::options::VerifyOptions;
use crate::unroll::{UnrollConfig, Unroller};

/// Error from [`dump_bmc_cnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpDimacsError {
    /// The property index does not exist in the design.
    PropertyOutOfRange {
        /// The requested index.
        property: usize,
        /// Number of properties the design has.
        available: usize,
    },
    /// The design failed [`Design::check`].
    Malformed(String),
}

impl std::fmt::Display for DumpDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpDimacsError::PropertyOutOfRange {
                property,
                available,
            } => write!(
                f,
                "property index {property} out of range (design has {available})"
            ),
            DumpDimacsError::Malformed(msg) => write!(f, "malformed design: {msg}"),
        }
    }
}

impl std::error::Error for DumpDimacsError {}

/// A dumped BMC instance: the CNF plus the literals that give it meaning.
#[derive(Debug, Clone)]
pub struct BmcCnf {
    /// The clauses, bad-disjunction and assumption units included.
    pub cnf: Cnf,
    /// The property index the dump encodes.
    pub property: usize,
    /// The inclusive depth bound.
    pub depth: usize,
    /// The materialized bad literal per frame `0..=depth`; their
    /// disjunction is the last clause of [`BmcCnf::cnf`].
    pub bad_lits: Vec<Lit>,
    /// The EMM assumptions asserted as unit clauses.
    pub assumptions: Vec<Lit>,
}

impl BmcCnf {
    /// Variables in the instance.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars
    }

    /// Clauses in the instance.
    pub fn num_clauses(&self) -> usize {
        self.cnf.clauses.len()
    }

    /// Renders the instance as DIMACS text with a comment header that
    /// records what the instance means.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "c emm-bmc dump: property {} through depth {}\n",
            self.property, self.depth
        ));
        out.push_str("c satisfiable iff the property is falsifiable within the depth\n");
        out.push_str(&self.cnf.to_dimacs());
        out
    }
}

/// Dumps the BMC instance for `property` of `design` through `depth`
/// frames (inclusive) as post-simplification CNF.
///
/// The pipeline options honoured are `options.pipeline.simplify` and
/// `options.pipeline.emm`; the design is encoded as handed in (callers
/// wanting the rewrite/fraig reduction should pre-reduce with
/// [`crate::ReducedModel`] and dump the reduced copy).
///
/// # Errors
///
/// Returns [`DumpDimacsError`] when the property index is out of range or
/// the design is malformed.
pub fn dump_bmc_cnf(
    design: &Design,
    property: usize,
    depth: usize,
    options: impl Into<VerifyOptions>,
) -> Result<BmcCnf, DumpDimacsError> {
    let options: VerifyOptions = options.into();
    design
        .check()
        .map_err(|e| DumpDimacsError::Malformed(e.to_string()))?;
    if property >= design.properties().len() {
        return Err(DumpDimacsError::PropertyOutOfRange {
            property,
            available: design.properties().len(),
        });
    }

    let mut sink = VecSink::new();
    let mut simplify = options
        .pipeline
        .simplify
        .enabled
        .then(|| Simplifier::new(options.pipeline.simplify));
    let unroll_config = UnrollConfig {
        initial_state: true,
        latch_selectors: false,
        kept_latches: None,
    };
    let mut unroller = match &mut simplify {
        Some(simp) => Unroller::new(design, &mut simp.attach(&mut sink), unroll_config),
        None => Unroller::new(design, &mut sink, unroll_config),
    };
    let shapes: Vec<MemoryShape> = design
        .memories()
        .iter()
        .map(|m| MemoryShape {
            addr_width: m.addr_width,
            data_width: m.data_width,
            read_ports: m.read_ports.len(),
            write_ports: m.write_ports.len(),
            arbitrary_init: matches!(m.init, emm_aig::MemInit::Arbitrary),
        })
        .collect();
    let mut emm = EmmEncoder::new(&shapes, options.pipeline.emm);

    // Mirror of the engine's `extend_one`: one transition frame, then the
    // EMM constraints of every memory at that frame.
    let extend = |unroller: &mut Unroller, emm: &mut EmmEncoder, sink: &mut dyn CnfSink| {
        let frame = unroller.extend(design, sink);
        let frames: Vec<_> = (0..design.memories().len())
            .map(|mi| unroller.memory_frame_lits(design, frame, mi))
            .collect();
        emm.add_frame(sink, &frames);
    };
    for _ in 0..=depth {
        match &mut simplify {
            Some(simp) => extend(&mut unroller, &mut emm, &mut simp.attach(&mut sink)),
            None => extend(&mut unroller, &mut emm, &mut sink),
        }
    }

    // Bad literal per frame, materialized so the lazily emitted cones
    // constrain them, then disjoined: SAT iff some frame reaches bad.
    let bad = design.properties()[property].bad;
    let materialize = |lit: Lit, sink: &mut VecSink, simp: &mut Option<Simplifier>| match simp {
        Some(simp) => simp.attach(sink).materialize(lit),
        None => lit,
    };
    let bad_lits: Vec<Lit> = (0..=depth)
        .map(|f| materialize(unroller.lit(f, bad), &mut sink, &mut simplify))
        .collect();
    sink.add_clause(&bad_lits);

    // The EMM selector assumptions hold unconditionally in a dump.
    let assumptions: Vec<Lit> = emm
        .all_active_assumptions()
        .into_iter()
        .map(|l| materialize(l, &mut sink, &mut simplify))
        .collect();
    for &a in &assumptions {
        sink.add_clause(&[a]);
    }

    let cnf = Cnf {
        num_vars: sink.num_vars(),
        clauses: sink.clauses,
    };
    Ok(BmcCnf {
        cnf,
        property,
        depth,
        bad_lits,
        assumptions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Aig, Design, LatchInit, MemInit};
    use emm_sat::SolveResult;

    use crate::{BmcEngine, BmcVerdict};

    /// 3-bit counter reaching 5 at depth 5.
    fn counter() -> Design {
        let mut d = Design::new();
        let count = d.new_latch_word("count", 3, LatchInit::Zero);
        let next = d.aig.inc(&count);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, 5);
        d.add_property("reaches5", bad);
        d.check().expect("well-formed");
        d
    }

    /// Write-then-read memory whose readback mismatch is unreachable.
    fn memory_echo() -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 2, MemInit::Zero);
        let addr = d.new_input_word("addr", 2);
        let data = d.new_input_word("data", 2);
        let (_seen, seen_q) = d.new_latch("seen", LatchInit::Zero);
        d.set_next(seen_q, Aig::TRUE);
        let addr_r = d.new_latch_word("addr_r", 2, LatchInit::Zero);
        let data_r = d.new_latch_word("data_r", 2, LatchInit::Zero);
        d.set_next_word(&addr_r, &addr);
        d.set_next_word(&data_r, &data);
        d.add_write_port(mem, addr.clone(), Aig::TRUE, data);
        let read = d.add_read_port(mem, addr_r.clone(), Aig::TRUE);
        let eq = d.aig.eq_word(&read, &data_r);
        let bad = d.aig.and(seen_q, !eq);
        d.add_property("mismatch", bad);
        d.check().expect("well-formed");
        d
    }

    fn solve_dump(d: &Design, depth: usize) -> SolveResult {
        let dump = dump_bmc_cnf(d, 0, depth, VerifyOptions::default()).expect("dump");
        // Round-trip through the text form to prove the dump is
        // self-contained external-solver input.
        let reparsed = Cnf::parse(&dump.to_dimacs()).expect("reparse");
        assert_eq!(reparsed, dump.cnf);
        reparsed.to_solver().solve()
    }

    #[test]
    fn counter_dump_matches_engine_verdicts() {
        let d = counter();
        assert_eq!(solve_dump(&d, 4), SolveResult::Unsat);
        assert_eq!(solve_dump(&d, 5), SolveResult::Sat);
        let run = BmcEngine::new(&d, VerifyOptions::default())
            .check(0, 5)
            .expect("check");
        assert!(matches!(run.verdict, BmcVerdict::Counterexample(_)));
    }

    #[test]
    fn memory_dump_matches_engine_verdicts() {
        let d = memory_echo();
        assert_eq!(solve_dump(&d, 6), SolveResult::Unsat);
        let run = BmcEngine::new(&d, VerifyOptions::default())
            .check(0, 6)
            .expect("check");
        assert!(matches!(
            run.verdict,
            BmcVerdict::BoundReached | BmcVerdict::Proof { .. }
        ));
    }

    #[test]
    fn dump_without_simplify_agrees() {
        let d = counter();
        let mut options = VerifyOptions::default();
        options.pipeline.simplify.enabled = false;
        for depth in [4usize, 5] {
            let dump = dump_bmc_cnf(&d, 0, depth, options.clone()).expect("dump");
            let expected = if depth == 5 {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(dump.cnf.to_solver().solve(), expected, "depth {depth}");
        }
    }

    #[test]
    fn bad_property_index_errs() {
        let d = counter();
        let err = dump_bmc_cnf(&d, 3, 1, VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, DumpDimacsError::PropertyOutOfRange { .. }));
    }
}
