//! The BMC engine: algorithms BMC-1, BMC-2 and BMC-3 of the paper.
//!
//! One [`BmcEngine`] instance owns two incremental SAT contexts over the
//! same design:
//!
//! * an **anchored** context whose frame 0 is the initial state — used for
//!   counterexample checks (`SAT(I ∧ ¬P_i ∧ C_i)`, Fig. 3 line 9) and the
//!   forward termination check (`SAT(I ∧ LFP_i ∧ C_i)`, line 6);
//! * a **floating** context whose frame 0 is unconstrained — used for the
//!   backward termination check (`SAT(LFP_i ∧ ¬P_i ∧ CP_i ∧ C_i)`, line 7).
//!   In this context *every* memory is treated as arbitrary-initialized
//!   (whatever its declared reset value), because an induction window may
//!   start in any reachable state; this is where the paper's precise
//!   arbitrary-initial-state modeling (Section 4.2) is load-bearing.
//!
//! Both contexts follow the **incremental solver lifecycle** (see the
//! "Solver lifecycle" section of `docs/ARCHITECTURE.md`): one long-lived
//! solver per context across the whole bound loop, per-bound property
//! clauses under activation groups retired on refutation, and cleared
//! counterexample bounds skipped on repeated [`BmcEngine::check`] calls.
//! The restart-from-scratch baseline is kept behind
//! [`BmcOptions::incremental`]` = false`.
//!
//! The engine configurations map to the paper's algorithms:
//!
//! | Paper | Configuration |
//! |---|---|
//! | BMC-1 (Fig. 1) | a design without memories (e.g. after [`emm_core::explicit_model`]), `proofs: true` |
//! | BMC-2 (Fig. 2) | memories + EMM, `proofs: false` |
//! | BMC-3 (Fig. 3) | memories + EMM, `proofs: true`, optionally PBA |
//!
//! ## The preprocessing and simplifying pipeline
//!
//! By default the engine reduces the design on a private copy — first
//! cut-based rewriting ([`emm_aig::rewrite`], restructuring inequivalent
//! logic into cheaper shapes), then fraiging ([`emm_aig::fraig`], merging
//! functionally equivalent cones) — and then routes every context's
//! clause traffic through the simplifying layer of [`emm_sat::simplify`]:
//!
//! ```text
//! Design ──rewrite──strash──fraig──> reduced model ──> Unroller ─┐
//!                                                      LfpBuilder ├──> SimplifySink ──> Solver
//!                                                      EmmEncoder ┘
//! ```
//!
//! The three layers are complementary: rewriting shrinks cones no
//! equivalence-based pass can touch (and its rebuild re-strashes the
//! graph, handing fraig better merge candidates); fraig merges
//! functionally equivalent cones once, before Tseitin encoding, so the
//! saving repeats at every unrolling depth; the sink then interns
//! whatever per-frame structure remains.
//!
//! The layer interns structurally identical gates across frames, folds
//! constants, and defers a gate's Tseitin clauses until something actually
//! references it (a dynamic cone-of-influence reduction at the literal
//! level); SAT sweeping of simulation-signature-equal cones is available
//! as an opt-in pass (`SimplifyConfig::sweeping`). Literals
//! handed to the solver as *assumptions* bypass `add_clause`, so the
//! engine materializes them first (see `Ctx::assumption`). Disable or
//! tune the layer through [`BmcOptions::simplify`]; its effect is
//! observable via [`BmcEngine::simplify_stats`] and
//! [`BmcEngine::solver_stats`].

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use emm_aig::{Design, FraigConfig, FraigStats, RewriteConfig, RewriteStats, Trace};
use emm_core::{EmmEncoder, EmmOptions, MemoryShape, SelectorGranularity};
use emm_sat::{
    Budget, CnfSink, ExhaustionReason, FaultSite, Lit, ResourceGovernor, Simplifier,
    SimplifyConfig, SimplifyStats, SolveResult, Solver,
};

use crate::lfp::LfpBuilder;
use crate::model::ReducedModel;
use crate::options::VerifyOptions;
use crate::unroll::{UnrollConfig, Unroller};

/// Engine options — the historical flat form, kept as a thin shim.
///
/// # Migration
///
/// New code should build a [`VerifyOptions`] instead: the same knobs,
/// grouped into a shared [`crate::PipelineOptions`] block with chainable
/// builder methods, accepted everywhere this struct is (the engine, the
/// PBA drivers, the verification server). Existing call sites keep
/// working unchanged — [`BmcEngine::new`] takes `impl Into<VerifyOptions>`
/// and `From<BmcOptions>` provides the conversion — but the struct is
/// frozen: new pipeline knobs (e.g. the parallel `workers` count) appear
/// only on [`VerifyOptions`].
///
/// ```
/// use emm_bmc::{BmcOptions, VerifyOptions};
///
/// // Old style (still compiles):
/// let old = BmcOptions { proofs: true, ..BmcOptions::default() };
/// // New style:
/// let new = VerifyOptions::default().proofs(true);
/// assert_eq!(VerifyOptions::from(old).proofs, new.proofs);
/// ```
#[derive(Clone, Debug)]
pub struct BmcOptions {
    /// EMM encoder options (selector granularity, encoding, eq. (6)).
    pub emm: EmmOptions,
    /// Run the induction-style termination checks (BMC-1/BMC-3). When
    /// `false` the engine is the falsification-only BMC-2 of Fig. 2.
    pub proofs: bool,
    /// Per-SAT-call resource budget.
    pub solve_budget: Budget,
    /// Overall wall-clock limit for a `check` call.
    pub wall_limit: Option<Duration>,
    /// Validate counterexample traces by re-simulation before returning
    /// them (on by default; a failure indicates an engine bug).
    pub validate_traces: bool,
    /// Freeze an abstraction: latches/memories outside the kept sets are
    /// removed from the model (the paper's *reduced model*).
    pub abstraction: Option<AbstractionSpec>,
    /// Enable proof-based-abstraction reason discovery: per-latch and
    /// per-memory selectors are created and every UNSAT counterexample
    /// check reports which of them the refutation used.
    pub pba_discovery: bool,
    /// Circuit simplification on the unrolled formula (structural hashing,
    /// SAT sweeping, lazy emission); see [`emm_sat::simplify`]. Enabled by
    /// default; use [`SimplifyConfig::disabled`] for the naive encoding.
    pub simplify: SimplifyConfig,
    /// AIG-level fraiging of the design before any unrolling (see
    /// [`emm_aig::fraig`]): functionally equivalent cones are merged once,
    /// at the netlist level, so the saving multiplies across every frame
    /// of every context. Enabled by default; use
    /// [`FraigConfig::disabled`] for the unreduced netlist. The engine
    /// works on the reduced model internally but still validates
    /// counterexample traces against the original design.
    ///
    /// The pass runs inside [`BmcEngine::new`], *before* any
    /// [`BmcOptions::wall_limit`] deadline exists; its cost is bounded by
    /// the deterministic [`FraigConfig`] caps (`max_checks`,
    /// `sat_conflicts`) instead. Callers constructing many engines over
    /// the same design (abstraction loops) should fraig once and disable
    /// it per engine, as [`crate::pba`] does.
    pub fraig: FraigConfig,
    /// Solve **incrementally across bounds** (the default): every context
    /// keeps one long-lived solver for the whole bound loop, each bound
    /// only emits the new frame's clauses, the per-bound property clause
    /// is added under an activation group and physically retired
    /// ([`emm_sat::Solver::retire_group`]) once its bound is refuted, and
    /// counterexample checks already proven UNSAT are skipped on repeated
    /// [`BmcEngine::check`] calls (what makes [`crate::pba`]'s
    /// depth-by-depth discovery loop linear instead of quadratic in
    /// solver calls).
    ///
    /// When `false` the engine rebuilds every context — solver, unroller,
    /// EMM, LFP, simplifier — from scratch at each bound, re-encoding
    /// frames `0..=k` and solving cold: the paper-era baseline, kept for
    /// differential testing and for the bench harness's `incremental`
    /// mode (which measures one against the other).
    ///
    /// # Examples
    ///
    /// Both modes must agree on verdicts; the incremental engine just
    /// gets there without re-encoding:
    ///
    /// ```
    /// use emm_aig::{Design, LatchInit};
    /// use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
    ///
    /// let mut d = Design::new();
    /// let count = d.new_latch_word("count", 3, LatchInit::Zero);
    /// let next = d.aig.inc(&count);
    /// d.set_next_word(&count, &next);
    /// let bad = d.aig.eq_const(&count, 5);
    /// d.add_property("reaches5", bad);
    /// d.check().expect("well-formed");
    ///
    /// let mut incremental = BmcEngine::new(&d, BmcOptions::default());
    /// let mut restart = BmcEngine::new(
    ///     &d,
    ///     BmcOptions { incremental: false, ..BmcOptions::default() },
    /// );
    /// let a = incremental.check(0, 8).unwrap();
    /// let b = restart.check(0, 8).unwrap();
    /// assert!(matches!(a.verdict, BmcVerdict::Counterexample(ref t) if t.depth() == 6));
    /// assert!(matches!(b.verdict, BmcVerdict::Counterexample(ref t) if t.depth() == 6));
    /// // Each bound's wall time is recorded either way (bounds 0..=5).
    /// assert_eq!(a.per_bound_seconds.len(), 6);
    /// assert_eq!(b.per_bound_seconds.len(), 6);
    /// ```
    pub incremental: bool,
    /// Cut-based AIG rewriting of the design before any unrolling (see
    /// [`emm_aig::rewrite`]): k-feasible cut cones are re-synthesized from
    /// NPN-canonical implementations wherever that strictly reduces the
    /// AND count, with accepted rewrites chosen by a global
    /// non-overlapping selection over their fanout-free cones. Runs
    /// **before** the fraig pass — rewriting restructures inequivalent
    /// logic, and its rebuild hands fraig a freshly strashed graph.
    /// Enabled by default (4-input cuts, global selection); the knobs
    /// thread straight through: `RewriteConfig { cut_size, global_select,
    /// .. }`, with [`RewriteConfig::wide`] for 6-input `u64`-table cuts
    /// (the bench harness's `rewrite6_fraig` mode) and
    /// [`RewriteConfig::disabled`] for the unrewritten netlist. Like
    /// fraiging, the pass is deterministic, runs inside
    /// [`BmcEngine::new`], and multi-engine drivers should pre-reduce
    /// once instead (see [`crate::pba`]).
    pub rewrite: RewriteConfig,
    /// Pipeline-wide resource governor: a deadline, lifetime conflict /
    /// propagation caps, a solver memory ceiling, and a shared
    /// cooperative cancellation token, threaded through every stage —
    /// the rewrite and fraig preprocessing in [`BmcEngine::new`], the
    /// simplifying sink's SAT sweeper, the EMM constraint encoder, the
    /// frame unrolling loop, and both incremental solvers. A trip
    /// anywhere degrades gracefully: preprocessing returns its
    /// best-so-far reduction (with `interrupted` stats), and `check`
    /// returns [`BmcVerdict::Unknown`] naming the reason and the
    /// deepest cleanly refuted bound. Keep a clone and call
    /// [`ResourceGovernor::cancel`] to stop a run from another thread;
    /// resume by raising the limits via [`BmcEngine::set_governor`] and
    /// calling [`BmcEngine::check`] again.
    pub governor: ResourceGovernor,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            emm: EmmOptions::default(),
            proofs: false,
            solve_budget: Budget::unlimited(),
            wall_limit: None,
            validate_traces: true,
            abstraction: None,
            pba_discovery: false,
            simplify: SimplifyConfig::default(),
            incremental: true,
            fraig: FraigConfig::default(),
            rewrite: RewriteConfig::default(),
            governor: ResourceGovernor::unlimited(),
        }
    }
}

/// A frozen abstraction (from PBA discovery or elsewhere).
#[derive(Clone, Debug)]
pub struct AbstractionSpec {
    /// Latches to keep (`len == design.num_latches()`).
    pub kept_latches: Vec<bool>,
    /// Memory modules to keep (`len == design.memories().len()`).
    pub kept_memories: Vec<bool>,
}

impl AbstractionSpec {
    /// An abstraction keeping everything (identity).
    pub fn keep_all(design: &Design) -> AbstractionSpec {
        AbstractionSpec {
            kept_latches: vec![true; design.num_latches()],
            kept_memories: vec![true; design.memories().len()],
        }
    }

    /// An abstraction keeping exactly a cone of influence (see
    /// [`emm_aig::coi::cone_of_influence`]). COI is a *sound* static
    /// abstraction — everything outside the cone provably cannot affect
    /// the property — so, unlike PBA output, it requires no refinement.
    pub fn from_cone(cone: &emm_aig::coi::Cone) -> AbstractionSpec {
        AbstractionSpec {
            kept_latches: cone.latches.clone(),
            kept_memories: cone.memories.clone(),
        }
    }

    /// Intersection with another abstraction (keep only what both keep).
    pub fn intersect(&self, other: &AbstractionSpec) -> AbstractionSpec {
        AbstractionSpec {
            kept_latches: self
                .kept_latches
                .iter()
                .zip(&other.kept_latches)
                .map(|(&a, &b)| a && b)
                .collect(),
            kept_memories: self
                .kept_memories
                .iter()
                .zip(&other.kept_memories)
                .map(|(&a, &b)| a && b)
                .collect(),
        }
    }

    /// Number of kept latches (the paper's reduced-model "FF" count).
    pub fn num_kept_latches(&self) -> usize {
        self.kept_latches.iter().filter(|&&k| k).count()
    }

    /// Number of kept memories.
    pub fn num_kept_memories(&self) -> usize {
        self.kept_memories.iter().filter(|&&k| k).count()
    }
}

/// How a proof was obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProofKind {
    /// Forward termination: `I ∧ LFP_i` unsatisfiable (reachability
    /// diameter reached) — "forward induction proof" in the paper's tables.
    ForwardDiameter,
    /// Backward termination: `LFP_i ∧ ¬P_i ∧ CP_i` unsatisfiable
    /// (k-induction step) — "backward induction".
    BackwardInduction,
}

/// Outcome of a bounded check.
#[derive(Clone, Debug)]
pub enum BmcVerdict {
    /// The property holds in all reachable states.
    Proof {
        /// Which termination criterion concluded.
        kind: ProofKind,
        /// Depth at which the criterion held (the proof diameter `D`).
        depth: usize,
    },
    /// A real counterexample (witness) of the given trace.
    Counterexample(Trace),
    /// The property holds in all reachable states, closed *unboundedly*
    /// by the [`KInduction`](crate::KInduction) engine: the base case is
    /// counterexample-free up to `k` and the simple-path inductive step
    /// at depth `k` is unsatisfiable. Distinct from [`BmcVerdict::Proof`]
    /// (`proof@k`), which records a bounded termination criterion inside
    /// the bounded engine's depth budget.
    Proved {
        /// The induction depth that closed the property.
        k: usize,
    },
    /// No counterexample up to the bound; nothing proved.
    BoundReached,
    /// A resource limit ended the run without an answer. Never a wrong
    /// answer: every completed bound's refutation still stands, and a
    /// repeated [`BmcEngine::check`] with a raised budget (see
    /// [`BmcEngine::set_governor`]) resumes past the clean bounds.
    Unknown {
        /// Which resource ran out (deadline, work cap, memory ceiling,
        /// or an external cancellation).
        reason: ExhaustionReason,
        /// Deepest bound whose counterexample check completed UNSAT
        /// before exhaustion — the resume point. `None` when no bound
        /// was cleanly refuted (or the refutations were discarded by a
        /// context rebuild).
        deepest_clean_bound: Option<u32>,
    },
}

impl BmcVerdict {
    /// `true` for the positive verdicts: [`BmcVerdict::Proof`] (bounded
    /// termination) and [`BmcVerdict::Proved`] (k-induction closure).
    pub fn is_proof(&self) -> bool {
        matches!(self, BmcVerdict::Proof { .. } | BmcVerdict::Proved { .. })
    }

    /// `true` for [`BmcVerdict::Counterexample`].
    pub fn is_counterexample(&self) -> bool {
        matches!(self, BmcVerdict::Counterexample(_))
    }

    /// `true` for [`BmcVerdict::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, BmcVerdict::Unknown { .. })
    }
}

/// Wall-clock seconds per pipeline phase, reported in [`BmcRun`]. The
/// rewrite and fraig entries cover the preprocessing that ran in
/// [`BmcEngine::new`] (once per engine); encode and solve accumulate
/// over the reported `check` call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Cut-based AIG rewriting ([`BmcOptions::rewrite`]).
    pub rewrite: f64,
    /// Fraig reduction ([`BmcOptions::fraig`]).
    pub fraig: f64,
    /// Frame unrolling plus EMM/LFP constraint emission.
    pub encode: f64,
    /// SAT solving (all termination and counterexample queries).
    pub solve: f64,
    /// Between-bounds solver inprocessing ([`emm_sat::Solver::inprocess`]):
    /// vivification, subsumption, probing amortized across the bound loop.
    pub inprocess: f64,
}

/// Result of [`BmcEngine::check`].
#[derive(Clone, Debug)]
pub struct BmcRun {
    /// The verdict.
    pub verdict: BmcVerdict,
    /// Last depth fully processed.
    pub depth_reached: usize,
    /// Wall-clock time spent in this call.
    pub elapsed: Duration,
    /// Wall-clock seconds per processed bound (encoding plus every solver
    /// call at that bound), `per_bound_seconds[k]` for bound `k`. The
    /// bench harness's `incremental` mode plots these against the
    /// restart-from-scratch baseline.
    pub per_bound_seconds: Vec<f64>,
    /// Latch reasons accumulated by PBA discovery (latch indices),
    /// cumulative across all `check` calls on this engine.
    pub latch_reasons: Vec<usize>,
    /// Memory reasons accumulated by PBA discovery (memory indices),
    /// cumulative across all `check` calls on this engine.
    pub memory_reasons: Vec<usize>,
    /// Wall-clock seconds per pipeline phase (preprocessing once per
    /// engine; encode/solve for this call).
    pub phase_seconds: PhaseSeconds,
}

/// Engine errors.
#[derive(Debug)]
pub enum BmcError {
    /// A counterexample failed re-simulation — an internal soundness bug.
    SpuriousTrace(String),
}

impl std::fmt::Display for BmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BmcError::SpuriousTrace(msg) => write!(f, "spurious counterexample trace: {msg}"),
        }
    }
}

impl std::error::Error for BmcError {}

/// One SAT context (solver + unroller + EMM + LFP + simplifier). Shared
/// crate-internally with the [`crate::KInduction`] engine, whose step
/// context is exactly the bounded engine's floating context.
pub(crate) struct Ctx {
    pub(crate) solver: Solver,
    pub(crate) unroller: Unroller,
    pub(crate) emm: EmmEncoder,
    /// Maps design memory index -> EMM encoder index (kept memories only).
    pub(crate) emm_index: Vec<Option<usize>>,
    pub(crate) lfp: Option<LfpBuilder>,
    /// Cross-frame simplification state, when enabled. All clause traffic
    /// from the unroller / EMM / LFP flows through `simplify.attach(solver)`
    /// so gates are interned, swept, and lazily emitted.
    pub(crate) simplify: Option<Simplifier>,
    /// Per-EMM-slot count of init reads whose address cones have already
    /// been materialized (so `ensure_depth` only touches new ones).
    init_reads_materialized: Vec<usize>,
}

impl Ctx {
    /// Prepares `lit` for use as a solve assumption: resolves sweep
    /// substitutions and emits any still-lazy defining clauses.
    pub(crate) fn assumption(&mut self, lit: Lit) -> Lit {
        match &mut self.simplify {
            Some(simp) => simp.attach(&mut self.solver).materialize(lit),
            None => lit,
        }
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("frames", &self.unroller.num_frames())
            .finish()
    }
}

/// The incremental BMC engine. See the crate docs for the mapping to the
/// paper's algorithms.
#[derive(Debug)]
pub struct BmcEngine<'d> {
    /// The design as handed in — the reference semantics traces are
    /// validated against.
    design: &'d Design,
    /// The model actually encoded: the original, or an owned
    /// rewrite/fraig-reduced copy of it (identical interface, fewer gates).
    model: Cow<'d, Design>,
    rewrite_stats: Option<RewriteStats>,
    fraig_stats: Option<FraigStats>,
    options: VerifyOptions,
    anchored: Ctx,
    floating: Option<Ctx>,
    /// Per property: deepest bound whose counterexample check is already
    /// UNSAT in the anchored solver. The formula only grows (retired
    /// clauses are redundant), so those answers are monotone and repeated
    /// `check` calls skip them (incremental mode only).
    cleared_depth: HashMap<usize, usize>,
    /// PBA reasons accumulated across every check (they survive the
    /// cleared-bound skipping, which no longer re-solves old bounds).
    latch_reasons: HashSet<usize>,
    memory_reasons: HashSet<usize>,
    /// Per-bound property clauses physically retired after their bound
    /// was refuted (see [`BmcOptions::incremental`]).
    prop_clauses_retired: u64,
    /// The property the termination (proof) queries have run for. Those
    /// queries are bound-exact (see `process_bound`), so switching a
    /// proof-mode engine to a different property rebuilds the contexts —
    /// otherwise the new property's backward-induction checks could never
    /// run at the already-unrolled bounds and proofs would be missed.
    proofs_prop: Option<usize>,
    /// The governor in force: [`BmcOptions::governor`] with the current
    /// `check` call's wall-limit deadline min-combined in. Installed on
    /// every context's solver, sweeper and EMM encoder.
    governor: ResourceGovernor,
    /// Wall time of the preprocessing phases (run once, in `new`).
    rewrite_seconds: f64,
    fraig_seconds: f64,
    /// Encode/solve wall time accumulated over the current `check` call.
    encode_seconds: f64,
    solve_seconds: f64,
    inprocess_seconds: f64,
}

impl<'d> BmcEngine<'d> {
    /// Creates an engine for `design`.
    ///
    /// # Panics
    ///
    /// Panics if the design is malformed or an abstraction mask has the
    /// wrong length.
    ///
    /// # Examples
    ///
    /// Falsifying a counter property (the engine defaults run the full
    /// rewrite → fraig → simplify pipeline):
    ///
    /// ```
    /// use emm_aig::{Design, LatchInit};
    /// use emm_bmc::{BmcEngine, BmcOptions, BmcVerdict};
    ///
    /// let mut d = Design::new();
    /// let count = d.new_latch_word("count", 4, LatchInit::Zero);
    /// let next = d.aig.inc(&count);
    /// d.set_next_word(&count, &next);
    /// let bad = d.aig.eq_const(&count, 9);
    /// d.add_property("reaches9", bad);
    /// d.check().expect("well-formed");
    ///
    /// let mut engine = BmcEngine::new(&d, BmcOptions::default());
    /// let run = engine.check(0, 20).expect("no spurious traces");
    /// match run.verdict {
    ///     BmcVerdict::Counterexample(trace) => assert_eq!(trace.depth(), 10),
    ///     other => panic!("expected a counterexample, got {other:?}"),
    /// }
    /// ```
    pub fn new(design: &'d Design, options: impl Into<VerifyOptions>) -> BmcEngine<'d> {
        let options = options.into();
        // Preprocessing pipeline on a private copy: rewrite → fraig (see
        // [`ReducedModel::reduce`] for the ordering and the parallel
        // sweep selection).
        let reduced = ReducedModel::reduce(
            design,
            &options.pipeline.rewrite,
            &options.pipeline.fraig,
            &options.pipeline.governor,
            options.workers,
        );
        Self::from_reduced(reduced, options)
    }

    /// Creates an engine over an already-reduced model, skipping the
    /// in-constructor preprocessing entirely — multi-engine drivers
    /// ([`crate::pba`], the verification server) reduce once with
    /// [`ReducedModel::reduce`] and share the handle across engines.
    /// Traces are still validated against [`ReducedModel::original`].
    ///
    /// # Panics
    ///
    /// Panics if the design is malformed or an abstraction mask has the
    /// wrong length.
    pub fn with_model(
        reduced: &'d ReducedModel<'_>,
        options: impl Into<VerifyOptions>,
    ) -> BmcEngine<'d> {
        let shallow = ReducedModel {
            original: reduced.original,
            model: Cow::Borrowed(reduced.model()),
            rewrite_stats: reduced.rewrite_stats,
            fraig_stats: reduced.fraig_stats,
            rewrite_seconds: reduced.rewrite_seconds,
            fraig_seconds: reduced.fraig_seconds,
        };
        Self::from_reduced(shallow, options.into())
    }

    fn from_reduced(reduced: ReducedModel<'d>, mut options: VerifyOptions) -> BmcEngine<'d> {
        if options.pba_discovery
            && matches!(options.pipeline.emm.selectors, SelectorGranularity::None)
        {
            options.pipeline.emm.selectors = SelectorGranularity::PerMemory;
        }
        let design = reduced.original;
        if let Some(a) = &options.abstraction {
            assert_eq!(a.kept_latches.len(), design.num_latches());
            assert_eq!(a.kept_memories.len(), design.memories().len());
        }
        let ReducedModel {
            original: design,
            model,
            rewrite_stats,
            fraig_stats,
            rewrite_seconds,
            fraig_seconds,
        } = reduced;
        let governor = options.pipeline.governor.clone();
        let anchored = Self::make_ctx(&model, &options, &governor, true);
        let floating = options
            .proofs
            .then(|| Self::make_ctx(&model, &options, &governor, false));
        BmcEngine {
            design,
            model,
            rewrite_stats,
            fraig_stats,
            options,
            anchored,
            floating,
            cleared_depth: HashMap::new(),
            latch_reasons: HashSet::new(),
            memory_reasons: HashSet::new(),
            prop_clauses_retired: 0,
            proofs_prop: None,
            governor,
            rewrite_seconds,
            fraig_seconds,
            encode_seconds: 0.0,
            solve_seconds: 0.0,
            inprocess_seconds: 0.0,
        }
    }

    pub(crate) fn make_ctx(
        design: &Design,
        options: &VerifyOptions,
        governor: &ResourceGovernor,
        anchored: bool,
    ) -> Ctx {
        let mut solver = Solver::with_config(options.pipeline.solver.clone());
        solver.set_governor(governor.clone());
        let mut simplify = options.pipeline.simplify.enabled.then(|| {
            let mut s = Simplifier::new(options.pipeline.simplify);
            s.set_governor(governor.clone());
            s
        });
        let unroll_config = UnrollConfig {
            initial_state: anchored,
            latch_selectors: options.pba_discovery && anchored,
            kept_latches: options.abstraction.as_ref().map(|a| a.kept_latches.clone()),
        };
        let kept_latches = unroll_config.kept_latches.clone();
        let unroller = match &mut simplify {
            Some(simp) => {
                let mut sink = simp.attach(&mut solver);
                Unroller::new(design, &mut sink, unroll_config)
            }
            None => Unroller::new(design, &mut solver, unroll_config),
        };
        // EMM shapes for kept memories. The floating context treats every
        // memory as arbitrary-init: an induction window may start anywhere.
        let mut shapes = Vec::new();
        let mut emm_index = Vec::new();
        for (mi, m) in design.memories().iter().enumerate() {
            let kept = options
                .abstraction
                .as_ref()
                .map(|a| a.kept_memories[mi])
                .unwrap_or(true);
            if kept {
                emm_index.push(Some(shapes.len()));
                shapes.push(MemoryShape {
                    addr_width: m.addr_width,
                    data_width: m.data_width,
                    read_ports: m.read_ports.len(),
                    write_ports: m.write_ports.len(),
                    arbitrary_init: !anchored || matches!(m.init, emm_aig::MemInit::Arbitrary),
                });
            } else {
                emm_index.push(None);
            }
        }
        let mut emm = EmmEncoder::new(&shapes, options.pipeline.emm);
        emm.set_governor(governor.clone());
        let lfp = options
            .proofs
            .then(|| LfpBuilder::new(&mut solver, design.num_latches(), kept_latches.as_deref()));
        let init_reads_materialized = vec![0; shapes.len()];
        Ctx {
            solver,
            unroller,
            emm,
            emm_index,
            lfp,
            simplify,
            init_reads_materialized,
        }
    }

    /// The design under verification (as handed to [`BmcEngine::new`]).
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The model the engine actually encodes: the original design, or the
    /// reduced copy when [`BmcOptions::rewrite`] and/or
    /// [`BmcOptions::fraig`] are enabled.
    pub fn model(&self) -> &Design {
        &self.model
    }

    /// Counters of the fraig preprocessing pass, when it ran.
    pub fn fraig_stats(&self) -> Option<&FraigStats> {
        self.fraig_stats.as_ref()
    }

    /// Counters of the cut-based rewriting pass, when it ran.
    pub fn rewrite_stats(&self) -> Option<&RewriteStats> {
        self.rewrite_stats.as_ref()
    }

    /// Cumulative EMM constraint statistics of the anchored context.
    pub fn emm_stats(&self) -> emm_core::EmmStats {
        self.anchored.emm.stats()
    }

    /// Counters of the anchored context's simplifying layer, when enabled.
    pub fn simplify_stats(&self) -> Option<SimplifyStats> {
        self.anchored.simplify.as_ref().map(|s| *s.stats())
    }

    /// Raw CDCL statistics of the anchored context's solver (variable and
    /// clause counts reflect what the encoders actually emitted).
    pub fn solver_stats(&self) -> (usize, emm_sat::SolverStats) {
        (
            self.anchored.solver.num_vars(),
            *self.anchored.solver.stats(),
        )
    }

    /// Frames currently unrolled in the anchored context.
    pub fn depth(&self) -> usize {
        self.anchored.unroller.num_frames()
    }

    /// Per-bound property clauses physically retired after their bound was
    /// refuted. Together with the sweep-retired Tseitin clauses counted in
    /// [`SimplifyStats::clauses_retired`](emm_sat::SimplifyStats) this
    /// accounts for every retirement the anchored solver reports in
    /// [`emm_sat::SolverStats::retired_clauses`].
    pub fn property_clauses_retired(&self) -> u64 {
        self.prop_clauses_retired
    }

    /// Replaces the pipeline governor on the engine and on every live
    /// context (solvers, sweepers, EMM encoders). This is how a run that
    /// ended in [`BmcVerdict::Unknown`] is resumed: install a governor
    /// with raised (or no) limits and call [`BmcEngine::check`] again —
    /// in incremental mode the cleanly refuted bounds are skipped, not
    /// re-solved. A cancelled or fault-armed governor stays tripped until
    /// replaced (or [`ResourceGovernor::reset_cancellation`] is called).
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.options.pipeline.governor = governor.clone();
        self.governor = governor;
        self.install_governor();
    }

    /// The governor currently in force.
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    /// Installs `self.governor` on both contexts' solver, sweeper and
    /// EMM encoder.
    fn install_governor(&mut self) {
        for ctx in std::iter::once(&mut self.anchored).chain(self.floating.as_mut()) {
            ctx.solver.set_governor(self.governor.clone());
            if let Some(simp) = &mut ctx.simplify {
                simp.set_governor(self.governor.clone());
            }
            ctx.emm.set_governor(self.governor.clone());
        }
    }

    /// Whether a context's EMM encoder aborted emission mid-frame: its
    /// most recent frame is under-constrained, so its satisfiable answers
    /// can no longer be trusted and the contexts must be rebuilt before
    /// the next query.
    fn poisoned(&self) -> bool {
        self.anchored.emm.interrupted()
            || self.floating.as_ref().is_some_and(|f| f.emm.interrupted())
    }

    /// The [`BmcVerdict::Unknown`] for the current resume state, with the
    /// reason falling back to the governor's own trip cause.
    fn unknown_verdict(&self, prop: usize, reason: Option<ExhaustionReason>) -> BmcVerdict {
        BmcVerdict::Unknown {
            reason: reason
                .or_else(|| self.governor.poll())
                .unwrap_or(ExhaustionReason::Deadline),
            deepest_clean_bound: self.cleared_depth.get(&prop).map(|&d| d as u32),
        }
    }

    /// Extends every context to include frame `k`. Polls the governor
    /// between frames (each completed unrolling is one
    /// [`FaultSite::Frame`] event) and stops early when it trips;
    /// `Some(reason)` means the depth was **not** reached. A trip between
    /// frames leaves the contexts clean (no partial frame); a trip inside
    /// the EMM encoder poisons them (see [`BmcEngine::poisoned`]).
    fn ensure_depth(&mut self, k: usize) -> Option<ExhaustionReason> {
        let model: &Design = &self.model;
        let governor = self.governor.clone();
        for ctx in std::iter::once(&mut self.anchored).chain(self.floating.as_mut()) {
            if let Some(reason) = Self::extend_ctx_to(model, ctx, k, &governor) {
                return Some(reason);
            }
        }
        None
    }

    /// Extends one context to include frame `k` (shared with the
    /// k-induction engine's step context — see [`BmcEngine::ensure_depth`]
    /// for the governor and poisoning semantics).
    pub(crate) fn extend_ctx_to(
        model: &Design,
        ctx: &mut Ctx,
        k: usize,
        governor: &ResourceGovernor,
    ) -> Option<ExhaustionReason> {
        let Ctx {
            solver,
            unroller,
            emm,
            emm_index,
            lfp,
            simplify,
            init_reads_materialized,
        } = ctx;
        while unroller.num_frames() <= k {
            if let Some(reason) = governor.poll() {
                return Some(reason);
            }
            match simplify {
                Some(simp) => {
                    let mut sink = simp.attach(solver);
                    Self::extend_one(model, unroller, emm, emm_index, lfp, &mut sink);
                    // Trace extraction reads literals that may sit
                    // outside every emitted clause under lazy emission;
                    // materialize them so the model constrains them:
                    // initial-state read addresses (they feed the
                    // counterexample memory seeds) and every read
                    // port's enable — including those of memories an
                    // abstraction dropped, whose EMM constraints were
                    // never emitted.
                    for slot in emm_index.iter().flatten() {
                        let done = &mut init_reads_materialized[*slot];
                        let reads = emm.init_reads(*slot);
                        for ir in &reads[*done..] {
                            for &l in &ir.addr {
                                sink.materialize(l);
                            }
                        }
                        *done = reads.len();
                    }
                    let frame = unroller.num_frames() - 1;
                    for m in model.memories() {
                        for rp in &m.read_ports {
                            let en = unroller.lit(frame, rp.en);
                            sink.materialize(en);
                        }
                    }
                }
                None => Self::extend_one(model, unroller, emm, emm_index, lfp, solver),
            }
            if emm.interrupted() {
                return Some(governor.poll().unwrap_or(ExhaustionReason::Cancelled));
            }
            governor.note(FaultSite::Frame);
        }
        None
    }

    /// Unrolls one frame and emits its EMM and LFP constraints into `sink`.
    fn extend_one(
        model: &Design,
        unroller: &mut Unroller,
        emm: &mut EmmEncoder,
        emm_index: &[Option<usize>],
        lfp: &mut Option<LfpBuilder>,
        sink: &mut dyn CnfSink,
    ) {
        let frame = unroller.extend(model, sink);
        // EMM constraints for kept memories.
        let mut frames = Vec::new();
        for (mi, slot) in emm_index.iter().enumerate() {
            if slot.is_some() {
                frames.push(unroller.memory_frame_lits(model, frame, mi));
            }
        }
        emm.add_frame(sink, &frames);
        if let Some(lfp) = lfp {
            let lits = unroller.latch_lits(model, frame);
            // Write activity of kept memories only: a dropped memory's
            // reads are unconstrained, so it is not state in the abstract
            // model and its writes cannot distinguish frames.
            let mut writes = Vec::new();
            for (mi, slot) in emm_index.iter().enumerate() {
                if slot.is_some() {
                    for wp in &model.memories()[mi].write_ports {
                        writes.push(unroller.lit(frame, wp.en));
                    }
                }
            }
            lfp.add_frame(sink, &lits, &writes);
        }
    }

    /// Base assumptions activating selectors (EMM memory/port selectors and
    /// PBA latch selectors) in a context.
    pub(crate) fn base_assumptions(ctx: &Ctx) -> Vec<Lit> {
        let mut a = ctx.emm.all_active_assumptions();
        a.extend_from_slice(ctx.unroller.latch_selectors());
        a
    }

    /// Checks property `prop` up to `max_depth` (inclusive), following the
    /// loop structure of Fig. 1/Fig. 3.
    ///
    /// # Errors
    ///
    /// [`BmcError::SpuriousTrace`] if a counterexample fails re-simulation
    /// (an internal bug, surfaced rather than silently returned).
    pub fn check(&mut self, prop: usize, max_depth: usize) -> Result<BmcRun, BmcError> {
        let started = Instant::now();
        let deadline = self.options.pipeline.wall_limit.map(|d| started + d);
        // The governor in force for this call: the configured one with
        // the wall limit min-combined in (the earlier deadline wins).
        self.governor = match deadline {
            Some(dl) => self.options.pipeline.governor.clone().with_deadline(dl),
            None => self.options.pipeline.governor.clone(),
        };
        self.encode_seconds = 0.0;
        self.solve_seconds = 0.0;
        self.inprocess_seconds = 0.0;
        // A context whose EMM encoder aborted mid-frame is under-
        // constrained (its SAT answers could be spurious); rebuild it
        // before trusting anything. Otherwise just re-install the
        // governor so the per-call deadline reaches every stage.
        if self.poisoned() {
            self.rebuild_contexts();
        } else {
            self.install_governor();
        }
        // Encode against the model in force (possibly fraig-reduced);
        // interface structure (properties, latches, inputs, memories) is
        // identical to the original design.
        let bad_bit = self.model.properties()[prop].bad;
        let mut per_bound: Vec<f64> = Vec::new();

        if self.options.proofs {
            // Termination queries are bound-exact, so a proof-mode engine
            // reused for a *different* property starts its bound loop over
            // on fresh contexts (the forward queries it ran for the old
            // property say nothing about this one's backward inductions).
            if self.proofs_prop.is_some_and(|p| p != prop)
                && self.anchored.unroller.num_frames() > 0
            {
                self.rebuild_contexts();
            }
            self.proofs_prop = Some(prop);
        }

        for i in 0..=max_depth {
            let bound_started = Instant::now();
            if let Some(reason) = self.governor.poll() {
                let v = self.unknown_verdict(prop, Some(reason));
                return self.finish(v, i, started, per_bound);
            }
            if !self.options.pipeline.incremental && self.anchored.unroller.num_frames() > 0 {
                self.rebuild_contexts();
            }
            let encode_started = Instant::now();
            let encode_outcome = self.ensure_depth(i);
            self.encode_seconds += encode_started.elapsed().as_secs_f64();
            if let Some(reason) = encode_outcome {
                let v = self.unknown_verdict(prop, Some(reason));
                return self.finish(v, i, started, per_bound);
            }
            self.apply_budget(deadline);
            self.inprocess_between_bounds(i);
            let outcome = self.process_bound(prop, bad_bit, i)?;
            per_bound.push(bound_started.elapsed().as_secs_f64());
            if let Some(verdict) = outcome {
                return self.finish(verdict, i, started, per_bound);
            }
        }
        self.finish(BmcVerdict::BoundReached, max_depth, started, per_bound)
    }

    /// Runs the solver inprocessing loop between bounds, where its cost
    /// is amortized across every later query on the same contexts. Only
    /// meaningful on the incremental lifecycle (a rebuilt context has
    /// nothing to carry forward) and skipped for bound 0 (nothing solved
    /// yet). A governor/budget stop here is deliberately ignored: the
    /// pass leaves the solver usable, and the loop-top poll plus the
    /// solve calls of this very bound report exhaustion through the
    /// existing verdict paths.
    fn inprocess_between_bounds(&mut self, bound: usize) {
        if bound == 0 || !self.options.pipeline.incremental {
            return;
        }
        let started = Instant::now();
        let _ = self.anchored.solver.inprocess();
        if let Some(f) = &mut self.floating {
            let _ = f.solver.inprocess();
        }
        self.inprocess_seconds += started.elapsed().as_secs_f64();
    }

    /// Runs every solver query of bound `i`; `Some(verdict)` ends the run.
    fn process_bound(
        &mut self,
        prop: usize,
        bad_bit: emm_aig::Bit,
        i: usize,
    ) -> Result<Option<BmcVerdict>, BmcError> {
        // The termination queries are *bound-exact*: `LFP_i` is "frames
        // 0..=i are pairwise distinct", and the single shared activation
        // literal enforces every distinctness row emitted so far. On a
        // repeated `check` call the contexts may already be unrolled past
        // `i`; re-running the bound-`i` query then would assume LFP over
        // the *deeper* unrolling and could report a spurious proof (e.g.
        // an absorbing bad state cannot extend to more distinct frames).
        // Those bounds already ran their termination checks at the exact
        // depth in the earlier call (and found nothing, or we would not be
        // here), so they are skipped, not re-approximated.
        let bound_exact = self.anchored.unroller.num_frames() == i + 1;
        if self.options.proofs && bound_exact {
            // Forward termination: SAT(I ∧ LFP_i ∧ C_i).
            let mut assumptions = Self::base_assumptions(&self.anchored);
            assumptions.push(self.anchored.lfp.as_ref().expect("proofs on").activation());
            let solve_started = Instant::now();
            let forward = self.anchored.solver.solve_with_assumptions(&assumptions);
            self.solve_seconds += solve_started.elapsed().as_secs_f64();
            match forward {
                SolveResult::Unsat => {
                    return Ok(Some(BmcVerdict::Proof {
                        kind: ProofKind::ForwardDiameter,
                        depth: i,
                    }));
                }
                SolveResult::Unknown => {
                    let reason = self.anchored.solver.exhaustion_reason();
                    return Ok(Some(self.unknown_verdict(prop, reason)));
                }
                SolveResult::Sat => {}
            }
            // Backward termination: SAT(LFP_i ∧ ¬P_i ∧ CP_i ∧ C_i).
            let floating = self.floating.as_mut().expect("proofs on");
            let mut assumptions = Self::base_assumptions(floating);
            assumptions.push(floating.lfp.as_ref().expect("proofs on").activation());
            for j in 0..i {
                let bad_j = floating.unroller.lit(j, bad_bit);
                assumptions.push(floating.assumption(!bad_j));
            }
            let bad_i = floating.unroller.lit(i, bad_bit);
            let bad_i = floating.assumption(bad_i);
            assumptions.push(bad_i);
            let solve_started = Instant::now();
            let backward = floating.solver.solve_with_assumptions(&assumptions);
            self.solve_seconds += solve_started.elapsed().as_secs_f64();
            match backward {
                SolveResult::Unsat => {
                    return Ok(Some(BmcVerdict::Proof {
                        kind: ProofKind::BackwardInduction,
                        depth: i,
                    }));
                }
                SolveResult::Unknown => {
                    let reason = self
                        .floating
                        .as_ref()
                        .expect("proofs on")
                        .solver
                        .exhaustion_reason();
                    return Ok(Some(self.unknown_verdict(prop, reason)));
                }
                SolveResult::Sat => {}
            }
        }

        // Counterexample check: SAT(I ∧ ¬P_i ∧ C_i). A bound refuted in an
        // earlier `check` call stays refuted — the anchored formula only
        // grows (retired clauses are redundant) — so it is skipped.
        if self.options.pipeline.incremental
            && self.cleared_depth.get(&prop).is_some_and(|&d| i <= d)
        {
            return Ok(None);
        }
        let bad_i = self.anchored.unroller.lit(i, bad_bit);
        let bad_i = self.anchored.assumption(bad_i);
        // The bound's property clause lives in an activation group of its
        // own: enforced through the group assumption while this bound is
        // under test, physically retired the moment the bound is refuted —
        // the solver's clause arena does not accumulate one dead property
        // clause per bound the way satisfied-but-resident clauses would.
        let group = self.anchored.solver.new_activation_group();
        self.anchored.solver.add_clause_in_group(group, &[bad_i]);
        let mut assumptions = Self::base_assumptions(&self.anchored);
        assumptions.push(group);
        let solve_started = Instant::now();
        let result = self.anchored.solver.solve_with_assumptions(&assumptions);
        self.solve_seconds += solve_started.elapsed().as_secs_f64();
        match result {
            SolveResult::Sat => {
                let trace = self.extract_trace(prop, i);
                if self.options.validate_traces && self.options.abstraction.is_none() {
                    trace
                        .validate(self.design)
                        .map_err(BmcError::SpuriousTrace)?;
                }
                Ok(Some(BmcVerdict::Counterexample(trace)))
            }
            SolveResult::Unknown => {
                // The bound was *not* refuted: leave `cleared_depth`
                // alone (a resumed check re-runs this bound) but retire
                // the bound's property clause so the abandoned group
                // does not linger in the clause arena.
                self.prop_clauses_retired += self.anchored.solver.retire_group(group) as u64;
                let reason = self.anchored.solver.exhaustion_reason();
                Ok(Some(self.unknown_verdict(prop, reason)))
            }
            SolveResult::Unsat => {
                if self.options.pba_discovery {
                    self.collect_reasons();
                }
                self.prop_clauses_retired += self.anchored.solver.retire_group(group) as u64;
                let d = self.cleared_depth.entry(prop).or_insert(i);
                *d = (*d).max(i);
                Ok(None)
            }
        }
    }

    /// Drops and recreates every context: fresh solvers, unrollers, EMM
    /// and LFP state (the restart-from-scratch baseline of
    /// [`BmcOptions::incremental`]` = false`).
    fn rebuild_contexts(&mut self) {
        self.anchored = Self::make_ctx(&self.model, &self.options, &self.governor, true);
        self.floating = self
            .options
            .proofs
            .then(|| Self::make_ctx(&self.model, &self.options, &self.governor, false));
        self.cleared_depth.clear();
    }

    /// Assembles a [`BmcRun`] from the engine's accumulated state.
    fn finish(
        &self,
        verdict: BmcVerdict,
        depth: usize,
        started: Instant,
        per_bound_seconds: Vec<f64>,
    ) -> Result<BmcRun, BmcError> {
        let mut lrv: Vec<usize> = self.latch_reasons.iter().copied().collect();
        lrv.sort_unstable();
        let mut mrv: Vec<usize> = self.memory_reasons.iter().copied().collect();
        mrv.sort_unstable();
        Ok(BmcRun {
            verdict,
            depth_reached: depth,
            elapsed: started.elapsed(),
            per_bound_seconds,
            latch_reasons: lrv,
            memory_reasons: mrv,
            phase_seconds: PhaseSeconds {
                rewrite: self.rewrite_seconds,
                fraig: self.fraig_seconds,
                encode: self.encode_seconds,
                solve: self.solve_seconds,
                inprocess: self.inprocess_seconds,
            },
        })
    }

    /// Latch/memory reasons from the failed assumptions of the most recent
    /// UNSAT answer of the anchored solver (`Get_Latch_Reasons(U_Core)`),
    /// accumulated into the engine-lifetime reason sets.
    fn collect_reasons(&mut self) {
        let failed: HashSet<Lit> = self
            .anchored
            .solver
            .failed_assumptions()
            .iter()
            .copied()
            .collect();
        for (li, &sel) in self.anchored.unroller.latch_selectors().iter().enumerate() {
            if failed.contains(&sel) {
                self.latch_reasons.insert(li);
            }
        }
        for (enc_idx, _port, sel) in self.anchored.emm.selectors() {
            if failed.contains(&sel) {
                // Map encoder index back to design memory index.
                if let Some(mi) = self
                    .anchored
                    .emm_index
                    .iter()
                    .position(|s| *s == Some(enc_idx))
                {
                    self.memory_reasons.insert(mi);
                }
            }
        }
    }

    fn apply_budget(&mut self, deadline: Option<Instant>) {
        let budget = self
            .options
            .pipeline
            .solve_budget
            .clone()
            .with_earlier_deadline(deadline);
        self.anchored.solver.set_budget(budget.clone());
        if let Some(f) = &mut self.floating {
            f.solver.set_budget(budget);
        }
    }

    /// Builds a [`Trace`] from the anchored solver's model at depth `i`.
    ///
    /// The trace is expressed over the *interface* (free inputs, latches,
    /// memories), which the fraig rewrite preserves exactly, so it replays
    /// on the original design as-is.
    fn extract_trace(&self, prop: usize, depth: usize) -> Trace {
        let ctx = &self.anchored;
        let solver = &ctx.solver;
        let design: &Design = &self.model;
        // Read literals through the sweep substitutions: a merged gate's
        // own variable is unconstrained once its retired definition left
        // the solver, so only the representative carries the model value.
        let model = |l: Lit| {
            let l = match &ctx.simplify {
                Some(simp) => simp.resolve(l),
                None => l,
            };
            solver.model_value(l).unwrap_or(false)
        };

        let initial_latches: Vec<bool> = ctx
            .unroller
            .latch_lits(design, 0)
            .iter()
            .map(|&l| model(l))
            .collect();

        let mut frames = Vec::with_capacity(depth + 1);
        let mut disabled_reads = Vec::with_capacity(depth + 1);
        for k in 0..=depth {
            let inputs: Vec<bool> = design
                .free_inputs()
                .iter()
                .map(|&idx| {
                    let bit = design.input_bit(idx as usize);
                    model(ctx.unroller.lit(k, bit))
                })
                .collect();
            frames.push(inputs);
            // Disabled-read values per memory/port.
            let mut per_mem = Vec::with_capacity(design.memories().len());
            for m in design.memories() {
                let mut per_port = Vec::with_capacity(m.read_ports.len());
                for rp in &m.read_ports {
                    let en = model(ctx.unroller.lit(k, rp.en));
                    let value = if en {
                        0
                    } else {
                        rp.data
                            .bits()
                            .iter()
                            .enumerate()
                            .map(|(b, &bit)| (model(ctx.unroller.lit(k, bit)) as u64) << b)
                            .sum()
                    };
                    per_port.push(value);
                }
                per_mem.push(per_port);
            }
            disabled_reads.push(per_mem);
        }

        // Memory seeds from the EMM initial reads: any access whose N
        // condition held read the initial contents at its address.
        let mut memory_seeds: Vec<Vec<(u64, u64)>> = vec![Vec::new(); design.memories().len()];
        for (mi, slot) in ctx.emm_index.iter().enumerate() {
            let Some(enc_idx) = slot else { continue };
            for ir in ctx.emm.init_reads(*enc_idx) {
                if model(ir.n) {
                    let addr: u64 = ir
                        .addr
                        .iter()
                        .enumerate()
                        .map(|(b, &l)| (model(l) as u64) << b)
                        .sum();
                    let value: u64 =
                        ir.v.iter()
                            .enumerate()
                            .map(|(b, &l)| (model(l) as u64) << b)
                            .sum();
                    memory_seeds[mi].push((addr, value));
                }
            }
        }
        for seeds in &mut memory_seeds {
            seeds.sort_unstable();
            seeds.dedup();
        }

        Trace {
            initial_latches,
            frames,
            memory_seeds,
            disabled_reads,
            property: prop,
        }
    }
}
