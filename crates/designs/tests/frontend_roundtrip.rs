//! Round-trip properties for the AIGER and BTOR2 frontends over seeded
//! generated designs (`emm_designs::gen`).
//!
//! The contract under test, per format:
//!
//! * **AIGER (ASCII and binary)** — `write(parse(write(d)))` is
//!   byte-identical to `write(d)`, and the parsed design simulates
//!   identically to the original on random stimulus.
//! * **BTOR2, constant-true read enables** — same byte-identical
//!   round trip, memories included.
//! * **BTOR2, guarded read enables** — the first re-write may differ
//!   (disabled reads become oracle inputs), but one more
//!   write→parse round reaches a byte-stable fixed point, and the
//!   parsed design simulates identically when the oracles are driven
//!   with the simulator's default disabled-read value (0).
//!
//! Each property runs 200 cases (the ISSUE's floor). A failing seed
//! should be copied into `tests/regression_seeds.rs`.

use emm_aig::aiger::{read_aiger, write_aiger_ascii, write_aiger_binary};
use emm_aig::btor2::{read_btor2, write_btor2};
use emm_aig::{Design, Simulator};
use emm_designs::gen::{random_design, GenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Steps both simulators with identical random stimulus and compares
/// every property verdict. `parsed` may have extra trailing free inputs
/// (BTOR2 oracle inputs); they are driven low, matching the default
/// `disabled_read_value` of the original's simulator.
fn assert_simulates_identically(original: &Design, parsed: &Design, seed: u64) {
    let base = original.free_inputs().len();
    assert!(
        parsed.free_inputs().len() >= base,
        "seed {seed}: parsed design lost inputs"
    );
    let extra = parsed.free_inputs().len() - base;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_0e11);
    let mut a = Simulator::new(original);
    let mut b = Simulator::new(parsed);
    for step in 0..10 {
        let mut inputs: Vec<bool> = (0..base).map(|_| rng.random_bool(0.5)).collect();
        let ra = a.step(&inputs);
        inputs.extend(std::iter::repeat_n(false, extra));
        let rb = b.step(&inputs);
        assert_eq!(
            ra.property_bad, rb.property_bad,
            "seed {seed}: property verdicts diverge at step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn aiger_ascii_roundtrip(seed in any::<u64>()) {
        let d = random_design(&GenConfig::aiger(), seed);
        let text = write_aiger_ascii(&d).unwrap();
        let parsed = read_aiger(text.as_bytes())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(
            write_aiger_ascii(&parsed).unwrap(),
            text,
            "seed {}", seed
        );
        assert_simulates_identically(&d, &parsed, seed);
    }

    #[test]
    fn aiger_binary_roundtrip(seed in any::<u64>()) {
        let d = random_design(&GenConfig::aiger(), seed);
        let bytes = write_aiger_binary(&d).unwrap();
        let parsed = read_aiger(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(
            write_aiger_binary(&parsed).unwrap(),
            bytes,
            "seed {}", seed
        );
        assert_simulates_identically(&d, &parsed, seed);
    }

    #[test]
    fn aiger_variants_agree(seed in any::<u64>()) {
        // Parsing the ASCII and binary serializations of the same design
        // must yield designs with identical binary serializations.
        let d = random_design(&GenConfig::aiger(), seed);
        let via_ascii = read_aiger(write_aiger_ascii(&d).unwrap().as_bytes()).unwrap();
        let via_binary = read_aiger(&write_aiger_binary(&d).unwrap()).unwrap();
        prop_assert_eq!(
            write_aiger_binary(&via_ascii).unwrap(),
            write_aiger_binary(&via_binary).unwrap(),
            "seed {}", seed
        );
    }

    #[test]
    fn btor2_roundtrip(seed in any::<u64>()) {
        let d = random_design(&GenConfig::btor2(), seed);
        let text = write_btor2(&d).unwrap();
        let parsed = read_btor2(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(
            write_btor2(&parsed).unwrap(),
            text,
            "seed {}", seed
        );
        prop_assert_eq!(parsed.memories().len(), d.memories().len());
        assert_simulates_identically(&d, &parsed, seed);
    }

    #[test]
    fn btor2_guarded_roundtrip_reaches_fixed_point(seed in any::<u64>()) {
        let d = random_design(&GenConfig::btor2_guarded(), seed);
        let w1 = write_btor2(&d).unwrap();
        let p1 = read_btor2(&w1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_simulates_identically(&d, &p1, seed);
        // Oracle wrapping may change the first re-write; the second
        // write→parse round must be byte-stable.
        let w2 = write_btor2(&p1).unwrap();
        let p2 = read_btor2(&w2).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(
            write_btor2(&p2).unwrap(),
            w2,
            "seed {}", seed
        );
        assert_simulates_identically(&p1, &p2, seed);
    }
}
