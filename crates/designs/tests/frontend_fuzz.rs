//! Malformed-input fuzz sweep for the AIGER and BTOR2 parsers.
//!
//! The parsers' contract is *clean errors, never panics*: every byte
//! string must produce `Ok` or a structured `Err`. This sweep feeds
//! them three hostile families, all derived deterministically from
//! generated designs:
//!
//! * **truncations** — every prefix of a valid file (a truncated file
//!   may still be valid when only symbols were cut; the property is
//!   only that parsing terminates without panicking);
//! * **point mutations** — seeded random byte substitutions in valid
//!   files, again asserting no panic;
//! * **guaranteed-invalid edits** — bad deltas, duplicate symbols,
//!   out-of-range ids and friends, asserting a clean `Err`.
//!
//! Any input that ever panics a parser belongs in
//! `tests/regression_seeds.rs` with the seed that produced it.

use emm_aig::aiger::{read_aiger, write_aiger_ascii, write_aiger_binary};
use emm_aig::btor2::{read_btor2, write_btor2};
use emm_designs::gen::{random_design, GenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn aiger_corpus() -> Vec<Vec<u8>> {
    (0..8u64)
        .flat_map(|seed| {
            let d = random_design(&GenConfig::aiger(), seed);
            [
                write_aiger_ascii(&d).unwrap().into_bytes(),
                write_aiger_binary(&d).unwrap(),
            ]
        })
        .collect()
}

fn btor2_corpus() -> Vec<String> {
    (0..8u64)
        .map(|seed| write_btor2(&random_design(&GenConfig::btor2_guarded(), seed)).unwrap())
        .collect()
}

#[test]
fn aiger_truncations_never_panic() {
    for file in aiger_corpus() {
        for len in 0..file.len() {
            // Ok or Err are both acceptable; a panic fails the test.
            let _ = read_aiger(&file[..len]);
        }
    }
}

#[test]
fn btor2_truncations_never_panic() {
    for file in btor2_corpus() {
        // Writer output is pure ASCII, so every byte prefix is valid UTF-8.
        for len in 0..file.len() {
            let truncated = std::str::from_utf8(&file.as_bytes()[..len]).unwrap();
            let _ = read_btor2(truncated);
        }
    }
}

#[test]
fn aiger_point_mutations_never_panic() {
    let corpus = aiger_corpus();
    let mut rng = StdRng::seed_from_u64(0xA16E_2005);
    for file in &corpus {
        for _ in 0..64 {
            let mut mutated = file.clone();
            let at = rng.random_range(0..mutated.len());
            mutated[at] = rng.random_range(0..=255u64) as u8;
            let _ = read_aiger(&mutated);
        }
    }
}

#[test]
fn btor2_point_mutations_never_panic() {
    let corpus = btor2_corpus();
    let mut rng = StdRng::seed_from_u64(0xB702_2005);
    for file in &corpus {
        let bytes = file.as_bytes();
        for _ in 0..64 {
            let mut mutated = bytes.to_vec();
            let at = rng.random_range(0..mutated.len());
            // Printable ASCII keeps the mutation in the parsed region
            // (the BTOR2 parser rejects non-UTF-8 by construction).
            mutated[at] = rng.random_range(0x20..0x7f_u64) as u8;
            if let Ok(text) = std::str::from_utf8(&mutated) {
                let _ = read_btor2(text);
            }
        }
    }
}

#[test]
fn aiger_guaranteed_invalid_edits_err() {
    // Structured mutations whose invalidity is guaranteed by the
    // format, applied to every generated ASCII file: header count
    // inflation (truncates the body), and a duplicated symbol line.
    for seed in 0..8u64 {
        let d = random_design(&GenConfig::aiger(), seed);
        let text = write_aiger_ascii(&d).unwrap();

        // Inflate A by editing the header's 5th field: body now short.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut header: Vec<String> = lines[0].split(' ').map(str::to_string).collect();
        let ands: usize = header[5].parse().unwrap();
        header[5] = format!("{}", ands + 7);
        header[1] = format!(
            "{}",
            ands + 7 + header[2].parse::<usize>().unwrap() + header[3].parse::<usize>().unwrap()
        );
        let inflated = {
            let mut l = lines.clone();
            l[0] = header.join(" ");
            l.join("\n") + "\n"
        };
        assert!(
            read_aiger(inflated.as_bytes()).is_err(),
            "seed {seed}: inflated AND count must not parse"
        );

        // Duplicate the first symbol entry (there is always an input).
        let sym = lines.iter().position(|l| l.starts_with("i0 ")).unwrap();
        lines.insert(sym, lines[sym].clone());
        let duplicated = lines.join("\n") + "\n";
        assert!(
            read_aiger(duplicated.as_bytes()).is_err(),
            "seed {seed}: duplicate symbol must not parse"
        );
    }
}

#[test]
fn btor2_guaranteed_invalid_edits_err() {
    for seed in 0..8u64 {
        let d = random_design(&GenConfig::btor2(), seed);
        let text = write_btor2(&d).unwrap();
        let lines: Vec<&str> = text.lines().collect();

        // Duplicate the last line: its id is no longer increasing.
        let duplicated = format!("{text}{}\n", lines[lines.len() - 1]);
        assert!(
            read_btor2(&duplicated).is_err(),
            "seed {seed}: non-increasing id must not parse"
        );

        // Reference an undefined id from a fresh bad line.
        let dangling = format!("{text}1000000 bad 999999\n");
        assert!(
            read_btor2(&dangling).is_err(),
            "seed {seed}: dangling operand must not parse"
        );

        // Drop the first next line: Design::check must reject the
        // now-dangling latch.
        let next = lines.iter().position(|l| l.contains(" next ")).unwrap();
        let missing: String = lines
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != next)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(
            read_btor2(&missing).is_err(),
            "seed {seed}: missing next must not parse"
        );
    }
}
