//! Pinned regression seeds for the frontend fuzz/round-trip layer.
//!
//! ## Convention
//!
//! Whenever a seed from `tests/frontend_roundtrip.rs` or an input from
//! `tests/frontend_fuzz.rs` ever produces a parser panic, a round-trip
//! mismatch, or a verification divergence, it gets **pinned here as a
//! named unit test** — one test per incident, named
//! `seed_<value>_<one_word_symptom>`, with a comment linking the fix.
//! The generated sweeps keep running with fresh coverage; this file
//! guarantees the specific inputs that once failed never regress
//! silently, even if the generator's sampling drifts.
//!
//! A template:
//!
//! ```text
//! /// <date>: write→parse dropped the Free reset on latch 3.
//! /// Fixed in <module> by <one-line summary>.
//! #[test]
//! fn seed_1234567890_free_reset_lost() {
//!     let d = random_design(&GenConfig::aiger(), 1234567890);
//!     let text = write_aiger_ascii(&d).unwrap();
//!     let parsed = read_aiger(text.as_bytes()).unwrap();
//!     assert_eq!(write_aiger_ascii(&parsed).unwrap(), text);
//! }
//! ```
//!
//! No incidents have been recorded yet; the imports below keep the
//! template compiling the moment the first one lands.

#[allow(unused_imports)]
use emm_aig::aiger::{read_aiger, write_aiger_ascii, write_aiger_binary};
#[allow(unused_imports)]
use emm_aig::btor2::{read_btor2, write_btor2};
#[allow(unused_imports)]
use emm_designs::gen::{random_design, GenConfig};

/// The convention above is load-bearing documentation, not dead code:
/// this marker test keeps the file in the harness so a typo'd future
/// addition fails loudly instead of being skipped.
#[test]
fn regression_seed_file_is_wired_into_the_harness() {
    let d = random_design(&GenConfig::aiger(), 0);
    assert!(!d.properties().is_empty());
}
