//! # emm-designs — case-study designs for the EMM reproduction
//!
//! Verification workloads for *"Verification of Embedded Memory Systems
//! using Efficient Memory Modeling"* (Ganai, Gupta, Ashar — DATE 2005).
//! Each module builds an [`emm_aig::Design`] plus handles (memory ids,
//! property indices, named registers) the tests and benchmark harnesses
//! use.
//!
//! ## The paper's case studies
//!
//! * [`quicksort`] — quicksort in hardware over an array memory and an
//!   explicit recursion stack (Tables 1 and 2; properties P1 and P2);
//! * [`image_filter`] — the Industry Design I surrogate: a streaming
//!   low-pass filter with two line-buffer memories and a 216-property
//!   bank (206 witnesses + 10 induction proofs);
//! * [`industry2`] — the Industry Design II surrogate: a lookup engine
//!   with a 1-write/3-read memory whose write path can never fire, the
//!   `G(WE=0 ∨ WD=0)` invariant, and 8 unreachable lookup properties.
//!
//! ## Supporting memory-system designs
//!
//! * [`fifo`] — a memory-backed FIFO with occupancy and data-integrity
//!   properties;
//! * [`lifo`] — a memory-backed LIFO stack with push/pop identity;
//! * [`regfile`] — a multi-port register file with a shadow-register
//!   consistency property (multi-port forwarding workload);
//! * [`memcpy`] — a two-memory DMA engine that copies and then verifies,
//!   a second workload for arbitrary-initial-state modeling.
//!
//! All designs are validated by randomized co-simulation against software
//! models in their unit tests before any SAT engine touches them.

#![warn(missing_docs)]

pub mod cpu;
pub mod fifo;
pub mod gen;
pub mod image_filter;
pub mod industry2;
pub mod lifo;
pub mod memcpy;
pub mod quicksort;
pub mod regfile;
pub mod util;
