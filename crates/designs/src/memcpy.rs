//! A DMA-style memcpy engine between two memories, with a verification
//! pass — a "software program on embedded memories" workload in the spirit
//! of the paper's quicksort study, but with two distinct memory modules
//! talking to each other.
//!
//! The engine copies `len` words from the source memory (arbitrary initial
//! contents) to the destination, then re-reads both and compares. The
//! comparison can only be proved equal when eq. (6) keeps repeated reads of
//! the source consistent — a second, structurally different exercise of
//! arbitrary-initial-state modeling.

use emm_aig::{Aig, Design, LatchInit, MemInit, MemoryId, PropertyId};

/// Memcpy-engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemcpyConfig {
    /// Words to copy.
    pub len: usize,
    /// Address width of both memories.
    pub addr_width: usize,
    /// Data width of both memories.
    pub data_width: usize,
}

/// Program-counter states of the engine.
#[allow(missing_docs)]
pub mod pc {
    pub const COPY: u64 = 0;
    pub const VERIFY_SRC: u64 = 1;
    pub const VERIFY_DST: u64 = 2;
    pub const HALT: u64 = 3;
}

/// The built memcpy design plus handles.
#[derive(Debug)]
pub struct Memcpy {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: MemcpyConfig,
    /// Source memory (arbitrary initial contents).
    pub src: MemoryId,
    /// Destination memory (zero-initialized).
    pub dst: MemoryId,
    /// Property: after copying, the destination matches the source.
    pub copy_correct: PropertyId,
    /// Halt indicator.
    pub halted: emm_aig::Bit,
}

impl Memcpy {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds the address space.
    pub fn new(config: MemcpyConfig) -> Memcpy {
        assert!(config.len >= 1 && config.len <= 1 << config.addr_width);
        let aw = config.addr_width;
        let dw = config.data_width;
        let mut d = Design::new();
        let src = d.add_memory("src", aw, dw, MemInit::Arbitrary);
        let dst = d.add_memory("dst", aw, dw, MemInit::Zero);

        let pc_w = d.new_latch_word("pc", 2, LatchInit::Zero);
        let idx = d.new_latch_word("idx", aw, LatchInit::Zero);
        let hold = d.new_latch_word("hold", dw, LatchInit::Zero);
        let (_, viol) = d.new_latch("viol", LatchInit::Zero);

        let g = &mut d.aig;
        let s_copy = g.eq_const(&pc_w, pc::COPY);
        let s_vsrc = g.eq_const(&pc_w, pc::VERIFY_SRC);
        let s_vdst = g.eq_const(&pc_w, pc::VERIFY_DST);
        let s_halt = g.eq_const(&pc_w, pc::HALT);
        let last = g.eq_const(&idx, config.len as u64 - 1);
        let idx_inc = g.inc(&idx);
        let zero_idx = g.const_word(0, aw);

        // Source reads happen in COPY (to move data) and VERIFY_SRC.
        let src_re = g.or(s_copy, s_vsrc);
        let src_rd = d.add_read_port(src, idx.clone(), src_re);
        // Destination write in COPY; destination read in VERIFY_DST.
        d.add_write_port(dst, idx.clone(), s_copy, src_rd.clone());
        let dst_rd = d.add_read_port(dst, idx.clone(), s_vdst);

        // Next pc / idx.
        let g = &mut d.aig;
        let pc_vs = g.const_word(pc::VERIFY_SRC, 2);
        let pc_vd = g.const_word(pc::VERIFY_DST, 2);
        let pc_halt = g.const_word(pc::HALT, 2);
        let copy_done = g.and(s_copy, last);
        let vdst_done = g.and(s_vdst, last);
        let mut next_pc = pc_w.clone();
        next_pc = g.mux_word(copy_done, &pc_vs, &next_pc);
        // VERIFY alternates SRC -> DST per index.
        next_pc = g.mux_word(s_vsrc, &pc_vd, &next_pc);
        let vdst_next = g.mux_word(vdst_done, &pc_halt, &pc_vs);
        next_pc = g.mux_word(s_vdst, &vdst_next, &next_pc);
        let keep_halt = g.mux_word(s_halt, &pc_halt, &next_pc);
        d.set_next_word(&pc_w, &keep_halt);

        let g = &mut d.aig;
        let step_idx = {
            let adv_copy = g.and(s_copy, !last);
            let adv_vdst = g.and(s_vdst, !last);
            g.or(adv_copy, adv_vdst)
        };
        let mut next_idx = idx.clone();
        next_idx = g.mux_word(step_idx, &idx_inc, &next_idx);
        let reset_idx = g.or(copy_done, vdst_done);
        next_idx = g.mux_word(reset_idx, &zero_idx, &next_idx);
        d.set_next_word(&idx, &next_idx);

        // hold captures the source word in VERIFY_SRC.
        let g = &mut d.aig;
        let next_hold = g.mux_word(s_vsrc, &src_rd, &hold);
        d.set_next_word(&hold, &next_hold);

        // In VERIFY_DST, compare hold with the destination word.
        let g = &mut d.aig;
        let agree = g.eq_word(&hold, &dst_rd);
        let mismatch = g.and(s_vdst, !agree);
        let next_viol = g.mux(mismatch, Aig::TRUE, viol);
        d.set_next(viol, next_viol);

        let copy_correct = d.add_property("copy_correct", viol);
        d.check().expect("memcpy design is well-formed");
        Memcpy {
            design: d,
            config,
            src,
            dst,
            copy_correct,
            halted: s_halt,
        }
    }

    /// Cycle bound: copy (len) + verify (2·len) + slack.
    pub fn cycle_bound(&self) -> usize {
        3 * self.config.len + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn copies_and_verifies_random_contents() {
        let mut rng = StdRng::seed_from_u64(77);
        for len in [1usize, 2, 5, 8] {
            let config = MemcpyConfig {
                len,
                addr_width: 3,
                data_width: 6,
            };
            let engine = Memcpy::new(config);
            for _ in 0..20 {
                let mut sim = Simulator::new(&engine.design);
                let data: Vec<u64> = (0..len).map(|_| rng.random_range(0..64)).collect();
                for (a, &v) in data.iter().enumerate() {
                    sim.seed_memory(engine.src, a as u64, v);
                }
                let mut viol = false;
                for _ in 0..engine.cycle_bound() {
                    let report = sim.step(&[]);
                    viol |= report.property_bad[0];
                    if sim.value(engine.halted) {
                        break;
                    }
                }
                assert!(sim.value(engine.halted), "len={len} must halt");
                assert!(!viol, "len={len}: copy verified");
                for (a, &v) in data.iter().enumerate() {
                    assert_eq!(
                        sim.read_memory(engine.dst, a as u64),
                        v,
                        "len={len} word {a}"
                    );
                }
            }
        }
    }

    /// Injecting a destination corruption mid-run trips the checker.
    #[test]
    fn detects_corruption() {
        let config = MemcpyConfig {
            len: 4,
            addr_width: 3,
            data_width: 6,
        };
        let engine = Memcpy::new(config);
        let mut sim = Simulator::new(&engine.design);
        for a in 0..4u64 {
            sim.seed_memory(engine.src, a, a + 10);
        }
        // Let the copy phase finish (len cycles), then corrupt dst[2].
        for _ in 0..4 {
            sim.step(&[]);
        }
        sim.seed_memory(engine.dst, 2, 0x3F);
        let mut viol = false;
        for _ in 0..engine.cycle_bound() {
            let report = sim.step(&[]);
            viol |= report.property_bad[0];
            if sim.value(engine.halted) {
                break;
            }
        }
        assert!(viol, "corruption must be detected");
    }
}
