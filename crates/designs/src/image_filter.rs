//! Industry Design I surrogate: a streaming low-pass image filter
//! (Section 5, "Case Study on Industry Design I").
//!
//! The paper's design is proprietary: a low-pass image filter with 756
//! latches, two memories (`AW=10, DW=8`, one read and one write port each,
//! zero-initialized) and 216 reachability properties, of which 206 have
//! witnesses (max depth 51) and 10 are proved by induction.
//!
//! This surrogate preserves the verification-relevant structure:
//!
//! * a pixel pipeline computing a 2-D low-pass kernel
//!   `out = (cur + west + north + north_west) / 4` over a streamed image,
//! * **two line-buffer memories** of the paper's exact shape — one holding
//!   the previous row of raw pixels, one holding the previous row of
//!   filtered output (both `AW=10, DW=8`, 1R/1W, zero-init),
//! * a bank of `reachable_properties` witness targets whose depths are
//!   spread up to a configurable maximum (default 51, the paper's number),
//! * `unreachable_properties` invariant properties that hold in all
//!   reachable states and are provable by induction.

use emm_aig::{Design, LatchInit, MemInit, MemoryId, Word};

/// Configuration of the filter surrogate.
#[derive(Clone, Copy, Debug)]
pub struct ImageFilterConfig {
    /// Line length (also line-buffer address space usage); paper-scale 1024.
    pub line_length: usize,
    /// Line-buffer address width (paper: 10).
    pub addr_width: usize,
    /// Pixel width (paper: 8).
    pub data_width: usize,
    /// Number of reachability properties with witnesses (paper: 206).
    pub reachable_properties: usize,
    /// Number of unreachable, induction-provable properties (paper: 10).
    pub unreachable_properties: usize,
    /// Maximum witness depth to spread the reachable properties over
    /// (paper: 51).
    pub max_witness_depth: usize,
}

impl ImageFilterConfig {
    /// The paper-shaped configuration: 216 properties, depths up to 51,
    /// two `AW=10, DW=8` memories.
    pub fn paper() -> ImageFilterConfig {
        ImageFilterConfig {
            line_length: 1024,
            addr_width: 10,
            data_width: 8,
            reachable_properties: 206,
            unreachable_properties: 10,
            max_witness_depth: 51,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> ImageFilterConfig {
        ImageFilterConfig {
            line_length: 8,
            addr_width: 3,
            data_width: 4,
            reachable_properties: 12,
            unreachable_properties: 4,
            max_witness_depth: 14,
        }
    }
}

/// The built filter design plus handles.
#[derive(Debug)]
pub struct ImageFilter {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: ImageFilterConfig,
    /// Raw-pixel line buffer.
    pub raw_line: MemoryId,
    /// Filtered-pixel line buffer.
    pub filtered_line: MemoryId,
    /// Property indices with witnesses (in design property order).
    pub reachable: Vec<usize>,
    /// Property indices provable by induction.
    pub unreachable: Vec<usize>,
}

impl ImageFilter {
    /// Builds the design.
    ///
    /// # Panics
    ///
    /// Panics if `line_length` exceeds the address space.
    pub fn new(config: ImageFilterConfig) -> ImageFilter {
        assert!(config.line_length <= 1 << config.addr_width);
        assert!(config.line_length >= 4, "need a non-degenerate line");
        let aw = config.addr_width;
        let dw = config.data_width;
        let mut d = Design::new();
        let raw_line = d.add_memory("raw_line", aw, dw, MemInit::Zero);
        let filtered_line = d.add_memory("filtered_line", aw, dw, MemInit::Zero);

        // Streamed pixel input and a valid strobe.
        let pixel_in = d.new_input_word("pixel_in", dw);
        let in_valid = d.new_input("in_valid");

        // Column/row counters advance on valid pixels.
        let col = d.new_latch_word("col", aw, LatchInit::Zero);
        let row = d.new_latch_word("row", 8, LatchInit::Zero);
        let g = &mut d.aig;
        let col_last = g.eq_const(&col, config.line_length as u64 - 1);
        let col_inc = g.inc(&col);
        let zero_col = g.const_word(0, aw);
        let col_wrapped = g.mux_word(col_last, &zero_col, &col_inc);
        let col_next = g.mux_word(in_valid, &col_wrapped, &col);
        d.set_next_word(&col, &col_next);
        let g = &mut d.aig;
        let row_inc = g.inc(&row);
        let advance_row = g.and(in_valid, col_last);
        let row_next = g.mux_word(advance_row, &row_inc, &row);
        d.set_next_word(&row, &row_next);

        // West pixel: previous valid pixel in this row (0 at col 0).
        let west = d.new_latch_word("west", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let zero_px = g.const_word(0, dw);
        let west_data = g.mux_word(col_last, &zero_px, &pixel_in);
        let west_next = g.mux_word(in_valid, &west_data, &west);
        d.set_next_word(&west, &west_next);

        // North pixel: same column, previous row — read from the raw line
        // buffer before overwriting it with the current pixel.
        let north = d.add_read_port(raw_line, col.clone(), in_valid);
        d.add_write_port(raw_line, col.clone(), in_valid, pixel_in.clone());

        // North-west: registered copy of last cycle's north read.
        let north_west = d.new_latch_word("north_west", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let nw_data = g.mux_word(col_last, &zero_px, &north);
        let nw_next = g.mux_word(in_valid, &nw_data, &north_west);
        d.set_next_word(&north_west, &nw_next);

        // Low-pass kernel: (cur + west + north + north_west) / 4, computed
        // at full precision then truncated.
        let g = &mut d.aig;
        let wide = dw + 2;
        let cur_w = g.resize(&pixel_in, wide);
        let west_w = g.resize(&west, wide);
        let north_w = g.resize(&north, wide);
        let nw_w = g.resize(&north_west, wide);
        let s1 = g.add(&cur_w, &west_w);
        let s2 = g.add(&north_w, &nw_w);
        let total = g.add(&s1, &s2);
        let avg_wide = g.shr_const(&total, 2);
        let filtered = g.resize(&avg_wide, dw);

        // Output register and filtered-line buffer (write current, read the
        // previous row's filtered value for a vertical gradient signal).
        let out_reg = d.new_latch_word("out", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let out_next = g.mux_word(in_valid, &filtered, &out_reg);
        d.set_next_word(&out_reg, &out_next);
        let prev_filtered = d.add_read_port(filtered_line, col.clone(), in_valid);
        d.add_write_port(
            filtered_line,
            col.clone(),
            in_valid,
            Word::from(filtered.bits().to_vec()),
        );
        let g = &mut d.aig;
        let gradient = g.sub(&filtered, &prev_filtered);
        let gradient_reg = d.new_latch_word("gradient", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let grad_next = g.mux_word(in_valid, &gradient, &gradient_reg);
        d.set_next_word(&gradient_reg, &grad_next);

        // Pixels-processed counter for depth-targeted properties.
        let seen = d.new_latch_word("seen", 8, LatchInit::Zero);
        let g = &mut d.aig;
        let seen_cap = g.eq_const(&seen, 255);
        let seen_inc = g.inc(&seen);
        let advance_seen = g.and(in_valid, !seen_cap);
        let seen_next = g.mux_word(advance_seen, &seen_inc, &seen);
        d.set_next_word(&seen, &seen_next);

        // A legal 3-phase controller (0 -> 1 -> 2 -> 0): state 3 is
        // unreachable, and provably so by induction.
        let phase = d.new_latch_word("phase", 2, LatchInit::Zero);
        let g = &mut d.aig;
        let ph0 = g.eq_const(&phase, 0);
        let ph1 = g.eq_const(&phase, 1);
        let one = g.const_word(1, 2);
        let two = g.const_word(2, 2);
        let zero2 = g.const_word(0, 2);
        let next_phase_sel = g.mux_word(ph1, &two, &zero2);
        let phase_next = g.mux_word(ph0, &one, &next_phase_sel);
        let phase_adv = g.mux_word(in_valid, &phase_next, &phase);
        d.set_next_word(&phase, &phase_adv);

        // ---------------- Reachability properties (with witnesses) -------
        // Property v: "seen == depth(v) and the output's low bits equal a
        // target pattern". Witness depth is controlled by the `seen` value.
        let mut reachable = Vec::new();
        let mut unreachable = Vec::new();
        for v in 0..config.reachable_properties {
            let depth = 3
                + (v * (config.max_witness_depth.saturating_sub(3)))
                    / config.reachable_properties.max(1);
            let g = &mut d.aig;
            let at_depth = g.eq_const(&seen, depth as u64);
            // A pattern over the two lowest output bits keeps every target
            // satisfiable regardless of width.
            let pattern = (v % 4) as u64;
            let low2 = Word::from(out_reg.bits()[..2.min(dw)].to_vec());
            let hit = g.eq_const(&low2, pattern & ((1 << low2.width()) - 1));
            let bad = g.and(at_depth, hit);
            let id = d.add_property(&format!("reach_{v:03}"), bad);
            reachable.push(id.0 as usize);
        }
        // ---------------- Unreachable, induction-provable properties -----
        for v in 0..config.unreachable_properties {
            let g = &mut d.aig;
            let bad = match v % 4 {
                // The controller never reaches phase 3 (1-step inductive:
                // the next-phase function produces only 0, 1 or 2).
                0 => g.eq_const(&phase, 3),
                // Distinct members of the same family: phase 3 together
                // with a particular `seen` bit.
                1 => {
                    let p3 = g.eq_const(&phase, 3);
                    g.and(p3, seen.bit((v / 4) % 8))
                }
                // Mutually-exclusive decodes asserted simultaneously:
                // structurally false, proved at depth 0.
                2 => {
                    let p0 = g.eq_const(&phase, 0);
                    let p1 = g.eq_const(&phase, 1);
                    g.and(p0, p1)
                }
                // A strengthened controller claim: phase==3 with valid.
                _ => {
                    let p3 = g.eq_const(&phase, 3);
                    g.and(p3, in_valid)
                }
            };
            let id = d.add_property(&format!("invariant_{v:02}"), bad);
            unreachable.push(id.0 as usize);
        }

        d.check().expect("image filter design is well-formed");
        ImageFilter {
            design: d,
            config,
            raw_line,
            filtered_line,
            reachable,
            unreachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn paper_shape() {
        let f = ImageFilter::new(ImageFilterConfig::paper());
        let stats = f.design.stats();
        assert_eq!(f.design.properties().len(), 216, "206 + 10 properties");
        assert_eq!(f.design.memories().len(), 2);
        for m in f.design.memories() {
            assert_eq!((m.addr_width, m.data_width), (10, 8));
            assert_eq!(m.read_ports.len(), 1);
            assert_eq!(m.write_ports.len(), 1);
        }
        assert!(stats.latches >= 40, "got {} latches", stats.latches);
    }

    /// The filter computes the documented kernel, checked against a
    /// software model over a random image.
    #[test]
    fn kernel_matches_software_model() {
        let config = ImageFilterConfig::small();
        let f = ImageFilter::new(config);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulator::new(&f.design);
        let w = config.line_length;
        let dw = config.data_width;
        let mask = (1u64 << dw) - 1;
        let rows = 4;
        let mut image = vec![vec![0u64; w]; rows];
        for row in image.iter_mut() {
            for px in row.iter_mut() {
                *px = rng.random_range(0..=mask);
            }
        }
        f.design.named("out[0]").expect("out exists");
        let mut outputs = Vec::new();
        for r in 0..rows {
            for c in 0..w {
                let mut inputs = Vec::new();
                for b in 0..dw {
                    inputs.push((image[r][c] >> b) & 1 == 1);
                }
                inputs.push(true); // in_valid
                sim.step(&inputs);
                // Reconstruct "out" register from the post-step latch
                // state (node values still show the pre-step outputs).
                let out: u64 = f
                    .design
                    .latches()
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.name.starts_with("out["))
                    .map(|(idx, l)| {
                        let b: usize = l.name[4..l.name.len() - 1].parse().expect("bit index");
                        (sim.latch(idx) as u64) << b
                    })
                    .sum();
                // The register holds the filtered value of THIS pixel after
                // the step (it latched `filtered` computed this cycle).
                let west = if c == 0 { 0 } else { image[r][c - 1] };
                let north = if r == 0 { 0 } else { image[r - 1][c] };
                let nw = if r == 0 || c == 0 {
                    0
                } else {
                    image[r - 1][c - 1]
                };
                let expect = ((image[r][c] + west + north + nw) >> 2) & mask;
                outputs.push((out, expect, r, c));
            }
        }
        for (got, expect, r, c) in outputs {
            assert_eq!(got, expect, "pixel ({r},{c})");
        }
    }

    #[test]
    fn unreachable_properties_never_fire_in_simulation() {
        let config = ImageFilterConfig::small();
        let f = ImageFilter::new(config);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sim = Simulator::new(&f.design);
        for _ in 0..500 {
            let mut inputs: Vec<bool> = (0..config.data_width)
                .map(|_| rng.random_bool(0.5))
                .collect();
            inputs.push(rng.random_bool(0.8));
            let report = sim.step(&inputs);
            for &u in &f.unreachable {
                assert!(!report.property_bad[u], "invariant property {u} fired");
            }
        }
    }

    #[test]
    fn reachable_properties_have_witnesses_in_simulation() {
        // Drive constant-valid random pixels; every reachable property
        // should fire at least once across enough random runs (each
        // property needs out%4 == pattern at one specific depth, so a few
        // attempts suffice with random data).
        let config = ImageFilterConfig::small();
        let f = ImageFilter::new(config);
        let mut rng = StdRng::seed_from_u64(3);
        let mut fired = vec![false; f.design.properties().len()];
        for _ in 0..400 {
            let mut sim = Simulator::new(&f.design);
            for _ in 0..config.max_witness_depth + 2 {
                let inputs: Vec<bool> = (0..config.data_width)
                    .map(|_| rng.random_bool(0.5))
                    .chain(std::iter::once(true))
                    .collect();
                let report = sim.step(&inputs);
                for (i, &b) in report.property_bad.iter().enumerate() {
                    fired[i] |= b;
                }
            }
        }
        for &r in &f.reachable {
            assert!(fired[r], "reachable property {r} never fired in simulation");
        }
        for &u in &f.unreachable {
            assert!(!fired[u], "unreachable property {u} fired");
        }
    }
}
