//! A tiny accumulator CPU over two embedded memories — the "software
//! programs" workload family of the paper, one step up from quicksort.
//!
//! Harvard layout: an instruction memory and a data memory, both embedded.
//! The CPU fetches, decodes and executes one instruction per cycle
//! (memory reads are combinational, stores land at end of cycle).
//!
//! Two verification modes:
//!
//! * [`TinyCpu::any_program`] — the instruction memory has **arbitrary
//!   initial contents** and no write port: the design represents the CPU
//!   running *every possible program at once*. Control-safety properties
//!   (halt stickiness) must hold for all of them, and soundness leans on
//!   eq. (6): re-fetching the same address must yield the same
//!   instruction, or "the program" would not be a program.
//! * [`TinyCpu::with_program`] — a loader FSM first writes a concrete
//!   program into the instruction memory (exercising write-to-read
//!   forwarding on instruction fetches), then runs it; the design carries
//!   a property comparing the accumulator at `HALT` against an expected
//!   value, which [`emulate`] computes. Proving it is an end-to-end
//!   program-correctness proof in the style of the quicksort case study.

use emm_aig::{Aig, Bit, Design, LatchInit, MemInit, MemoryId, PropertyId, Word};

/// Instruction opcodes (3 bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// No operation.
    Nop = 0,
    /// `acc <- imm`.
    Ldi = 1,
    /// `acc <- dmem[addr]`.
    Load = 2,
    /// `dmem[addr] <- acc`.
    Store = 3,
    /// `acc <- acc + dmem[addr]` (wrapping).
    Add = 4,
    /// `pc <- addr`.
    Jmp = 5,
    /// `pc <- addr` when `acc != 0`.
    Jnz = 6,
    /// Stop; the CPU stays halted forever.
    Halt = 7,
}

/// One instruction: opcode plus an operand (immediate or address).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Instr {
    /// The opcode.
    pub op: Op,
    /// Immediate / address operand (truncated to the relevant width).
    pub arg: u64,
}

impl Instr {
    /// Encodes to the instruction-memory word: `op` in the low 3 bits,
    /// the operand above.
    pub fn encode(self) -> u64 {
        (self.op as u64) | (self.arg << 3)
    }

    /// Decodes from an instruction-memory word.
    pub fn decode(word: u64) -> Instr {
        let op = match word & 7 {
            0 => Op::Nop,
            1 => Op::Ldi,
            2 => Op::Load,
            3 => Op::Store,
            4 => Op::Add,
            5 => Op::Jmp,
            6 => Op::Jnz,
            _ => Op::Halt,
        };
        Instr { op, arg: word >> 3 }
    }
}

/// CPU configuration.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Instruction-memory address width.
    pub imem_addr_width: usize,
    /// Data-memory address width.
    pub dmem_addr_width: usize,
    /// Accumulator / data width.
    pub data_width: usize,
}

impl CpuConfig {
    /// A small configuration for tests.
    pub fn small() -> CpuConfig {
        CpuConfig {
            imem_addr_width: 4,
            dmem_addr_width: 3,
            data_width: 8,
        }
    }

    /// Instruction word width: 3 opcode bits + max(operand widths).
    pub fn instr_width(&self) -> usize {
        3 + self
            .imem_addr_width
            .max(self.dmem_addr_width)
            .max(self.data_width)
    }
}

/// Result of software emulation (the reference semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmulationResult {
    /// Accumulator at halt.
    pub acc: u64,
    /// Cycles executed (including the halt instruction).
    pub cycles: usize,
    /// Final data memory (sparse).
    pub dmem: std::collections::HashMap<u64, u64>,
    /// Whether the program halted within the step budget.
    pub halted: bool,
}

/// Runs a program on the reference ISA semantics.
///
/// `initial_dmem[a]` gives initial data-memory contents (unset = 0).
pub fn emulate(
    config: &CpuConfig,
    program: &[Instr],
    initial_dmem: &[(u64, u64)],
    max_cycles: usize,
) -> EmulationResult {
    let data_mask = mask(config.data_width);
    let dmask = mask(config.dmem_addr_width);
    let imask = mask(config.imem_addr_width);
    let mut dmem: std::collections::HashMap<u64, u64> = initial_dmem
        .iter()
        .map(|&(a, v)| (a & dmask, v & data_mask))
        .collect();
    let mut pc: u64 = 0;
    let mut acc: u64 = 0;
    for cycle in 0..max_cycles {
        let instr = program.get(pc as usize).copied().unwrap_or(Instr {
            op: Op::Nop,
            arg: 0,
        });
        let mut next_pc = (pc + 1) & imask;
        match instr.op {
            Op::Nop => {}
            Op::Ldi => acc = instr.arg & data_mask,
            Op::Load => acc = *dmem.get(&(instr.arg & dmask)).unwrap_or(&0),
            Op::Store => {
                dmem.insert(instr.arg & dmask, acc);
            }
            Op::Add => {
                let v = *dmem.get(&(instr.arg & dmask)).unwrap_or(&0);
                acc = (acc + v) & data_mask;
            }
            Op::Jmp => next_pc = instr.arg & imask,
            Op::Jnz => {
                if acc != 0 {
                    next_pc = instr.arg & imask;
                }
            }
            Op::Halt => {
                return EmulationResult {
                    acc,
                    cycles: cycle + 1,
                    dmem,
                    halted: true,
                };
            }
        }
        pc = next_pc;
    }
    EmulationResult {
        acc,
        cycles: max_cycles,
        dmem,
        halted: false,
    }
}

/// The built CPU design plus handles.
#[derive(Debug)]
pub struct TinyCpu {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: CpuConfig,
    /// Instruction memory.
    pub imem: MemoryId,
    /// Data memory.
    pub dmem: MemoryId,
    /// Property: once halted, the CPU never un-halts.
    pub halt_sticky: PropertyId,
    /// Property comparing `acc` at halt against the expected value
    /// (only in [`TinyCpu::with_program`] mode).
    pub result_correct: Option<PropertyId>,
    /// The halted flag bit.
    pub halted: Bit,
    /// The accumulator word.
    pub acc: Word,
    /// The program counter word.
    pub pc: Word,
    /// Cycles the loader occupies before execution starts (0 in
    /// any-program mode).
    pub load_cycles: usize,
}

impl TinyCpu {
    /// Builds the CPU over an arbitrary (unconstrained) program.
    pub fn any_program(config: CpuConfig) -> TinyCpu {
        Self::build(config, None, 0)
    }

    /// Builds the CPU with a loader that writes `program` into the
    /// instruction memory and then executes it; `expected_acc` is asserted
    /// at halt via the `result_correct` property.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the instruction memory.
    pub fn with_program(config: CpuConfig, program: &[Instr], expected_acc: u64) -> TinyCpu {
        assert!(
            program.len() <= 1 << config.imem_addr_width,
            "program too large"
        );
        assert!(!program.is_empty());
        Self::build(config, Some(program), expected_acc)
    }

    fn build(config: CpuConfig, program: Option<&[Instr]>, expected_acc: u64) -> TinyCpu {
        let iaw = config.imem_addr_width;
        let daw = config.dmem_addr_width;
        let dw = config.data_width;
        let iw = config.instr_width();
        let mut d = Design::new();
        // In any-program mode the instruction memory itself is the symbolic
        // program: arbitrary initial contents, no writes.
        let imem_init = if program.is_some() {
            MemInit::Zero
        } else {
            MemInit::Arbitrary
        };
        let imem = d.add_memory("imem", iaw, iw, imem_init);
        let dmem = d.add_memory("dmem", daw, dw, MemInit::Zero);

        // Loader phase (concrete-program mode): a counter walks the program
        // image; `loading` is 1 until the image is fully written.
        let (loading, load_cycles) = match program {
            None => (Aig::FALSE, 0usize),
            Some(prog) => {
                let len = prog.len();
                let cnt = d.new_latch_word("load_cnt", iaw + 1, LatchInit::Zero);
                let g = &mut d.aig;
                let done = g.eq_const(&cnt, len as u64);
                let inc = g.inc(&cnt);
                let next = g.mux_word(done, &cnt, &inc);
                d.set_next_word(&cnt, &next);
                // Instruction image as a mux chain over the counter.
                let g = &mut d.aig;
                let mut image = g.const_word(0, iw);
                for (a, ins) in prog.iter().enumerate() {
                    let here = g.eq_const(&cnt, a as u64);
                    let value = g.const_word(ins.encode(), iw);
                    image = g.mux_word(here, &value, &image);
                }
                let waddr = g.resize(&cnt, iaw);
                d.add_write_port(imem, waddr, !done, image);
                (!done, len)
            }
        };

        // Architectural state.
        let pc = d.new_latch_word("pc", iaw, LatchInit::Zero);
        let acc = d.new_latch_word("acc", dw, LatchInit::Zero);
        let (_, halted) = d.new_latch("halted", LatchInit::Zero);

        // Fetch (suppressed while loading or halted).
        let g = &mut d.aig;
        let running = g.and(!loading, !halted);
        let instr = d.add_read_port(imem, pc.clone(), running);
        let g = &mut d.aig;
        let opcode = Word::from(instr.bits()[..3].to_vec());
        let operand = Word::from(instr.bits()[3..].to_vec());
        let arg_d = g.resize(&operand, dw);
        let arg_da = g.resize(&operand, daw);
        let arg_ia = g.resize(&operand, iaw);
        let is = |g: &mut Aig, op: Op| -> Bit {
            let raw = g.eq_const(&opcode, op as u64);
            g.and(raw, running)
        };
        let op_ldi = is(g, Op::Ldi);
        let op_load = is(g, Op::Load);
        let op_store = is(g, Op::Store);
        let op_add = is(g, Op::Add);
        let op_jmp = is(g, Op::Jmp);
        let op_jnz = is(g, Op::Jnz);
        let op_halt = is(g, Op::Halt);

        // Data memory ports.
        let g = &mut d.aig;
        let dmem_read = g.or(op_load, op_add);
        let data = d.add_read_port(dmem, arg_da.clone(), dmem_read);
        d.add_write_port(dmem, arg_da, op_store, acc.clone());

        // Accumulator update.
        let g = &mut d.aig;
        let sum = g.add(&acc, &data);
        let mut acc_next = acc.clone();
        acc_next = g.mux_word(op_ldi, &arg_d, &acc_next);
        acc_next = g.mux_word(op_load, &data, &acc_next);
        acc_next = g.mux_word(op_add, &sum, &acc_next);
        d.set_next_word(&acc, &acc_next);

        // PC update.
        let g = &mut d.aig;
        let pc_inc = g.inc(&pc);
        let acc_nz = g.redor(&acc);
        let take_jnz = g.and(op_jnz, acc_nz);
        let mut pc_next = g.mux_word(running, &pc_inc, &pc);
        pc_next = g.mux_word(op_jmp, &arg_ia, &pc_next);
        pc_next = g.mux_word(take_jnz, &arg_ia, &pc_next);
        pc_next = g.mux_word(op_halt, &pc, &pc_next);
        d.set_next_word(&pc, &pc_next);

        // Halt latch.
        let g = &mut d.aig;
        let halted_next = g.or(halted, op_halt);
        d.set_next(halted, halted_next);

        // Halt is sticky: a previously-halted CPU never resumes.
        let (_, was_halted) = d.new_latch("was_halted", LatchInit::Zero);
        d.set_next(was_halted, halted);
        let g = &mut d.aig;
        let resume = g.and(was_halted, !halted);
        let halt_sticky = d.add_property("halt_sticky", resume);

        // Concrete-program result check.
        let result_correct = program.map(|_| {
            let g = &mut d.aig;
            let expect = g.const_word(expected_acc, dw);
            let ok = g.eq_word(&acc, &expect);
            let bad = g.and(halted, !ok);
            d.add_property("result_correct", bad)
        });

        d.check().expect("cpu design is well-formed");
        TinyCpu {
            design: d,
            config,
            imem,
            dmem,
            halt_sticky,
            result_correct,
            halted,
            acc,
            pc,
            load_cycles,
        }
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Sum of dmem[0..3] into acc, then halt.
    fn sum_program() -> Vec<Instr> {
        vec![
            Instr {
                op: Op::Ldi,
                arg: 0,
            },
            Instr {
                op: Op::Add,
                arg: 0,
            },
            Instr {
                op: Op::Add,
                arg: 1,
            },
            Instr {
                op: Op::Add,
                arg: 2,
            },
            Instr {
                op: Op::Store,
                arg: 7,
            },
            Instr {
                op: Op::Halt,
                arg: 0,
            },
        ]
    }

    #[test]
    fn instr_encode_decode_roundtrip() {
        for op in [
            Op::Nop,
            Op::Ldi,
            Op::Load,
            Op::Store,
            Op::Add,
            Op::Jmp,
            Op::Jnz,
            Op::Halt,
        ] {
            for arg in [0u64, 1, 7, 200] {
                let i = Instr { op, arg };
                assert_eq!(Instr::decode(i.encode()), i);
            }
        }
    }

    #[test]
    fn emulator_runs_sum_program() {
        let config = CpuConfig::small();
        let result = emulate(&config, &sum_program(), &[(0, 5), (1, 9), (2, 1)], 100);
        assert!(result.halted);
        assert_eq!(result.acc, 15);
        assert_eq!(result.dmem.get(&7), Some(&15));
    }

    /// The hardware CPU and the emulator agree on random straight-line
    /// programs (no backward jumps, so everything terminates).
    #[test]
    fn hardware_matches_emulator_on_random_programs() {
        let config = CpuConfig::small();
        let mut rng = StdRng::seed_from_u64(0xC9);
        for round in 0..40 {
            let len = rng.random_range(2..10usize);
            let mut program: Vec<Instr> = (0..len - 1)
                .map(|i| {
                    let op = match rng.random_range(0..6) {
                        0 => Op::Nop,
                        1 => Op::Ldi,
                        2 => Op::Load,
                        3 => Op::Store,
                        4 => Op::Add,
                        // Forward jump only: keeps programs terminating.
                        _ => Op::Jmp,
                    };
                    let arg = match op {
                        Op::Jmp => rng.random_range(i as u64 + 1..len as u64),
                        Op::Ldi => rng.random_range(0..256),
                        _ => rng.random_range(0..8),
                    };
                    Instr { op, arg }
                })
                .collect();
            program.push(Instr {
                op: Op::Halt,
                arg: 0,
            });
            let expected = emulate(&config, &program, &[], 200);
            assert!(expected.halted, "round {round}: straight-line must halt");

            let cpu = TinyCpu::with_program(config, &program, expected.acc);
            let mut sim = Simulator::new(&cpu.design);
            let budget = cpu.load_cycles + 200;
            let mut fired_result = false;
            for _ in 0..budget {
                let report = sim.step(&[]);
                assert!(!report.property_bad[cpu.halt_sticky.0 as usize]);
                fired_result |=
                    report.property_bad[cpu.result_correct.expect("concrete").0 as usize];
                if sim.value(cpu.halted) {
                    break;
                }
            }
            assert!(sim.value(cpu.halted), "round {round}: CPU must halt");
            assert!(!fired_result, "round {round}: result property must hold");
            assert_eq!(
                sim.state_value(&cpu.acc),
                expected.acc,
                "round {round}: acc mismatch for {program:?}"
            );
            // Stores visible in data memory.
            for (&a, &v) in &expected.dmem {
                assert_eq!(sim.read_memory(cpu.dmem, a), v, "round {round} dmem[{a}]");
            }
        }
    }

    #[test]
    fn loops_execute_correctly() {
        // Count down from 3: LDI 3; STORE 0; LDI 1; STORE 1;
        // loop: LOAD 0; ADD 2 (0) ... simpler: acc-based loop with JNZ.
        // acc = 3; loop: acc = acc + dmem[1] (which holds 255 = -1); JNZ loop; HALT
        let config = CpuConfig::small();
        let program = vec![
            Instr {
                op: Op::Ldi,
                arg: 255,
            },
            Instr {
                op: Op::Store,
                arg: 1,
            }, // dmem[1] = -1
            Instr {
                op: Op::Ldi,
                arg: 3,
            },
            Instr {
                op: Op::Add,
                arg: 1,
            }, // acc += -1
            Instr {
                op: Op::Jnz,
                arg: 3,
            },
            Instr {
                op: Op::Halt,
                arg: 0,
            },
        ];
        let expected = emulate(&config, &program, &[], 100);
        assert!(expected.halted);
        assert_eq!(expected.acc, 0);
        let cpu = TinyCpu::with_program(config, &program, expected.acc);
        let mut sim = Simulator::new(&cpu.design);
        for _ in 0..cpu.load_cycles + 50 {
            sim.step(&[]);
            if sim.value(cpu.halted) {
                break;
            }
        }
        assert!(sim.value(cpu.halted));
        assert_eq!(sim.state_value(&cpu.acc), 0);
    }

    #[test]
    fn any_program_mode_halt_sticky_in_simulation() {
        let config = CpuConfig::small();
        let cpu = TinyCpu::any_program(config);
        let mut rng = StdRng::seed_from_u64(0xAA);
        // Seed a random program image and check stickiness dynamically.
        for _ in 0..10 {
            let mut sim = Simulator::new(&cpu.design);
            for a in 0..(1u64 << config.imem_addr_width) {
                sim.seed_memory(
                    cpu.imem,
                    a,
                    rng.random_range(0..(1 << config.instr_width())),
                );
            }
            let mut seen_halt = false;
            for _ in 0..100 {
                let report = sim.step(&[]);
                assert!(!report.property_bad[cpu.halt_sticky.0 as usize]);
                seen_halt |= sim.value(cpu.halted);
                if seen_halt {
                    assert!(sim.value(cpu.halted), "must stay halted");
                }
            }
        }
    }
}
