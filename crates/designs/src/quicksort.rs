//! The quicksort case study (Section 5, Tables 1 and 2).
//!
//! The paper implements quicksort in Verilog over two embedded memories:
//! the data array (`AW=10, DW=32`, 1R/1W) and an explicit recursion stack
//! (`AW=10, DW=24`, 1R/1W); the array starts with **arbitrary** contents,
//! which is what makes eq. (6) (precise arbitrary-initial-state modeling)
//! necessary for the correctness proofs.
//!
//! This module reproduces that design as a PC-based microcoded FSM running
//! iterative quicksort with Lomuto partitioning. With the paper's widths
//! (`QuickSortConfig::paper(n)`) the stack frame is `2·10 + 4 = 24` bits
//! wide, matching the paper's `DW=24`.
//!
//! Two properties, as in the paper:
//!
//! * **P1** — after sorting, the first element cannot exceed the second
//!   (checked by a verification phase that reads `A[0]` and `A[1]`).
//!   P1 depends on the array *and* the stack.
//! * **P2** — control-flow discipline of the recursion stack: every popped
//!   frame `(lo, hi)` is well-formed (`lo ≤ hi ∧ hi ≤ n-1`). P2 depends
//!   only on the stack — the fact proof-based abstraction discovers in
//!   Table 2, dropping the array module entirely.

use emm_aig::{Aig, Bit, Design, LatchInit, MemInit, MemoryId, PropertyId, Word};

use crate::util::{concat, slice, update_bit, update_word};

/// An intentional defect to inject, for exercising the falsification side
/// of BMC ("finding real bugs", the focus of the paper's predecessor
/// CAV'04 work). [`Bug::None`] builds the correct design.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Bug {
    /// The correct algorithm.
    #[default]
    None,
    /// The partition comparison is inverted (`>` instead of `<`): the
    /// "sorted" array comes out descending, so P1 has real witnesses.
    InvertedComparison,
    /// The empty-stack check before popping is dropped: once the stack
    /// drains, the machine pops never-written garbage frames (visible
    /// because the stack memory has arbitrary initial contents), which
    /// violates P2's frame well-formedness — a stack-underflow bug that
    /// only the stack module can witness.
    MissingEmptyCheck,
}

/// Configuration of the quicksort design.
#[derive(Clone, Copy, Debug)]
pub struct QuickSortConfig {
    /// Number of elements to sort (`N` in Table 1).
    pub n: usize,
    /// Array address width (`AW`, paper: 10).
    pub addr_width: usize,
    /// Array data width (`DW`, paper: 32).
    pub data_width: usize,
    /// Injected defect (default: none).
    pub bug: Bug,
}

impl QuickSortConfig {
    /// The paper's configuration for a given `N`: `AW=10`, `DW=32`; the
    /// stack frame width works out to the paper's 24 bits.
    pub fn paper(n: usize) -> QuickSortConfig {
        QuickSortConfig {
            n,
            addr_width: 10,
            data_width: 32,
            bug: Bug::None,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small(n: usize) -> QuickSortConfig {
        QuickSortConfig {
            n,
            addr_width: 3,
            data_width: 4,
            bug: Bug::None,
        }
    }

    /// Stack data width: a frame packs `lo` and `hi` plus 4 spare bits
    /// (matches the paper's `DW=24` at `AW=10`).
    pub fn stack_width(&self) -> usize {
        2 * self.addr_width + 4
    }
}

/// Program-counter values of the FSM.
#[allow(missing_docs)]
pub mod pc {
    pub const INIT: u64 = 0;
    pub const LOOP: u64 = 1;
    pub const CHECK: u64 = 2;
    pub const PART: u64 = 3;
    pub const SWAP_I: u64 = 4;
    pub const SWAP_J: u64 = 5;
    pub const PIV1: u64 = 6;
    pub const PIV2: u64 = 7;
    pub const PUSH_L: u64 = 8;
    pub const PUSH_R: u64 = 9;
    pub const DONE: u64 = 10;
    pub const CHK: u64 = 11;
    pub const HALT: u64 = 12;
}

/// The built quicksort design plus handles for tests and benchmarks.
#[derive(Debug)]
pub struct QuickSort {
    /// The verification model.
    pub design: Design,
    /// Configuration it was built with.
    pub config: QuickSortConfig,
    /// The data array memory.
    pub array: MemoryId,
    /// The recursion stack memory.
    pub stack: MemoryId,
    /// Property P1 (sortedness of the first two elements).
    pub p1: PropertyId,
    /// Property P2 (popped stack frames are well-formed).
    pub p2: PropertyId,
    /// The program counter word (for inspection).
    pub pc: Word,
    /// The halt indicator (pc == HALT).
    pub halted: Bit,
}

impl QuickSort {
    /// Builds the design.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n` does not fit the address width.
    pub fn new(config: QuickSortConfig) -> QuickSort {
        assert!(config.n >= 2, "need at least two elements to sort");
        assert!(
            config.n <= (1usize << config.addr_width),
            "n must fit the address width"
        );
        let iw = config.addr_width;
        let dw = config.data_width;
        let sdw = config.stack_width();
        let mut d = Design::new();
        let array = d.add_memory("array", iw, dw, MemInit::Arbitrary);
        // Stack contents are always written before being read, so its
        // declared initial value never matters; Arbitrary is the honest
        // choice (P2 is still provable because pops only read pushed data).
        let stack = d.add_memory("stack", iw, sdw, MemInit::Arbitrary);

        // Registers.
        let pc_w = d.new_latch_word("pc", 4, LatchInit::Zero);
        let sp = d.new_latch_word("sp", iw, LatchInit::Zero);
        let lo = d.new_latch_word("lo", iw, LatchInit::Zero);
        let hi = d.new_latch_word("hi", iw, LatchInit::Zero);
        let ivar = d.new_latch_word("i", iw, LatchInit::Zero);
        let jvar = d.new_latch_word("j", iw, LatchInit::Zero);
        let pivot = d.new_latch_word("pivot", dw, LatchInit::Zero);
        let tmp_i = d.new_latch_word("tmp_i", dw, LatchInit::Zero);
        let tmp_j = d.new_latch_word("tmp_j", dw, LatchInit::Zero);
        let r0 = d.new_latch_word("r0", dw, LatchInit::Zero);
        let (_, viol) = d.new_latch("viol", LatchInit::Zero);

        let g = &mut d.aig;

        // State decoders.
        let at = |g: &mut Aig, v: u64| g.eq_const(&pc_w, v);
        let s_init = at(g, pc::INIT);
        let s_loop = at(g, pc::LOOP);
        let s_check = at(g, pc::CHECK);
        let s_part = at(g, pc::PART);
        let s_swap_i = at(g, pc::SWAP_I);
        let s_swap_j = at(g, pc::SWAP_J);
        let s_piv1 = at(g, pc::PIV1);
        let s_piv2 = at(g, pc::PIV2);
        let s_push_l = at(g, pc::PUSH_L);
        let s_push_r = at(g, pc::PUSH_R);
        let s_done = at(g, pc::DONE);
        let s_chk = at(g, pc::CHK);
        let s_halt = at(g, pc::HALT);

        // Common conditions.
        let sp_zero = g.eq_const(&sp, 0);
        let sp_minus_1 = g.dec(&sp);
        let sp_plus_1 = g.inc(&sp);
        let lo_ge_hi = {
            let lt = g.ult(&lo, &hi);
            !lt
        };
        let j_eq_hi = g.eq_word(&jvar, &hi);
        let j_plus_1 = g.inc(&jvar);
        let i_plus_1 = g.inc(&ivar);
        let i_minus_1 = g.dec(&ivar);
        let lo_lt_i = g.ult(&lo, &ivar);
        let i_lt_hi = g.ult(&ivar, &hi);

        // ---------------- Array read port ----------------
        // Address mux by state: CHECK -> hi, PART -> j, SWAP_I/PIV1 -> i,
        // DONE -> 0, CHK -> 1.
        let zero_a = g.const_word(0, iw);
        let one_a = g.const_word(1, iw);
        let mut arr_raddr = zero_a.clone();
        arr_raddr = update_word(
            g,
            &arr_raddr,
            &[
                (s_check, &hi),
                (s_part, &jvar),
                (s_swap_i, &ivar),
                (s_piv1, &ivar),
                (s_done, &zero_a),
                (s_chk, &one_a),
            ],
        );
        let re_states = [s_check, s_part, s_swap_i, s_piv1, s_done, s_chk];
        let arr_re = g.or_many(&re_states);
        let arr_rd = d.add_read_port(array, arr_raddr, arr_re);

        // ---------------- Stack read port ----------------
        let g = &mut d.aig;
        let pop_active = match config.bug {
            // Stack-underflow bug: the empty check is missing, so the
            // machine pops unconditionally in LOOP.
            Bug::MissingEmptyCheck => s_loop,
            _ => g.and(s_loop, !sp_zero),
        };
        let stk_rd = d.add_read_port(stack, sp_minus_1.clone(), pop_active);
        let popped_lo = slice(&stk_rd, 0, iw);
        let popped_hi = slice(&stk_rd, iw, iw);

        // ---------------- Datapath conditions using read data ----------------
        let g = &mut d.aig;
        let rd_lt_pivot = match config.bug {
            Bug::InvertedComparison => g.ugt(&arr_rd, &pivot),
            _ => g.ult(&arr_rd, &pivot),
        };
        let swap_needed = g.and(s_part, !j_eq_hi);
        let swap_taken = g.and(swap_needed, rd_lt_pivot);
        let part_advance = g.and(swap_needed, !rd_lt_pivot);

        // ---------------- Array write port ----------------
        // SWAP_I: A[i] <- tmp_j;  SWAP_J: A[j] <- tmp_i;
        // PIV1:   A[i] <- pivot;  PIV2:   A[hi] <- tmp_i.
        let mut arr_waddr = zero_a.clone();
        arr_waddr = update_word(
            g,
            &arr_waddr,
            &[
                (s_swap_i, &ivar),
                (s_swap_j, &jvar),
                (s_piv1, &ivar),
                (s_piv2, &hi),
            ],
        );
        let zero_d = g.const_word(0, dw);
        let mut arr_wdata = zero_d.clone();
        arr_wdata = update_word(
            g,
            &arr_wdata,
            &[
                (s_swap_i, &tmp_j),
                (s_swap_j, &tmp_i),
                (s_piv1, &pivot),
                (s_piv2, &tmp_i),
            ],
        );
        let arr_we = g.or_many(&[s_swap_i, s_swap_j, s_piv1, s_piv2]);
        d.add_write_port(array, arr_waddr, arr_we, arr_wdata);

        // ---------------- Stack write port ----------------
        // INIT pushes (0, n-1) at address 0; PUSH_L pushes (lo, i-1) when
        // lo < i; PUSH_R pushes (i+1, hi) when i < hi.
        let g = &mut d.aig;
        let n_minus_1 = g.const_word(config.n as u64 - 1, iw);
        let spare = g.const_word(0, sdw - 2 * iw);
        let init_frame = {
            let f = concat(&zero_a, &n_minus_1);
            concat(&f, &spare)
        };
        let left_frame = {
            let f = concat(&lo, &i_minus_1);
            concat(&f, &spare)
        };
        let right_frame = {
            let f = concat(&i_plus_1, &hi);
            concat(&f, &spare)
        };
        let push_l_taken = g.and(s_push_l, lo_lt_i);
        let push_r_taken = g.and(s_push_r, i_lt_hi);
        let mut stk_waddr = zero_a.clone();
        stk_waddr = update_word(
            g,
            &stk_waddr,
            &[(s_init, &zero_a), (s_push_l, &sp), (s_push_r, &sp)],
        );
        let zero_s = g.const_word(0, sdw);
        let mut stk_wdata = zero_s.clone();
        stk_wdata = update_word(
            g,
            &stk_wdata,
            &[
                (s_init, &init_frame),
                (s_push_l, &left_frame),
                (s_push_r, &right_frame),
            ],
        );
        let stk_we = g.or_many(&[s_init, push_l_taken, push_r_taken]);
        d.add_write_port(stack, stk_waddr, stk_we, stk_wdata);

        // ---------------- Next-state logic ----------------
        let g = &mut d.aig;
        let mkpc = |g: &mut Aig, v: u64| g.const_word(v, 4);
        let pc_loop = mkpc(g, pc::LOOP);
        let pc_check = mkpc(g, pc::CHECK);
        let pc_part = mkpc(g, pc::PART);
        let pc_swap_i = mkpc(g, pc::SWAP_I);
        let pc_swap_j = mkpc(g, pc::SWAP_J);
        let pc_piv1 = mkpc(g, pc::PIV1);
        let pc_piv2 = mkpc(g, pc::PIV2);
        let pc_push_l = mkpc(g, pc::PUSH_L);
        let pc_push_r = mkpc(g, pc::PUSH_R);
        let pc_done = mkpc(g, pc::DONE);
        let pc_chk = mkpc(g, pc::CHK);
        let pc_halt = mkpc(g, pc::HALT);

        let loop_to_done = g.and(s_loop, sp_zero);
        let check_skip = g.and(s_check, lo_ge_hi);
        let check_enter = g.and(s_check, !lo_ge_hi);
        let part_done = g.and(s_part, j_eq_hi);

        let next_pc = update_word(
            g,
            &pc_w,
            &[
                (s_init, &pc_loop),
                (loop_to_done, &pc_done),
                (pop_active, &pc_check),
                (check_skip, &pc_loop),
                (check_enter, &pc_part),
                (part_done, &pc_piv1),
                (part_advance, &pc_part),
                (swap_taken, &pc_swap_i),
                (s_swap_i, &pc_swap_j),
                (s_swap_j, &pc_part),
                (s_piv1, &pc_piv2),
                (s_piv2, &pc_push_l),
                (s_push_l, &pc_push_r),
                (s_push_r, &pc_loop),
                (s_done, &pc_chk),
                (s_chk, &pc_halt),
                (s_halt, &pc_halt),
            ],
        );
        d.set_next_word(&pc_w, &next_pc);

        let g = &mut d.aig;
        let one_sp = g.const_word(1, iw);
        let next_sp = update_word(
            g,
            &sp,
            &[
                (s_init, &one_sp),
                (pop_active, &sp_minus_1),
                (push_l_taken, &sp_plus_1),
                (push_r_taken, &sp_plus_1),
            ],
        );
        d.set_next_word(&sp, &next_sp);

        let g = &mut d.aig;
        let next_lo = update_word(g, &lo, &[(pop_active, &popped_lo)]);
        d.set_next_word(&lo, &next_lo);
        let g = &mut d.aig;
        let next_hi = update_word(g, &hi, &[(pop_active, &popped_hi)]);
        d.set_next_word(&hi, &next_hi);

        let g = &mut d.aig;
        let next_i = update_word(g, &ivar, &[(check_enter, &lo), (s_swap_j, &i_plus_1)]);
        d.set_next_word(&ivar, &next_i);
        let g = &mut d.aig;
        let next_j = update_word(
            g,
            &jvar,
            &[
                (check_enter, &lo),
                (part_advance, &j_plus_1),
                (s_swap_j, &j_plus_1),
            ],
        );
        d.set_next_word(&jvar, &next_j);

        let g = &mut d.aig;
        let next_pivot = update_word(g, &pivot, &[(check_enter, &arr_rd)]);
        d.set_next_word(&pivot, &next_pivot);
        let g = &mut d.aig;
        let capture_tmp_i = g.or(s_swap_i, s_piv1);
        let next_tmp_i = update_word(g, &tmp_i, &[(capture_tmp_i, &arr_rd)]);
        d.set_next_word(&tmp_i, &next_tmp_i);
        let g = &mut d.aig;
        let next_tmp_j = update_word(g, &tmp_j, &[(swap_taken, &arr_rd)]);
        d.set_next_word(&tmp_j, &next_tmp_j);
        let g = &mut d.aig;
        let next_r0 = update_word(g, &r0, &[(s_done, &arr_rd)]);
        d.set_next_word(&r0, &next_r0);

        // P1 violation: at CHK, r0 (= A[0]) exceeds the just-read A[1].
        let g = &mut d.aig;
        let unsorted = g.ugt(&r0, &arr_rd);
        let set_viol = g.and(s_chk, unsorted);
        let next_viol = update_bit(g, viol, &[(set_viol, Aig::TRUE)]);
        d.set_next(viol, next_viol);

        // ---------------- Properties ----------------
        let p1 = d.add_property("P1_first_two_sorted", viol);
        let g = &mut d.aig;
        let frame_lo_le_hi = g.ule(&popped_lo, &popped_hi);
        let frame_hi_in_range = g.ule(&popped_hi, &n_minus_1);
        let frame_ok = g.and(frame_lo_le_hi, frame_hi_in_range);
        let p2_bad = g.and(pop_active, !frame_ok);
        let p2 = d.add_property("P2_popped_frames_wellformed", p2_bad);

        d.check().expect("quicksort design is well-formed");
        QuickSort {
            design: d,
            config,
            array,
            stack,
            p1,
            p2,
            pc: pc_w,
            halted: s_halt,
        }
    }

    /// A conservative bound on the number of cycles a run can take, used to
    /// size simulations and BMC depths.
    pub fn cycle_bound(&self) -> usize {
        let n = self.config.n;
        // Each partition of a length-L range costs <= 3L + 7 cycles; the
        // total partitioned length over all frames is O(n^2) in the worst
        // case; plus pops of singletons. A generous closed bound:
        3 * n * n + 12 * n + 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{MemoryId, Simulator};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Runs the FSM on a concrete array; returns the final array and the
    /// cycles taken to halt.
    fn run(qs: &QuickSort, input: &[u64]) -> (Vec<u64>, usize, bool, bool) {
        let mut sim = Simulator::new(&qs.design);
        for (a, &v) in input.iter().enumerate() {
            sim.seed_memory(qs.array, a as u64, v);
        }
        let mut p1_fired = false;
        let mut p2_fired = false;
        let bound = qs.cycle_bound();
        let mut cycles = 0;
        for c in 0..bound {
            let report = sim.step(&[]);
            p1_fired |= report.property_bad[0];
            p2_fired |= report.property_bad[1];
            if sim.value(qs.halted) {
                cycles = c;
                break;
            }
        }
        assert!(sim.value(qs.halted), "must halt within the cycle bound");
        let out: Vec<u64> = (0..input.len())
            .map(|a| sim.read_memory(qs.array, a as u64))
            .collect();
        (out, cycles, p1_fired, p2_fired)
    }

    #[test]
    fn sorts_exhaustive_small_arrays() {
        let qs = QuickSort::new(QuickSortConfig::small(3));
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let input = vec![a, b, c];
                    let (out, _, p1, p2) = run(&qs, &input);
                    let mut expect = input.clone();
                    expect.sort_unstable();
                    assert_eq!(out, expect, "input {input:?}");
                    assert!(!p1, "P1 must not fire for {input:?}");
                    assert!(!p2, "P2 must not fire for {input:?}");
                }
            }
        }
    }

    #[test]
    fn sorts_random_arrays_various_sizes() {
        let mut rng = StdRng::seed_from_u64(0x5042);
        for n in 2..=6 {
            let qs = QuickSort::new(QuickSortConfig {
                n,
                addr_width: 4,
                data_width: 8,
                bug: Default::default(),
            });
            for _ in 0..40 {
                let input: Vec<u64> = (0..n).map(|_| rng.random_range(0..256)).collect();
                let (out, cycles, p1, p2) = run(&qs, &input);
                let mut expect = input.clone();
                expect.sort_unstable();
                assert_eq!(out, expect, "n={n} input {input:?}");
                assert!(!p1 && !p2);
                assert!(cycles <= qs.cycle_bound());
            }
        }
    }

    #[test]
    fn paper_config_shapes() {
        let qs = QuickSort::new(QuickSortConfig::paper(3));
        let arr = &qs.design.memories()[qs.array.0 as usize];
        assert_eq!((arr.addr_width, arr.data_width), (10, 32));
        let stk = &qs.design.memories()[qs.stack.0 as usize];
        assert_eq!(
            (stk.addr_width, stk.data_width),
            (10, 24),
            "paper's stack DW=24"
        );
        let stats = qs.design.stats();
        assert!(
            (150..400).contains(&stats.latches),
            "latch count {} should be near the paper's ~200",
            stats.latches
        );
        let _ = MemoryId(0);
    }

    #[test]
    fn worst_case_cycles_within_bound() {
        // Descending arrays are quicksort's bad case with last-element pivot.
        for n in 2..=7 {
            let qs = QuickSort::new(QuickSortConfig {
                n,
                addr_width: 4,
                data_width: 8,
                bug: Default::default(),
            });
            let input: Vec<u64> = (0..n as u64).rev().collect();
            let (out, cycles, _, _) = run(&qs, &input);
            let expect: Vec<u64> = (0..n as u64).collect();
            assert_eq!(out, expect);
            assert!(
                cycles <= qs.cycle_bound(),
                "n={n}: {cycles} cycles exceeds bound {}",
                qs.cycle_bound()
            );
        }
    }

    #[test]
    fn duplicate_values_sort_correctly() {
        let qs = QuickSort::new(QuickSortConfig::small(5));
        for input in [
            vec![3, 3, 3, 3, 3],
            vec![1, 2, 1, 2, 1],
            vec![7, 0, 7, 0, 7],
        ] {
            let (out, _, p1, p2) = run(&qs, &input);
            let mut expect = input.clone();
            expect.sort_unstable();
            assert_eq!(out, expect, "input {input:?}");
            assert!(!p1 && !p2);
        }
    }
}

#[cfg(test)]
mod bug_tests {
    use super::*;
    use emm_aig::Simulator;

    /// The inverted comparison sorts descending: P1 fires on inputs where
    /// the first two sorted-descending elements differ.
    #[test]
    fn inverted_comparison_violates_p1_in_simulation() {
        let qs = QuickSort::new(QuickSortConfig {
            bug: Bug::InvertedComparison,
            ..QuickSortConfig::small(3)
        });
        let mut sim = Simulator::new(&qs.design);
        for (a, v) in [(0u64, 1u64), (1, 5), (2, 3)] {
            sim.seed_memory(qs.array, a, v);
        }
        let mut p1 = false;
        for _ in 0..qs.cycle_bound() {
            let report = sim.step(&[]);
            p1 |= report.property_bad[0];
            if sim.value(qs.halted) {
                break;
            }
        }
        assert!(p1, "descending output must violate P1");
    }

    /// The missing empty check pops garbage frames once the stack drains.
    #[test]
    fn missing_empty_check_violates_p2_in_simulation() {
        let qs = QuickSort::new(QuickSortConfig {
            bug: Bug::MissingEmptyCheck,
            ..QuickSortConfig::small(3)
        });
        let mut sim = Simulator::new(&qs.design);
        // Seed a malformed frame where the underflowing pop will land
        // (address wraps to all-ones when sp==0): hi = n (out of range).
        let iw = qs.config.addr_width;
        let top = (1u64 << iw) - 1;
        let malformed = (qs.config.n as u64) << iw; // lo=0, hi=n (> n-1)
        sim.seed_memory(qs.stack, top, malformed);
        for (a, v) in [(0u64, 2u64), (1, 1), (2, 3)] {
            sim.seed_memory(qs.array, a, v);
        }
        let mut p2 = false;
        for _ in 0..3 * qs.cycle_bound() {
            let report = sim.step(&[]);
            p2 |= report.property_bad[1];
            if p2 {
                break;
            }
        }
        assert!(p2, "underflow pop must violate P2");
    }
}
