//! A memory-backed synchronous FIFO with occupancy tracking.
//!
//! One of the supporting embedded-memory designs (the paper motivates EMM
//! with "RAM, stack, and FIFO" memory forms, Section 2.3). Used by the
//! examples and tests to exercise EMM on a design where reads chase writes
//! closely and the forwarding window matters.

use emm_aig::{Bit, Design, LatchInit, MemInit, MemoryId, PropertyId, Word};

/// FIFO configuration.
#[derive(Clone, Copy, Debug)]
pub struct FifoConfig {
    /// Address width: capacity is `2^addr_width` entries.
    pub addr_width: usize,
    /// Entry width.
    pub data_width: usize,
}

/// The built FIFO design plus handles.
#[derive(Debug)]
pub struct Fifo {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: FifoConfig,
    /// Backing memory.
    pub memory: MemoryId,
    /// Property: occupancy never exceeds capacity (push refused when full).
    pub no_overflow: PropertyId,
    /// Property: data integrity — a tagged value pushed while empty is the
    /// value popped next.
    pub integrity: PropertyId,
    /// Head (read) pointer word.
    pub head: Word,
    /// Tail (write) pointer word.
    pub tail: Word,
    /// Occupancy counter word.
    pub count: Word,
    /// Pop-data word (read port output).
    pub pop_data: Word,
    /// The external push request input.
    pub push_req: Bit,
    /// The external pop request input.
    pub pop_req: Bit,
}

impl Fifo {
    /// Builds the FIFO.
    pub fn new(config: FifoConfig) -> Fifo {
        let aw = config.addr_width;
        let dw = config.data_width;
        let capacity = 1u64 << aw;
        let mut d = Design::new();
        let memory = d.add_memory("fifo_ram", aw, dw, MemInit::Zero);

        let push_req = d.new_input("push");
        let pop_req = d.new_input("pop");
        let push_data = d.new_input_word("push_data", dw);

        let head = d.new_latch_word("head", aw, LatchInit::Zero);
        let tail = d.new_latch_word("tail", aw, LatchInit::Zero);
        let count = d.new_latch_word("count", aw + 1, LatchInit::Zero);

        let g = &mut d.aig;
        let full = g.eq_const(&count, capacity);
        let empty = g.eq_const(&count, 0);
        let do_push = g.and(push_req, !full);
        let do_pop = g.and(pop_req, !empty);

        // Write at tail on push.
        d.add_write_port(memory, tail.clone(), do_push, push_data.clone());
        // Read at head on pop (combinational; data valid this cycle).
        let pop_data = d.add_read_port(memory, head.clone(), do_pop);

        let g = &mut d.aig;
        let tail_inc = g.inc(&tail);
        let tail_next = g.mux_word(do_push, &tail_inc, &tail);
        d.set_next_word(&tail, &tail_next);
        let g = &mut d.aig;
        let head_inc = g.inc(&head);
        let head_next = g.mux_word(do_pop, &head_inc, &head);
        d.set_next_word(&head, &head_next);
        let g = &mut d.aig;
        let count_inc = g.inc(&count);
        let count_dec = g.dec(&count);
        let only_push = g.and(do_push, !do_pop);
        let only_pop = g.and(do_pop, !do_push);
        let count_up = g.mux_word(only_push, &count_inc, &count);
        let count_next = g.mux_word(only_pop, &count_dec, &count_up);
        d.set_next_word(&count, &count_next);

        // No-overflow: the occupancy can never exceed capacity.
        let g = &mut d.aig;
        let cap = g.const_word(capacity, aw + 1);
        let over = g.ult(&cap, &count);
        let no_overflow = d.add_property("no_overflow", over);

        // Integrity: track one value. When a push happens into an empty
        // FIFO, remember the data; the next pop must return it.
        let (_, tracking) = d.new_latch("tracking", LatchInit::Zero);
        let tracked = d.new_latch_word("tracked", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let start_track = g.and(do_push, empty);
        let start_not_tracking = g.and(start_track, !tracking);
        let pop_while_tracking = g.and(do_pop, tracking);
        // Tracking ends when the tracked element is popped (it is at the
        // head while tracking is active, because it was pushed into an
        // empty queue and pops are FIFO-ordered).
        let keep = g.mux(pop_while_tracking, emm_aig::Aig::FALSE, tracking);
        let tracking_next = g.mux(start_not_tracking, emm_aig::Aig::TRUE, keep);
        d.set_next(tracking, tracking_next);
        let g = &mut d.aig;
        let tracked_next = g.mux_word(start_not_tracking, &push_data, &tracked);
        d.set_next_word(&tracked, &tracked_next);
        // The pop that ends tracking must return the tracked value...
        // unless the tracked push happened this very cycle (pop of an
        // empty queue cannot happen: do_pop requires !empty).
        let g = &mut d.aig;
        let matches = g.eq_word(&pop_data, &tracked);
        let integrity_bad = g.and(pop_while_tracking, !matches);
        let integrity = d.add_property("pop_returns_tracked", integrity_bad);

        d.check().expect("fifo design is well-formed");
        Fifo {
            design: d,
            config,
            memory,
            no_overflow,
            integrity,
            head,
            tail,
            count,
            pop_data,
            push_req,
            pop_req,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::VecDeque;

    /// Drive random push/pop traffic and mirror it in a software queue.
    #[test]
    fn matches_software_queue() {
        let config = FifoConfig {
            addr_width: 3,
            data_width: 5,
        };
        let fifo = Fifo::new(config);
        let mut rng = StdRng::seed_from_u64(21);
        let mut sim = Simulator::new(&fifo.design);
        let mut model: VecDeque<u64> = VecDeque::new();
        let capacity = 1usize << config.addr_width;
        for cycle in 0..600 {
            let push = rng.random_bool(0.5);
            let pop = rng.random_bool(0.5);
            let data = rng.random_range(0..(1u64 << config.data_width));
            let mut inputs = vec![push, pop];
            for b in 0..config.data_width {
                inputs.push((data >> b) & 1 == 1);
            }
            let report = sim.step(&inputs);
            assert!(!report.property_bad[0], "overflow flagged at cycle {cycle}");
            assert!(
                !report.property_bad[1],
                "integrity flagged at cycle {cycle}"
            );
            // The hardware evaluates full/empty at the start of the cycle,
            // so a push into a full queue is refused even if a pop drains
            // an entry in the same cycle.
            let did_push = push && model.len() < capacity;
            let did_pop = pop && !model.is_empty();
            if did_pop {
                let expect = model.pop_front().expect("non-empty");
                assert_eq!(
                    sim.word_value(&fifo.pop_data),
                    expect,
                    "pop data at cycle {cycle}"
                );
            }
            if did_push {
                model.push_back(data);
            }
            assert_eq!(
                sim.state_value(&fifo.count),
                model.len() as u64,
                "cycle {cycle}"
            );
        }
    }

    #[test]
    fn refuses_push_when_full() {
        let config = FifoConfig {
            addr_width: 2,
            data_width: 4,
        };
        let fifo = Fifo::new(config);
        let mut sim = Simulator::new(&fifo.design);
        // Push 6 times into a 4-deep FIFO.
        for v in 0..6u64 {
            let mut inputs = vec![true, false];
            for b in 0..4 {
                inputs.push((v >> b) & 1 == 1);
            }
            let report = sim.step(&inputs);
            assert!(!report.property_bad[0]);
        }
        assert_eq!(
            sim.state_value(&fifo.count),
            4,
            "capacity reached, pushes refused"
        );
        // Pop everything back: 0, 1, 2, 3.
        for expect in 0..4u64 {
            let inputs = vec![false, true, false, false, false, false];
            sim.step(&inputs);
            assert_eq!(sim.word_value(&fifo.pop_data), expect);
        }
        assert_eq!(sim.state_value(&fifo.count), 0);
    }
}
