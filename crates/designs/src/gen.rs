//! Seeded random [`Design`] generator for the frontend test layer.
//!
//! The round-trip proptests, the malformed-input fuzz sweep and the
//! parse-then-verify differential suite all need a stream of sequential
//! designs *nobody hand-wrote*: latch clouds with random next-state
//! logic, optional embedded memories with guarded ports, random
//! properties and constraints. [`random_design`] produces one per
//! `(GenConfig, seed)` pair, deterministically — the same pair always
//! yields the same design, so any failure reproduces from its seed
//! alone (see `tests/regression_seeds.rs` for the convention).
//!
//! Three stock shapes cover the frontends' envelopes:
//!
//! * [`GenConfig::aiger`] — memory-free (AIGER cannot express arrays),
//!   so the AIGER writers accept every generated design;
//! * [`GenConfig::btor2`] — embedded memories with constant-true read
//!   enables, the shape the BTOR2 writer round-trips byte-identically;
//! * [`GenConfig::btor2_guarded`] — memories with random read/write
//!   enables, exercising the oracle-input lowering.
//!
//! Sizes are intentionally small (a handful of latches, address widths
//! ≤ 2) so the differential suites can afford BDD-oracle cross-checks
//! on hundreds of seeds.

use emm_aig::{Aig, Bit, Design, LatchInit, MemInit, Word};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape envelope for [`random_design`]. Every field is an inclusive
/// upper bound; the generator draws actual counts uniformly.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum free primary inputs (at least 1 is always created).
    pub max_inputs: usize,
    /// Maximum latches (at least 1 is always created).
    pub max_latches: usize,
    /// Maximum random AND/OR/XOR/MUX gates layered over the pool.
    pub max_gates: usize,
    /// Maximum embedded memories (0 disables memories entirely).
    pub max_memories: usize,
    /// Maximum address width of a generated memory.
    pub max_addr_width: usize,
    /// Maximum data width of a generated memory.
    pub max_data_width: usize,
    /// Force every read-port enable to constant true (the shape the
    /// BTOR2 writer round-trips byte-identically; irrelevant when
    /// `max_memories == 0`).
    pub const_true_read_enables: bool,
    /// Maximum properties (at least 1 is always created).
    pub max_properties: usize,
    /// Probability of adding one environment constraint.
    pub constraint_probability: f64,
}

impl GenConfig {
    /// Memory-free designs: everything the AIGER writers accept.
    pub fn aiger() -> GenConfig {
        GenConfig {
            max_inputs: 4,
            max_latches: 6,
            max_gates: 24,
            max_memories: 0,
            max_addr_width: 0,
            max_data_width: 0,
            const_true_read_enables: true,
            max_properties: 3,
            constraint_probability: 0.25,
        }
    }

    /// Memory-backed designs with constant-true read enables.
    pub fn btor2() -> GenConfig {
        GenConfig {
            max_inputs: 3,
            max_latches: 4,
            max_gates: 16,
            max_memories: 2,
            max_addr_width: 2,
            max_data_width: 3,
            const_true_read_enables: true,
            max_properties: 3,
            constraint_probability: 0.25,
        }
    }

    /// Memory-backed designs with random read/write enables
    /// (exercises the BTOR2 oracle-input lowering).
    pub fn btor2_guarded() -> GenConfig {
        GenConfig {
            const_true_read_enables: false,
            ..GenConfig::btor2()
        }
    }
}

/// Draws one random bit from the pool, inverted half the time.
fn pick(rng: &mut StdRng, pool: &[Bit]) -> Bit {
    let bit = pool[rng.random_range(0..pool.len())];
    if rng.random_bool(0.5) {
        !bit
    } else {
        bit
    }
}

/// Draws a `width`-wide word of random pool bits.
fn pick_word(rng: &mut StdRng, pool: &[Bit], width: usize) -> Word {
    Word((0..width).map(|_| pick(rng, pool)).collect())
}

/// Generates one random checked design for `(config, seed)`,
/// deterministically.
///
/// The construction: free inputs and latches first (random
/// [`LatchInit`]s), then the memories with their read ports (read data
/// joins the combinational pool), then a layer of random gates, then
/// write ports, latch next-state functions, properties and the optional
/// constraint — all drawn from the accumulated pool.
pub fn random_design(config: &GenConfig, seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new();
    let mut pool: Vec<Bit> = vec![Aig::TRUE];

    let num_inputs = rng.random_range(1..=config.max_inputs.max(1));
    for i in 0..num_inputs {
        pool.push(d.new_input(&format!("in{i}")));
    }

    let num_latches = rng.random_range(1..=config.max_latches.max(1));
    let mut latch_outputs = Vec::with_capacity(num_latches);
    for i in 0..num_latches {
        let init = match rng.random_range(0..3u32) {
            0 => LatchInit::Zero,
            1 => LatchInit::One,
            _ => LatchInit::Free,
        };
        let (_, out) = d.new_latch(&format!("r{i}"), init);
        latch_outputs.push(out);
        pool.push(out);
    }

    // Memories: declared now so their read data feeds the gate layer;
    // write ports are wired after the gate layer so their address and
    // data cones can be arbitrary logic.
    let num_memories = if config.max_memories == 0 {
        0
    } else {
        rng.random_range(0..=config.max_memories)
    };
    let mut memories = Vec::with_capacity(num_memories);
    for m in 0..num_memories {
        let aw = rng.random_range(1..=config.max_addr_width.max(1));
        let dw = rng.random_range(1..=config.max_data_width.max(1));
        let init = if rng.random_bool(0.5) {
            MemInit::Zero
        } else {
            MemInit::Arbitrary
        };
        let mem = d.add_memory(&format!("m{m}"), aw, dw, init);
        let num_reads = rng.random_range(1..=2);
        for _ in 0..num_reads {
            let addr = pick_word(&mut rng, &pool, aw);
            let en = if config.const_true_read_enables {
                Aig::TRUE
            } else {
                pick(&mut rng, &pool)
            };
            let data = d.add_read_port(mem, addr, en);
            pool.extend_from_slice(data.bits());
        }
        memories.push((mem, aw, dw));
    }

    let num_gates = rng.random_range(0..=config.max_gates);
    for _ in 0..num_gates {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let g = match rng.random_range(0..4u32) {
            0 => d.aig.and(a, b),
            1 => d.aig.or(a, b),
            2 => d.aig.xor(a, b),
            _ => {
                let c = pick(&mut rng, &pool);
                d.aig.mux(a, b, c)
            }
        };
        pool.push(g);
    }

    for &(mem, aw, dw) in &memories {
        let num_writes = rng.random_range(1..=2);
        for _ in 0..num_writes {
            let addr = pick_word(&mut rng, &pool, aw);
            let data = pick_word(&mut rng, &pool, dw);
            let en = if rng.random_bool(0.3) {
                Aig::TRUE
            } else {
                pick(&mut rng, &pool)
            };
            d.add_write_port(mem, addr, en, data);
        }
    }

    for &out in &latch_outputs {
        d.set_next(out, pick(&mut rng, &pool));
    }

    let num_props = rng.random_range(1..=config.max_properties.max(1));
    for p in 0..num_props {
        d.add_property(&format!("p{p}"), pick(&mut rng, &pool));
    }
    if rng.random_bool(config.constraint_probability) {
        d.add_constraint(pick(&mut rng, &pool));
    }

    d.check().expect("generated design must be well-formed");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let a = random_design(&GenConfig::btor2_guarded(), seed);
            let b = random_design(&GenConfig::btor2_guarded(), seed);
            assert_eq!(a.stats(), b.stats(), "seed {seed}");
        }
    }

    #[test]
    fn aiger_shape_is_memory_free_and_checked() {
        for seed in 0..50 {
            let d = random_design(&GenConfig::aiger(), seed);
            assert!(d.memories().is_empty(), "seed {seed}");
            assert!(!d.properties().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn btor2_shape_respects_the_enable_flag() {
        let mut saw_memory = false;
        for seed in 0..50 {
            let d = random_design(&GenConfig::btor2(), seed);
            for m in d.memories() {
                saw_memory = true;
                for rp in &m.read_ports {
                    assert_eq!(rp.en, Aig::TRUE, "seed {seed}");
                }
            }
        }
        assert!(saw_memory, "memory shape never generated a memory");
    }
}
