//! Industry Design II surrogate: a multi-port lookup engine
//! (Section 5, "Case Study on Industry Design II").
//!
//! The paper's design has one memory (`AW=12, DW=32`) with **one write port
//! and three read ports**, zero-initialized, and 8 reachability properties.
//! Its story, reproduced here:
//!
//! 1. abstracting the memory away entirely yields **spurious witnesses at
//!    depth 7** for all properties;
//! 2. with EMM, no witnesses exist at any checked depth;
//! 3. the write-enable is observed to stay inactive; the invariant
//!    `G(WE = 0 ∨ WD = 0)` is **provable by backward induction at depth 2**
//!    ("could potentially be a design bug");
//! 4. with the memory abstracted and the invariant applied as a constraint
//!    on the read-data inputs (`RD = 0` when reading), the 8 properties
//!    are proved on a heavily reduced model.
//!
//! The surrogate's write path is gated by a decode that can never fire
//! (two mutually exclusive command comparisons — the "bug"), routed through
//! a two-stage pipeline so the invariant is exactly 2-inductive, matching
//! the paper's backward-induction depth.

use emm_aig::{Bit, Design, LatchInit, MemInit, MemoryId, Word};

/// Configuration of the lookup-engine surrogate.
#[derive(Clone, Copy, Debug)]
pub struct Industry2Config {
    /// Memory address width (paper: 12).
    pub addr_width: usize,
    /// Memory data width (paper: 32).
    pub data_width: usize,
    /// Number of reachability properties (paper: 8).
    pub properties: usize,
    /// Cycles before the result pipeline is armed; controls the depth of
    /// the spurious witnesses when the memory is abstracted (paper: 7).
    pub pipeline_depth: usize,
    /// Extra 32-bit staging registers approximating the paper's 2400-latch
    /// scale; PBA abstracts them away.
    pub bulk_stages: usize,
    /// Assume `RD = 0` on enabled reads (the paper's final verification
    /// step: the proved invariant applied to the read-data inputs).
    pub assume_rd_zero: bool,
}

impl Industry2Config {
    /// The paper-shaped configuration.
    pub fn paper() -> Industry2Config {
        Industry2Config {
            addr_width: 12,
            data_width: 32,
            properties: 8,
            pipeline_depth: 7,
            bulk_stages: 64,
            assume_rd_zero: false,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small() -> Industry2Config {
        Industry2Config {
            addr_width: 4,
            data_width: 6,
            properties: 4,
            pipeline_depth: 7,
            bulk_stages: 2,
            assume_rd_zero: false,
        }
    }
}

/// The built design plus handles.
#[derive(Debug)]
pub struct Industry2 {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: Industry2Config,
    /// The lookup memory (1 write port, 3 read ports).
    pub memory: MemoryId,
    /// Index of the `G(WE=0 ∨ WD=0)` invariant property.
    pub invariant: usize,
    /// Indices of the reachability properties.
    pub lookups: Vec<usize>,
    /// The write-enable signal (for inspection).
    pub we: Bit,
    /// The write-data word (for inspection).
    pub wd: Word,
}

impl Industry2 {
    /// Builds the design.
    pub fn new(config: Industry2Config) -> Industry2 {
        let aw = config.addr_width;
        let dw = config.data_width;
        let mut d = Design::new();
        let memory = d.add_memory("table", aw, dw, MemInit::Zero);

        // Command interface.
        let cmd = d.new_input_word("cmd", 6);
        let ext_data = d.new_input_word("ext_data", dw);
        let addr_in = d.new_input_word("addr_in", aw);

        // The buggy write decode: a command must equal 0x11 AND 0x2A at
        // once — semantically impossible, but not structurally folded, so
        // the verifier has to discover it.
        let g = &mut d.aig;
        let is_store_a = g.eq_const(&cmd, 0x11);
        let is_store_b = g.eq_const(&cmd, 0x2A);
        let write_decode = g.and(is_store_a, is_store_b);

        // Two-stage write pipeline: the invariant G(WE=0 ∨ WD=0) is exactly
        // 2-inductive (an arbitrary induction-window start can hold nonzero
        // stage values, but they drain within two steps).
        let arm = d.new_latch_word("arm_stage", 1, LatchInit::Zero);
        let arm_next = Word::from(vec![write_decode]);
        d.set_next_word(&arm, &arm_next);
        let wd_stage = d.new_latch_word("wd_stage", dw, LatchInit::Zero);
        let g2 = &mut d.aig;
        let gated: Vec<Bit> = ext_data
            .bits()
            .iter()
            .map(|&b| g2.and(b, arm.bit(0)))
            .collect();
        let wd_stage_next = Word::from(gated);
        d.set_next_word(&wd_stage, &wd_stage_next);
        let we_stage = d.new_latch_word("we_stage", 1, LatchInit::Zero);
        let we_stage_next = arm.clone();
        d.set_next_word(&we_stage, &we_stage_next);
        let waddr = d.new_latch_word("waddr_stage", aw, LatchInit::Zero);
        let g = &mut d.aig;
        let waddr_next = g.mux_word(arm.bit(0), &addr_in, &waddr);
        d.set_next_word(&waddr, &waddr_next);

        let we = we_stage.bit(0);
        d.add_write_port(memory, waddr.clone(), we, wd_stage.clone());

        // Result pipeline arming counter: lookups report only after
        // `pipeline_depth` cycles.
        let warm = d.new_latch_word("warmup", 4, LatchInit::Zero);
        let g = &mut d.aig;
        let armed = g.eq_const(&warm, config.pipeline_depth as u64);
        let warm_inc = g.inc(&warm);
        let warm_next = g.mux_word(armed, &warm, &warm_inc);
        d.set_next_word(&warm, &warm_next);

        // Three read ports at input-selected addresses.
        let mut rds = Vec::new();
        for p in 0..3 {
            let raddr = d.new_input_word(&format!("raddr{p}"), aw);
            let rd = d.add_read_port(memory, raddr, armed);
            if config.assume_rd_zero {
                let g = &mut d.aig;
                let zero = g.eq_const(&rd, 0);
                let ok = g.or(!armed, zero);
                d.add_constraint(ok);
            }
            rds.push(rd);
        }

        // Bulk staging registers (rotating capture of ext_data) — realistic
        // padding the paper-scale design carries and PBA drops.
        let mut prev = ext_data.clone();
        for s in 0..config.bulk_stages {
            let stage = d.new_latch_word(&format!("stage{s}"), dw, LatchInit::Zero);
            d.set_next_word(&stage, &prev);
            prev = stage;
        }

        // The invariant the paper proves by backward induction at depth 2:
        // always, WE inactive or WD zero.
        let g = &mut d.aig;
        let wd_zero = g.eq_const(&wd_stage, 0);
        let inv_bad = g.and(we, !wd_zero);
        let invariant = d.add_property("G_we0_or_wd0", inv_bad).0 as usize;

        // Reachability properties: an armed lookup returns a specific
        // nonzero pattern on one of the ports. Unreachable (the memory
        // stays zero), but spuriously reachable once the memory is
        // abstracted and RD floats free.
        let mut lookups = Vec::new();
        for v in 0..config.properties {
            let g = &mut d.aig;
            let pattern = (0x5A5A5A5A5A5A5A5Au64 ^ (v as u64).wrapping_mul(0x9E37))
                & ((1u64 << dw.min(63)) - 1);
            let pattern = if pattern == 0 { 1 } else { pattern };
            let hit = g.eq_const(&rds[v % 3], pattern);
            let bad = g.and(armed, hit);
            let id = d.add_property(&format!("lookup_{v}"), bad);
            lookups.push(id.0 as usize);
        }

        d.check().expect("industry2 design is well-formed");
        Industry2 {
            design: d,
            config,
            memory,
            invariant,
            lookups,
            we,
            wd: wd_stage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn paper_shape() {
        let d2 = Industry2::new(Industry2Config::paper());
        let m = &d2.design.memories()[0];
        assert_eq!((m.addr_width, m.data_width), (12, 32));
        assert_eq!(m.write_ports.len(), 1);
        assert_eq!(m.read_ports.len(), 3);
        assert_eq!(d2.lookups.len(), 8);
        let stats = d2.design.stats();
        assert!(
            stats.latches >= 2000,
            "paper-scale config should be ~2400 latches, got {}",
            stats.latches
        );
    }

    #[test]
    fn we_never_fires_in_simulation() {
        let d2 = Industry2::new(Industry2Config::small());
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = Simulator::new(&d2.design);
        let n_inputs = d2.design.free_inputs().len();
        for _ in 0..300 {
            let inputs: Vec<bool> = (0..n_inputs).map(|_| rng.random_bool(0.5)).collect();
            let report = sim.step(&inputs);
            assert!(!sim.value(d2.we), "the buggy decode must keep WE low");
            assert!(!report.property_bad[d2.invariant]);
            for &l in &d2.lookups {
                assert!(
                    !report.property_bad[l],
                    "lookup property fired: memory must stay 0"
                );
            }
        }
    }

    #[test]
    fn forcing_the_decode_would_write() {
        // Sanity: the write path is real, not constant-folded away. Drive
        // the arm stage directly and observe a write landing.
        let d2 = Industry2::new(Industry2Config::small());
        let mut sim = Simulator::new(&d2.design);
        // Find the arm_stage latch and force it.
        let arm_idx = d2
            .design
            .latches()
            .iter()
            .position(|l| l.name == "arm_stage[0]")
            .expect("arm latch");
        sim.set_latch(arm_idx, true);
        // ext_data = all ones, addr_in = 3.
        let mut inputs = vec![false; d2.design.free_inputs().len()];
        // cmd(6) | ext_data(dw) | addr_in(aw) | raddr0.. raddr2
        let dw = d2.config.data_width;
        for b in 0..dw {
            inputs[6 + b] = true;
        }
        inputs[6 + dw] = true; // addr_in = 1
        sim.step(&inputs);
        // wd_stage latched ext_data & arm; we_stage latched arm.
        let we_idx = d2
            .design
            .latches()
            .iter()
            .position(|l| l.name == "we_stage[0]")
            .expect("we latch");
        assert!(sim.latch(we_idx), "we_stage must capture the forced arm");
        // Next cycle the write commits.
        sim.step(&vec![false; inputs.len()]);
        let mask = (1u64 << dw) - 1;
        assert_eq!(sim.read_memory(d2.memory, 1), mask, "forced write landed");
    }
}
