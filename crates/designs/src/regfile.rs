//! A multi-port register file with a read-after-write bypass checker.
//!
//! Exercises the multi-memory / multi-port EMM machinery (Section 4.1) on
//! the structure processors actually use: `W` write ports, `R` read ports,
//! same-cycle reads observing last cycle's writes. A shadow copy of one
//! watched register is kept in latches; the property compares every read of
//! the watched address against the shadow — true by construction, so the
//! design is a tunable proof workload for multi-port forwarding.

use emm_aig::{Aig, Bit, Design, LatchInit, MemInit, MemoryId, PropertyId, Word};

/// Register-file configuration.
#[derive(Clone, Copy, Debug)]
pub struct RegFileConfig {
    /// Address width (register count is `2^addr_width`).
    pub addr_width: usize,
    /// Register width.
    pub data_width: usize,
    /// Read ports (`R`).
    pub read_ports: usize,
    /// Write ports (`W`).
    pub write_ports: usize,
    /// The register index the shadow checker watches.
    pub watched: u64,
}

impl RegFileConfig {
    /// A 3-read / 1-write file like Industry Design II's memory shape.
    pub fn r3w1() -> RegFileConfig {
        RegFileConfig {
            addr_width: 4,
            data_width: 8,
            read_ports: 3,
            write_ports: 1,
            watched: 5,
        }
    }
}

/// The built register file plus handles.
#[derive(Debug)]
pub struct RegFile {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: RegFileConfig,
    /// The backing memory.
    pub memory: MemoryId,
    /// Property: every enabled read of the watched register returns the
    /// shadow value.
    pub shadow_consistency: PropertyId,
}

impl RegFile {
    /// Builds the register file.
    ///
    /// # Panics
    ///
    /// Panics if `watched` does not fit in `addr_width` bits.
    pub fn new(config: RegFileConfig) -> RegFile {
        assert!(config.watched < (1 << config.addr_width) as u64);
        let aw = config.addr_width;
        let dw = config.data_width;
        let mut d = Design::new();
        let memory = d.add_memory("regs", aw, dw, MemInit::Zero);

        // Shadow of the watched register.
        let shadow = d.new_latch_word("shadow", dw, LatchInit::Zero);

        // Write ports: external addr/data/en per port, with a no-race
        // arbiter — port p may write only when no lower-numbered port
        // targets the same address this cycle.
        let mut write_hits: Vec<(Bit, Word)> = Vec::new(); // (hits watched, data)
        let mut prior: Vec<(Word, Bit)> = Vec::new();
        for p in 0..config.write_ports {
            let addr = d.new_input_word(&format!("waddr{p}"), aw);
            let en_req = d.new_input(&format!("we{p}"));
            let data = d.new_input_word(&format!("wdata{p}"), dw);
            let g = &mut d.aig;
            let mut clash = Aig::FALSE;
            for (pa, pe) in &prior {
                let same = g.eq_word(pa, &addr);
                let both = g.and(same, *pe);
                clash = g.or(clash, both);
            }
            let en = g.and(en_req, !clash);
            prior.push((addr.clone(), en));
            let watched_hit = {
                let is_watched = g.eq_const(&addr, config.watched);
                g.and(en, is_watched)
            };
            write_hits.push((watched_hit, data.clone()));
            d.add_write_port(memory, addr, en, data);
        }

        // Shadow update mirrors the memory semantics: last write to the
        // watched address this cycle (no race possible with the arbiter).
        let g = &mut d.aig;
        let mut shadow_next = shadow.clone();
        for (hit, data) in &write_hits {
            shadow_next = g.mux_word(*hit, data, &shadow_next);
        }
        d.set_next_word(&shadow, &shadow_next);

        // Read ports with the consistency check.
        let mut bad_any = Aig::FALSE;
        for p in 0..config.read_ports {
            let addr = d.new_input_word(&format!("raddr{p}"), aw);
            let en = d.new_input(&format!("re{p}"));
            let rd = d.add_read_port(memory, addr.clone(), en);
            let g = &mut d.aig;
            let is_watched = g.eq_const(&addr, config.watched);
            let relevant = g.and(en, is_watched);
            let agrees = g.eq_word(&rd, &shadow);
            let bad = g.and(relevant, !agrees);
            bad_any = g.or(bad_any, bad);
        }
        let shadow_consistency = d.add_property("shadow_consistency", bad_any);

        d.check().expect("register file design is well-formed");
        RegFile {
            design: d,
            config,
            memory,
            shadow_consistency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn drive_random(config: RegFileConfig, cycles: usize, seed: u64) {
        let rf = RegFile::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = Simulator::new(&rf.design);
        let n_inputs = rf.design.free_inputs().len();
        for cycle in 0..cycles {
            let inputs: Vec<bool> = (0..n_inputs).map(|_| rng.random_bool(0.5)).collect();
            let report = sim.step(&inputs);
            assert!(
                !report.property_bad[0],
                "shadow consistency violated at cycle {cycle}"
            );
            assert!(report.write_races.is_empty(), "arbiter must prevent races");
        }
    }

    #[test]
    fn shadow_consistent_r3w1() {
        drive_random(RegFileConfig::r3w1(), 400, 31);
    }

    #[test]
    fn shadow_consistent_r2w2() {
        drive_random(
            RegFileConfig {
                addr_width: 3,
                data_width: 4,
                read_ports: 2,
                write_ports: 2,
                watched: 3,
            },
            400,
            32,
        );
    }

    #[test]
    fn shadow_consistent_many_ports() {
        drive_random(
            RegFileConfig {
                addr_width: 2,
                data_width: 3,
                read_ports: 4,
                write_ports: 3,
                watched: 1,
            },
            300,
            33,
        );
    }
}
