//! Small construction helpers shared by the case-study designs.

use emm_aig::{Aig, Bit, Word};

/// Priority-free state update: `next = cur` unless exactly one of the
/// `(cond, value)` pairs is active, in which case that value is taken.
///
/// Conditions are expected to be mutually exclusive (FSM states); when they
/// are not, later entries win.
pub fn update_word(aig: &mut Aig, cur: &Word, updates: &[(Bit, &Word)]) -> Word {
    let mut next = cur.clone();
    for (cond, value) in updates {
        next = aig.mux_word(*cond, value, &next);
    }
    next
}

/// Bit version of [`update_word`].
pub fn update_bit(aig: &mut Aig, cur: Bit, updates: &[(Bit, Bit)]) -> Bit {
    let mut next = cur;
    for &(cond, value) in updates {
        next = aig.mux(cond, value, next);
    }
    next
}

/// Concatenates words LSB-first: `lo` occupies the low bits.
pub fn concat(lo: &Word, hi: &Word) -> Word {
    let mut bits = lo.bits().to_vec();
    bits.extend_from_slice(hi.bits());
    Word::from(bits)
}

/// Extracts `width` bits starting at `offset`.
///
/// # Panics
///
/// Panics if the range exceeds the word.
pub fn slice(word: &Word, offset: usize, width: usize) -> Word {
    assert!(offset + width <= word.width(), "slice out of range");
    Word::from(word.bits()[offset..offset + width].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::sim::eval_combinational;

    fn eval_word(g: &Aig, w: &Word, inputs: &[bool]) -> u64 {
        let values = eval_combinational(g, inputs);
        w.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| (b.apply(values[b.node().index()]) as u64) << i)
            .sum()
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let mut g = Aig::new();
        let a = g.input_word(3);
        let b = g.input_word(5);
        let cat = concat(&a, &b);
        assert_eq!(cat.width(), 8);
        let back_a = slice(&cat, 0, 3);
        let back_b = slice(&cat, 3, 5);
        let inputs: Vec<bool> = [true, false, true, false, true, true, false, true]
            .into_iter()
            .collect();
        assert_eq!(eval_word(&g, &back_a, &inputs), eval_word(&g, &a, &inputs));
        assert_eq!(eval_word(&g, &back_b, &inputs), eval_word(&g, &b, &inputs));
        assert_eq!(
            eval_word(&g, &cat, &inputs),
            eval_word(&g, &a, &inputs) | (eval_word(&g, &b, &inputs) << 3)
        );
    }

    #[test]
    fn update_word_selects_active_state() {
        let mut g = Aig::new();
        let cur = g.input_word(4);
        let s0 = g.new_input();
        let s1 = g.new_input();
        let v0 = g.const_word(3, 4);
        let v1 = g.const_word(9, 4);
        let next = update_word(&mut g, &cur, &[(s0, &v0), (s1, &v1)]);
        // cur = 5; no state active -> 5; s0 -> 3; s1 -> 9.
        let base = [true, false, true, false];
        let mk = |a: bool, b: bool| {
            let mut v: Vec<bool> = base.to_vec();
            v.push(a);
            v.push(b);
            v
        };
        assert_eq!(eval_word(&g, &next, &mk(false, false)), 5);
        assert_eq!(eval_word(&g, &next, &mk(true, false)), 3);
        assert_eq!(eval_word(&g, &next, &mk(false, true)), 9);
    }
}
