//! A memory-backed LIFO stack peripheral.
//!
//! The third canonical embedded-memory form the paper names ("RAM, stack,
//! and FIFO", Section 2.3). The checker tracks the most recent pushed value
//! in a shadow register; a pop immediately following a push must return it.

use emm_aig::{Bit, Design, LatchInit, MemInit, MemoryId, PropertyId, Word};

/// Stack configuration.
#[derive(Clone, Copy, Debug)]
pub struct LifoConfig {
    /// Address width: capacity is `2^addr_width` entries.
    pub addr_width: usize,
    /// Entry width.
    pub data_width: usize,
}

/// The built stack design plus handles.
#[derive(Debug)]
pub struct Lifo {
    /// The verification model.
    pub design: Design,
    /// Configuration used.
    pub config: LifoConfig,
    /// Backing memory.
    pub memory: MemoryId,
    /// Property: a pop directly after a push returns the pushed value.
    pub push_pop_identity: PropertyId,
    /// Property: the stack pointer never exceeds the capacity.
    pub no_overflow: PropertyId,
    /// Stack pointer word.
    pub sp: Word,
    /// Pop-data word.
    pub pop_data: Word,
    /// Push request input.
    pub push_req: Bit,
    /// Pop request input.
    pub pop_req: Bit,
}

impl Lifo {
    /// Builds the stack.
    pub fn new(config: LifoConfig) -> Lifo {
        let aw = config.addr_width;
        let dw = config.data_width;
        let capacity = 1u64 << aw;
        let mut d = Design::new();
        let memory = d.add_memory("stack_ram", aw, dw, MemInit::Zero);

        let push_req = d.new_input("push");
        let pop_req = d.new_input("pop");
        let push_data = d.new_input_word("push_data", dw);

        let sp = d.new_latch_word("sp", aw + 1, LatchInit::Zero);
        let g = &mut d.aig;
        let full = g.eq_const(&sp, capacity);
        let empty = g.eq_const(&sp, 0);
        // Push wins if both are requested (a design choice, checked below).
        let do_push = g.and(push_req, !full);
        let do_pop = {
            let pop_only = g.and(pop_req, !push_req);
            g.and(pop_only, !empty)
        };
        let sp_low = Word::from(sp.bits()[..aw].to_vec());
        let sp_dec = g.dec(&sp);
        let sp_dec_low = Word::from(sp_dec.bits()[..aw].to_vec());
        d.add_write_port(memory, sp_low, do_push, push_data.clone());
        let pop_data = d.add_read_port(memory, sp_dec_low, do_pop);

        let g = &mut d.aig;
        let sp_inc = g.inc(&sp);
        let sp_up = g.mux_word(do_push, &sp_inc, &sp);
        let sp_next = g.mux_word(do_pop, &sp_dec, &sp_up);
        d.set_next_word(&sp, &sp_next);

        // Shadow of the last pushed value and whether it is still on top
        // (no interposed operation).
        let (_, fresh) = d.new_latch("fresh_top", LatchInit::Zero);
        let last_pushed = d.new_latch_word("last_pushed", dw, LatchInit::Zero);
        let g = &mut d.aig;
        let any_op = g.or(do_push, do_pop);
        let fresh_next = {
            let cleared = g.mux(any_op, emm_aig::Aig::FALSE, fresh);
            g.mux(do_push, emm_aig::Aig::TRUE, cleared)
        };
        d.set_next(fresh, fresh_next);
        let g = &mut d.aig;
        let last_next = g.mux_word(do_push, &push_data, &last_pushed);
        d.set_next_word(&last_pushed, &last_next);

        // Property: pop with a fresh top returns the last pushed value.
        let g = &mut d.aig;
        let relevant = g.and(do_pop, fresh);
        let agrees = g.eq_word(&pop_data, &last_pushed);
        let bad = g.and(relevant, !agrees);
        let push_pop_identity = d.add_property("push_pop_identity", bad);

        let g = &mut d.aig;
        let cap = g.const_word(capacity, aw + 1);
        let over = g.ult(&cap, &sp);
        let no_overflow = d.add_property("no_overflow", over);

        d.check().expect("lifo design is well-formed");
        Lifo {
            design: d,
            config,
            memory,
            push_pop_identity,
            no_overflow,
            sp,
            pop_data,
            push_req,
            pop_req,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn matches_software_stack() {
        let config = LifoConfig {
            addr_width: 3,
            data_width: 5,
        };
        let lifo = Lifo::new(config);
        let mut rng = StdRng::seed_from_u64(55);
        let mut sim = Simulator::new(&lifo.design);
        let mut model: Vec<u64> = Vec::new();
        let capacity = 1usize << config.addr_width;
        for cycle in 0..600 {
            let push = rng.random_bool(0.5);
            let pop = rng.random_bool(0.5);
            let data = rng.random_range(0..(1u64 << config.data_width));
            let mut inputs = vec![push, pop];
            for b in 0..config.data_width {
                inputs.push((data >> b) & 1 == 1);
            }
            let report = sim.step(&inputs);
            assert!(
                !report.property_bad[0],
                "identity violated at cycle {cycle}"
            );
            assert!(!report.property_bad[1], "overflow at cycle {cycle}");
            let did_push = push && model.len() < capacity;
            let did_pop = pop && !push && !model.is_empty();
            if did_pop {
                let expect = model.pop().expect("non-empty");
                assert_eq!(sim.word_value(&lifo.pop_data), expect, "cycle {cycle}");
            }
            if did_push {
                model.push(data);
            }
            assert_eq!(sim.state_value(&lifo.sp), model.len() as u64);
        }
    }

    #[test]
    fn push_then_pop_returns_value() {
        let config = LifoConfig {
            addr_width: 2,
            data_width: 4,
        };
        let lifo = Lifo::new(config);
        let mut sim = Simulator::new(&lifo.design);
        // push 9
        let mut inputs = vec![true, false];
        inputs.extend((0..4).map(|b| (9u64 >> b) & 1 == 1));
        sim.step(&inputs);
        // pop
        let inputs = vec![false, true, false, false, false, false];
        let report = sim.step(&inputs);
        assert!(!report.property_bad[0]);
        assert_eq!(sim.word_value(&lifo.pop_data), 9);
    }
}
