//! Sequential designs: latches, primary inputs, embedded memories,
//! properties, and constraints over an [`Aig`].
//!
//! A [`Design`] is the verification model of Section 2.3 of the paper: a
//! *Main module* of latches and gates interacting with one or more *memory
//! modules* exclusively through interface signals — per write port
//! `(Addr, WD, WE)` and per read port `(Addr, RD, RE)`.
//!
//! Read-data (`RD`) buses are *pseudo-inputs*: AIG input nodes whose values
//! the environment supplies. Who supplies them depends on the client:
//!
//! * the [simulator](crate::sim) computes them from a concrete memory array;
//! * the EMM engine (crate `emm-core`) constrains them with forwarding
//!   clauses at every BMC unrolling depth;
//! * the explicit-modeling baseline replaces them with decoder/mux logic
//!   over `2^AW × DW` freshly created latches.

use std::collections::HashMap;

use crate::aig::{Aig, Bit};
use crate::word::Word;

/// Identifies a latch within a design.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LatchId(pub u32);

/// Identifies a memory module within a design.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemoryId(pub u32);

/// Identifies a safety property within a design.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PropertyId(pub u32);

/// Initial value of a latch bit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LatchInit {
    /// Starts at 0.
    Zero,
    /// Starts at 1.
    One,
    /// Arbitrary initial value (free in the initial state).
    Free,
}

/// Initial contents of a memory module.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemInit {
    /// Every word starts at zero (the industry case studies).
    Zero,
    /// Arbitrary initial contents — the quicksort case study; requires the
    /// paper's eq. (6) constraints for sound induction proofs.
    Arbitrary,
}

/// A state-holding element.
#[derive(Clone, Debug)]
pub struct Latch {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// The latch output edge (an AIG input node).
    pub output: Bit,
    /// Next-state function; set via [`Design::set_next`].
    pub next: Option<Bit>,
    /// Initial value.
    pub init: LatchInit,
}

/// One read port of a memory: combinational read, enabled by `en`.
#[derive(Clone, Debug)]
pub struct ReadPort {
    /// Address bus (`AW` bits).
    pub addr: Word,
    /// Read enable.
    pub en: Bit,
    /// Read data bus (`DW` pseudo-input bits).
    pub data: Word,
}

/// One write port of a memory: the write commits at the end of the cycle and
/// is visible to reads from the *next* cycle on (Section 2.3).
#[derive(Clone, Debug)]
pub struct WritePort {
    /// Address bus (`AW` bits).
    pub addr: Word,
    /// Write enable.
    pub en: Bit,
    /// Write data bus (`DW` bits).
    pub data: Word,
}

/// An embedded memory module with multiple read and write ports.
#[derive(Clone, Debug)]
pub struct Memory {
    /// Human-readable name.
    pub name: String,
    /// Address width `AW` (capacity is `2^AW` words).
    pub addr_width: usize,
    /// Data width `DW`.
    pub data_width: usize,
    /// Initial contents.
    pub init: MemInit,
    /// Read ports.
    pub read_ports: Vec<ReadPort>,
    /// Write ports.
    pub write_ports: Vec<WritePort>,
}

impl Memory {
    /// Number of state bits this memory would contribute to an explicit
    /// model: `2^AW * DW`.
    pub fn state_bits(&self) -> usize {
        (1usize << self.addr_width) * self.data_width
    }
}

/// A safety property: `bad` must never hold in any reachable state.
///
/// Reachability properties (the industry case studies' "find a witness")
/// are the same object: a witness is a path making `bad` true.
#[derive(Clone, Debug)]
pub struct Property {
    /// Human-readable name.
    pub name: String,
    /// The violation condition.
    pub bad: Bit,
}

/// How an AIG input node is driven.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InputKind {
    /// A free primary input.
    Free,
    /// The output of a latch.
    Latch(LatchId),
    /// One bit of a memory read-data bus: `(memory, read port, bit)`.
    ReadData(MemoryId, u32, u32),
}

/// A sequential design over an [`Aig`].
#[derive(Clone, Debug, Default)]
pub struct Design {
    /// The combinational core.
    pub aig: Aig,
    /// Kind of every AIG input, indexed by input index.
    input_kinds: Vec<InputKind>,
    /// Edge of every AIG input, indexed by input index.
    input_bits: Vec<Bit>,
    /// Dense indices of the free primary inputs (into `input_kinds`).
    free_inputs: Vec<u32>,
    latches: Vec<Latch>,
    memories: Vec<Memory>,
    properties: Vec<Property>,
    constraints: Vec<Bit>,
    names: HashMap<String, Bit>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Design {
        Design::default()
    }

    // ---------------------------------------------------------------
    // Construction
    // ---------------------------------------------------------------

    /// Creates a free primary input bit.
    pub fn new_input(&mut self, name: &str) -> Bit {
        let bit = self.aig.new_input();
        self.free_inputs.push(self.input_kinds.len() as u32);
        self.input_kinds.push(InputKind::Free);
        self.input_bits.push(bit);
        self.names.insert(name.to_string(), bit);
        bit
    }

    /// Creates a word of free primary inputs.
    pub fn new_input_word(&mut self, name: &str, width: usize) -> Word {
        Word(
            (0..width)
                .map(|i| self.new_input(&format!("{name}[{i}]")))
                .collect(),
        )
    }

    /// Creates a latch; its next-state function must be assigned later with
    /// [`Design::set_next`].
    pub fn new_latch(&mut self, name: &str, init: LatchInit) -> (LatchId, Bit) {
        let output = self.aig.new_input();
        let id = LatchId(self.latches.len() as u32);
        self.input_kinds.push(InputKind::Latch(id));
        self.input_bits.push(output);
        self.latches.push(Latch {
            name: name.to_string(),
            output,
            next: None,
            init,
        });
        self.names.insert(name.to_string(), output);
        (id, output)
    }

    /// Creates a word of latches with a shared init pattern.
    pub fn new_latch_word(&mut self, name: &str, width: usize, init: LatchInit) -> Word {
        Word(
            (0..width)
                .map(|i| self.new_latch(&format!("{name}[{i}]"), init).1)
                .collect(),
        )
    }

    /// Creates a word of latches initialized to the constant `value`.
    pub fn new_latch_word_init(&mut self, name: &str, width: usize, value: u64) -> Word {
        Word(
            (0..width)
                .map(|i| {
                    let init = if (value >> i) & 1 == 1 {
                        LatchInit::One
                    } else {
                        LatchInit::Zero
                    };
                    self.new_latch(&format!("{name}[{i}]"), init).1
                })
                .collect(),
        )
    }

    /// Assigns the next-state function of the latch whose output is `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a latch output or is inverted.
    pub fn set_next(&mut self, output: Bit, next: Bit) {
        assert!(
            !output.is_inverted(),
            "latch outputs are non-inverted edges"
        );
        let id = match self.input_kind_of(output) {
            Some(InputKind::Latch(id)) => id,
            other => panic!("set_next on non-latch bit ({other:?})"),
        };
        self.latches[id.0 as usize].next = Some(next);
    }

    /// Assigns next-state functions for a whole latch word.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or any bit is not a latch output.
    pub fn set_next_word(&mut self, outputs: &Word, next: &Word) {
        assert_eq!(outputs.width(), next.width());
        for (&o, &n) in outputs.0.iter().zip(&next.0) {
            self.set_next(o, n);
        }
    }

    /// Adds a memory module; ports are added with
    /// [`Design::add_read_port`] / [`Design::add_write_port`].
    pub fn add_memory(
        &mut self,
        name: &str,
        addr_width: usize,
        data_width: usize,
        init: MemInit,
    ) -> MemoryId {
        let id = MemoryId(self.memories.len() as u32);
        self.memories.push(Memory {
            name: name.to_string(),
            addr_width,
            data_width,
            init,
            read_ports: Vec::new(),
            write_ports: Vec::new(),
        });
        id
    }

    /// Adds a read port to `mem` and returns its read-data word (fresh
    /// pseudo-inputs).
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not match the memory's address width.
    pub fn add_read_port(&mut self, mem: MemoryId, addr: Word, en: Bit) -> Word {
        let (aw, dw) = {
            let m = &self.memories[mem.0 as usize];
            (m.addr_width, m.data_width)
        };
        assert_eq!(
            addr.width(),
            aw,
            "address width mismatch on {}",
            self.memory(mem).name
        );
        let port = self.memories[mem.0 as usize].read_ports.len() as u32;
        let data = Word(
            (0..dw)
                .map(|i| {
                    let bit = self.aig.new_input();
                    self.input_kinds
                        .push(InputKind::ReadData(mem, port, i as u32));
                    self.input_bits.push(bit);
                    bit
                })
                .collect(),
        );
        self.memories[mem.0 as usize].read_ports.push(ReadPort {
            addr,
            en,
            data: data.clone(),
        });
        data
    }

    /// Adds a write port to `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `addr`/`data` widths do not match the memory.
    pub fn add_write_port(&mut self, mem: MemoryId, addr: Word, en: Bit, data: Word) {
        let m = &self.memories[mem.0 as usize];
        assert_eq!(
            addr.width(),
            m.addr_width,
            "address width mismatch on {}",
            m.name
        );
        assert_eq!(
            data.width(),
            m.data_width,
            "data width mismatch on {}",
            m.name
        );
        self.memories[mem.0 as usize]
            .write_ports
            .push(WritePort { addr, en, data });
    }

    /// Declares a safety property: `bad` must never hold.
    pub fn add_property(&mut self, name: &str, bad: Bit) -> PropertyId {
        let id = PropertyId(self.properties.len() as u32);
        self.properties.push(Property {
            name: name.to_string(),
            bad,
        });
        id
    }

    /// Adds an environment constraint: `lit` is assumed true in every cycle.
    pub fn add_constraint(&mut self, lit: Bit) {
        self.constraints.push(lit);
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// The latches of the design.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The memory modules.
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// A memory module by id.
    pub fn memory(&self, id: MemoryId) -> &Memory {
        &self.memories[id.0 as usize]
    }

    /// The safety properties.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// A property by id.
    pub fn property(&self, id: PropertyId) -> &Property {
        &self.properties[id.0 as usize]
    }

    /// The environment constraints.
    pub fn constraints(&self) -> &[Bit] {
        &self.constraints
    }

    /// Kind of the input node behind `bit` (ignores inversion), or `None`
    /// if `bit` is not an input node.
    pub fn input_kind_of(&self, bit: Bit) -> Option<InputKind> {
        self.aig.input_index(bit).map(|i| self.input_kinds[i])
    }

    /// The (non-inverted) edge of input `index`.
    pub fn input_bit(&self, index: usize) -> Bit {
        self.input_bits[index]
    }

    /// Kind of input `index`.
    pub fn input_kind(&self, index: usize) -> InputKind {
        self.input_kinds[index]
    }

    /// Number of AIG inputs of any kind.
    pub fn num_inputs(&self) -> usize {
        self.input_kinds.len()
    }

    /// Dense indices of the free primary inputs.
    pub fn free_inputs(&self) -> &[u32] {
        &self.free_inputs
    }

    /// Number of latches (the paper's "FF" counts exclude memory registers,
    /// as does this).
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of 2-input AND gates.
    pub fn num_gates(&self) -> usize {
        self.aig.num_ands()
    }

    /// Looks up a named bit (inputs and latch outputs register their names).
    pub fn named(&self, name: &str) -> Option<Bit> {
        self.names.get(name).copied()
    }

    /// Iterates over every registered `(name, bit)` pair, in unspecified
    /// order. Frontend writers ([`crate::aiger`], [`crate::btor2`]) use
    /// this to recover the names of free primary inputs, which — unlike
    /// latches, memories, and properties — are not stored anywhere else.
    pub fn names(&self) -> impl Iterator<Item = (&str, Bit)> + '_ {
        self.names.iter().map(|(n, &b)| (n.as_str(), b))
    }

    /// Overwrites the initial contents of a memory. The BTOR2 reader
    /// needs this because the format declares a memory (`state` of array
    /// sort) before its `init` line arrives.
    pub(crate) fn set_memory_init(&mut self, mem: MemoryId, init: MemInit) {
        self.memories[mem.0 as usize].init = init;
    }

    /// Overwrites the initial value of a latch, for the same reason as
    /// [`Design::set_memory_init`]: BTOR2 `init` lines arrive after the
    /// `state` declaration that created the latch.
    pub(crate) fn set_latch_init(&mut self, latch: LatchId, init: LatchInit) {
        self.latches[latch.0 as usize].init = init;
    }

    /// Validates structural invariants; call after construction.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant:
    /// a latch without a next-state function, or a memory read/write port
    /// with mismatched widths.
    pub fn check(&self) -> Result<(), String> {
        for (i, latch) in self.latches.iter().enumerate() {
            if latch.next.is_none() {
                return Err(format!(
                    "latch #{i} ({}) has no next-state function",
                    latch.name
                ));
            }
        }
        for mem in &self.memories {
            for (p, rp) in mem.read_ports.iter().enumerate() {
                if rp.addr.width() != mem.addr_width || rp.data.width() != mem.data_width {
                    return Err(format!("memory {} read port {p} width mismatch", mem.name));
                }
            }
            for (p, wp) in mem.write_ports.iter().enumerate() {
                if wp.addr.width() != mem.addr_width || wp.data.width() != mem.data_width {
                    return Err(format!("memory {} write port {p} width mismatch", mem.name));
                }
            }
        }
        Ok(())
    }

    /// Every edge a structural reduction pass must preserve: next-state
    /// functions, property and constraint bits, and all memory port buses
    /// (addresses, enables, write data). The single source of truth for
    /// the fraig and rewrite passes — a new stored-edge category added to
    /// `Design` must be added here once, not in every pass.
    ///
    /// # Panics
    ///
    /// Panics on a design with dangling latches; callers run
    /// [`Design::check`] first.
    pub(crate) fn reduction_roots(&self) -> Vec<Bit> {
        let mut roots: Vec<Bit> = Vec::new();
        for latch in &self.latches {
            roots.push(latch.next.expect("checked design"));
        }
        for p in &self.properties {
            roots.push(p.bad);
        }
        roots.extend_from_slice(&self.constraints);
        for m in &self.memories {
            for rp in &m.read_ports {
                roots.extend_from_slice(rp.addr.bits());
                roots.push(rp.en);
            }
            for wp in &m.write_ports {
                roots.extend_from_slice(wp.addr.bits());
                roots.push(wp.en);
                roots.extend_from_slice(wp.data.bits());
            }
        }
        roots
    }

    /// Replaces the combinational core with `aig`, remapping every stored
    /// edge (latch outputs and next-state functions, port buses, property
    /// and constraint bits, input registry, name table) through `map`.
    ///
    /// This is the commit step of structural rewriting passes like
    /// [`fraig`](crate::fraig): the pass builds a new graph plus an
    /// old-edge → new-edge function, and this hook atomically swaps it in.
    /// `map` must preserve the input discipline — every input node of the
    /// old graph maps to the same-index input node of `aig` (so
    /// [`Design::input_kind`] bookkeeping stays valid), which is checked
    /// in debug builds.
    pub(crate) fn replace_aig(&mut self, aig: Aig, map: &mut dyn FnMut(Bit) -> Bit) {
        for latch in &mut self.latches {
            latch.output = map(latch.output);
            latch.next = latch.next.map(&mut *map);
        }
        for mem in &mut self.memories {
            for rp in &mut mem.read_ports {
                for b in &mut rp.addr.0 {
                    *b = map(*b);
                }
                rp.en = map(rp.en);
                for b in &mut rp.data.0 {
                    *b = map(*b);
                }
            }
            for wp in &mut mem.write_ports {
                for b in &mut wp.addr.0 {
                    *b = map(*b);
                }
                wp.en = map(wp.en);
                for b in &mut wp.data.0 {
                    *b = map(*b);
                }
            }
        }
        for p in &mut self.properties {
            p.bad = map(p.bad);
        }
        for c in &mut self.constraints {
            *c = map(*c);
        }
        for (i, b) in self.input_bits.iter_mut().enumerate() {
            *b = map(*b);
            debug_assert_eq!(
                aig.input_index(*b),
                Some(i),
                "rewrite must preserve input indices"
            );
        }
        for b in self.names.values_mut() {
            *b = map(*b);
        }
        self.aig = aig;
    }

    /// Summary statistics in the paper's reporting style.
    pub fn stats(&self) -> DesignStats {
        DesignStats {
            latches: self.num_latches(),
            free_inputs: self.free_inputs.len(),
            gates: self.num_gates(),
            memories: self.memories.len(),
            memory_state_bits: self.memories.iter().map(Memory::state_bits).sum(),
            properties: self.properties.len(),
        }
    }
}

/// Size summary of a design (cf. the paper's "200 latches, 56 inputs, ~9K
/// 2-input gates" reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DesignStats {
    /// Latches, excluding memory registers.
    pub latches: usize,
    /// Free primary inputs.
    pub free_inputs: usize,
    /// 2-input AND gates.
    pub gates: usize,
    /// Memory modules.
    pub memories: usize,
    /// Total memory bits if modeled explicitly.
    pub memory_state_bits: usize,
    /// Safety properties.
    pub properties: usize,
}

impl std::fmt::Display for DesignStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} latches, {} inputs, {} 2-input gates, {} memories ({} bits), {} properties",
            self.latches,
            self.free_inputs,
            self.gates,
            self.memories,
            self.memory_state_bits,
            self.properties
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counter_design() {
        let mut d = Design::new();
        let count = d.new_latch_word("count", 4, LatchInit::Zero);
        let next = d.aig.inc(&count);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, 9);
        d.add_property("count_ne_9", bad);
        assert!(d.check().is_ok());
        assert_eq!(d.num_latches(), 4);
        assert_eq!(d.properties().len(), 1);
    }

    #[test]
    fn memory_ports_and_kinds() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 3, 8, MemInit::Zero);
        let addr = d.new_input_word("addr", 3);
        let en = d.new_input("re");
        let data = d.add_read_port(mem, addr.clone(), en);
        assert_eq!(data.width(), 8);
        match d.input_kind_of(data.bit(0)) {
            Some(InputKind::ReadData(m, 0, 0)) => assert_eq!(m, mem),
            other => panic!("unexpected kind {other:?}"),
        }
        let wd = d.new_input_word("wd", 8);
        let we = d.new_input("we");
        d.add_write_port(mem, addr, we, wd);
        assert!(d.check().is_ok());
        assert_eq!(d.memory(mem).state_bits(), 8 * 8);
        assert_eq!(d.memory(mem).read_ports.len(), 1);
        assert_eq!(d.memory(mem).write_ports.len(), 1);
    }

    #[test]
    fn check_rejects_unassigned_latch() {
        let mut d = Design::new();
        d.new_latch("dangling", LatchInit::Zero);
        assert!(d.check().is_err());
    }

    #[test]
    #[should_panic(expected = "address width mismatch")]
    fn read_port_width_mismatch_panics() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 4, 8, MemInit::Zero);
        let addr = d.new_input_word("addr", 3);
        let en = d.new_input("re");
        d.add_read_port(mem, addr, en);
    }

    #[test]
    fn stats_display() {
        let mut d = Design::new();
        let l = d.new_latch_word("l", 2, LatchInit::Zero);
        d.set_next_word(&l, &l.clone());
        d.add_memory("m", 10, 8, MemInit::Zero);
        let s = d.stats();
        assert_eq!(s.latches, 2);
        assert_eq!(s.memory_state_bits, 1024 * 8);
        let text = s.to_string();
        assert!(text.contains("2 latches"));
        assert!(text.contains("1 memories"));
    }

    #[test]
    fn named_lookup() {
        let mut d = Design::new();
        let a = d.new_input("go");
        assert_eq!(d.named("go"), Some(a));
        assert_eq!(d.named("missing"), None);
    }
}
