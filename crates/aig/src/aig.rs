//! Structurally hashed And-Inverter Graph.
//!
//! Every combinational function in a design is represented over two-input
//! AND nodes with optional inversion on edges — the representation the paper
//! reports gate counts in ("~9K 2-input gates"). Node ids are created in
//! topological order, so a single forward pass evaluates the whole graph.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// A node index in an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every graph.
    pub const FALSE: NodeId = NodeId(0);

    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge: a node with an optional inversion, analogous to a SAT literal.
///
/// ```
/// use emm_aig::Aig;
/// let mut g = Aig::new();
/// let a = g.new_input();
/// assert_eq!(!(!a), a);
/// let t = g.and(a, !a);
/// assert_eq!(t, Aig::FALSE, "x & !x folds to false");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bit(u32);

impl Bit {
    /// Creates an edge to `node`, inverted when `invert` is true.
    #[inline]
    pub fn new(node: NodeId, invert: bool) -> Bit {
        Bit(node.0 << 1 | invert as u32)
    }

    /// The node this edge points to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is inverted.
    #[inline]
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code (usable as an array index over `2 * num_nodes`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Applies an external Boolean value through the edge inversion.
    #[inline]
    pub fn apply(self, node_value: bool) -> bool {
        node_value ^ self.is_inverted()
    }
}

impl Not for Bit {
    type Output = Bit;

    #[inline]
    fn not(self) -> Bit {
        Bit(self.0 ^ 1)
    }
}

impl fmt::Debug for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverted() {
            write!(f, "!n{}", self.0 >> 1)
        } else {
            write!(f, "n{}", self.0 >> 1)
        }
    }
}

/// Node payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Node {
    /// The constant false node (id 0 only).
    Const,
    /// An external input; the payload is the dense input index.
    Input(u32),
    /// Two-input AND of the operand edges.
    And(Bit, Bit),
}

/// A structurally hashed And-Inverter Graph.
///
/// The graph interns AND nodes: building `and(a, b)` twice returns the same
/// edge, and trivial identities (`x & x`, `x & !x`, constants) fold away.
#[derive(Clone, Debug)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Bit, Bit), NodeId>,
    num_inputs: u32,
}

impl Default for Aig {
    /// Equivalent to [`Aig::new`]: the constant node is always present.
    fn default() -> Aig {
        Aig::new()
    }
}

impl Aig {
    /// Constant false edge.
    pub const FALSE: Bit = Bit(0);
    /// Constant true edge.
    pub const TRUE: Bit = Bit(1);

    /// Creates a graph containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Number of nodes (constant and inputs included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (the paper's "2-input gates" metric).
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// Number of inputs created.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Returns the payload of a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (NodeId(i as u32), n))
    }

    /// Creates a fresh input edge. The input's dense index is
    /// `self.num_inputs() - 1` afterwards.
    pub fn new_input(&mut self) -> Bit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Input(self.num_inputs));
        self.num_inputs += 1;
        Bit::new(id, false)
    }

    /// Returns the input index of an input edge's node, if it is an input.
    pub fn input_index(&self, bit: Bit) -> Option<usize> {
        match self.node(bit.node()) {
            Node::Input(i) => Some(i as usize),
            _ => None,
        }
    }

    /// Builds `a & b` with constant folding and structural hashing.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        // Constant / trivial folding.
        if a == Self::FALSE || b == Self::FALSE || a == !b {
            return Self::FALSE;
        }
        if a == Self::TRUE || a == b {
            return b;
        }
        if b == Self::TRUE {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(x, y)) {
            return Bit::new(id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x, y), id);
        Bit::new(id, false)
    }

    /// Builds `a | b`.
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        !self.and(!a, !b)
    }

    /// Builds `a ^ b`.
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Builds `a == b` (XNOR).
    pub fn xnor(&mut self, a: Bit, b: Bit) -> Bit {
        !self.xor(a, b)
    }

    /// Builds `if sel { t } else { e }`.
    pub fn mux(&mut self, sel: Bit, t: Bit, e: Bit) -> Bit {
        if t == e {
            return t;
        }
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Builds `a -> b`.
    pub fn implies(&mut self, a: Bit, b: Bit) -> Bit {
        self.or(!a, b)
    }

    /// Conjunction over many edges.
    pub fn and_many(&mut self, bits: &[Bit]) -> Bit {
        let mut acc = Self::TRUE;
        for &b in bits {
            acc = self.and(acc, b);
        }
        acc
    }

    /// Disjunction over many edges.
    pub fn or_many(&mut self, bits: &[Bit]) -> Bit {
        let mut acc = Self::FALSE;
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    /// Constant edge from a `bool`.
    pub fn constant(value: bool) -> Bit {
        if value {
            Self::TRUE
        } else {
            Self::FALSE
        }
    }

    /// Removes every node with index `>= len`, unwinding the structural
    /// hash table. Only AND nodes may be removed — the reduction passes
    /// use this to discard rejected rewrite candidates, which never
    /// create inputs.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a non-AND node would be removed.
    pub(crate) fn truncate(&mut self, len: usize) {
        while self.nodes.len() > len {
            match self.nodes.pop().expect("len checked") {
                Node::And(a, b) => {
                    self.strash.remove(&(a, b));
                }
                other => unreachable!("truncate may only remove AND nodes, found {other:?}"),
            }
        }
    }

    /// Dead-strips everything outside the cones of `roots` into a fresh
    /// graph, preserving inputs index-for-index and the relative order of
    /// surviving nodes. Returns the compacted graph and the node map
    /// (dead ANDs map to [`Aig::FALSE`]). Shared by the fraig and rewrite
    /// passes' final sweeps.
    pub(crate) fn compacted(&self, roots: &[NodeId]) -> (Aig, Vec<Bit>) {
        let mut live = vec![false; self.num_nodes()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if live[n.index()] {
                continue;
            }
            live[n.index()] = true;
            if let Node::And(a, b) = self.node(n) {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        let mut out = Aig::new();
        let mut map: Vec<Bit> = vec![Aig::FALSE; self.num_nodes()];
        for (id, node) in self.iter() {
            match node {
                Node::Const => {}
                Node::Input(_) => map[id.index()] = out.new_input(),
                Node::And(a, b) => {
                    if live[id.index()] {
                        let x = map[a.node().index()];
                        let x = if a.is_inverted() { !x } else { x };
                        let y = map[b.node().index()];
                        let y = if b.is_inverted() { !y } else { y };
                        map[id.index()] = out.and(x, y);
                    }
                }
            }
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.new_input();
        assert_eq!(g.and(a, Aig::FALSE), Aig::FALSE);
        assert_eq!(g.and(Aig::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Aig::FALSE);
        assert_eq!(g.or(a, Aig::TRUE), Aig::TRUE);
        assert_eq!(g.or(a, !a), Aig::TRUE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_interns() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let n1 = g.and(a, b);
        let n2 = g.and(b, a);
        assert_eq!(n1, n2);
        assert_eq!(g.num_ands(), 1);
        let o1 = g.or(a, b);
        let o2 = g.or(b, a);
        assert_eq!(o1, o2);
    }

    #[test]
    fn xor_and_mux_identities() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        assert_eq!(g.xor(a, a), Aig::FALSE);
        assert_eq!(g.xor(a, Aig::FALSE), a);
        assert_eq!(g.xnor(a, a), Aig::TRUE);
        assert_eq!(g.mux(b, a, a), a);
        assert_eq!(g.mux(Aig::TRUE, a, b), a);
        assert_eq!(g.mux(Aig::FALSE, a, b), b);
    }

    #[test]
    fn topological_ids() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.and(a, b);
        let d = g.and(c, a);
        assert!(c.node() > a.node() && c.node() > b.node());
        assert!(d.node() > c.node());
        match g.node(d.node()) {
            Node::And(x, y) => {
                assert!(x.node() < d.node() && y.node() < d.node());
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn input_indices_are_dense() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        assert_eq!(g.input_index(a), Some(0));
        assert_eq!(g.input_index(b), Some(1));
        let c = g.and(a, b);
        assert_eq!(g.input_index(c), None);
        assert_eq!(g.num_inputs(), 2);
    }
}
