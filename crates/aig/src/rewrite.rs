//! Cut-based AIG rewriting (ABC-style) — restructuring *inequivalent*
//! logic into cheaper shapes before unrolling.
//!
//! The [`fraig`](crate::fraig) pass can only merge cones that compute the
//! *same* function; everything it leaves behind is structure the original
//! word-level construction happened to choose. This pass attacks that
//! structure directly: for every AND node it enumerates the k-feasible
//! cuts (k = 4, [`crate::cuts`]), takes each cut's truth table, and asks
//! whether the function has a cheaper implementation than the cone it
//! currently owns. Where the answer is yes — an XOR hiding in four ANDs, a
//! mux built the long way, a cone whose function collapses onto fewer
//! leaves, a sub-function another part of the graph already computes — the
//! node is re-expressed over the cut leaves and the old cone dies.
//!
//! The mechanics per node, in one topological rebuild of the graph:
//!
//! 1. **Cut truth tables** come from the enumeration itself (maintained
//!    through the merges), so no window simulation is needed.
//! 2. Each table is [NPN-canonicalized](npn_canonical) — minimized over
//!    all input permutations, input complementations, and output
//!    complementation — and the canonical class is looked up in a
//!    **recipe library**: a per-pass memo of synthesized implementations
//!    (AND/OR extraction, XOR and mux/Shannon decomposition, computed once
//!    per class by exhaustive-cost search and replayed for every later
//!    cone in the class).
//! 3. The candidate is instantiated over the (already rebuilt) cut leaves
//!    in the new graph, where structural hashing makes shared logic free,
//!    and its **measured** cost (nodes actually added) is compared against
//!    what the replacement frees: the node itself plus its
//!    maximal-fanout-free cone w.r.t. the cut. Only strictly positive
//!    gains are accepted — the **zero-gain guard** that keeps the
//!    fixpoint iteration from oscillating between equal-cost shapes.
//!
//! The pass repeats ([`RewriteConfig::max_iters`]) until an iteration
//! stops strictly reducing the AND count; a non-improving iteration is
//! discarded, so the result is never larger than the input. Inputs are
//! preserved index-for-index and everything outside the root cones is
//! dead-stripped, exactly like the fraig rewrite, so
//! [`rewrite_design`] can splice the result into a [`Design`] through the
//! same interface-preserving substitution.
//!
//! Soundness is purely local: a candidate implements the cut's truth
//! table over the mapped leaf edges, and by induction every mapped edge
//! computes the same function of the inputs as its source node, so the
//! replacement is functionally identical — no solver involved. The
//! property tests in `tests/rewrite_props.rs` check exactly this against
//! word-parallel simulation, and `emm-bmc`'s `rewrite_differential.rs`
//! checks verdict preservation through full BMC.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::aig::{Aig, Bit, Node, NodeId};
use crate::cuts::{enumerate_cuts, CutConfig, MAX_CUT_SIZE, VAR_TT};
use crate::design::Design;

/// Knobs of the rewriting pass.
#[derive(Clone, Copy, Debug)]
pub struct RewriteConfig {
    /// Master switch (checked by [`rewrite_design`] callers such as the
    /// BMC engine; the pass itself always runs when invoked directly).
    pub enabled: bool,
    /// Cut width `k` (clamped to `2..=4`; a `u16` table covers 4 leaves).
    pub cut_size: usize,
    /// Non-trivial cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Fixpoint cap: rewriting repeats until an iteration stops strictly
    /// reducing the AND count, or this many iterations have run.
    pub max_iters: usize,
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig {
            enabled: true,
            cut_size: MAX_CUT_SIZE,
            max_cuts: 8,
            max_iters: 4,
        }
    }
}

impl RewriteConfig {
    /// A configuration that turns the pass off entirely.
    pub fn disabled() -> RewriteConfig {
        RewriteConfig {
            enabled: false,
            ..RewriteConfig::default()
        }
    }
}

/// What the pass found and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// AND gates before the pass.
    pub ands_before: usize,
    /// AND gates in the rewritten graph.
    pub ands_after: usize,
    /// Committed fixpoint iterations (0 when nothing improved).
    pub iterations: usize,
    /// Accepted cone replacements.
    pub rewrites: u64,
    /// Of those, cones whose canonical class is a 2- or 3-input XOR.
    pub xor_rewrites: u64,
    /// Of those, cones whose canonical class is a 2:1 mux.
    pub mux_rewrites: u64,
    /// Cuts enumerated across all iterations.
    pub cuts_enumerated: u64,
    /// Cut candidates evaluated against the gain test.
    pub candidates_tried: u64,
    /// Candidates rejected by the zero-gain guard (measured gain ≤ 0).
    pub zero_gain_skipped: u64,
    /// Distinct NPN classes synthesized into the recipe library.
    pub npn_classes: usize,
}

impl RewriteStats {
    /// Gates removed by the whole pass.
    pub fn ands_removed(&self) -> usize {
        self.ands_before.saturating_sub(self.ands_after)
    }
}

/// Result of [`rewrite_aig`]: the rewritten graph plus the edge mapping.
#[derive(Clone, Debug)]
pub struct RewriteResult {
    /// The rewritten graph. Inputs appear in the same order as in the
    /// source graph (same dense indices).
    pub aig: Aig,
    /// Counters.
    pub stats: RewriteStats,
    /// Old node -> rewritten-graph edge.
    map: Vec<Bit>,
}

impl RewriteResult {
    /// Maps an edge of the source graph into the rewritten graph.
    pub fn map_bit(&self, old: Bit) -> Bit {
        apply(&self.map, old)
    }
}

// ---------------------------------------------------------------------------
// NPN canonicalization
// ---------------------------------------------------------------------------

/// An NPN transform: input negations, an input permutation, and an output
/// negation, acting on 4-variable truth tables.
///
/// Applied to a function `f`, the transform yields
/// `g(y0..y3) = output_neg ⊕ f(x0..x3)` with `x_j = y_{perm[j]} ⊕ neg_j`
/// (where `neg_j` is bit `j` of `input_neg`). The identity transform has
/// `perm = [0, 1, 2, 3]`, `input_neg = 0`, `output_neg = false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// Where each original input reads from: `x_j` comes from `y_{perm[j]}`.
    pub perm: [u8; 4],
    /// Mask of complemented inputs (bit `j` complements `x_j`).
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// Applies the transform to a truth table.
    pub fn apply(&self, tt: u16) -> u16 {
        let mut out = 0u16;
        for p in 0..16u16 {
            let mut q = 0u16;
            for j in 0..4 {
                let bit = ((p >> self.perm[j]) & 1) ^ ((self.input_neg as u16 >> j) & 1);
                q |= bit << j;
            }
            let v = ((tt >> q) & 1) ^ self.output_neg as u16;
            out |= v << p;
        }
        out
    }
}

/// All 24 permutations of four elements.
fn all_perms() -> &'static [[u8; 4]; 24] {
    static PERMS: OnceLock<[[u8; 4]; 24]> = OnceLock::new();
    PERMS.get_or_init(|| {
        let mut out = [[0u8; 4]; 24];
        let mut n = 0;
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    for d in 0..4u8 {
                        if a != b && a != c && a != d && b != c && b != d && c != d {
                            out[n] = [a, b, c, d];
                            n += 1;
                        }
                    }
                }
            }
        }
        out
    })
}

/// NPN-canonicalizes a 4-variable truth table: returns the minimum table
/// reachable by input permutation, input complementation, and output
/// complementation, together with the transform that reaches it.
///
/// Two tables are NPN-equivalent iff their canonical forms are equal, so
/// the canonical table serves as the key of the rewrite recipe library.
pub fn npn_canonical(tt: u16) -> (u16, NpnTransform) {
    let mut best = tt;
    let mut best_t = NpnTransform {
        perm: [0, 1, 2, 3],
        input_neg: 0,
        output_neg: false,
    };
    for perm in all_perms() {
        for input_neg in 0..16u8 {
            for output_neg in [false, true] {
                let t = NpnTransform {
                    perm: *perm,
                    input_neg,
                    output_neg,
                };
                let cand = t.apply(tt);
                if cand < best {
                    best = cand;
                    best_t = t;
                }
            }
        }
    }
    (best, best_t)
}

// ---------------------------------------------------------------------------
// Recipe synthesis (the per-class implementation library)
// ---------------------------------------------------------------------------

/// A recipe reference: `(index << 1) | inverted`. Index 0 is constant
/// false, 1..=4 are the canonical inputs, 5.. are recipe steps.
type Ref = u8;

const REF_FALSE: Ref = 0;

fn ref_var(i: usize) -> Ref {
    ((i + 1) << 1) as Ref
}

/// A synthesized implementation of one NPN class: a straight-line list of
/// AND steps over canonical inputs, replayable into any [`Aig`].
#[derive(Clone, Debug)]
struct Recipe {
    steps: Vec<(Ref, Ref)>,
    out: Ref,
}

/// Cofactor of `tt` with variable `i` fixed to 0 (result independent of `i`).
fn cof0(tt: u16, i: usize) -> u16 {
    let lo = tt & !VAR_TT[i];
    lo | (lo << (1 << i))
}

/// Cofactor of `tt` with variable `i` fixed to 1.
fn cof1(tt: u16, i: usize) -> u16 {
    let hi = tt & VAR_TT[i];
    hi | (hi >> (1 << i))
}

/// The decomposition chosen for a table (shared by cost and emission so
/// both follow the same argmin).
#[derive(Clone, Copy)]
enum Plan {
    /// `f = x_i & sub`
    AndPos(usize, u16),
    /// `f = !x_i & sub`
    AndNeg(usize, u16),
    /// `f = x_i | sub`
    OrPos(usize, u16),
    /// `f = !x_i | sub`
    OrNeg(usize, u16),
    /// `f = x_i ⊕ sub`
    Xor(usize, u16),
    /// `f = x_i ? hi : lo` (Shannon)
    Mux(usize, u16, u16),
}

/// Exhaustive-cost synthesizer over 4-variable truth tables, memoized.
#[derive(Default)]
struct Synth {
    cost_memo: HashMap<u16, u32>,
}

impl Synth {
    /// `Some(ref)` for tables free to implement (constants and literals).
    fn free_ref(tt: u16) -> Option<Ref> {
        if tt == 0 {
            return Some(REF_FALSE);
        }
        if tt == 0xFFFF {
            return Some(REF_FALSE ^ 1);
        }
        for (i, &v) in VAR_TT.iter().enumerate() {
            if tt == v {
                return Some(ref_var(i));
            }
            if tt == !v {
                return Some(ref_var(i) ^ 1);
            }
        }
        None
    }

    /// Minimum AND count over the decompositions [`Plan`] explores.
    fn cost(&mut self, tt: u16) -> u32 {
        if Self::free_ref(tt).is_some() {
            return 0;
        }
        if let Some(&c) = self.cost_memo.get(&tt) {
            return c;
        }
        let best = self
            .plans(tt)
            .into_iter()
            .map(|p| self.plan_cost(p))
            .min()
            .expect("non-free table has support");
        self.cost_memo.insert(tt, best);
        best
    }

    fn plan_cost(&mut self, plan: Plan) -> u32 {
        match plan {
            Plan::AndPos(_, s) | Plan::AndNeg(_, s) | Plan::OrPos(_, s) | Plan::OrNeg(_, s) => {
                1 + self.cost(s)
            }
            Plan::Xor(_, s) => 3 + self.cost(s),
            Plan::Mux(_, hi, lo) => 3 + self.cost(hi) + self.cost(lo),
        }
    }

    /// Candidate decompositions of a non-free table.
    fn plans(&self, tt: u16) -> Vec<Plan> {
        let mut plans = Vec::new();
        for i in 0..4 {
            let (c0, c1) = (cof0(tt, i), cof1(tt, i));
            if c0 == c1 {
                continue; // not in the support
            }
            if c0 == 0 {
                plans.push(Plan::AndPos(i, c1));
            } else if c0 == 0xFFFF {
                plans.push(Plan::OrNeg(i, c1));
            }
            if c1 == 0 {
                plans.push(Plan::AndNeg(i, c0));
            } else if c1 == 0xFFFF {
                plans.push(Plan::OrPos(i, c0));
            }
            if c0 == !c1 {
                plans.push(Plan::Xor(i, c0));
            }
            plans.push(Plan::Mux(i, c1, c0));
        }
        plans
    }

    /// Synthesizes a recipe for `tt` following the cost argmin, sharing
    /// sub-functions (and their complements) within the recipe.
    fn recipe(&mut self, tt: u16) -> Recipe {
        let mut steps = Vec::new();
        let mut built = HashMap::new();
        let out = self.emit(tt, &mut steps, &mut built);
        Recipe { steps, out }
    }

    fn emit(&mut self, tt: u16, steps: &mut Vec<(Ref, Ref)>, built: &mut HashMap<u16, Ref>) -> Ref {
        if let Some(r) = Self::free_ref(tt) {
            return r;
        }
        if let Some(&r) = built.get(&tt) {
            return r;
        }
        if let Some(&r) = built.get(&!tt) {
            return r ^ 1;
        }
        let plan = self
            .plans(tt)
            .into_iter()
            .min_by_key(|&p| self.plan_cost(p))
            .expect("non-free table has support");
        let push = |steps: &mut Vec<(Ref, Ref)>, a: Ref, b: Ref| -> Ref {
            steps.push((a, b));
            ((steps.len() + 4) << 1) as Ref
        };
        let r = match plan {
            Plan::AndPos(i, s) => {
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i), rs)
            }
            Plan::AndNeg(i, s) => {
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i) ^ 1, rs)
            }
            Plan::OrPos(i, s) => {
                // x | s = !(!x & !s)
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i) ^ 1, rs ^ 1) ^ 1
            }
            Plan::OrNeg(i, s) => {
                // !x | s = !(x & !s)
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i), rs ^ 1) ^ 1
            }
            Plan::Xor(i, s) => {
                // x ⊕ s = !(!(x & !s) & !(!x & s))
                let rs = self.emit(s, steps, built);
                let x = ref_var(i);
                let s1 = push(steps, x, rs ^ 1);
                let s2 = push(steps, x ^ 1, rs);
                push(steps, s1 ^ 1, s2 ^ 1) ^ 1
            }
            Plan::Mux(i, hi, lo) => {
                // (x & hi) | (!x & lo)
                let rhi = self.emit(hi, steps, built);
                let rlo = self.emit(lo, steps, built);
                let x = ref_var(i);
                let s1 = push(steps, x, rhi);
                let s2 = push(steps, x ^ 1, rlo);
                push(steps, s1 ^ 1, s2 ^ 1) ^ 1
            }
        };
        built.insert(tt, r);
        r
    }
}

/// Replays a recipe into a graph over concrete canonical-input edges.
fn instantiate(g: &mut Aig, recipe: &Recipe, ys: [Bit; 4]) -> Bit {
    let mut vals: Vec<Bit> = Vec::with_capacity(5 + recipe.steps.len());
    vals.push(Aig::FALSE);
    vals.extend_from_slice(&ys);
    let resolve = |vals: &[Bit], r: Ref| -> Bit {
        let b = vals[(r >> 1) as usize];
        if r & 1 == 1 {
            !b
        } else {
            b
        }
    };
    for &(a, b) in &recipe.steps {
        let x = resolve(&vals, a);
        let y = resolve(&vals, b);
        let r = g.and(x, y);
        vals.push(r);
    }
    resolve(&vals, recipe.out)
}

/// The per-pass recipe library: canonicalization cache plus synthesized
/// implementations keyed by NPN-canonical table.
struct NpnLibrary {
    canon_cache: HashMap<u16, (u16, NpnTransform)>,
    recipes: HashMap<u16, Recipe>,
    synth: Synth,
    /// Canonical classes of XOR2/XOR3 and the 2:1 mux, for the stats.
    xor_classes: [u16; 2],
    mux_class: u16,
}

impl NpnLibrary {
    fn new() -> NpnLibrary {
        let xor2 = VAR_TT[0] ^ VAR_TT[1];
        let xor3 = xor2 ^ VAR_TT[2];
        let mux = (VAR_TT[2] & VAR_TT[1]) | (!VAR_TT[2] & VAR_TT[0]);
        NpnLibrary {
            canon_cache: HashMap::new(),
            recipes: HashMap::new(),
            synth: Synth::default(),
            xor_classes: [npn_canonical(xor2).0, npn_canonical(xor3).0],
            mux_class: npn_canonical(mux).0,
        }
    }

    fn canonical(&mut self, tt: u16) -> (u16, NpnTransform) {
        *self
            .canon_cache
            .entry(tt)
            .or_insert_with(|| npn_canonical(tt))
    }

    /// Recipe plus nominal AND cost for a canonical class.
    fn recipe(&mut self, canon: u16) -> (Recipe, usize) {
        let synth = &mut self.synth;
        let r = self
            .recipes
            .entry(canon)
            .or_insert_with(|| synth.recipe(canon));
        (r.clone(), r.steps.len())
    }

    /// Builds the canonical class's implementation over mapped cut leaves,
    /// undoing the NPN transform.
    fn build(
        &mut self,
        g: &mut Aig,
        canon: u16,
        t: &NpnTransform,
        leaves: &[Bit; MAX_CUT_SIZE],
    ) -> Bit {
        let (recipe, _) = self.recipe(canon);
        // g(y) = out_neg ⊕ f(x), x_j = y_{perm[j]} ⊕ neg_j, hence
        // f(leaves) = out_neg ⊕ g(y) with y_{perm[j]} = leaves[j] ⊕ neg_j.
        let mut ys = [Aig::FALSE; 4];
        for (j, &e) in leaves.iter().enumerate() {
            let e = if (t.input_neg >> j) & 1 == 1 { !e } else { e };
            ys[t.perm[j] as usize] = e;
        }
        let r = instantiate(g, &recipe, ys);
        if t.output_neg {
            !r
        } else {
            r
        }
    }
}

// ---------------------------------------------------------------------------
// The rewriting pass
// ---------------------------------------------------------------------------

fn apply(map: &[Bit], bit: Bit) -> Bit {
    let base = map[bit.node().index()];
    if bit.is_inverted() {
        !base
    } else {
        base
    }
}

/// Size of the maximal fanout-free cone of `n` w.r.t. `leaves`, excluding
/// `n` itself: the AND nodes strictly between the leaves and `n` whose
/// every fanout (parents and roots, per `refs`) stays inside the cone —
/// the nodes that die if `n` stops referencing them. Restores `refs`.
fn mffc_interior(aig: &Aig, refs: &mut [u32], n: NodeId, leaves: &[NodeId]) -> usize {
    let mut count = 0usize;
    let mut undone: Vec<NodeId> = Vec::new();
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if let Node::And(a, b) = aig.node(m) {
            for c in [a.node(), b.node()] {
                if leaves.contains(&c) || !matches!(aig.node(c), Node::And(..)) {
                    continue;
                }
                refs[c.index()] -= 1;
                undone.push(c);
                if refs[c.index()] == 0 {
                    count += 1;
                    stack.push(c);
                }
            }
        }
    }
    for c in undone {
        refs[c.index()] += 1;
    }
    count
}

/// One topological rebuild with per-node cut rewriting, followed by a
/// dead-strip from the mapped roots. Returns the compacted graph, the
/// source-node map into it, and the number of accepted replacements.
fn rewrite_pass(
    src: &Aig,
    roots: &[Bit],
    config: &RewriteConfig,
    lib: &mut NpnLibrary,
    stats: &mut RewriteStats,
) -> (Aig, Vec<Bit>, u64) {
    let cuts = enumerate_cuts(
        src,
        &CutConfig {
            cut_size: config.cut_size,
            max_cuts: config.max_cuts,
        },
    );
    stats.cuts_enumerated += cuts.iter().map(|c| c.len() as u64).sum::<u64>();
    // Fanout reference counts on the source graph (roots count as fanouts).
    let mut refs = vec![0u32; src.num_nodes()];
    for (_, node) in src.iter() {
        if let Node::And(a, b) = node {
            refs[a.node().index()] += 1;
            refs[b.node().index()] += 1;
        }
    }
    for r in roots {
        refs[r.node().index()] += 1;
    }

    let mut g2 = Aig::new();
    let mut map: Vec<Bit> = Vec::with_capacity(src.num_nodes());
    let mut accepted = 0u64;
    for (id, node) in src.iter() {
        let mapped = match node {
            Node::Const => Aig::FALSE,
            Node::Input(_) => g2.new_input(),
            Node::And(a, b) => {
                let fa = apply(&map, a);
                let fb = apply(&map, b);
                let before = g2.num_nodes();
                let default = g2.and(fa, fb);
                if g2.num_nodes() == before {
                    // Folded or interned: locally free, nothing to beat.
                    default
                } else {
                    let mut best = default;
                    let mut best_gain = 0i64;
                    let mut best_class = 0u16;
                    for cut in &cuts[id.index()] {
                        if cut.is_trivial(id) || cut.leaves.is_empty() {
                            continue;
                        }
                        stats.candidates_tried += 1;
                        // What the replacement frees: the node's default
                        // AND plus its fanout-free cone above the cut.
                        let saved = 1 + mffc_interior(src, &mut refs, id, &cut.leaves) as i64;
                        let (canon, t) = lib.canonical(cut.tt);
                        let (_, nominal) = lib.recipe(canon);
                        // Don't pollute the new graph with candidates that
                        // cannot win even with generous structural sharing.
                        if nominal as i64 >= saved + 2 {
                            stats.zero_gain_skipped += 1;
                            continue;
                        }
                        let mut leaf_edges = [Aig::FALSE; MAX_CUT_SIZE];
                        for (i, l) in cut.leaves.iter().enumerate() {
                            leaf_edges[i] = apply(&map, Bit::new(*l, false));
                        }
                        let before_c = g2.num_nodes();
                        let cand = lib.build(&mut g2, canon, &t, &leaf_edges);
                        let added = (g2.num_nodes() - before_c) as i64;
                        let gain = saved - added;
                        if cand != default && gain > best_gain {
                            best = cand;
                            best_gain = gain;
                            best_class = canon;
                        } else {
                            if cand != default {
                                stats.zero_gain_skipped += 1;
                            }
                            // Unwind the losing candidate: leaving its
                            // nodes in the graph would let later
                            // candidates share them for free, overstating
                            // their measured gain. Everything `best` and
                            // `default` reference lies below `before_c`,
                            // so the truncation cannot orphan them.
                            g2.truncate(before_c);
                        }
                    }
                    if best != default {
                        accepted += 1;
                        stats.rewrites += 1;
                        if lib.xor_classes.contains(&best_class) {
                            stats.xor_rewrites += 1;
                        } else if best_class == lib.mux_class {
                            stats.mux_rewrites += 1;
                        }
                    }
                    best
                }
            }
        };
        map.push(mapped);
    }

    // Dead-strip from the mapped roots into a compacted graph, preserving
    // input order (the same phase-B sweep the fraig pass performs).
    let root_nodes: Vec<NodeId> = roots.iter().map(|&r| apply(&map, r).node()).collect();
    let (g3, map2) = g2.compacted(&root_nodes);
    let final_map: Vec<Bit> = map.iter().map(|&b| apply(&map2, b)).collect();
    (g3, final_map, accepted)
}

/// Runs cut-based rewriting over a raw graph to a fixpoint.
///
/// `roots` are the edges whose functions must be preserved (for a design:
/// next-state functions, properties, constraints, and memory port buses);
/// everything outside their cones is dead-stripped. Inputs are always
/// preserved, in order, so dense input indices survive the rewrite. The
/// result never has more AND gates than the input graph.
///
/// # Examples
///
/// A disguised wire: `(a ∧ b) ∨ (a ∧ ¬b)` is just `a`, but no structural
/// hashing can see it. The 2-leaf cut's truth table can:
///
/// ```
/// use emm_aig::rewrite::{rewrite_aig, RewriteConfig};
/// use emm_aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.new_input();
/// let b = g.new_input();
/// let t = g.and(a, b);
/// let e = g.and(a, !b);
/// let f = g.or(t, e); // ≡ a, built as three ANDs
/// let r = rewrite_aig(&g, &[f], &RewriteConfig::default());
/// assert_eq!(r.map_bit(f), r.map_bit(a));
/// assert_eq!(r.aig.num_ands(), 0);
/// assert_eq!(r.stats.rewrites, 1);
/// ```
pub fn rewrite_aig(aig: &Aig, roots: &[Bit], config: &RewriteConfig) -> RewriteResult {
    let mut stats = RewriteStats {
        ands_before: aig.num_ands(),
        ..RewriteStats::default()
    };
    let mut lib = NpnLibrary::new();
    let mut result_aig = aig.clone();
    let mut result_map: Vec<Bit> = aig.iter().map(|(id, _)| Bit::new(id, false)).collect();
    for iter in 0..config.max_iters.max(1) {
        let roots_cur: Vec<Bit> = roots.iter().map(|&r| apply(&result_map, r)).collect();
        let (g2, pmap, accepted) =
            rewrite_pass(&result_aig, &roots_cur, config, &mut lib, &mut stats);
        if g2.num_ands() >= result_aig.num_ands() {
            // A non-improving iteration is discarded: the pass never grows
            // the graph, and equal size means the fixpoint is reached.
            break;
        }
        result_map = result_map.iter().map(|&b| apply(&pmap, b)).collect();
        result_aig = g2;
        stats.iterations = iter + 1;
        if accepted == 0 {
            // The shrink came from dead-stripping alone; nothing further
            // to iterate on.
            break;
        }
    }
    stats.ands_after = result_aig.num_ands();
    stats.npn_classes = lib.recipes.len();
    RewriteResult {
        aig: result_aig,
        stats,
        map: result_map,
    }
}

/// Applies cut-based rewriting to a whole design in place, rewriting its
/// combinational core and every stored edge. Returns the pass counters.
///
/// The design's interface is untouched: latch order and initial values,
/// memory modules and port order, property and constraint lists, input
/// kinds, and dense input indices are all preserved — only the gate
/// structure between them changes. A design that fails [`Design::check`]
/// is returned unchanged (zeroed stats).
///
/// # Examples
///
/// ```
/// use emm_aig::rewrite::{rewrite_design, RewriteConfig};
/// use emm_aig::{Design, LatchInit};
///
/// let mut d = Design::new();
/// let (_, x) = d.new_latch("x", LatchInit::Zero);
/// let a = d.new_input("a");
/// let t = d.aig.and(x, a);
/// let e = d.aig.and(x, !a);
/// let redundant = d.aig.or(t, e); // ≡ x
/// d.set_next(x, redundant);
/// let bad = d.aig.and(x, a);
/// d.add_property("p", bad);
/// d.check().expect("well-formed");
///
/// let stats = rewrite_design(&mut d, &RewriteConfig::default());
/// assert!(stats.ands_after < stats.ands_before);
/// d.check().expect("still well-formed");
/// ```
pub fn rewrite_design(design: &mut Design, config: &RewriteConfig) -> RewriteStats {
    if design.check().is_err() {
        return RewriteStats::default();
    }
    let roots = design.reduction_roots();
    let RewriteResult { aig, stats, map } = rewrite_aig(&design.aig, &roots, config);
    design.replace_aig(aig, &mut |b| apply(&map, b));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::LatchInit;
    use crate::sim::{eval_combinational, Simulator};

    /// Evaluates a tt at an assignment given as 4 bits.
    fn tt_at(tt: u16, p: usize) -> bool {
        (tt >> p) & 1 == 1
    }

    #[test]
    fn cofactors_agree_with_semantics() {
        let tt = 0x1234u16;
        for i in 0..4 {
            for p in 0..16usize {
                let p0 = p & !(1 << i);
                let p1 = p | (1 << i);
                assert_eq!(tt_at(cof0(tt, i), p), tt_at(tt, p0));
                assert_eq!(tt_at(cof1(tt, i), p), tt_at(tt, p1));
            }
        }
    }

    #[test]
    fn npn_transform_identity() {
        let id = NpnTransform {
            perm: [0, 1, 2, 3],
            input_neg: 0,
            output_neg: false,
        };
        assert_eq!(id.apply(0xBEEF), 0xBEEF);
    }

    #[test]
    fn npn_canonical_is_invariant_under_transforms() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let tt = next() as u16;
            let (canon, t) = npn_canonical(tt);
            assert_eq!(t.apply(tt), canon, "transform reaches the canonical");
            // Any random transform of tt must canonicalize identically.
            let rt = NpnTransform {
                perm: all_perms()[(next() % 24) as usize],
                input_neg: (next() % 16) as u8,
                output_neg: next() % 2 == 1,
            };
            assert_eq!(npn_canonical(rt.apply(tt)).0, canon);
        }
    }

    #[test]
    fn recipes_implement_their_tables() {
        // Synthesize a spread of tables, instantiate over fresh inputs,
        // and check against direct evaluation.
        let mut synth = Synth::default();
        let mut state = 0xD1B54A32D192ED03u64;
        let mut tables: Vec<u16> = (0..60)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as u16
            })
            .collect();
        tables.extend([0x6666, 0x9696, 0xCACA, 0x8000, 0xFFFE, 0x0001]);
        for tt in tables {
            let recipe = synth.recipe(tt);
            // Sub-function sharing inside a recipe can beat the no-sharing
            // cost bound, never exceed it.
            assert!(recipe.steps.len() as u32 <= synth.cost(tt));
            let mut g = Aig::new();
            let ys = [g.new_input(), g.new_input(), g.new_input(), g.new_input()];
            let out = instantiate(&mut g, &recipe, ys);
            for p in 0..16usize {
                let inputs: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
                let values = eval_combinational(&g, &inputs);
                assert_eq!(
                    out.apply(values[out.node().index()]),
                    tt_at(tt, p),
                    "tt {tt:#06x} at {p}"
                );
            }
        }
    }

    #[test]
    fn npn_build_undoes_the_transform() {
        let mut lib = NpnLibrary::new();
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let tt = (state >> 33) as u16;
            let (canon, t) = npn_canonical(tt);
            let mut g = Aig::new();
            let leaves = [g.new_input(), g.new_input(), g.new_input(), g.new_input()];
            let out = lib.build(&mut g, canon, &t, &leaves);
            for p in 0..16usize {
                let inputs: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
                let values = eval_combinational(&g, &inputs);
                assert_eq!(
                    out.apply(values[out.node().index()]),
                    tt_at(tt, p),
                    "tt {tt:#06x} at {p}"
                );
            }
        }
    }

    #[test]
    fn xor_cost_is_three() {
        let mut synth = Synth::default();
        assert_eq!(synth.cost(0x6666), 3, "2-input XOR");
        assert_eq!(synth.cost(0xCACA), 3, "2:1 mux");
        assert_eq!(synth.cost(0x9696), 6, "3-input XOR");
        assert_eq!(synth.cost(0x8888), 1, "2-input AND");
    }

    #[test]
    fn rewrites_disguised_constant() {
        // (a ∧ b) ∧ (a ∧ ¬b) ≡ false over the cut {a, b}.
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, !b);
        let z = g.and(x, y);
        let r = rewrite_aig(&g, &[z], &RewriteConfig::default());
        assert_eq!(r.map_bit(z), Aig::FALSE);
        assert_eq!(r.aig.num_ands(), 0);
    }

    #[test]
    fn preserves_semantics_on_a_design() {
        let mut d = Design::new();
        let s = d.new_latch_word("s", 4, LatchInit::Zero);
        let i = d.new_input_word("i", 4);
        let sum = d.aig.add(&s, &i);
        d.set_next_word(&s, &sum);
        let bad = d.aig.eq_const(&s, 11);
        d.add_property("p", bad);
        d.check().expect("valid");

        let mut rewritten = d.clone();
        let stats = rewrite_design(&mut rewritten, &RewriteConfig::default());
        assert!(stats.ands_after <= stats.ands_before);
        rewritten.check().expect("still well-formed");

        let mut sim_a = Simulator::new(&d);
        let mut sim_b = Simulator::new(&rewritten);
        let mut state = 0x5DEECE66Du64;
        for cycle in 0..50 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let inputs: Vec<bool> = (0..4).map(|k| (state >> (16 + k)) & 1 == 1).collect();
            let ra = sim_a.step(&inputs);
            let rb = sim_b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "cycle {cycle}");
        }
    }

    #[test]
    fn malformed_design_is_left_alone() {
        let mut d = Design::new();
        d.new_latch("dangling", LatchInit::Zero);
        let stats = rewrite_design(&mut d, &RewriteConfig::default());
        assert_eq!(stats, RewriteStats::default());
    }

    #[test]
    fn result_never_grows() {
        // A graph the pass cannot improve must come back unchanged in size.
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let x = g.and(a, b);
        let y = g.and(x, c);
        let r = rewrite_aig(&g, &[y], &RewriteConfig::default());
        assert_eq!(r.aig.num_ands(), 2);
        assert_eq!(r.stats.iterations, 0);
    }
}
