//! Cut-based AIG rewriting (ABC-style) — restructuring *inequivalent*
//! logic into cheaper shapes before unrolling.
//!
//! The [`fraig`](crate::fraig) pass can only merge cones that compute the
//! *same* function; everything it leaves behind is structure the original
//! word-level construction happened to choose. This pass attacks that
//! structure directly: for every AND node it enumerates the k-feasible
//! cuts (k ≤ 6, [`crate::cuts`]), takes each cut's truth table, and asks
//! whether the function has a cheaper implementation than the cone it
//! currently owns. Where the answer is yes — an XOR hiding in four ANDs, a
//! mux built the long way, a cone whose function collapses onto fewer
//! leaves, a sub-function another part of the graph already computes — the
//! node is re-expressed over the cut leaves and the old cone dies.
//!
//! The mechanics per node:
//!
//! 1. **Cut truth tables** come from the enumeration itself (maintained
//!    through the merges as 6-variable `u64` tables), so no window
//!    simulation is needed.
//! 2. Each table is canonicalized by [`npn_semicanonical`] — a
//!    signature-guided search over input permutations, input
//!    complementations, and output complementation that enumerates only
//!    the transforms compatible with the table's cofactor signatures
//!    (exhausting all 720 × 64 × 2 six-variable transforms per lookup
//!    would be two orders of magnitude more work). The canonical class is
//!    looked up in a **recipe library**: a per-pass memo of synthesized
//!    implementations (AND/OR extraction, XOR and mux/Shannon
//!    decomposition over the widened tables, computed once per class by
//!    exhaustive-cost search and replayed for every later cone in the
//!    class).
//! 3. The candidate is instantiated over the cut leaves where structural
//!    hashing makes shared logic free, and its **measured** cost (nodes
//!    actually added) is compared against what the replacement frees: the
//!    node itself plus its maximal-fanout-free cone w.r.t. the cut. Only
//!    strictly positive gains survive — the **zero-gain guard** that keeps
//!    the fixpoint iteration from oscillating between equal-cost shapes.
//!
//! How measured-gain candidates are *accepted* is governed by
//! [`RewriteConfig::global_select`]:
//!
//! * **Global selection** (the default): candidates are collected for the
//!   whole graph first, each carrying the node set it would free (root +
//!   MFFC) and the pre-existing nodes its measured cost depends on.
//!   Overlapping free-sets mean overlapping claims — accepting both
//!   would double-count the shared nodes — and a dependency on another
//!   candidate's freed node is a conflict too, so a maximum-weight
//!   conflict-free subset is chosen by the greedy-with-exchange solver
//!   of [`crate::select`], and only the chosen rewrites are committed in
//!   one topological rebuild.
//! * **Traversal-order greedy** (`global_select: false`, the historical
//!   behavior): each candidate is accepted the moment it measures a
//!   positive gain, which can double-count nodes shared between
//!   overlapping MFFCs.
//!
//! The pass repeats ([`RewriteConfig::max_iters`]) until an iteration
//! stops strictly reducing the AND count; a non-improving iteration is
//! discarded, so the result is never larger than the input. Inputs are
//! preserved index-for-index and everything outside the root cones is
//! dead-stripped, exactly like the fraig rewrite, so
//! [`rewrite_design`] can splice the result into a [`Design`] through the
//! same interface-preserving substitution.
//!
//! Soundness is purely local: a candidate implements the cut's truth
//! table over the mapped leaf edges, and by induction every mapped edge
//! computes the same function of the inputs as its source node, so the
//! replacement is functionally identical — no solver involved. The
//! property tests in `tests/rewrite_props.rs` check exactly this against
//! word-parallel simulation, and `emm-bmc`'s `rewrite_differential.rs` /
//! `rewrite6_differential.rs` check verdict preservation through full BMC.

use std::collections::HashMap;

use emm_sat::{FaultSite, ResourceGovernor};

use crate::aig::{Aig, Bit, Node, NodeId};
use crate::cuts::{enumerate_cuts, CutConfig, MAX_CUT_SIZE, VAR_TT};
use crate::design::Design;
use crate::select::{select_nonoverlapping, Selectable};

/// Knobs of the rewriting pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Master switch (checked by [`rewrite_design`] callers such as the
    /// BMC engine; the pass itself always runs when invoked directly).
    pub enabled: bool,
    /// Cut width `k` (clamped to `2..=6`; a `u64` table covers 6 leaves).
    /// The default stays at 4 — the fast configuration; use
    /// [`RewriteConfig::wide`] for the full width.
    pub cut_size: usize,
    /// Non-trivial cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Fixpoint cap: rewriting repeats until an iteration stops strictly
    /// reducing the AND count, or this many iterations have run.
    pub max_iters: usize,
    /// Accept rewrites through the global non-overlapping selection pass
    /// (see the module docs) instead of traversal-order greedy. On by
    /// default: a freed node is then never counted by two accepted
    /// rewrites, nor freed out from under a rewrite whose measured cost
    /// depends on it (residual commit-time drift from structural sharing
    /// is bounded by the never-grows fixpoint guard).
    pub global_select: bool,
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig {
            enabled: true,
            cut_size: 4,
            max_cuts: 8,
            max_iters: 4,
            global_select: true,
        }
    }
}

impl RewriteConfig {
    /// A configuration that turns the pass off entirely.
    pub fn disabled() -> RewriteConfig {
        RewriteConfig {
            enabled: false,
            ..RewriteConfig::default()
        }
    }

    /// The widest configuration: 6-input cuts (with a deeper cut list per
    /// node, since wide cuts survive dominance pruning in greater
    /// numbers) and global selection. Slower than the default but sees
    /// redundancy no 4-input window can expose; the bench harness
    /// measures it as the `rewrite6_fraig` mode.
    pub fn wide() -> RewriteConfig {
        RewriteConfig {
            cut_size: MAX_CUT_SIZE,
            max_cuts: 16,
            ..RewriteConfig::default()
        }
    }
}

/// What the pass found and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// AND gates before the pass.
    pub ands_before: usize,
    /// AND gates in the rewritten graph.
    pub ands_after: usize,
    /// The cut width the pass ran with (after clamping).
    pub cut_size: usize,
    /// Committed fixpoint iterations (0 when nothing improved).
    pub iterations: usize,
    /// Accepted cone replacements.
    pub rewrites: u64,
    /// Of those, cones whose canonical class is a 2- or 3-input XOR.
    pub xor_rewrites: u64,
    /// Of those, cones whose canonical class is a 2:1 mux.
    pub mux_rewrites: u64,
    /// Cuts enumerated across all iterations.
    pub cuts_enumerated: u64,
    /// Cut candidates evaluated against the gain test.
    pub candidates_tried: u64,
    /// Candidates rejected by the zero-gain guard (measured gain ≤ 0, or
    /// provably unable to win on the support-size lower bound).
    pub zero_gain_skipped: u64,
    /// Positive-gain candidates offered to global selection (same-root
    /// alternatives included; 0 when `global_select` is off).
    pub candidates_collected: u64,
    /// Of those, candidates dropped because their freed nodes overlapped
    /// a selected candidate's.
    pub select_dropped: u64,
    /// Improving exchange moves applied by the selection solver.
    pub exchange_swaps: u64,
    /// Accepted candidates whose recipe instantiation reused pre-existing
    /// strash nodes (selection reads) — the cost model prefers these at
    /// equal gain, since their logic is already shared with the rest of
    /// the graph.
    pub reuse_preferred: u64,
    /// Distinct NPN classes synthesized into the recipe library.
    pub npn_classes: usize,
    /// The fixpoint was stopped early by its [`ResourceGovernor`]
    /// (deadline or cancellation). The result is the last committed
    /// iteration — a sound best-so-far reduction, never larger than the
    /// input.
    pub interrupted: bool,
}

impl RewriteStats {
    /// Gates removed by the whole pass.
    pub fn ands_removed(&self) -> usize {
        self.ands_before.saturating_sub(self.ands_after)
    }
}

/// Result of [`rewrite_aig`]: the rewritten graph plus the edge mapping.
#[derive(Clone, Debug)]
pub struct RewriteResult {
    /// The rewritten graph. Inputs appear in the same order as in the
    /// source graph (same dense indices).
    pub aig: Aig,
    /// Counters.
    pub stats: RewriteStats,
    /// Old node -> rewritten-graph edge.
    map: Vec<Bit>,
}

impl RewriteResult {
    /// Maps an edge of the source graph into the rewritten graph.
    pub fn map_bit(&self, old: Bit) -> Bit {
        apply(&self.map, old)
    }
}

// ---------------------------------------------------------------------------
// NPN canonicalization
// ---------------------------------------------------------------------------

/// An NPN transform: input negations, an input permutation, and an output
/// negation, acting on 6-variable truth tables.
///
/// Applied to a function `f`, the transform yields
/// `g(y0..y5) = output_neg ⊕ f(x0..x5)` with `x_j = y_{perm[j]} ⊕ neg_j`
/// (where `neg_j` is bit `j` of `input_neg`). The identity transform has
/// `perm = [0, 1, 2, 3, 4, 5]`, `input_neg = 0`, `output_neg = false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// Where each original input reads from: `x_j` comes from `y_{perm[j]}`.
    pub perm: [u8; MAX_CUT_SIZE],
    /// Mask of complemented inputs (bit `j` complements `x_j`).
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform.
    pub const IDENTITY: NpnTransform = NpnTransform {
        perm: [0, 1, 2, 3, 4, 5],
        input_neg: 0,
        output_neg: false,
    };

    /// Applies the transform to a truth table.
    ///
    /// Implemented with word-parallel table surgery — per-variable half
    /// swaps for the input negations, variable transpositions for the
    /// permutation — so one application costs a dozen word operations
    /// instead of a 64-position loop. Canonicalization applies transforms
    /// by the thousand on symmetric tables; this is its inner loop.
    pub fn apply(&self, tt: u64) -> u64 {
        // h(x) = f(x0 ⊕ n0, ..): flip each negated input's half-spaces.
        let mut out = tt;
        for j in 0..MAX_CUT_SIZE {
            if (self.input_neg >> j) & 1 == 1 {
                out = flip_var(out, j);
            }
        }
        // g(y) = h(y_{perm[0]}, ..): relabel variable j -> perm[j] by
        // transpositions, tracking where each logical variable sits.
        let mut at = [0usize, 1, 2, 3, 4, 5];
        let mut place = [0usize, 1, 2, 3, 4, 5];
        for v in 0..MAX_CUT_SIZE {
            let target = self.perm[v] as usize;
            let p = place[v];
            if p != target {
                let w = at[target];
                out = swap_vars(out, p, target);
                at[p] = w;
                at[target] = v;
                place[v] = target;
                place[w] = p;
            }
        }
        if self.output_neg {
            !out
        } else {
            out
        }
    }
}

/// The table of `f` with variable `i` complemented: swaps the `x_i = 0`
/// and `x_i = 1` half-spaces.
fn flip_var(tt: u64, i: usize) -> u64 {
    let s = 1u32 << i;
    ((tt & VAR_TT[i]) >> s) | ((tt & !VAR_TT[i]) << s)
}

/// The table of `f` with variables `a` and `b` exchanged (relabeled).
fn swap_vars(tt: u64, a: usize, b: usize) -> u64 {
    if a == b {
        return tt;
    }
    let (a, b) = (a.min(b), a.max(b));
    // Positions with x_a = 1, x_b = 0 trade places with x_a = 0, x_b = 1;
    // the value distance between the paired positions is 2^b - 2^a.
    let sh = (1u32 << b) - (1u32 << a);
    let ra = VAR_TT[a] & !VAR_TT[b];
    let rb = !VAR_TT[a] & VAR_TT[b];
    (tt & !(ra | rb)) | ((tt & ra) << sh) | ((tt & rb) >> sh)
}

/// All permutations of `items` (recursive; at most 6! = 720 results).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let x = rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// Cartesian product of per-group orders, concatenated in group order:
/// every variable order that keeps the groups contiguous. A *collapsed*
/// group (all members pairwise swap-symmetric in the table) contributes
/// only its identity order — any other order's image is reproduced by a
/// phase-mask relabeling the enumeration covers anyway.
fn orders_of(groups: &[(Vec<usize>, bool)]) -> Vec<Vec<usize>> {
    let mut acc: Vec<Vec<usize>> = vec![Vec::new()];
    for (g, collapsed) in groups {
        let perms = if *collapsed {
            vec![g.clone()]
        } else {
            permutations(g)
        };
        let mut next = Vec::with_capacity(acc.len() * perms.len());
        for a in &acc {
            for p in &perms {
                let mut v = a.clone();
                v.extend_from_slice(p);
                next.push(v);
            }
        }
        acc = next;
    }
    acc
}

/// An order-invariant signature of the variable pair `(i, j)` in `g`: the
/// sorted multiset of the four quadrant onset counts, packed into a
/// `u32`. Invariant under complementing `i` or `j` (quadrants permute),
/// under swapping them, and under any transform of the other variables
/// (minterms move within quadrants).
fn pair_sig(g: u64, i: usize, j: usize) -> u32 {
    let mut q = [
        (g & !VAR_TT[i] & !VAR_TT[j]).count_ones(),
        (g & VAR_TT[i] & !VAR_TT[j]).count_ones(),
        (g & !VAR_TT[i] & VAR_TT[j]).count_ones(),
        (g & VAR_TT[i] & VAR_TT[j]).count_ones(),
    ];
    q.sort_unstable();
    (q[0] << 24) | (q[1] << 16) | (q[2] << 8) | q[3]
}

/// Semicanonicalizes a 6-variable truth table under the NPN group:
/// returns the minimum table over all transforms whose image satisfies
/// the cofactor-signature normal form, together with the transform that
/// reaches it.
///
/// The normal form constrains the *image*: its onset has at most 32
/// minterms (output phase), each variable's onset-within-`x_i=1` is no
/// larger than its onset-within-`x_i=0` (input phases), and variables are
/// ordered by ascending onset count. Because the constraints mention the
/// image alone, the constrained candidate set — and hence its minimum —
/// depends only on the NPN class: **two tables have equal forms iff they
/// are NPN-equivalent** (the form is itself a member of the input's
/// class, reached by the returned transform, so equal forms can only
/// come from one class), and the form is invariant under arbitrary
/// input/output negations and permutations of the input table. The name
/// follows the literature's signature-guided "semicanonical" technique;
/// the complete enumeration of signature ties here makes the form exact,
/// which the recipe library depends on — a cross-class cache collision
/// would replay a recipe for the wrong function.
///
/// Signatures prune the search: only genuine phase/permutation ties are
/// enumerated (first-order onset counts refined by pairwise quadrant
/// signatures), and ties caused by a *symmetry* of the table — a
/// variable whose complement fixes the table, a tie group every
/// transposition of which fixes it — are collapsed outright, since the
/// dropped transforms produce images another enumerated transform already
/// reaches. A typical lookup applies a handful of transforms instead of
/// all 92160; even XOR6, the maximally symmetric class, collapses to 128.
pub fn npn_semicanonical(tt: u64) -> (u64, NpnTransform) {
    if tt == 0 {
        return (0, NpnTransform::IDENTITY);
    }
    if tt == u64::MAX {
        return (
            0,
            NpnTransform {
                output_neg: true,
                ..NpnTransform::IDENTITY
            },
        );
    }
    let pc = tt.count_ones();
    let out_choices: &[bool] = if pc < 32 {
        &[false]
    } else if pc > 32 {
        &[true]
    } else {
        &[false, true]
    };
    let mut best: Option<(u64, NpnTransform)> = None;
    for &out_neg in out_choices {
        let g = if out_neg { !tt } else { tt };
        // Per-variable phase normalization: the image must satisfy
        // onset(x_i = 1) <= onset(x_i = 0); a tie leaves both phases open
        // unless complementing the variable fixes the table, in which
        // case the two phases yield identical images and one suffices.
        // Input negation permutes minterms within the other variables'
        // half-spaces, so these signatures are independent per variable.
        let mut forced_neg = 0u8;
        let mut tied_phase: Vec<usize> = Vec::new();
        let mut key = [(0u32, [0u32; MAX_CUT_SIZE - 1]); MAX_CUT_SIZE];
        for (i, &v) in VAR_TT.iter().enumerate() {
            let c1 = (g & v).count_ones();
            let c0 = (g & !v).count_ones();
            key[i].0 = c0.min(c1);
            if c1 > c0 {
                forced_neg |= 1 << i;
            } else if c1 == c0 && flip_var(g, i) != g {
                tied_phase.push(i);
            }
        }
        // Second-order refinement: the sorted pairwise quadrant
        // signatures split variables first-order counts cannot (e.g. the
        // two live inputs of an XOR buried in a wider table vs. the
        // unused ones — all share onset 16).
        for (i, k) in key.iter_mut().enumerate() {
            let mut s2: Vec<u32> = (0..MAX_CUT_SIZE)
                .filter(|&j| j != i)
                .map(|j| pair_sig(g, i, j))
                .collect();
            s2.sort_unstable();
            k.1.copy_from_slice(&s2);
        }
        // Variable order: ascending key. Equal keys form tie groups whose
        // internal orders must all be tried for the minimum to be exact —
        // except when the group is fully swap-symmetric in `g`, where a
        // single representative order covers the whole orbit.
        let mut by_key: Vec<usize> = (0..MAX_CUT_SIZE).collect();
        by_key.sort_by_key(|&i| (key[i], i));
        let mut groups: Vec<(Vec<usize>, bool)> = Vec::new();
        for &i in &by_key {
            match groups.last_mut() {
                Some((grp, _)) if key[grp[0]] == key[i] => grp.push(i),
                _ => groups.push((vec![i], false)),
            }
        }
        for (grp, collapsed) in &mut groups {
            // Adjacent transpositions generate the full symmetric group,
            // so checking consecutive pairs suffices.
            *collapsed = grp.windows(2).all(|w| swap_vars(g, w[0], w[1]) == g);
        }
        for order in orders_of(&groups) {
            let mut perm = [0u8; MAX_CUT_SIZE];
            for (slot, &v) in order.iter().enumerate() {
                perm[v] = slot as u8;
            }
            for mask in 0..(1u32 << tied_phase.len()) {
                let mut input_neg = forced_neg;
                for (b, &v) in tied_phase.iter().enumerate() {
                    if (mask >> b) & 1 == 1 {
                        input_neg |= 1 << v;
                    }
                }
                let t = NpnTransform {
                    perm,
                    input_neg,
                    output_neg: out_neg,
                };
                let cand = t.apply(tt);
                if best.is_none_or(|(b, _)| cand < b) {
                    best = Some((cand, t));
                }
            }
        }
    }
    best.expect("every class has a signature-normal candidate")
}

// ---------------------------------------------------------------------------
// Recipe synthesis (the per-class implementation library)
// ---------------------------------------------------------------------------

/// A recipe reference: `(index << 1) | inverted`. Index 0 is constant
/// false, 1..=6 are the canonical inputs, 7.. are recipe steps.
type Ref = u16;

const REF_FALSE: Ref = 0;

fn ref_var(i: usize) -> Ref {
    ((i + 1) << 1) as Ref
}

/// A synthesized implementation of one NPN class: a straight-line list of
/// AND steps over canonical inputs, replayable into any [`Aig`].
#[derive(Clone, Debug)]
struct Recipe {
    steps: Vec<(Ref, Ref)>,
    out: Ref,
}

/// Cofactor of `tt` with variable `i` fixed to 0 (result independent of `i`).
fn cof0(tt: u64, i: usize) -> u64 {
    let lo = tt & !VAR_TT[i];
    lo | (lo << (1 << i))
}

/// Cofactor of `tt` with variable `i` fixed to 1.
fn cof1(tt: u64, i: usize) -> u64 {
    let hi = tt & VAR_TT[i];
    hi | (hi >> (1 << i))
}

/// Number of variables `tt` actually depends on.
fn support_size(tt: u64) -> usize {
    (0..MAX_CUT_SIZE)
        .filter(|&i| cof0(tt, i) != cof1(tt, i))
        .count()
}

/// The decomposition chosen for a table (shared by cost and emission so
/// both follow the same argmin).
#[derive(Clone, Copy)]
enum Plan {
    /// `f = x_i & sub`
    AndPos(usize, u64),
    /// `f = !x_i & sub`
    AndNeg(usize, u64),
    /// `f = x_i | sub`
    OrPos(usize, u64),
    /// `f = !x_i | sub`
    OrNeg(usize, u64),
    /// `f = x_i ⊕ sub`
    Xor(usize, u64),
    /// `f = x_i ? hi : lo` (Shannon)
    Mux(usize, u64, u64),
}

/// Exhaustive-cost synthesizer over 6-variable truth tables, memoized.
#[derive(Default)]
struct Synth {
    cost_memo: HashMap<u64, u32>,
}

impl Synth {
    /// `Some(ref)` for tables free to implement (constants and literals).
    fn free_ref(tt: u64) -> Option<Ref> {
        if tt == 0 {
            return Some(REF_FALSE);
        }
        if tt == u64::MAX {
            return Some(REF_FALSE ^ 1);
        }
        for (i, &v) in VAR_TT.iter().enumerate() {
            if tt == v {
                return Some(ref_var(i));
            }
            if tt == !v {
                return Some(ref_var(i) ^ 1);
            }
        }
        None
    }

    /// Minimum AND count over the decompositions [`Plan`] explores.
    fn cost(&mut self, tt: u64) -> u32 {
        if Self::free_ref(tt).is_some() {
            return 0;
        }
        if let Some(&c) = self.cost_memo.get(&tt) {
            return c;
        }
        let best = self
            .plans(tt)
            .into_iter()
            .map(|p| self.plan_cost(p))
            .min()
            .expect("non-free table has support");
        self.cost_memo.insert(tt, best);
        best
    }

    fn plan_cost(&mut self, plan: Plan) -> u32 {
        match plan {
            Plan::AndPos(_, s) | Plan::AndNeg(_, s) | Plan::OrPos(_, s) | Plan::OrNeg(_, s) => {
                1 + self.cost(s)
            }
            Plan::Xor(_, s) => 3 + self.cost(s),
            Plan::Mux(_, hi, lo) => 3 + self.cost(hi) + self.cost(lo),
        }
    }

    /// Candidate decompositions of a non-free table.
    fn plans(&self, tt: u64) -> Vec<Plan> {
        let mut plans = Vec::new();
        for i in 0..MAX_CUT_SIZE {
            let (c0, c1) = (cof0(tt, i), cof1(tt, i));
            if c0 == c1 {
                continue; // not in the support
            }
            if c0 == 0 {
                plans.push(Plan::AndPos(i, c1));
            } else if c0 == u64::MAX {
                plans.push(Plan::OrNeg(i, c1));
            }
            if c1 == 0 {
                plans.push(Plan::AndNeg(i, c0));
            } else if c1 == u64::MAX {
                plans.push(Plan::OrPos(i, c0));
            }
            if c0 == !c1 {
                plans.push(Plan::Xor(i, c0));
            }
            plans.push(Plan::Mux(i, c1, c0));
        }
        plans
    }

    /// Synthesizes a recipe for `tt` following the cost argmin, sharing
    /// sub-functions (and their complements) within the recipe.
    fn recipe(&mut self, tt: u64) -> Recipe {
        let mut steps = Vec::new();
        let mut built = HashMap::new();
        let out = self.emit(tt, &mut steps, &mut built);
        Recipe { steps, out }
    }

    fn emit(&mut self, tt: u64, steps: &mut Vec<(Ref, Ref)>, built: &mut HashMap<u64, Ref>) -> Ref {
        if let Some(r) = Self::free_ref(tt) {
            return r;
        }
        if let Some(&r) = built.get(&tt) {
            return r;
        }
        if let Some(&r) = built.get(&!tt) {
            return r ^ 1;
        }
        let plan = self
            .plans(tt)
            .into_iter()
            .min_by_key(|&p| self.plan_cost(p))
            .expect("non-free table has support");
        let push = |steps: &mut Vec<(Ref, Ref)>, a: Ref, b: Ref| -> Ref {
            steps.push((a, b));
            ((steps.len() + MAX_CUT_SIZE) << 1) as Ref
        };
        let r = match plan {
            Plan::AndPos(i, s) => {
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i), rs)
            }
            Plan::AndNeg(i, s) => {
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i) ^ 1, rs)
            }
            Plan::OrPos(i, s) => {
                // x | s = !(!x & !s)
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i) ^ 1, rs ^ 1) ^ 1
            }
            Plan::OrNeg(i, s) => {
                // !x | s = !(x & !s)
                let rs = self.emit(s, steps, built);
                push(steps, ref_var(i), rs ^ 1) ^ 1
            }
            Plan::Xor(i, s) => {
                // x ⊕ s = !(!(x & !s) & !(!x & s))
                let rs = self.emit(s, steps, built);
                let x = ref_var(i);
                let s1 = push(steps, x, rs ^ 1);
                let s2 = push(steps, x ^ 1, rs);
                push(steps, s1 ^ 1, s2 ^ 1) ^ 1
            }
            Plan::Mux(i, hi, lo) => {
                // (x & hi) | (!x & lo)
                let rhi = self.emit(hi, steps, built);
                let rlo = self.emit(lo, steps, built);
                let x = ref_var(i);
                let s1 = push(steps, x, rhi);
                let s2 = push(steps, x ^ 1, rlo);
                push(steps, s1 ^ 1, s2 ^ 1) ^ 1
            }
        };
        built.insert(tt, r);
        r
    }
}

/// Replays a recipe into a graph over concrete canonical-input edges.
fn instantiate(g: &mut Aig, recipe: &Recipe, ys: [Bit; MAX_CUT_SIZE]) -> Bit {
    let mut vals: Vec<Bit> = Vec::with_capacity(1 + MAX_CUT_SIZE + recipe.steps.len());
    vals.push(Aig::FALSE);
    vals.extend_from_slice(&ys);
    let resolve = |vals: &[Bit], r: Ref| -> Bit {
        let b = vals[(r >> 1) as usize];
        if r & 1 == 1 {
            !b
        } else {
            b
        }
    };
    for &(a, b) in &recipe.steps {
        let x = resolve(&vals, a);
        let y = resolve(&vals, b);
        let r = g.and(x, y);
        vals.push(r);
    }
    resolve(&vals, recipe.out)
}

/// The per-pass recipe library: canonicalization cache plus synthesized
/// implementations keyed by NPN-semicanonical table.
struct NpnLibrary {
    canon_cache: HashMap<u64, (u64, NpnTransform)>,
    recipes: HashMap<u64, Recipe>,
    synth: Synth,
    /// Canonical classes of XOR2/XOR3 and the 2:1 mux, for the stats.
    xor_classes: [u64; 2],
    mux_class: u64,
}

impl NpnLibrary {
    fn new() -> NpnLibrary {
        let xor2 = VAR_TT[0] ^ VAR_TT[1];
        let xor3 = xor2 ^ VAR_TT[2];
        let mux = (VAR_TT[2] & VAR_TT[1]) | (!VAR_TT[2] & VAR_TT[0]);
        NpnLibrary {
            canon_cache: HashMap::new(),
            recipes: HashMap::new(),
            synth: Synth::default(),
            xor_classes: [npn_semicanonical(xor2).0, npn_semicanonical(xor3).0],
            mux_class: npn_semicanonical(mux).0,
        }
    }

    fn canonical(&mut self, tt: u64) -> (u64, NpnTransform) {
        *self
            .canon_cache
            .entry(tt)
            .or_insert_with(|| npn_semicanonical(tt))
    }

    /// Recipe plus nominal AND cost for a canonical class.
    fn recipe(&mut self, canon: u64) -> (Recipe, usize) {
        let synth = &mut self.synth;
        let r = self
            .recipes
            .entry(canon)
            .or_insert_with(|| synth.recipe(canon));
        (r.clone(), r.steps.len())
    }

    /// Builds the canonical class's implementation over mapped cut leaves,
    /// undoing the NPN transform.
    fn build(
        &mut self,
        g: &mut Aig,
        canon: u64,
        t: &NpnTransform,
        leaves: &[Bit; MAX_CUT_SIZE],
    ) -> Bit {
        let (recipe, _) = self.recipe(canon);
        // g(y) = out_neg ⊕ f(x), x_j = y_{perm[j]} ⊕ neg_j, hence
        // f(leaves) = out_neg ⊕ g(y) with y_{perm[j]} = leaves[j] ⊕ neg_j.
        let mut ys = [Aig::FALSE; MAX_CUT_SIZE];
        for (j, &e) in leaves.iter().enumerate() {
            let e = if (t.input_neg >> j) & 1 == 1 { !e } else { e };
            ys[t.perm[j] as usize] = e;
        }
        let r = instantiate(g, &recipe, ys);
        if t.output_neg {
            !r
        } else {
            r
        }
    }
}

// ---------------------------------------------------------------------------
// The rewriting pass
// ---------------------------------------------------------------------------

fn apply(map: &[Bit], bit: Bit) -> Bit {
    let base = map[bit.node().index()];
    if bit.is_inverted() {
        !base
    } else {
        base
    }
}

/// What the candidate edge still reaches, from a walk over graph `g`
/// starting at `cand`: the number of `freed` nodes it keeps alive, and
/// the pre-existing non-freed nodes it depends on.
///
/// A structural-hash hit on a node the replacement was credited with
/// freeing (the root's default AND, its MFFC interior) means that node
/// stays referenced and will *not* die — its saving must be discounted
/// or the measured gain overstates. Hits on *other* pre-existing nodes
/// are the candidate's external dependencies: its measured cost assumed
/// they exist for free, so global selection must treat them as **reads**
/// that conflict with another candidate claiming to free them.
///
/// The walk descends only into the candidate's own new nodes (index `>=
/// new_from`) and into reached freed nodes (a kept-alive MFFC member
/// keeps its children alive, which may be freed members themselves).
/// Pre-existing nodes outside the freed set cannot lead to one: an MFFC
/// interior node's every fanout lies inside the cone by construction, so
/// no outside cone reaches it. Each reachable node counts once.
fn cone_references(g: &Aig, cand: Bit, new_from: usize, freed: &[NodeId]) -> (i64, Vec<NodeId>) {
    let mut alive = 0i64;
    let mut reads: Vec<NodeId> = Vec::new();
    let mut seen: Vec<NodeId> = Vec::new();
    let mut stack = vec![cand.node()];
    while let Some(m) = stack.pop() {
        if seen.contains(&m) {
            continue;
        }
        seen.push(m);
        let is_freed = freed.contains(&m);
        if is_freed {
            alive += 1;
        }
        if !is_freed && m.index() < new_from {
            reads.push(m);
            continue;
        }
        if let Node::And(a, b) = g.node(m) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    (alive, reads)
}

/// The maximal fanout-free cone of `n` w.r.t. `leaves`, excluding `n`
/// itself: the AND nodes strictly between the leaves and `n` whose every
/// fanout (parents and roots, per `refs`) stays inside the cone — the
/// nodes that die if `n` stops referencing them. Restores `refs`.
fn mffc_interior(aig: &Aig, refs: &mut [u32], n: NodeId, leaves: &[NodeId]) -> Vec<NodeId> {
    let mut interior: Vec<NodeId> = Vec::new();
    let mut undone: Vec<NodeId> = Vec::new();
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if let Node::And(a, b) = aig.node(m) {
            for c in [a.node(), b.node()] {
                if leaves.contains(&c) || !matches!(aig.node(c), Node::And(..)) {
                    continue;
                }
                refs[c.index()] -= 1;
                undone.push(c);
                if refs[c.index()] == 0 {
                    interior.push(c);
                    stack.push(c);
                }
            }
        }
    }
    for c in undone {
        refs[c.index()] += 1;
    }
    interior
}

/// Fanout reference counts on `src`, with `roots` counted as fanouts.
fn fanout_refs(src: &Aig, roots: &[Bit]) -> Vec<u32> {
    let mut refs = vec![0u32; src.num_nodes()];
    for (_, node) in src.iter() {
        if let Node::And(a, b) = node {
            refs[a.node().index()] += 1;
            refs[b.node().index()] += 1;
        }
    }
    for r in roots {
        refs[r.node().index()] += 1;
    }
    refs
}

/// One topological rebuild with per-node cut rewriting accepted greedily
/// in traversal order, followed by a dead-strip from the mapped roots.
/// Returns the compacted graph, the source-node map into it, and the
/// number of accepted replacements.
fn rewrite_pass_greedy(
    src: &Aig,
    roots: &[Bit],
    config: &RewriteConfig,
    lib: &mut NpnLibrary,
    stats: &mut RewriteStats,
) -> (Aig, Vec<Bit>, u64) {
    let cuts = enumerate_cuts(
        src,
        &CutConfig {
            cut_size: config.cut_size,
            max_cuts: config.max_cuts,
        },
    );
    stats.cuts_enumerated += cuts.iter().map(|c| c.len() as u64).sum::<u64>();
    let mut refs = fanout_refs(src, roots);

    let mut g2 = Aig::new();
    let mut map: Vec<Bit> = Vec::with_capacity(src.num_nodes());
    let mut accepted = 0u64;
    for (id, node) in src.iter() {
        let mapped = match node {
            Node::Const => Aig::FALSE,
            Node::Input(_) => g2.new_input(),
            Node::And(a, b) => {
                let fa = apply(&map, a);
                let fb = apply(&map, b);
                let before = g2.num_nodes();
                let default = g2.and(fa, fb);
                if g2.num_nodes() == before {
                    // Folded or interned: locally free, nothing to beat.
                    default
                } else {
                    let mut best = default;
                    let mut best_gain = 0i64;
                    let mut best_class = 0u64;
                    let mut best_reads = 0usize;
                    for cut in &cuts[id.index()] {
                        if cut.is_trivial(id) || cut.leaves.is_empty() {
                            continue;
                        }
                        stats.candidates_tried += 1;
                        // What the replacement frees: the node's default
                        // AND plus its fanout-free cone above the cut.
                        let interior = mffc_interior(src, &mut refs, id, &cut.leaves);
                        let saved = 1 + interior.len() as i64;
                        // A function of s leaves needs at least s-1 ANDs;
                        // skip cuts that cannot win before paying for
                        // canonicalization (it is the expensive step for
                        // wide cuts).
                        if support_size(cut.tt).saturating_sub(1) as i64 >= saved + 2 {
                            stats.zero_gain_skipped += 1;
                            continue;
                        }
                        let (canon, t) = lib.canonical(cut.tt);
                        let (_, nominal) = lib.recipe(canon);
                        // Don't pollute the new graph with candidates that
                        // cannot win even with generous structural sharing.
                        if nominal as i64 >= saved + 2 {
                            stats.zero_gain_skipped += 1;
                            continue;
                        }
                        let mut leaf_edges = [Aig::FALSE; MAX_CUT_SIZE];
                        for (i, l) in cut.leaves.iter().enumerate() {
                            leaf_edges[i] = apply(&map, Bit::new(*l, false));
                        }
                        let before_c = g2.num_nodes();
                        let cand = lib.build(&mut g2, canon, &t, &leaf_edges);
                        let added = (g2.num_nodes() - before_c) as i64;
                        // Discount credited-as-freed nodes the candidate
                        // still reaches (through their rebuilt images) —
                        // best-effort here, since the map can merge
                        // interior images into shared logic; exact in
                        // the global pass, which measures on a clone.
                        let mut freed: Vec<NodeId> = interior
                            .iter()
                            .map(|n| apply(&map, Bit::new(*n, false)).node())
                            .collect();
                        freed.push(default.node());
                        freed.sort_unstable();
                        freed.dedup();
                        let (alive, reads) = cone_references(&g2, cand, before_c, &freed);
                        let gain = saved - alive - added;
                        // At equal (positive) gain, prefer the candidate
                        // that reads more pre-existing strash nodes: its
                        // implementation is already shared with the rest
                        // of the graph, so later rewrites and the final
                        // dead-strip see more reuse for the same saving.
                        let reuse_break =
                            gain == best_gain && best_gain > 0 && reads.len() > best_reads;
                        if cand != default && (gain > best_gain || reuse_break) {
                            if reuse_break {
                                stats.reuse_preferred += 1;
                            }
                            best = cand;
                            best_gain = gain;
                            best_class = canon;
                            best_reads = reads.len();
                        } else {
                            if cand != default {
                                stats.zero_gain_skipped += 1;
                            }
                            // Unwind the losing candidate: leaving its
                            // nodes in the graph would let later
                            // candidates share them for free, overstating
                            // their measured gain. Everything `best` and
                            // `default` reference lies below `before_c`,
                            // so the truncation cannot orphan them.
                            g2.truncate(before_c);
                        }
                    }
                    if best != default {
                        accepted += 1;
                        stats.rewrites += 1;
                        if lib.xor_classes.contains(&best_class) {
                            stats.xor_rewrites += 1;
                        } else if best_class == lib.mux_class {
                            stats.mux_rewrites += 1;
                        }
                    }
                    best
                }
            }
        };
        map.push(mapped);
    }

    compact_from_roots(g2, map, roots, accepted)
}

/// A positive-gain replacement candidate awaiting global selection.
struct Candidate {
    root: NodeId,
    leaves: Vec<NodeId>,
    canon: u64,
    t: NpnTransform,
    /// Nodes freed if the candidate is committed: root + MFFC interior.
    saved: Vec<NodeId>,
    /// Pre-existing non-freed nodes the measured implementation depends
    /// on (strash hits, used leaves) — selection reads.
    reads: Vec<NodeId>,
    gain: i64,
}

/// One global-selection round: measure all candidates against a scratch
/// copy of the source graph (order-independent gains), choose a
/// maximum-weight set with disjoint freed-node claims, then commit the
/// chosen rewrites in a single topological rebuild and dead-strip.
fn rewrite_pass_global(
    src: &Aig,
    roots: &[Bit],
    config: &RewriteConfig,
    lib: &mut NpnLibrary,
    stats: &mut RewriteStats,
) -> (Aig, Vec<Bit>, u64) {
    let cuts = enumerate_cuts(
        src,
        &CutConfig {
            cut_size: config.cut_size,
            max_cuts: config.max_cuts,
        },
    );
    stats.cuts_enumerated += cuts.iter().map(|c| c.len() as u64).sum::<u64>();
    let mut refs = fanout_refs(src, roots);

    // Phase 1 — collect: measure every cut candidate on a scratch clone of
    // the source graph, so each gain is what the rewrite would save if it
    // were the only one applied (truncation keeps measurements
    // independent). Every positive-gain candidate is offered to the
    // solver — same-root alternatives conflict through the shared root
    // claim, letting selection fall back to a narrower cut when a wide
    // cut's larger MFFC collides with a neighbor's.
    let mut trial = src.clone();
    let mut cands: Vec<Candidate> = Vec::new();
    for (id, node) in src.iter() {
        if !matches!(node, Node::And(..)) {
            continue;
        }
        for cut in &cuts[id.index()] {
            if cut.is_trivial(id) || cut.leaves.is_empty() {
                continue;
            }
            stats.candidates_tried += 1;
            let mut freed = mffc_interior(src, &mut refs, id, &cut.leaves);
            freed.push(id);
            let saved = freed.len() as i64;
            if support_size(cut.tt).saturating_sub(1) as i64 >= saved + 2 {
                stats.zero_gain_skipped += 1;
                continue;
            }
            let (canon, t) = lib.canonical(cut.tt);
            let (_, nominal) = lib.recipe(canon);
            if nominal as i64 >= saved + 2 {
                stats.zero_gain_skipped += 1;
                continue;
            }
            let mut leaf_edges = [Aig::FALSE; MAX_CUT_SIZE];
            for (i, l) in cut.leaves.iter().enumerate() {
                leaf_edges[i] = Bit::new(*l, false);
            }
            let before = trial.num_nodes();
            let cand_bit = lib.build(&mut trial, canon, &t, &leaf_edges);
            let added = (trial.num_nodes() - before) as i64;
            // Freed nodes the candidate still references won't die (their
            // savings are discounted); other pre-existing nodes it
            // references become selection reads.
            let (alive, reads) = cone_references(&trial, cand_bit, before, &freed);
            trial.truncate(before);
            let gain = saved - alive - added;
            if gain <= 0 || cand_bit.node() == id {
                stats.zero_gain_skipped += 1;
                continue;
            }
            cands.push(Candidate {
                root: id,
                leaves: cut.leaves.clone(),
                canon,
                t,
                saved: freed,
                reads,
                gain,
            });
        }
    }
    stats.candidates_collected += cands.len() as u64;

    // Phase 2 — select: maximum-weight candidates whose freed-node claims
    // overlap neither each other nor another selected candidate's
    // dependencies, so accepted gains add up without double counting.
    //
    // Slot encoding, two slots per source node: an *interior* claim on
    // node n takes {2n, 2n+1}, a *root* claim takes {2n} only, and a
    // read of n takes {2n+1}. Claims always conflict with claims (two
    // candidates never free the same node twice, and same-root
    // alternatives exclude each other), and a read conflicts with an
    // interior claim (the dependency would keep the "freed" node alive)
    // but not with a root claim — a rewritten root survives as its
    // mapped image, which the reader's commit-time instantiation picks
    // up for free.
    let items: Vec<Selectable> = cands
        .iter()
        .map(|c| {
            let mut claims: Vec<usize> = Vec::with_capacity(2 * c.saved.len());
            for &n in &c.saved {
                claims.push(2 * n.index());
                if n != c.root {
                    claims.push(2 * n.index() + 1);
                }
            }
            // Weight = gain, scaled up so a bounded strash-reuse bonus
            // (one point per pre-existing node the recipe reads, capped
            // at 3) breaks ties toward candidates whose implementation
            // shares existing logic without ever outranking a full gate
            // of real gain.
            Selectable {
                claims,
                reads: c.reads.iter().map(|n| 2 * n.index() + 1).collect(),
                weight: c.gain * 4 + (c.reads.len() as i64).min(3),
            }
        })
        .collect();
    let (picked, sel) = select_nonoverlapping(&items, 2 * src.num_nodes());
    stats.select_dropped += sel.dropped_overlap as u64;
    stats.exchange_swaps += sel.exchange_swaps as u64;
    let chosen: HashMap<NodeId, &Candidate> = cands
        .iter()
        .zip(&picked)
        .filter(|(_, &p)| p)
        .map(|(c, _)| (c.root, c))
        .collect();
    stats.reuse_preferred += chosen.values().filter(|c| !c.reads.is_empty()).count() as u64;

    // Phase 3 — commit: one topological rebuild applying exactly the
    // selected rewrites (instantiated over already-rebuilt leaves, where
    // structural hashing still makes shared logic free).
    let mut g2 = Aig::new();
    let mut map: Vec<Bit> = Vec::with_capacity(src.num_nodes());
    let mut accepted = 0u64;
    for (id, node) in src.iter() {
        let mapped = match node {
            Node::Const => Aig::FALSE,
            Node::Input(_) => g2.new_input(),
            Node::And(a, b) => {
                if let Some(c) = chosen.get(&id) {
                    let mut leaf_edges = [Aig::FALSE; MAX_CUT_SIZE];
                    for (i, l) in c.leaves.iter().enumerate() {
                        leaf_edges[i] = apply(&map, Bit::new(*l, false));
                    }
                    accepted += 1;
                    stats.rewrites += 1;
                    if lib.xor_classes.contains(&c.canon) {
                        stats.xor_rewrites += 1;
                    } else if c.canon == lib.mux_class {
                        stats.mux_rewrites += 1;
                    }
                    lib.build(&mut g2, c.canon, &c.t, &leaf_edges)
                } else {
                    let fa = apply(&map, a);
                    let fb = apply(&map, b);
                    g2.and(fa, fb)
                }
            }
        };
        map.push(mapped);
    }

    compact_from_roots(g2, map, roots, accepted)
}

/// Dead-strips `g2` from the mapped roots into a compacted graph,
/// preserving input order (the same phase-B sweep the fraig pass
/// performs), and rebases the source-node map onto it.
fn compact_from_roots(
    g2: Aig,
    map: Vec<Bit>,
    roots: &[Bit],
    accepted: u64,
) -> (Aig, Vec<Bit>, u64) {
    let root_nodes: Vec<NodeId> = roots.iter().map(|&r| apply(&map, r).node()).collect();
    let (g3, map2) = g2.compacted(&root_nodes);
    let final_map: Vec<Bit> = map.iter().map(|&b| apply(&map2, b)).collect();
    (g3, final_map, accepted)
}

/// Runs cut-based rewriting over a raw graph to a fixpoint.
///
/// `roots` are the edges whose functions must be preserved (for a design:
/// next-state functions, properties, constraints, and memory port buses);
/// everything outside their cones is dead-stripped. Inputs are always
/// preserved, in order, so dense input indices survive the rewrite. The
/// result never has more AND gates than the input graph.
///
/// # Examples
///
/// A disguised wire: `(a ∧ b) ∨ (a ∧ ¬b)` is just `a`, but no structural
/// hashing can see it. The 2-leaf cut's truth table can:
///
/// ```
/// use emm_aig::rewrite::{rewrite_aig, RewriteConfig};
/// use emm_aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.new_input();
/// let b = g.new_input();
/// let t = g.and(a, b);
/// let e = g.and(a, !b);
/// let f = g.or(t, e); // ≡ a, built as three ANDs
/// let r = rewrite_aig(&g, &[f], &RewriteConfig::default());
/// assert_eq!(r.map_bit(f), r.map_bit(a));
/// assert_eq!(r.aig.num_ands(), 0);
/// assert_eq!(r.stats.rewrites, 1);
/// ```
pub fn rewrite_aig(aig: &Aig, roots: &[Bit], config: &RewriteConfig) -> RewriteResult {
    rewrite_aig_governed(aig, roots, config, &ResourceGovernor::unlimited())
}

/// [`rewrite_aig`] under a shared [`ResourceGovernor`].
///
/// The governor is polled at fixpoint-iteration granularity and each
/// iteration entry reports a [`FaultSite::RewriteIteration`] event to its
/// fault injector. On a trip the loop stops with the last *committed*
/// iteration's graph — a sound best-so-far reduction — and
/// [`RewriteStats::interrupted`] set.
pub fn rewrite_aig_governed(
    aig: &Aig,
    roots: &[Bit],
    config: &RewriteConfig,
    governor: &ResourceGovernor,
) -> RewriteResult {
    let mut stats = RewriteStats {
        ands_before: aig.num_ands(),
        cut_size: config.cut_size.clamp(2, MAX_CUT_SIZE),
        ..RewriteStats::default()
    };
    let mut lib = NpnLibrary::new();
    let mut result_aig = aig.clone();
    let mut result_map: Vec<Bit> = aig.iter().map(|(id, _)| Bit::new(id, false)).collect();
    for iter in 0..config.max_iters.max(1) {
        if governor.poll().is_some() {
            stats.interrupted = true;
            break;
        }
        governor.note(FaultSite::RewriteIteration);
        let roots_cur: Vec<Bit> = roots.iter().map(|&r| apply(&result_map, r)).collect();
        let (g2, pmap, accepted) = if config.global_select {
            rewrite_pass_global(&result_aig, &roots_cur, config, &mut lib, &mut stats)
        } else {
            rewrite_pass_greedy(&result_aig, &roots_cur, config, &mut lib, &mut stats)
        };
        if g2.num_ands() >= result_aig.num_ands() {
            // A non-improving iteration is discarded: the pass never grows
            // the graph, and equal size means the fixpoint is reached.
            break;
        }
        result_map = result_map.iter().map(|&b| apply(&pmap, b)).collect();
        result_aig = g2;
        stats.iterations = iter + 1;
        if accepted == 0 {
            // The shrink came from dead-stripping alone; nothing further
            // to iterate on.
            break;
        }
    }
    stats.ands_after = result_aig.num_ands();
    stats.npn_classes = lib.recipes.len();
    RewriteResult {
        aig: result_aig,
        stats,
        map: result_map,
    }
}

/// Applies cut-based rewriting to a whole design in place, rewriting its
/// combinational core and every stored edge. Returns the pass counters.
///
/// The design's interface is untouched: latch order and initial values,
/// memory modules and port order, property and constraint lists, input
/// kinds, and dense input indices are all preserved — only the gate
/// structure between them changes. A design that fails [`Design::check`]
/// is returned unchanged (zeroed stats).
///
/// # Examples
///
/// ```
/// use emm_aig::rewrite::{rewrite_design, RewriteConfig};
/// use emm_aig::{Design, LatchInit};
///
/// let mut d = Design::new();
/// let (_, x) = d.new_latch("x", LatchInit::Zero);
/// let a = d.new_input("a");
/// let t = d.aig.and(x, a);
/// let e = d.aig.and(x, !a);
/// let redundant = d.aig.or(t, e); // ≡ x
/// d.set_next(x, redundant);
/// let bad = d.aig.and(x, a);
/// d.add_property("p", bad);
/// d.check().expect("well-formed");
///
/// let stats = rewrite_design(&mut d, &RewriteConfig::default());
/// assert!(stats.ands_after < stats.ands_before);
/// d.check().expect("still well-formed");
/// ```
pub fn rewrite_design(design: &mut Design, config: &RewriteConfig) -> RewriteStats {
    rewrite_design_governed(design, config, &ResourceGovernor::unlimited())
}

/// [`rewrite_design`] under a shared [`ResourceGovernor`] — see
/// [`rewrite_aig_governed`] for the degradation contract.
pub fn rewrite_design_governed(
    design: &mut Design,
    config: &RewriteConfig,
    governor: &ResourceGovernor,
) -> RewriteStats {
    if design.check().is_err() {
        return RewriteStats::default();
    }
    let roots = design.reduction_roots();
    let RewriteResult { aig, stats, map } =
        rewrite_aig_governed(&design.aig, &roots, config, governor);
    design.replace_aig(aig, &mut |b| apply(&map, b));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::LatchInit;
    use crate::sim::{eval_combinational, Simulator};

    /// Evaluates a tt at an assignment given as 6 bits.
    fn tt_at(tt: u64, p: usize) -> bool {
        (tt >> p) & 1 == 1
    }

    /// A random permutation of `0..6` drawn from an xorshift state.
    fn random_perm(next: &mut impl FnMut() -> u64) -> [u8; MAX_CUT_SIZE] {
        let mut perm = [0u8, 1, 2, 3, 4, 5];
        for i in (1..MAX_CUT_SIZE).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    /// A cancelled governor stops the fixpoint before the first
    /// iteration: the graph comes back untouched, honestly flagged.
    #[test]
    fn cancelled_governor_skips_rewriting() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let t = g.and(a, b);
        let e = g.and(a, !b);
        let f = g.or(t, e); // ≡ a: rewritable, but the governor says no
        let governor = ResourceGovernor::unlimited();
        governor.cancel();
        let r = rewrite_aig_governed(&g, &[f], &RewriteConfig::default(), &governor);
        assert!(r.stats.interrupted);
        assert_eq!(r.stats.iterations, 0);
        assert_eq!(r.stats.rewrites, 0);
        assert_eq!(r.aig.num_ands(), g.num_ands());
        assert_ne!(r.map_bit(f), r.map_bit(a), "no rewrite committed");
    }

    /// The fault injector trips after the Nth fixpoint iteration: the
    /// last committed iteration's (sound, improved) graph is kept.
    #[test]
    fn fault_injection_stops_after_nth_iteration() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let t = g.and(a, b);
        let e = g.and(a, !b);
        let f = g.or(t, e); // ≡ a
        let governor = ResourceGovernor::unlimited().with_fault(FaultSite::RewriteIteration, 1);
        let r = rewrite_aig_governed(&g, &[f], &RewriteConfig::default(), &governor);
        assert!(r.stats.interrupted, "a second iteration was refused");
        assert_eq!(r.stats.iterations, 1, "the first iteration committed");
        assert_eq!(r.map_bit(f), r.map_bit(a), "its rewrite survives");
        assert_eq!(r.aig.num_ands(), 0);
    }

    #[test]
    fn cofactors_agree_with_semantics() {
        let tt = 0x1234_5678_9ABC_DEF0u64;
        for i in 0..MAX_CUT_SIZE {
            for p in 0..64usize {
                let p0 = p & !(1 << i);
                let p1 = p | (1 << i);
                assert_eq!(tt_at(cof0(tt, i), p), tt_at(tt, p0));
                assert_eq!(tt_at(cof1(tt, i), p), tt_at(tt, p1));
            }
        }
    }

    #[test]
    fn support_size_counts_dependent_variables() {
        assert_eq!(support_size(0), 0);
        assert_eq!(support_size(u64::MAX), 0);
        assert_eq!(support_size(VAR_TT[3]), 1);
        assert_eq!(support_size(VAR_TT[0] & VAR_TT[5]), 2);
        let all = VAR_TT.iter().fold(u64::MAX, |a, &v| a & v);
        assert_eq!(support_size(all), 6);
    }

    #[test]
    fn npn_transform_identity() {
        assert_eq!(
            NpnTransform::IDENTITY.apply(0xBEEF_FACE_0123_4567),
            0xBEEF_FACE_0123_4567
        );
    }

    #[test]
    fn fast_apply_matches_positional_reference() {
        // The word-parallel apply against the direct per-position
        // definition of the transform semantics.
        fn reference(t: &NpnTransform, tt: u64) -> u64 {
            let mut out = 0u64;
            for p in 0..64u32 {
                let mut q = 0u32;
                for j in 0..MAX_CUT_SIZE {
                    let bit = ((p >> t.perm[j]) & 1) ^ ((t.input_neg as u32 >> j) & 1);
                    q |= bit << j;
                }
                out |= (((tt >> q) & 1) ^ t.output_neg as u64) << p;
            }
            out
        }
        let mut state = 0xC0FF_EE11_D00D_F00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let tt = next();
            let t = NpnTransform {
                perm: random_perm(&mut next),
                input_neg: (next() % 64) as u8,
                output_neg: next() % 2 == 1,
            };
            assert_eq!(t.apply(tt), reference(&t, tt), "{t:?} on {tt:#018x}");
        }
    }

    #[test]
    fn semicanonical_is_invariant_under_transforms() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let tt = next();
            let (canon, t) = npn_semicanonical(tt);
            assert_eq!(t.apply(tt), canon, "transform reaches the canonical");
            // Any random transform of tt must canonicalize identically.
            let rt = NpnTransform {
                perm: random_perm(&mut next),
                input_neg: (next() % 64) as u8,
                output_neg: next() % 2 == 1,
            };
            assert_eq!(npn_semicanonical(rt.apply(tt)).0, canon);
        }
    }

    #[test]
    fn semicanonical_handles_symmetric_tables() {
        // Fully symmetric classes hit the worst-case tie enumeration;
        // invariance must still hold. XOR6 is the canonical stress case.
        let xor6 = VAR_TT.iter().fold(0u64, |a, &v| a ^ v);
        let (canon, t) = npn_semicanonical(xor6);
        assert_eq!(t.apply(xor6), canon);
        assert_eq!(npn_semicanonical(!xor6).0, canon, "phase-flipped XOR6");
        let and6 = VAR_TT.iter().fold(u64::MAX, |a, &v| a & v);
        let (canon_and, t_and) = npn_semicanonical(and6);
        assert_eq!(t_and.apply(and6), canon_and);
        // OR6 = !AND6 over complemented inputs: same class.
        let or6 = VAR_TT.iter().fold(0u64, |a, &v| a | v);
        assert_eq!(npn_semicanonical(or6).0, canon_and);
        // Constants take the fast path.
        assert_eq!(npn_semicanonical(0).0, 0);
        assert_eq!(npn_semicanonical(u64::MAX).0, 0);
    }

    #[test]
    fn recipes_implement_their_tables() {
        // Synthesize a spread of tables, instantiate over fresh inputs,
        // and check against direct evaluation.
        let mut synth = Synth::default();
        let mut state = 0xD1B54A32D192ED03u64;
        let mut tables: Vec<u64> = (0..40)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let xor2 = VAR_TT[0] ^ VAR_TT[1];
        let xor6 = VAR_TT.iter().fold(0u64, |a, &v| a ^ v);
        let mux = (VAR_TT[2] & VAR_TT[1]) | (!VAR_TT[2] & VAR_TT[0]);
        tables.extend([xor2, xor6, mux, 0x8000_0000_0000_0000, u64::MAX - 1, 1]);
        for tt in tables {
            let recipe = synth.recipe(tt);
            // Sub-function sharing inside a recipe can beat the no-sharing
            // cost bound, never exceed it.
            assert!(recipe.steps.len() as u32 <= synth.cost(tt));
            let mut g = Aig::new();
            let mut ys = [Aig::FALSE; MAX_CUT_SIZE];
            for y in ys.iter_mut() {
                *y = g.new_input();
            }
            let out = instantiate(&mut g, &recipe, ys);
            for p in 0..64usize {
                let inputs: Vec<bool> = (0..MAX_CUT_SIZE).map(|i| (p >> i) & 1 == 1).collect();
                let values = eval_combinational(&g, &inputs);
                assert_eq!(
                    out.apply(values[out.node().index()]),
                    tt_at(tt, p),
                    "tt {tt:#018x} at {p}"
                );
            }
        }
    }

    #[test]
    fn npn_build_undoes_the_transform() {
        let mut lib = NpnLibrary::new();
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let tt = state;
            let (canon, t) = npn_semicanonical(tt);
            let mut g = Aig::new();
            let mut leaves = [Aig::FALSE; MAX_CUT_SIZE];
            for l in leaves.iter_mut() {
                *l = g.new_input();
            }
            let out = lib.build(&mut g, canon, &t, &leaves);
            for p in 0..64usize {
                let inputs: Vec<bool> = (0..MAX_CUT_SIZE).map(|i| (p >> i) & 1 == 1).collect();
                let values = eval_combinational(&g, &inputs);
                assert_eq!(
                    out.apply(values[out.node().index()]),
                    tt_at(tt, p),
                    "tt {tt:#018x} at {p}"
                );
            }
        }
    }

    #[test]
    fn synthesis_costs_match_known_classes() {
        let mut synth = Synth::default();
        let xor2 = VAR_TT[0] ^ VAR_TT[1];
        let mux = (VAR_TT[2] & VAR_TT[1]) | (!VAR_TT[2] & VAR_TT[0]);
        assert_eq!(synth.cost(xor2), 3, "2-input XOR");
        assert_eq!(synth.cost(mux), 3, "2:1 mux");
        assert_eq!(synth.cost(xor2 ^ VAR_TT[2]), 6, "3-input XOR");
        assert_eq!(synth.cost(VAR_TT[0] & VAR_TT[1]), 1, "2-input AND");
        let and6 = VAR_TT.iter().fold(u64::MAX, |a, &v| a & v);
        assert_eq!(synth.cost(and6), 5, "6-input AND");
    }

    #[test]
    fn rewrites_disguised_constant() {
        // (a ∧ b) ∧ (a ∧ ¬b) ≡ false over the cut {a, b}.
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, !b);
        let z = g.and(x, y);
        let r = rewrite_aig(&g, &[z], &RewriteConfig::default());
        assert_eq!(r.map_bit(z), Aig::FALSE);
        assert_eq!(r.aig.num_ands(), 0);
    }

    #[test]
    fn wide_cuts_collapse_shannon_bloat() {
        // f = mux(a, g1, g2) where g1 and g2 are the *same* 4-input AND
        // built with different association, so strash cannot share them:
        // the true function is b∧c∧d∧e (3 ANDs), but every window of at
        // most 4 leaves sees only irreducible structure — a path through
        // `a` escapes any 4-cut that could expose the redundancy. Only a
        // 5-input cut {a,b,c,d,e} reveals that the mux arms are equal.
        let build = |g: &mut Aig| {
            let a = g.new_input();
            let b = g.new_input();
            let c = g.new_input();
            let d = g.new_input();
            let e = g.new_input();
            let de = g.and(d, e);
            let cde = g.and(c, de);
            let g1 = g.and(b, cde);
            let bc = g.and(b, c);
            let bcd = g.and(bc, d);
            let g2 = g.and(bcd, e);
            g.mux(a, g1, g2)
        };
        let mut g = Aig::new();
        let f = build(&mut g);
        assert_eq!(g.num_ands(), 9);

        // Narrow cuts may chip away at the associations but cannot beat
        // the full collapse the 5-leaf window performs in one step.
        let narrow = rewrite_aig(&g, &[f], &RewriteConfig::default());
        let wide = rewrite_aig(&g, &[f], &RewriteConfig::wide());
        assert!(narrow.aig.num_ands() >= wide.aig.num_ands());
        assert_eq!(wide.aig.num_ands(), 3, "b∧c∧d∧e");
        assert!(wide.stats.rewrites >= 1);
        // Semantics: f == b∧c∧d∧e on all 32 assignments.
        for p in 0..32usize {
            let inputs: Vec<bool> = (0..5).map(|i| (p >> i) & 1 == 1).collect();
            let values = eval_combinational(&wide.aig, &inputs);
            let mapped = wide.map_bit(f);
            let expect = inputs[1] && inputs[2] && inputs[3] && inputs[4];
            assert_eq!(mapped.apply(values[mapped.node().index()]), expect, "{p}");
        }
    }

    #[test]
    fn greedy_and_global_agree_on_semantics() {
        // Same graph through both acceptance policies: functions must
        // match even where the chosen rewrites differ.
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let t1 = g.and(a, b);
        let t2 = g.and(a, !b);
        let wire = g.or(t1, t2); // ≡ a
        let x1 = g.and(wire, c);
        let x2 = g.xor(wire, c);
        let root = g.and(x1, !x2);
        let greedy = rewrite_aig(
            &g,
            &[root],
            &RewriteConfig {
                global_select: false,
                ..RewriteConfig::default()
            },
        );
        let global = rewrite_aig(&g, &[root], &RewriteConfig::default());
        for p in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| (p >> i) & 1 == 1).collect();
            let vg = eval_combinational(&greedy.aig, &inputs);
            let vl = eval_combinational(&global.aig, &inputs);
            let mg = greedy.map_bit(root);
            let ml = global.map_bit(root);
            assert_eq!(
                mg.apply(vg[mg.node().index()]),
                ml.apply(vl[ml.node().index()]),
                "pattern {p}"
            );
        }
    }

    #[test]
    fn preserves_semantics_on_a_design() {
        let mut d = Design::new();
        let s = d.new_latch_word("s", 4, LatchInit::Zero);
        let i = d.new_input_word("i", 4);
        let sum = d.aig.add(&s, &i);
        d.set_next_word(&s, &sum);
        let bad = d.aig.eq_const(&s, 11);
        d.add_property("p", bad);
        d.check().expect("valid");

        for config in [RewriteConfig::default(), RewriteConfig::wide()] {
            let mut rewritten = d.clone();
            let stats = rewrite_design(&mut rewritten, &config);
            assert!(stats.ands_after <= stats.ands_before);
            rewritten.check().expect("still well-formed");

            let mut sim_a = Simulator::new(&d);
            let mut sim_b = Simulator::new(&rewritten);
            let mut state = 0x5DEECE66Du64;
            for cycle in 0..50 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
                let inputs: Vec<bool> = (0..4).map(|k| (state >> (16 + k)) & 1 == 1).collect();
                let ra = sim_a.step(&inputs);
                let rb = sim_b.step(&inputs);
                assert_eq!(ra.property_bad, rb.property_bad, "cycle {cycle}");
            }
        }
    }

    #[test]
    fn malformed_design_is_left_alone() {
        let mut d = Design::new();
        d.new_latch("dangling", LatchInit::Zero);
        let stats = rewrite_design(&mut d, &RewriteConfig::default());
        assert_eq!(stats, RewriteStats::default());
    }

    #[test]
    fn result_never_grows() {
        // A graph the pass cannot improve must come back unchanged in size.
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let x = g.and(a, b);
        let y = g.and(x, c);
        let r = rewrite_aig(&g, &[y], &RewriteConfig::default());
        assert_eq!(r.aig.num_ands(), 2);
        assert_eq!(r.stats.iterations, 0);
    }
}
