//! # emm-aig — word-level sequential netlists for the EMM verification stack
//!
//! This crate provides the design representation used throughout the
//! reproduction of *"Verification of Embedded Memory Systems using Efficient
//! Memory Modeling"* (Ganai, Gupta, Ashar — DATE 2005):
//!
//! * [`Aig`] — a structurally hashed And-Inverter Graph (the combinational
//!   core, counted in "2-input gates" as the paper reports);
//! * [`Word`] — little-endian bit vectors with arithmetic/comparison
//!   operators, the vocabulary the case-study designs are written in;
//! * [`Design`] — latches, free inputs, safety properties, environment
//!   constraints, and **embedded memory modules** with multiple read and
//!   write ports whose read-data buses are pseudo-inputs (see
//!   [`design`] for why);
//! * [`Simulator`] — a cycle-accurate interpreter implementing the memory
//!   forwarding semantics of Section 2.3, used as the ground truth oracle
//!   and for counterexample [`Trace`] validation;
//! * [`fraig`] — a functionally-reduced-AIG pass (simulate / prove /
//!   refine) that merges equivalent cones *before* Tseitin encoding: every
//!   node carries a multi-word random-simulation signature, signature
//!   classes are confirmed by bounded incremental SAT checks
//!   ([`emm_sat::EquivOracle`]), refutation models are folded back into
//!   the signatures as guided patterns, and a final rewrite redirects
//!   fanouts to class representatives and dead-strips merged cones. Knobs
//!   live in [`FraigConfig`]; the BMC engine runs it by default.
//! * [`rewrite`] — cut-based rewriting (with k-feasible cut enumeration in
//!   [`cuts`], k ≤ 6 over `u64` truth tables): per-node cut functions are
//!   canonicalized by a memoized semicanonical NPN form and
//!   re-synthesized from a recipe library wherever that strictly reduces
//!   the AND count; accepted rewrites are chosen by a global
//!   non-overlapping selection pass ([`select`]) so overlapping
//!   fanout-free cones are never double-counted — the restructuring pass
//!   for *inequivalent* logic that runs ahead of [`fraig`] in the BMC
//!   engine's default pipeline.
//!
//! How these passes slot into the whole verification stack is described
//! in `docs/ARCHITECTURE.md` at the repository root.
//!
//! ## Example: a memory-backed design
//!
//! ```
//! use emm_aig::{Design, LatchInit, MemInit, Simulator};
//!
//! let mut d = Design::new();
//! let mem = d.add_memory("buf", 4, 8, MemInit::Zero);
//! let ptr = d.new_latch_word("ptr", 4, LatchInit::Zero);
//! let next = d.aig.inc(&ptr);
//! d.set_next_word(&ptr, &next);
//! let data = d.new_input_word("data", 8);
//! let t = emm_aig::Aig::TRUE;
//! d.add_write_port(mem, ptr.clone(), t, data);
//! let rd = d.add_read_port(mem, ptr.clone(), t);
//! let bad = d.aig.eq_const(&rd, 0xFF);
//! d.add_property("never_ff", bad);
//! d.check().expect("well-formed design");
//!
//! let mut sim = Simulator::new(&d);
//! sim.step(&[false; 8]);
//! ```

#![warn(missing_docs)]

mod aig;
pub mod aiger;
pub mod btor2;
pub mod coi;
pub mod cuts;
pub mod design;
pub mod emn;
pub mod fraig;
pub mod report;
pub mod rewrite;
pub mod select;
pub mod sim;
mod word;

pub use aig::{Aig, Bit, Node, NodeId};
pub use design::{
    Design, DesignStats, InputKind, Latch, LatchId, LatchInit, MemInit, Memory, MemoryId, Property,
    PropertyId, ReadPort, WritePort,
};
pub use fraig::{
    fraig_aig, fraig_aig_governed, fraig_aig_pooled, fraig_design, fraig_design_governed,
    fraig_design_pooled, ClassReport, FraigConfig, FraigResult, FraigStats, SequentialRunner,
    SweepOutcome, SweepRunner, SweepTask,
};
pub use rewrite::{
    rewrite_aig, rewrite_aig_governed, rewrite_design, rewrite_design_governed, RewriteConfig,
    RewriteResult, RewriteStats,
};
pub use sim::{SimConfig, Simulator, StepReport, Trace};
pub use word::Word;
