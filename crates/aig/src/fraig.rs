//! FRAIG — functionally reduced AIGs by simulate / refine / prove.
//!
//! The simplifying CNF sink (`emm-sat`) can only intern gates the unroller
//! already chose to emit, and every sweep refutation there costs a solver
//! model *during encoding*. This pass moves sweeping to where it is cheap
//! and pays everywhere: the design's AIG, **once, before unrolling**, so a
//! merged cone disappears from every time frame of every BMC context.
//!
//! The loop is the classic fraiging recipe:
//!
//! 1. **Simulate** — every node carries a multi-word signature
//!    ([`FraigConfig::sim_words`] × 64 pseudorandom input patterns,
//!    deterministic in [`FraigConfig::seed`]), computed incrementally as
//!    the reduced graph is built. Equal (or complementary) signatures are
//!    the only evidence considered, so candidate classes are found without
//!    any solver work. The constant node seeds the all-zero class, which
//!    is how constant cones are detected.
//! 2. **Prove** — candidate pairs go to an incremental
//!    [`emm_sat::EquivOracle`]: only the two cones' Tseitin clauses are
//!    encoded (shared substructure once), and the query is bounded by
//!    [`FraigConfig::sat_conflicts`]. A proved pair merges the new node
//!    into its class representative; fanouts built later automatically
//!    redirect to the representative.
//! 3. **Refine** — a refuted pair yields a distinguishing model, which is
//!    a *real* simulation pattern. It is folded into every signature and
//!    the candidate classes are re-bucketed, so one counterexample
//!    separates every pair it distinguishes — no candidate is ever offered
//!    again across a pattern the engine has already seen, and the
//!    guided patterns quickly sharpen the random ones.
//!
//! The pass finishes with a rewrite: a fresh graph is rebuilt in the old
//! topological order with every fanout redirected to class
//! representatives, inputs preserved index-for-index, and merged or
//! unreferenced cones dead-stripped. [`fraig_design`] applies that rewrite
//! to a whole [`Design`] (ports, properties, constraints, name table)
//! through `Design::replace_aig`.
//!
//! Soundness: a merge is performed only after the oracle *proves* the two
//! cones equal as functions of all AIG inputs (latch outputs and read-data
//! pseudo-inputs included, treated as free). Functional equivalence over
//! free inputs is preserved under any environment, so the rewritten design
//! is cycle-for-cycle indistinguishable — the differential tests in
//! `emm-bmc` (`fraig_differential.rs`) check verdict equality over random
//! designs, and [`Trace`](crate::Trace) replay keeps validating
//! counterexamples against the *original* design.
//!
//! ```
//! use emm_aig::{Aig, fraig::{fraig_aig, FraigConfig}};
//!
//! let mut g = Aig::new();
//! let a = g.new_input();
//! let b = g.new_input();
//! let x = g.and(a, b);
//! let y = g.and(a, x); // absorbed: a ∧ (a ∧ b) ≡ x, structurally distinct
//! let r = fraig_aig(&g, &[x, y], &FraigConfig::default());
//! assert_eq!(r.map_bit(x), r.map_bit(y));
//! assert_eq!(r.stats.merges, 1);
//! assert_eq!(r.aig.num_ands(), 1);
//! ```

use std::collections::HashMap;

use emm_sat::{EquivOracle, FaultSite, Lit, ResourceGovernor};

use crate::aig::{Aig, Bit, Node, NodeId};
use crate::design::Design;
use crate::sim::eval_combinational;

/// Knobs of the fraig pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FraigConfig {
    /// Master switch (checked by [`fraig_design`] callers such as the BMC
    /// engine; the pass itself always runs when invoked directly).
    pub enabled: bool,
    /// Signature width in 64-bit words: `64 * sim_words` random patterns.
    pub sim_words: usize,
    /// Conflict budget per equivalence-check direction.
    pub sat_conflicts: u64,
    /// Candidates tried per node before giving up on a merge.
    pub max_candidates: usize,
    /// Total SAT equivalence checks across the pass (hard cap; the pass
    /// degrades to pure structural reduction once exhausted).
    pub max_checks: u64,
    /// Candidate-class size cap (bounds memory and worst-case checks).
    pub max_bucket: usize,
    /// Seed of the deterministic input patterns.
    pub seed: u64,
}

impl Default for FraigConfig {
    fn default() -> FraigConfig {
        FraigConfig {
            enabled: true,
            sim_words: 4,
            sat_conflicts: 48,
            max_candidates: 2,
            max_checks: 4096,
            max_bucket: 8,
            seed: 0x00E5_AD8F_F12A_9001,
        }
    }
}

impl FraigConfig {
    /// A configuration that turns the pass off entirely.
    pub fn disabled() -> FraigConfig {
        FraigConfig {
            enabled: false,
            ..FraigConfig::default()
        }
    }
}

/// What the pass found and what it cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FraigStats {
    /// AND gates before the pass.
    pub ands_before: usize,
    /// AND gates in the rewritten graph (merges and dead cones removed).
    pub ands_after: usize,
    /// Old gates answered by folding/structural hashing during rebuild
    /// (redundancy the representative substitution exposed).
    pub structural_merges: u64,
    /// Nodes merged into an equivalence-class representative by a proof.
    pub merges: u64,
    /// Of those, nodes proved equal to a constant.
    pub const_merges: u64,
    /// SAT equivalence checks issued.
    pub sat_checks: u64,
    /// Checks refuted by a distinguishing model.
    pub refuted: u64,
    /// Checks abandoned on the conflict budget.
    pub unknown: u64,
    /// Counterexample patterns folded back into the signatures.
    pub cex_patterns: u64,
    /// Simulation patterns used (initial random plus counterexamples).
    pub sim_patterns: u64,
    /// Nodes a candidate class refused because it was already at
    /// [`FraigConfig::max_bucket`] — cones that were never offered for a
    /// merge. A non-zero count means raising `max_bucket`/`max_checks`
    /// could find more merges (the ROADMAP's bucket-cap blind spot).
    pub buckets_truncated: u64,
    /// Truncated cones re-offered by the retry pass once merges landed
    /// or refinement split their classes.
    pub truncated_retried: u64,
    /// Merges found by the truncated-cone retry pass (included in
    /// [`FraigStats::merges`]).
    pub retry_merges: u64,
    /// The pass was interrupted by its [`ResourceGovernor`] (deadline or
    /// cancellation) and degraded to structural reduction for the
    /// remainder of the graph. The result is still a sound best-so-far
    /// reduction; only further SAT-proved merges were skipped.
    pub interrupted: bool,
}

impl FraigStats {
    /// Gates removed by the whole pass (merges plus dead-stripping).
    pub fn ands_removed(&self) -> usize {
        self.ands_before.saturating_sub(self.ands_after)
    }
}

/// Result of [`fraig_aig`]: the reduced graph plus the edge mapping.
#[derive(Clone, Debug)]
pub struct FraigResult {
    /// The functionally reduced graph. Inputs appear in the same order as
    /// in the source graph (same dense indices).
    pub aig: Aig,
    /// Counters.
    pub stats: FraigStats,
    /// Old node -> reduced-graph edge, through class representatives.
    map: Vec<Bit>,
}

impl FraigResult {
    /// Maps an edge of the source graph into the reduced graph.
    pub fn map_bit(&self, old: Bit) -> Bit {
        let base = self.map[old.node().index()];
        if old.is_inverted() {
            !base
        } else {
            base
        }
    }
}

/// SplitMix64: deterministic pseudorandom pattern words.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The in-flight state of one fraig run over a growing reduced graph.
struct Fraiger {
    config: FraigConfig,
    /// The graph being built ("G1"): source nodes rebuilt over
    /// representative-substituted operands. Merged nodes stay in it as
    /// garbage and are dead-stripped by the final compaction.
    g1: Aig,
    /// G1 node -> representative edge (identity unless merged).
    repr: Vec<Bit>,
    /// Flat signatures: G1 node `n` owns `sig[n*w .. (n+1)*w]`.
    sig: Vec<u64>,
    /// Candidate classes: canonical signature -> canonical member edges.
    buckets: HashMap<Vec<u64>, Vec<Bit>>,
    /// Lazily encoded cones of G1 (the solver side).
    oracle: EquivOracle,
    stats: FraigStats,
    /// The shared resource governor; polled once per candidate-loop
    /// entry so cancellation latency is bounded by one SAT check.
    governor: ResourceGovernor,
    /// Set when the governor trips: no further SAT work is issued and
    /// the pass degrades to structural reduction.
    halted: bool,
    /// Cones refused by a full candidate class, kept for the retry pass.
    truncated: Vec<NodeId>,
}

impl Fraiger {
    fn new(config: FraigConfig, governor: ResourceGovernor) -> Fraiger {
        let w = config.sim_words.max(1);
        let mut oracle = EquivOracle::new();
        oracle.set_governor(governor.clone());
        let mut f = Fraiger {
            config: FraigConfig {
                sim_words: w,
                ..config
            },
            g1: Aig::new(),
            repr: vec![Aig::FALSE],
            sig: vec![0; w],
            buckets: HashMap::new(),
            oracle,
            stats: FraigStats {
                sim_patterns: 64 * w as u64,
                ..FraigStats::default()
            },
            governor,
            halted: false,
            truncated: Vec::new(),
        };
        // The constant node seeds the all-zero class, so constant cones
        // become ordinary merge candidates.
        f.buckets.insert(vec![0; w], vec![Aig::FALSE]);
        f
    }

    /// Follows representative chains (with phase) to the class leader.
    fn resolve(&self, mut bit: Bit) -> Bit {
        loop {
            let r = self.repr[bit.node().index()];
            if r.node() == bit.node() {
                return if bit.is_inverted() { !r } else { r };
            }
            bit = if bit.is_inverted() { !r } else { r };
        }
    }

    /// Signature of a G1 edge (node signature, phase-adjusted), one word.
    fn sig_word(&self, bit: Bit, w: usize) -> u64 {
        let s = self.sig[bit.node().index() * self.config.sim_words + w];
        if bit.is_inverted() {
            !s
        } else {
            s
        }
    }

    /// Canonicalizes an edge's signature: flips the phase so pattern 0
    /// (bit 0 of word 0) evaluates to false. Equal functions — up to
    /// complement — then share one key.
    fn canonical(&self, node: NodeId) -> (Bit, Vec<u64>) {
        let w = self.config.sim_words;
        let bit = Bit::new(node, self.sig[node.index() * w] & 1 == 1);
        let key = (0..w).map(|i| self.sig_word(bit, i)).collect();
        (bit, key)
    }

    /// Registers a fresh G1 node with the given signature words.
    fn push_node(&mut self, node: NodeId, words: &[u64]) {
        debug_assert_eq!(node.index(), self.repr.len());
        self.repr.push(Bit::new(node, false));
        self.sig.extend_from_slice(words);
    }

    /// Rebuilds one source AND over mapped operands, then tries to merge
    /// the result into an existing equivalence class. Returns the edge the
    /// source node maps to.
    fn build_and(&mut self, a: Bit, b: Bit) -> Bit {
        let a = self.resolve(a);
        let b = self.resolve(b);
        let before = self.g1.num_nodes();
        let out = self.g1.and(a, b);
        if self.g1.num_nodes() == before {
            // Folded or interned: the substitutions exposed existing
            // structure; no new node, no new signature.
            self.stats.structural_merges += 1;
            return self.resolve(out);
        }
        let w = self.config.sim_words;
        let words: Vec<u64> = (0..w)
            .map(|i| self.sig_word(a, i) & self.sig_word(b, i))
            .collect();
        self.push_node(out.node(), &words);
        self.try_merge(out.node());
        self.resolve(out)
    }

    /// Offers `node` to its signature class: SAT-checks up to
    /// `max_candidates` members and either merges or joins the class.
    fn try_merge(&mut self, node: NodeId) {
        self.try_merge_bounded(node, self.config.max_checks, true);
    }

    /// The work of [`Fraiger::try_merge`] under an explicit check cap.
    /// `count_truncation` is false when the retry pass re-offers a cone
    /// already counted as truncated. Returns whether the node merged.
    fn try_merge_bounded(&mut self, node: NodeId, max_checks: u64, count_truncation: bool) -> bool {
        let mut tried = 0usize;
        let mut pos = 0usize;
        while self.stats.sat_checks < max_checks && tried < self.config.max_candidates {
            if !self.halted && self.governor.poll().is_some() {
                // Governor tripped: stop issuing SAT work and degrade to
                // structural reduction. Everything merged so far was
                // proved, so the partial reduction stays sound.
                self.halted = true;
                self.stats.interrupted = true;
            }
            if self.halted {
                break;
            }
            // Re-read the class on every step: a refuted check re-buckets
            // everything, which both drops separated candidates and keeps
            // this node's key current.
            let (lit, key) = self.canonical(node);
            let Some(members) = self.buckets.get(&key) else {
                break;
            };
            let Some(&cand) = members.get(pos) else {
                break;
            };
            pos += 1;
            let cand = self.resolve(cand);
            if cand.node() == node {
                continue;
            }
            tried += 1;
            self.stats.sat_checks += 1;
            let la = self.encode(lit);
            let lb = self.encode(cand);
            let answer = self.oracle.prove_equiv(la, lb, self.config.sat_conflicts);
            self.governor.note(FaultSite::FraigCheck);
            match answer {
                Some(true) => {
                    // lit ≡ cand, so node ≡ cand ^ lit's phase. Point the
                    // younger node at the older one so representative
                    // chains always descend in topological order (the
                    // retry pass can prove a class member equal to an
                    // older truncated cone).
                    self.stats.merges += 1;
                    self.governor.note(FaultSite::FraigMerge);
                    if cand.node() == NodeId::FALSE {
                        self.stats.const_merges += 1;
                    }
                    if cand.node().index() < node.index() {
                        self.repr[node.index()] = if lit.is_inverted() { !cand } else { cand };
                    } else {
                        let this = Bit::new(node, lit.is_inverted());
                        self.repr[cand.node().index()] =
                            if cand.is_inverted() { !this } else { this };
                    }
                    return true;
                }
                Some(false) => {
                    self.stats.refuted += 1;
                    self.refine();
                    // The counterexample separates this node from the
                    // refuted candidate (and possibly others); restart the
                    // scan of the re-bucketed class.
                    pos = 0;
                }
                None => {
                    self.stats.unknown += 1;
                }
            }
        }
        let (lit, key) = self.canonical(node);
        let class = self.buckets.entry(key).or_default();
        if class.contains(&lit) {
            // Already a member (a cone the retry pass re-offered).
        } else if class.len() < self.config.max_bucket {
            class.push(lit);
        } else if count_truncation {
            // The class is full: this cone was never offered a merge.
            // Recorded — and remembered for the retry pass — instead of
            // silently skipped, so the blind spot is visible in the stats
            // line.
            self.stats.buckets_truncated += 1;
            self.truncated.push(node);
        }
        false
    }

    /// Second chance for bucket-cap-truncated cones (the ROADMAP's blind
    /// spot): after the first pass has merged and refined, classes have
    /// shrunk or split, so a cone a full class once refused can be
    /// re-offered. The retry gets its own `max_checks` allowance — the
    /// first pass may have consumed the original budget. Returns the
    /// number of merges the retry found.
    fn retry_truncated(&mut self) -> u64 {
        if self.truncated.is_empty() || self.halted {
            return 0;
        }
        let cap = self.stats.sat_checks.saturating_add(self.config.max_checks);
        let mut nodes = std::mem::take(&mut self.truncated);
        nodes.sort_unstable();
        nodes.dedup();
        let before = self.stats.merges;
        for n in nodes {
            if self.halted || self.stats.sat_checks >= cap {
                break;
            }
            if self.resolve(Bit::new(n, false)).node() != n {
                // Merged away since it was refused.
                continue;
            }
            self.stats.truncated_retried += 1;
            self.try_merge_bounded(n, cap, false);
        }
        let found = self.stats.merges - before;
        self.stats.retry_merges = found;
        found
    }

    /// Encodes the cone of a G1 edge into the oracle (memoized) and
    /// returns its solver literal.
    fn encode(&mut self, bit: Bit) -> Lit {
        encode_cone(&self.g1, &mut self.oracle, bit)
    }

    /// Folds the oracle's distinguishing model back into every signature
    /// as one fresh pattern, then rebuilds the candidate classes.
    fn refine(&mut self) {
        self.stats.cex_patterns += 1;
        self.stats.sim_patterns += 1;
        let round = self.stats.cex_patterns;
        // Assemble a full input pattern: model values where the cone was
        // encoded, deterministic pseudorandom bits elsewhere.
        let mut inputs = vec![false; self.g1.num_inputs()];
        for (id, node) in self.g1.iter() {
            if let Node::Input(i) = node {
                let modeled = self
                    .oracle
                    .lit(id.index())
                    .and_then(|l| self.oracle.model_lit(l));
                inputs[i as usize] = modeled.unwrap_or_else(|| {
                    mix(self.config.seed
                        ^ round.wrapping_mul(0x9E3779B97F4A7C15)
                        ^ id.index() as u64)
                        & 1
                        == 1
                });
            }
        }
        let values = eval_combinational(&self.g1, &inputs);
        let w = self.config.sim_words;
        for (n, &value) in values.iter().enumerate() {
            let word = &mut self.sig[n * w];
            *word = (*word << 1) | value as u64;
        }
        // Re-bucket the candidate classes under the refined signatures.
        let mut members: Vec<Bit> = self.buckets.drain().flat_map(|(_, v)| v).collect();
        members.sort_unstable();
        members.dedup();
        for m in members {
            let (lit, key) = self.canonical(m.node());
            let class = self.buckets.entry(key).or_default();
            if class.contains(&lit) {
                continue;
            }
            if class.len() < self.config.max_bucket {
                class.push(lit);
            } else {
                self.stats.buckets_truncated += 1;
                self.truncated.push(lit.node());
            }
        }
    }
}

/// Runs the fraig pass over a raw graph.
///
/// `roots` are the edges whose functions must be preserved (for a design:
/// next-state functions, properties, constraints, and memory port buses);
/// everything outside their cones — including cones orphaned by merges —
/// is dead-stripped from the result. Inputs are always preserved, in
/// order, so dense input indices survive the rewrite.
///
/// # Examples
///
/// Absorption (`a ∧ (a ∧ b) ≡ a ∧ b`) creates two structurally distinct
/// nodes with one function; the pass proves and merges them:
///
/// ```
/// use emm_aig::fraig::{fraig_aig, FraigConfig};
/// use emm_aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.new_input();
/// let b = g.new_input();
/// let x = g.and(a, b);
/// let y = g.and(a, x);
/// let r = fraig_aig(&g, &[x, y], &FraigConfig::default());
/// assert_eq!(r.map_bit(x), r.map_bit(y));
/// assert_eq!(r.aig.num_ands(), 1);
/// ```
pub fn fraig_aig(aig: &Aig, roots: &[Bit], config: &FraigConfig) -> FraigResult {
    fraig_aig_governed(aig, roots, config, &ResourceGovernor::unlimited())
}

/// [`fraig_aig`] under a shared [`ResourceGovernor`].
///
/// The governor's deadline and cancellation token are polled once per
/// candidate offer and inside every oracle call, and
/// [`FaultSite::FraigCheck`] / [`FaultSite::FraigMerge`] events feed its
/// fault injector. When the governor trips mid-pass, SAT work stops but
/// the rebuild finishes structurally: the result is the sound
/// best-so-far reduction with [`FraigStats::interrupted`] set.
pub fn fraig_aig_governed(
    aig: &Aig,
    roots: &[Bit],
    config: &FraigConfig,
    governor: &ResourceGovernor,
) -> FraigResult {
    let mut f = Fraiger::new(*config, governor.clone());
    let w = f.config.sim_words;
    // Phase A: rebuild in topological order with merge-on-the-fly.
    let mut map1: Vec<Bit> = Vec::with_capacity(aig.num_nodes());
    for (_, node) in aig.iter() {
        let mapped = match node {
            Node::Const => Aig::FALSE,
            Node::Input(i) => {
                let b = f.g1.new_input();
                let words: Vec<u64> = (0..w)
                    .map(|k| mix(f.config.seed ^ mix((i as u64) << 8 | k as u64)))
                    .collect();
                f.push_node(b.node(), &words);
                b
            }
            Node::And(a, b) => {
                let fa = apply(&map1, a);
                let fb = apply(&map1, b);
                f.build_and(fa, fb)
            }
        };
        map1.push(mapped);
    }
    // Second pass over bucket-cap-truncated cones, now that merges and
    // refinement have shrunk the classes.
    let retry_merges = f.retry_truncated();
    let resolved: Vec<Bit> = map1.iter().map(|&b| f.resolve(b)).collect();
    // Merges found by the retry land *after* fanouts were already rebuilt,
    // so they don't propagate through G1's structure on their own: when
    // any landed, rebuild once more with representatives substituted.
    let (live, pre) = if retry_merges > 0 {
        let mut g3 = Aig::new();
        let mut map3: Vec<Bit> = Vec::with_capacity(f.g1.num_nodes());
        for (id, node) in f.g1.iter() {
            let rep = f.resolve(Bit::new(id, false));
            let mapped = if rep.node() != id {
                // Merged: representative chains descend, so it is built.
                apply(&map3, rep)
            } else {
                match node {
                    Node::Const => Aig::FALSE,
                    Node::Input(_) => g3.new_input(),
                    Node::And(a, b) => {
                        let ra = apply(&map3, f.resolve(a));
                        let rb = apply(&map3, f.resolve(b));
                        g3.and(ra, rb)
                    }
                }
            };
            map3.push(mapped);
        }
        let pre: Vec<Bit> = resolved.iter().map(|&b| apply(&map3, b)).collect();
        (g3, pre)
    } else {
        (std::mem::take(&mut f.g1), resolved)
    };
    // Phase B: dead-strip into a compacted graph, preserving input order
    // and the relative order of surviving nodes (so downstream consumers
    // that rely on "address cones precede their read port" still hold).
    let root_nodes: Vec<NodeId> = roots.iter().map(|&r| apply(&pre, r).node()).collect();
    let (g2, map2) = live.compacted(&root_nodes);
    // Final edge map: old -> representative -> compacted G2.
    let map: Vec<Bit> = pre.iter().map(|&b| apply(&map2, b)).collect();
    let mut stats = f.stats;
    stats.ands_before = aig.num_ands();
    stats.ands_after = g2.num_ands();
    FraigResult {
        aig: g2,
        stats,
        map,
    }
}

/// Applies the fraig pass to a whole design in place, rewriting its
/// combinational core and every stored edge. Returns the pass counters.
///
/// The design's interface is untouched: latch order and initial values,
/// memory modules and port order, property and constraint lists, input
/// kinds, and dense input indices are all preserved — only the gate
/// structure between them shrinks. A design that fails
/// [`Design::check`] is returned unchanged (zeroed stats), since
/// next-state functions must exist to be preserved.
pub fn fraig_design(design: &mut Design, config: &FraigConfig) -> FraigStats {
    fraig_design_governed(design, config, &ResourceGovernor::unlimited())
}

/// [`fraig_design`] under a shared [`ResourceGovernor`] — see
/// [`fraig_aig_governed`] for the degradation contract.
pub fn fraig_design_governed(
    design: &mut Design,
    config: &FraigConfig,
    governor: &ResourceGovernor,
) -> FraigStats {
    if design.check().is_err() {
        return FraigStats::default();
    }
    let roots = design.reduction_roots();
    let FraigResult { aig, stats, map } = fraig_aig_governed(&design.aig, &roots, config, governor);
    design.replace_aig(aig, &mut |b| apply(&map, b));
    stats
}

fn apply(map: &[Bit], bit: Bit) -> Bit {
    let base = map[bit.node().index()];
    if bit.is_inverted() {
        !base
    } else {
        base
    }
}

/// Encodes the cone of an edge of `g` into `oracle` (memoized, iterative
/// DFS) and returns its solver literal.
fn encode_cone(g: &Aig, oracle: &mut EquivOracle, bit: Bit) -> Lit {
    let mut stack = vec![bit.node()];
    while let Some(&n) = stack.last() {
        if oracle.lit(n.index()).is_some() {
            stack.pop();
            continue;
        }
        match g.node(n) {
            Node::Const => {
                oracle.define_const(n.index());
                stack.pop();
            }
            Node::Input(_) => {
                oracle.define_input(n.index());
                stack.pop();
            }
            Node::And(a, b) => {
                let (la, lb) = (oracle.lit(a.node().index()), oracle.lit(b.node().index()));
                match (la, lb) {
                    (Some(la), Some(lb)) => {
                        let la = if a.is_inverted() { !la } else { la };
                        let lb = if b.is_inverted() { !lb } else { lb };
                        oracle.define_and(n.index(), la, lb);
                        stack.pop();
                    }
                    _ => {
                        if la.is_none() {
                            stack.push(a.node());
                        }
                        if lb.is_none() {
                            stack.push(b.node());
                        }
                    }
                }
            }
        }
    }
    let l = oracle.lit(bit.node().index()).expect("just encoded");
    if bit.is_inverted() {
        !l
    } else {
        l
    }
}

// ---------------------------------------------------------------------------
// Batched class-parallel sweep
// ---------------------------------------------------------------------------

/// One SAT equivalence check's outcome inside a [`ClassReport`], in the
/// order the job issued them.
#[derive(Clone, Debug)]
pub enum SweepOutcome {
    /// `member ≡ leader` was proved; the barrier merges `member`'s node
    /// into the leader edge.
    Proved {
        /// The canonical member edge that was checked.
        member: Bit,
        /// The class leader edge it proved equal to.
        leader: Bit,
    },
    /// The pair was refuted; `pattern` is the distinguishing input
    /// assignment (model values where the cone was encoded,
    /// deterministic pseudorandom fill elsewhere), folded into every
    /// signature at the barrier.
    Refuted {
        /// One value per graph input, dense input order.
        pattern: Vec<bool>,
    },
    /// The conflict budget ran out before an answer.
    Unknown,
}

/// What one candidate-class job of the batched sweep found. Reports are
/// committed at the round barrier in canonical class order, so the
/// result is identical at every worker count.
#[derive(Clone, Debug, Default)]
pub struct ClassReport {
    /// Check outcomes in issue order.
    pub checks: Vec<SweepOutcome>,
    /// The job's governor tripped mid-class (deadline or upstream
    /// cancellation); outcomes up to the trip are still valid.
    pub interrupted: bool,
}

/// A boxed candidate-class job for a [`SweepRunner`]: borrows the
/// in-progress graph (`'a`), runs one class's SAT checks against its
/// own oracle, and returns the outcomes for barrier commit.
pub type SweepTask<'a> = Box<dyn FnOnce() -> ClassReport + Send + 'a>;

/// Executes a batch of independent candidate-class jobs. The pipeline's
/// work-stealing pool (`emm_core::pool::Pool`) implements this; this
/// crate ships [`SequentialRunner`] so the pass is usable (and
/// testable) without the pool crate, which sits above `emm-aig` in the
/// dependency graph.
///
/// `None` entries in the returned vector mark jobs the runner skipped
/// (cooperative shutdown); the sweep treats the first skip as an
/// interruption and commits nothing from that job onward, keeping the
/// committed prefix deterministic.
pub trait SweepRunner {
    /// Runs every task, returning results in task order (`None` for
    /// tasks skipped by a cancellation).
    fn run_sweep<'a>(&self, tasks: Vec<SweepTask<'a>>) -> Vec<Option<ClassReport>>;

    /// Worker count, for stats/telemetry only.
    fn workers(&self) -> usize {
        1
    }
}

/// A [`SweepRunner`] that executes jobs inline, in order — the
/// reference implementation the parallel pool must be bit-identical to.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialRunner;

impl SweepRunner for SequentialRunner {
    fn run_sweep<'a>(&self, tasks: Vec<SweepTask<'a>>) -> Vec<Option<ClassReport>> {
        tasks.into_iter().map(|t| Some(t())).collect()
    }
}

/// Follows representative chains (with phase) to the class leader.
fn chase(repr: &[Bit], mut bit: Bit) -> Bit {
    loop {
        let r = repr[bit.node().index()];
        if r.node() == bit.node() {
            return if bit.is_inverted() { !r } else { r };
        }
        bit = if bit.is_inverted() { !r } else { r };
    }
}

/// Signature word of an edge (node signature, phase-adjusted).
fn sig_word_of(sig: &[u64], w: usize, bit: Bit, k: usize) -> u64 {
    let s = sig[bit.node().index() * w + k];
    if bit.is_inverted() {
        !s
    } else {
        s
    }
}

/// Canonicalizes a node's signature: flips the phase so pattern 0
/// evaluates to false, as [`Fraiger::canonical`].
fn canonical_of(sig: &[u64], w: usize, node: NodeId) -> (Bit, Vec<u64>) {
    let bit = Bit::new(node, sig[node.index() * w] & 1 == 1);
    let key = (0..w).map(|k| sig_word_of(sig, w, bit, k)).collect();
    (bit, key)
}

/// The batched, class-parallel variant of [`fraig_aig_governed`].
///
/// Instead of merging on the fly during the topological rebuild, this
/// pass alternates **rounds**: bucket all live nodes into candidate
/// classes by signature, dispatch one job per class to `runner` (each
/// with its own [`EquivOracle`] and a [forked](ResourceGovernor::fork),
/// fault-disarmed governor), then commit every job's merges,
/// counterexample patterns, and fault-injection events at a barrier in
/// canonical class order. Because jobs are pure functions of the round
/// snapshot and the commit order is fixed, **the result — graph, map,
/// and stats — is bit-identical at every worker count**, including
/// under fault injection: armed faults are replayed against the parent
/// governor at the barrier, and the commit stream is truncated at the
/// deterministic trip point.
///
/// The schedule differs from [`fraig_aig_governed`]'s (checks are
/// batched per class rather than interleaved with construction), so
/// stats and intermediate candidates differ from the classic pass; the
/// *reduction is equally sound* and the differential suite checks both
/// engines agree on verdicts.
pub fn fraig_aig_pooled(
    aig: &Aig,
    roots: &[Bit],
    config: &FraigConfig,
    governor: &ResourceGovernor,
    runner: &dyn SweepRunner,
) -> FraigResult {
    let w = config.sim_words.max(1);
    let mut stats = FraigStats {
        sim_patterns: 64 * w as u64,
        ands_before: aig.num_ands(),
        ..FraigStats::default()
    };

    // Phase A: structural rebuild with incremental signatures, no SAT.
    let mut g1 = Aig::new();
    let mut sig: Vec<u64> = vec![0; w];
    let mut map1: Vec<Bit> = Vec::with_capacity(aig.num_nodes());
    for (_, node) in aig.iter() {
        let mapped = match node {
            Node::Const => Aig::FALSE,
            Node::Input(i) => {
                let b = g1.new_input();
                for k in 0..w {
                    sig.push(mix(config.seed ^ mix((i as u64) << 8 | k as u64)));
                }
                b
            }
            Node::And(a, b) => {
                let fa = apply(&map1, a);
                let fb = apply(&map1, b);
                let before = g1.num_nodes();
                let out = g1.and(fa, fb);
                if g1.num_nodes() == before {
                    stats.structural_merges += 1;
                } else {
                    for k in 0..w {
                        sig.push(sig_word_of(&sig, w, fa, k) & sig_word_of(&sig, w, fb, k));
                    }
                }
                out
            }
        };
        map1.push(mapped);
    }
    let mut repr: Vec<Bit> = g1.iter().map(|(id, _)| Bit::new(id, false)).collect();

    // Rounds: bucket → dispatch → barrier commit → refine.
    let mut halted = false;
    loop {
        if halted {
            break;
        }
        if governor.poll().is_some() {
            stats.interrupted = true;
            break;
        }
        let budget_left = config.max_checks.saturating_sub(stats.sat_checks);
        if budget_left == 0 {
            break;
        }
        // Candidate classes over live representatives, ascending node
        // order, capped at `max_bucket` (overflow counted as truncated —
        // a shrunk class re-offers them next round).
        let mut buckets: HashMap<Vec<u64>, Vec<Bit>> = HashMap::new();
        let mut class_order: Vec<Vec<u64>> = Vec::new();
        for (node, _) in g1.iter() {
            if chase(&repr, Bit::new(node, false)).node() != node {
                continue;
            }
            let (lit, key) = canonical_of(&sig, w, node);
            let class = buckets.entry(key.clone()).or_insert_with(|| {
                class_order.push(key);
                Vec::new()
            });
            if class.len() < config.max_bucket {
                class.push(lit);
            } else {
                stats.buckets_truncated += 1;
            }
        }
        let mut classes: Vec<Vec<Bit>> = class_order
            .into_iter()
            .filter_map(|key| {
                let class = buckets.remove(&key)?;
                (class.len() >= 2).then_some(class)
            })
            .collect();
        // Canonical dispatch/commit order: by class leader.
        classes.sort_by_key(|c| c[0].node().index());
        if classes.is_empty() {
            break;
        }
        // Deterministic per-class budgets, allocated in canonical order.
        let mut left = budget_left;
        let budgets: Vec<u64> = classes
            .iter()
            .map(|c| {
                let want = (c.len() - 1) as u64;
                let got = want.min(left);
                left -= got;
                got
            })
            .collect();

        let g1_ref = &g1;
        let tasks: Vec<SweepTask<'_>> = classes
            .iter()
            .zip(&budgets)
            .map(|(class, &budget)| {
                let class = class.clone();
                let job_gov = governor.fork().disarmed();
                let config = *config;
                Box::new(move || sweep_class(g1_ref, &class, budget, &config, &job_gov))
                    as SweepTask<'_>
            })
            .collect();
        let reports = runner.run_sweep(tasks);

        // Barrier: commit in canonical order. Fault events are replayed
        // on the parent governor here, so an armed fault trips at the
        // same committed check count at every worker count.
        let mut patterns: Vec<Vec<bool>> = Vec::new();
        let mut progressed = false;
        for (report, class) in reports.into_iter().zip(&classes) {
            let Some(report) = report else {
                // The runner skipped the job (cooperative shutdown):
                // nothing from it or any later class commits.
                halted = true;
                stats.interrupted = true;
                break;
            };
            let leader = class[0];
            debug_assert!(chase(&repr, leader) == leader);
            for outcome in report.checks {
                stats.sat_checks += 1;
                governor.note(FaultSite::FraigCheck);
                match outcome {
                    SweepOutcome::Proved { member, leader: l } => {
                        debug_assert_eq!(l, leader);
                        stats.merges += 1;
                        if leader.node() == NodeId::FALSE {
                            stats.const_merges += 1;
                        }
                        // member ≡ leader as functions, and the leader
                        // is the oldest class node, so chains keep
                        // descending topologically.
                        repr[member.node().index()] = if member.is_inverted() {
                            !leader
                        } else {
                            leader
                        };
                        progressed = true;
                        governor.note(FaultSite::FraigMerge);
                    }
                    SweepOutcome::Refuted { pattern } => {
                        stats.refuted += 1;
                        patterns.push(pattern);
                        progressed = true;
                    }
                    SweepOutcome::Unknown => {
                        stats.unknown += 1;
                    }
                }
                if governor.is_cancelled() {
                    halted = true;
                    stats.interrupted = true;
                    break;
                }
            }
            if report.interrupted && !halted {
                halted = true;
                stats.interrupted = true;
            }
            if halted {
                break;
            }
        }

        // Refine: fold the committed counterexample patterns into every
        // signature, in commit order.
        for pattern in &patterns {
            stats.cex_patterns += 1;
            stats.sim_patterns += 1;
            let values = eval_combinational(&g1, pattern);
            for (n, &value) in values.iter().enumerate() {
                let word = &mut sig[n * w];
                *word = (*word << 1) | value as u64;
            }
        }
        if !progressed {
            break;
        }
    }

    // Substitution rebuild (merges landed after fanouts were built),
    // then dead-strip into a compacted graph — as the classic pass's
    // retry path.
    let resolved: Vec<Bit> = map1.iter().map(|&b| chase(&repr, b)).collect();
    let (live, pre) = if stats.merges > 0 {
        let mut g3 = Aig::new();
        let mut map3: Vec<Bit> = Vec::with_capacity(g1.num_nodes());
        for (id, node) in g1.iter() {
            let rep = chase(&repr, Bit::new(id, false));
            let mapped = if rep.node() != id {
                apply(&map3, rep)
            } else {
                match node {
                    Node::Const => Aig::FALSE,
                    Node::Input(_) => g3.new_input(),
                    Node::And(a, b) => {
                        let ra = apply(&map3, chase(&repr, a));
                        let rb = apply(&map3, chase(&repr, b));
                        g3.and(ra, rb)
                    }
                }
            };
            map3.push(mapped);
        }
        let pre: Vec<Bit> = resolved.iter().map(|&b| apply(&map3, b)).collect();
        (g3, pre)
    } else {
        (g1, resolved)
    };
    let root_nodes: Vec<NodeId> = roots.iter().map(|&r| apply(&pre, r).node()).collect();
    let (g2, map2) = live.compacted(&root_nodes);
    let map: Vec<Bit> = pre.iter().map(|&b| apply(&map2, b)).collect();
    stats.ands_after = g2.num_ands();
    FraigResult {
        aig: g2,
        stats,
        map,
    }
}

/// One candidate-class job: checks each member against the class leader
/// with a private oracle, up to `budget` checks. Pure function of its
/// arguments — no shared mutable state — which is what makes the
/// barrier commit order the only thing that matters for determinism.
fn sweep_class(
    g: &Aig,
    class: &[Bit],
    budget: u64,
    config: &FraigConfig,
    job_gov: &ResourceGovernor,
) -> ClassReport {
    let mut oracle = EquivOracle::new();
    oracle.set_governor(job_gov.clone());
    let mut report = ClassReport::default();
    let leader = class[0];
    let mut cex_local = 0u64;
    for (checks, &member) in class[1..].iter().enumerate() {
        if checks as u64 >= budget {
            break;
        }
        if job_gov.poll().is_some() {
            report.interrupted = true;
            break;
        }
        let la = encode_cone(g, &mut oracle, member);
        let lb = encode_cone(g, &mut oracle, leader);
        match oracle.prove_equiv(la, lb, config.sat_conflicts) {
            Some(true) => report.checks.push(SweepOutcome::Proved { member, leader }),
            Some(false) => {
                // Distinguishing pattern: model values where encoded,
                // deterministic fill elsewhere — salted by the class
                // leader and the local counterexample index so the
                // pattern is a pure function of the job, not of any
                // global counter a sibling job could race on.
                let salt = (leader.node().index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ cex_local.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                cex_local += 1;
                let mut pattern = vec![false; g.num_inputs()];
                for (id, node) in g.iter() {
                    if let Node::Input(i) = node {
                        let modeled = oracle.lit(id.index()).and_then(|l| oracle.model_lit(l));
                        pattern[i as usize] = modeled.unwrap_or_else(|| {
                            mix(config.seed ^ salt ^ id.index() as u64) & 1 == 1
                        });
                    }
                }
                report.checks.push(SweepOutcome::Refuted { pattern });
            }
            None => report.checks.push(SweepOutcome::Unknown),
        }
    }
    report
}

/// [`fraig_design_governed`] on the batched class-parallel pass: applies
/// [`fraig_aig_pooled`] to a whole design in place. Same interface
/// contract as [`fraig_design`]; the runner decides the parallelism and
/// the result is identical for every worker count.
pub fn fraig_design_pooled(
    design: &mut Design,
    config: &FraigConfig,
    governor: &ResourceGovernor,
    runner: &dyn SweepRunner,
) -> FraigStats {
    if design.check().is_err() {
        return FraigStats::default();
    }
    let roots = design.reduction_roots();
    let FraigResult { aig, stats, map } =
        fraig_aig_pooled(&design.aig, &roots, config, governor, runner);
    design.replace_aig(aig, &mut |b| apply(&map, b));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{LatchInit, MemInit};
    use crate::sim::{eval_combinational_words, Simulator};
    use crate::word::Word;

    #[test]
    fn merges_absorbed_variants() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        // Two absorbed rebuilds of x, structurally distinct from it and
        // from each other.
        let left = g.and(a, x);
        let right = g.and(x, b);
        let r = fraig_aig(&g, &[x, left, right], &FraigConfig::default());
        assert_eq!(r.map_bit(x), r.map_bit(left));
        assert_eq!(r.map_bit(x), r.map_bit(right));
        assert_eq!(r.aig.num_ands(), 1);
        assert_eq!(r.stats.merges, 2);
    }

    #[test]
    fn detects_constant_cones() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        // (a ∧ b) ∧ (a ∧ ¬b) ≡ false, structurally non-obvious.
        let x = g.and(a, b);
        let y = g.and(a, !b);
        let z = g.and(x, y);
        let r = fraig_aig(&g, &[z], &FraigConfig::default());
        assert_eq!(r.map_bit(z), Aig::FALSE);
        assert_eq!(r.stats.const_merges, 1);
        assert_eq!(r.aig.num_ands(), 0, "the whole cone dead-strips");
    }

    /// A real counterexample must block the merge: a deep AND chain's
    /// signature goes all-zero under random patterns (a depth-`k` node is
    /// one with probability `2^-k` per pattern), putting its tail in the
    /// constant class — but no node of the chain is constant, so every
    /// candidate must be SAT-refuted and the distinguishing pattern folded
    /// back into the signatures, never merged.
    #[test]
    fn never_merges_across_a_real_counterexample() {
        let mut g = Aig::new();
        let inputs: Vec<Bit> = (0..16).map(|_| g.new_input()).collect();
        let mut acc = Aig::TRUE;
        for &i in &inputs {
            acc = g.and(acc, i);
        }
        let r = fraig_aig(&g, &[acc], &FraigConfig::default());
        assert_ne!(r.map_bit(acc), Aig::FALSE, "not constant");
        assert_eq!(r.aig.num_ands(), 15, "chain preserved");
        assert!(r.stats.refuted >= 1, "candidates were SAT-refuted");
        assert!(r.stats.cex_patterns >= 1, "the models refined signatures");
        assert_eq!(r.stats.merges, 0);
    }

    /// After a refutation the distinguishing pattern becomes part of the
    /// signatures: a second structurally distinct all-ones detector joins
    /// a refined class and is separated without exhausting checks.
    #[test]
    fn cex_patterns_refine_future_classes() {
        let mut g = Aig::new();
        let inputs: Vec<Bit> = (0..6).map(|_| g.new_input()).collect();
        let mut left = Aig::TRUE;
        for &i in &inputs {
            left = g.and(left, i);
        }
        // Same function, opposite association order.
        let mut right = Aig::TRUE;
        for &i in inputs.iter().rev() {
            right = g.and(right, i);
        }
        let r = fraig_aig(&g, &[left, right], &FraigConfig::default());
        assert_eq!(
            r.map_bit(left),
            r.map_bit(right),
            "equivalent chains must merge"
        );
        assert!(r.stats.merges >= 1);
    }

    #[test]
    fn signatures_match_bit_parallel_simulation() {
        // The incremental signatures must agree with a from-scratch
        // word-parallel evaluation of the reduced graph.
        let config = FraigConfig::default();
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let x = g.and(a, b);
        let y = g.and(x, !c);
        let r = fraig_aig(&g, &[y], &config);
        let w = config.sim_words;
        let inputs: Vec<u64> = (0..r.aig.num_inputs())
            .flat_map(|i| (0..w).map(move |k| mix(config.seed ^ mix((i as u64) << 8 | k as u64))))
            .collect();
        let values = eval_combinational_words(&r.aig, &inputs, w);
        // Sanity: the root's value is the AND of its cone under every word.
        let yb = r.map_bit(y);
        let base = yb.node().index() * w;
        for k in 0..w {
            let va = inputs[k];
            let vb = inputs[w + k];
            let vc = inputs[2 * w + k];
            let expect = va & vb & !vc;
            let got = if yb.is_inverted() {
                !values[base + k]
            } else {
                values[base + k]
            };
            assert_eq!(got, expect, "word {k}");
        }
    }

    #[test]
    fn check_cap_degrades_to_structural_reduction() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, x);
        let r = fraig_aig(
            &g,
            &[x, y],
            &FraigConfig {
                max_checks: 0,
                ..FraigConfig::default()
            },
        );
        assert_eq!(r.stats.sat_checks, 0);
        assert_ne!(r.map_bit(x), r.map_bit(y), "no proof, no merge");
        assert_eq!(r.aig.num_ands(), 2);
    }

    /// Pin the bucket-cap counter: with `max_bucket: 1` and no SAT budget,
    /// every signature-equal node after the first is refused by its class
    /// and must be counted, not silently skipped.
    #[test]
    fn bucket_cap_truncations_are_counted() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        // Two absorbed rebuilds of x: same function, same signature.
        let left = g.and(a, x);
        let right = g.and(x, b);
        let config = FraigConfig {
            max_bucket: 1,
            max_checks: 0,
            ..FraigConfig::default()
        };
        let r = fraig_aig(&g, &[x, left, right], &config);
        assert_eq!(r.stats.merges, 0, "no checks, no merges");
        assert_eq!(
            r.stats.buckets_truncated, 2,
            "left and right both hit the full class"
        );
        // An uncapped run of the same graph records no truncation.
        let r = fraig_aig(&g, &[x, left, right], &FraigConfig::default());
        assert_eq!(r.stats.buckets_truncated, 0);
    }

    /// Satellite: cones refused by a full class are re-offered after the
    /// first pass once merges have landed — and a late merge propagates
    /// through already-built fanouts via the substitution rebuild.
    #[test]
    fn truncated_cones_are_retried_after_merges() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let d = g.new_input();
        let e = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, x); // ≡ x, costs check 1
        let z = g.and(x, b); // ≡ x, costs check 2 — budget now spent
        let u = g.and(c, d);
        let v = g.and(c, u); // ≡ u, but no checks left: truncated
        let t = g.and(v, e); // fanout of the truncated cone
        let config = FraigConfig {
            max_bucket: 1,
            max_checks: 2,
            ..FraigConfig::default()
        };
        let r = fraig_aig(&g, &[x, y, z, u, v, t], &config);
        assert_eq!(r.stats.merges, 3);
        assert_eq!(r.stats.buckets_truncated, 1, "v hit u's full class");
        assert_eq!(r.stats.truncated_retried, 1);
        assert_eq!(r.stats.retry_merges, 1, "the retry pass proved v ≡ u");
        assert_eq!(r.map_bit(v), r.map_bit(u));
        assert_eq!(r.map_bit(y), r.map_bit(x));
        // The substitution rebuild redirects t's fanin to u's node and
        // dead-strips v's cone: exactly x, u, t survive.
        assert_eq!(r.aig.num_ands(), 3);
    }

    /// A cancelled governor degrades the pass to pure structural
    /// reduction: no SAT work at all, but a sound, well-formed result.
    #[test]
    fn cancelled_governor_degrades_to_structural_reduction() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, x);
        let governor = ResourceGovernor::unlimited();
        governor.cancel();
        let r = fraig_aig_governed(&g, &[x, y], &FraigConfig::default(), &governor);
        assert!(r.stats.interrupted);
        assert_eq!(r.stats.sat_checks, 0, "no SAT work under cancellation");
        assert_eq!(r.stats.merges, 0);
        assert_ne!(r.map_bit(x), r.map_bit(y), "no proof, no merge");
        assert_eq!(r.aig.num_ands(), 2);
    }

    /// The deterministic fault injector stops the pass right after the
    /// Nth equivalence check: everything proved before the trip stays
    /// merged, everything after degrades structurally.
    #[test]
    fn fault_injection_halts_after_nth_fraig_check() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let d = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, x); // check 1: proves and merges
        let u = g.and(c, d);
        let v = g.and(c, u); // check 2: proves, then the fault trips
        let w = g.and(x, b); // would be check 3 — never issued
        let governor = ResourceGovernor::unlimited().with_fault(FaultSite::FraigCheck, 2);
        let r = fraig_aig_governed(&g, &[x, y, u, v, w], &FraigConfig::default(), &governor);
        assert_eq!(r.stats.sat_checks, 2, "halted right after the 2nd check");
        assert_eq!(r.stats.merges, 2, "both completed checks proved");
        assert!(r.stats.interrupted);
        assert_eq!(r.map_bit(x), r.map_bit(y));
        assert_eq!(r.map_bit(u), r.map_bit(v));
        assert_ne!(r.map_bit(w), r.map_bit(x), "post-trip cone left unmerged");
    }

    #[test]
    fn design_rewrite_preserves_cycle_semantics() {
        // A memory-backed design: fraig it and co-simulate against the
        // original for many cycles.
        let mut d = Design::new();
        let mem = d.add_memory("m", 3, 4, MemInit::Zero);
        let ptr = d.new_latch_word("ptr", 3, LatchInit::Zero);
        let next = d.aig.inc(&ptr);
        d.set_next_word(&ptr, &next);
        let wd = d.new_input_word("wd", 4);
        let we = d.new_input("we");
        d.add_write_port(mem, ptr.clone(), we, wd.clone());
        let rd = d.add_read_port(mem, ptr.clone(), Aig::TRUE);
        // Redundant logic: the comparator built two structurally distinct
        // ways (XNOR-tree vs negated XOR-reduction).
        let hit1 = d.aig.eq_word(&rd, &wd);
        let diff = d.aig.word_xor(&rd, &wd);
        let any_diff = d.aig.redor(&diff);
        let both = d.aig.and(hit1, !any_diff);
        d.add_property("p", both);
        d.check().expect("valid");

        let mut fraiged = d.clone();
        let stats = fraig_design(&mut fraiged, &FraigConfig::default());
        assert!(stats.ands_after <= stats.ands_before);
        fraiged.check().expect("still well-formed");
        assert_eq!(fraiged.num_latches(), d.num_latches());
        assert_eq!(fraiged.free_inputs().len(), d.free_inputs().len());

        let mut sim_a = Simulator::new(&d);
        let mut sim_b = Simulator::new(&fraiged);
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for cycle in 0..40 {
            state = mix(state);
            let inputs: Vec<bool> = (0..d.free_inputs().len())
                .map(|i| (state >> i) & 1 == 1)
                .collect();
            let ra = sim_a.step(&inputs);
            let rb = sim_b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "cycle {cycle}");
            let pa = Word(d.latches().iter().map(|l| l.output).collect());
            let pb = Word(fraiged.latches().iter().map(|l| l.output).collect());
            assert_eq!(sim_a.state_value(&pa), sim_b.state_value(&pb));
        }
    }

    #[test]
    fn malformed_design_is_left_alone() {
        let mut d = Design::new();
        d.new_latch("dangling", LatchInit::Zero);
        let gates = d.num_gates();
        let stats = fraig_design(&mut d, &FraigConfig::default());
        assert_eq!(stats, FraigStats::default());
        assert_eq!(d.num_gates(), gates);
    }

    #[test]
    fn pooled_sweep_merges_absorbed_variants() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let left = g.and(a, x);
        let right = g.and(x, b);
        let r = fraig_aig_pooled(
            &g,
            &[x, left, right],
            &FraigConfig::default(),
            &ResourceGovernor::unlimited(),
            &SequentialRunner,
        );
        assert_eq!(r.map_bit(x), r.map_bit(left));
        assert_eq!(r.map_bit(x), r.map_bit(right));
        assert_eq!(r.aig.num_ands(), 1);
        assert_eq!(r.stats.merges, 2);
    }

    #[test]
    fn pooled_sweep_detects_constant_cones() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, !b);
        let z = g.and(x, y);
        let r = fraig_aig_pooled(
            &g,
            &[z],
            &FraigConfig::default(),
            &ResourceGovernor::unlimited(),
            &SequentialRunner,
        );
        assert_eq!(r.map_bit(z), Aig::FALSE);
        assert!(r.stats.const_merges >= 1);
        assert_eq!(r.aig.num_ands(), 0);
    }

    #[test]
    fn pooled_sweep_never_merges_across_a_real_counterexample() {
        let mut g = Aig::new();
        let inputs: Vec<Bit> = (0..16).map(|_| g.new_input()).collect();
        let mut acc = Aig::TRUE;
        for &i in &inputs {
            acc = g.and(acc, i);
        }
        let r = fraig_aig_pooled(
            &g,
            &[acc],
            &FraigConfig::default(),
            &ResourceGovernor::unlimited(),
            &SequentialRunner,
        );
        assert_ne!(r.map_bit(acc), Aig::FALSE);
        assert_eq!(r.aig.num_ands(), 15);
        assert!(r.stats.refuted >= 1);
        assert_eq!(r.stats.merges, 0);
    }

    #[test]
    fn pooled_design_preserves_cycle_semantics() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 3, 4, MemInit::Zero);
        let ptr = d.new_latch_word("ptr", 3, LatchInit::Zero);
        let next = d.aig.inc(&ptr);
        d.set_next_word(&ptr, &next);
        let wd = d.new_input_word("wd", 4);
        let we = d.new_input("we");
        d.add_write_port(mem, ptr.clone(), we, wd.clone());
        let rd = d.add_read_port(mem, ptr.clone(), Aig::TRUE);
        let hit1 = d.aig.eq_word(&rd, &wd);
        let diff = d.aig.word_xor(&rd, &wd);
        let any_diff = d.aig.redor(&diff);
        let both = d.aig.and(hit1, !any_diff);
        d.add_property("p", both);
        d.check().expect("valid");

        let mut pooled = d.clone();
        let stats = fraig_design_pooled(
            &mut pooled,
            &FraigConfig::default(),
            &ResourceGovernor::unlimited(),
            &SequentialRunner,
        );
        assert!(stats.ands_after <= stats.ands_before);
        pooled.check().expect("still well-formed");

        let mut sim_a = Simulator::new(&d);
        let mut sim_b = Simulator::new(&pooled);
        let mut state = 0x0F1E_2D3C_4B5A_6978u64;
        for cycle in 0..40 {
            state = mix(state);
            let inputs: Vec<bool> = (0..d.free_inputs().len())
                .map(|i| (state >> i) & 1 == 1)
                .collect();
            let ra = sim_a.step(&inputs);
            let rb = sim_b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "cycle {cycle}");
        }
    }

    /// The pooled sweep's determinism contract under fault injection:
    /// the armed fault is replayed at the barrier, so two runs trip at
    /// the same committed check and produce identical stats and graphs.
    #[test]
    fn pooled_fault_injection_is_deterministic() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let d = g.new_input();
        let x = g.and(a, b);
        let y = g.and(a, x);
        let u = g.and(c, d);
        let v = g.and(c, u);
        let w = g.and(x, b);
        let roots = [x, y, u, v, w];
        let run = || {
            let governor = ResourceGovernor::unlimited().with_fault(FaultSite::FraigCheck, 2);
            fraig_aig_pooled(
                &g,
                &roots,
                &FraigConfig::default(),
                &governor,
                &SequentialRunner,
            )
        };
        let r1 = run();
        let r2 = run();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.stats.sat_checks, 2, "committed exactly up to the trip");
        assert!(r1.stats.interrupted);
        assert_eq!(r1.aig.num_ands(), r2.aig.num_ands());
        for &r in &roots {
            assert_eq!(r1.map_bit(r), r2.map_bit(r));
        }
    }

    /// The pooled rounds path has no explicit retry pass: a cone refused
    /// by a full class stays a live representative and is re-bucketed in
    /// the next round, where the merges just committed have shrunk the
    /// class. Pin that a bucket-cap-truncated cone still merges — one
    /// round later.
    #[test]
    fn pooled_truncated_cones_merge_in_a_later_round() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let left = g.and(a, x); // ≡ x, same signature
        let right = g.and(x, b); // ≡ x, refused by the capped class
        let config = FraigConfig {
            max_bucket: 2,
            ..FraigConfig::default()
        };
        let r = fraig_aig_pooled(
            &g,
            &[x, left, right],
            &config,
            &ResourceGovernor::unlimited(),
            &SequentialRunner,
        );
        assert_eq!(
            r.stats.buckets_truncated, 1,
            "round 1 capped x's class at two members"
        );
        assert_eq!(r.stats.merges, 2, "the re-offered cone merged in round 2");
        assert_eq!(r.map_bit(left), r.map_bit(x));
        assert_eq!(r.map_bit(right), r.map_bit(x));
        assert_eq!(r.aig.num_ands(), 1);
    }
}
