//! Cycle-accurate simulation of designs, including memory semantics.
//!
//! The simulator is the semantic ground truth of the whole stack: the EMM
//! constraints, the explicit memory expansion, and the BMC unroller are all
//! tested against it. It implements Section 2.3 of the paper exactly:
//!
//! * reads are combinational — `RD` is assigned in the same cycle the
//!   address is valid and `RE` is active;
//! * writes commit at the end of the cycle — newly written data is readable
//!   only from the next cycle on;
//! * when `RE` is inactive the read data is unconstrained (the simulator
//!   lets the caller choose via [`SimConfig::disabled_read_value`]);
//! * at most one write port may update a location per cycle (the paper's
//!   no-data-race assumption); violations are reported.

use std::collections::HashMap;

use crate::aig::{Aig, Node};
use crate::design::{Design, InputKind, MemInit, MemoryId};
use crate::word::Word;

/// Evaluates the combinational core of a raw [`Aig`] whose inputs are all
/// externally driven; `inputs[i]` drives input index `i`.
///
/// Returns a value for every node, indexed by node id. Used by tests and by
/// word-level helpers; full designs should use [`Simulator`].
///
/// # Panics
///
/// Panics if `inputs` is shorter than the number of AIG inputs.
pub fn eval_combinational(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let mut values = vec![false; aig.num_nodes()];
    for (id, node) in aig.iter() {
        values[id.index()] = match node {
            Node::Const => false,
            Node::Input(i) => inputs[i as usize],
            Node::And(a, b) => {
                a.apply(values[a.node().index()]) && b.apply(values[b.node().index()])
            }
        };
    }
    values
}

/// Evaluates the combinational core under `words` parallel 64-bit input
/// patterns per input: bit `p` of word `w` of every value is one coherent
/// assignment, so a single pass simulates `64 * words` patterns at once.
///
/// `inputs` is laid out flat: input `i` owns
/// `inputs[i * words .. (i + 1) * words]`. The result uses the same layout
/// over node ids. This is the bit-parallel workhorse behind the
/// [`fraig`](crate::fraig) pass's simulation signatures.
///
/// # Panics
///
/// Panics if `words` is zero or `inputs` is shorter than
/// `aig.num_inputs() * words`.
pub fn eval_combinational_words(aig: &Aig, inputs: &[u64], words: usize) -> Vec<u64> {
    assert!(words > 0, "at least one signature word");
    assert!(
        inputs.len() >= aig.num_inputs() * words,
        "need {} input words, got {}",
        aig.num_inputs() * words,
        inputs.len()
    );
    let mut values = vec![0u64; aig.num_nodes() * words];
    for (id, node) in aig.iter() {
        let base = id.index() * words;
        match node {
            Node::Const => {}
            Node::Input(i) => {
                let src = i as usize * words;
                values[base..base + words].copy_from_slice(&inputs[src..src + words]);
            }
            Node::And(a, b) => {
                let (na, nb) = (a.node().index() * words, b.node().index() * words);
                let (ia, ib) = (a.is_inverted(), b.is_inverted());
                for w in 0..words {
                    let va = values[na + w] ^ if ia { u64::MAX } else { 0 };
                    let vb = values[nb + w] ^ if ib { u64::MAX } else { 0 };
                    values[base + w] = va & vb;
                }
            }
        }
    }
    values
}

/// Configuration of a [`Simulator`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimConfig {
    /// Value returned on a read with `RE` inactive (models "unconstrained").
    pub disabled_read_value: u64,
    /// Panic on a same-cycle write/write race to one location (otherwise the
    /// race is recorded in [`StepReport::write_races`] and the
    /// higher-numbered port wins).
    pub panic_on_race: bool,
}

/// What happened during one simulated cycle.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// `bad` value of every property this cycle.
    pub property_bad: Vec<bool>,
    /// Environment constraint violations (constraint index).
    pub violated_constraints: Vec<usize>,
    /// Same-cycle write/write races: `(memory, address)`.
    pub write_races: Vec<(MemoryId, u64)>,
}

/// A cycle-accurate interpreter for a [`Design`].
///
/// Memories are stored sparsely; a location that has never been written
/// reads as the memory's initial value ([`MemInit::Zero`]) or as a value
/// seeded by the caller ([`Simulator::seed_memory`]) for
/// [`MemInit::Arbitrary`] memories (unseeded arbitrary locations read 0).
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    design: &'a Design,
    config: SimConfig,
    /// Current latch values, indexed by latch id.
    latch_state: Vec<bool>,
    /// Sparse memory contents.
    mem_state: Vec<HashMap<u64, u64>>,
    /// Node values from the most recent step.
    node_values: Vec<bool>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator in the design's initial state; latches with
    /// [`LatchInit::Free`](crate::design::LatchInit::Free) start at 0 unless
    /// overridden by [`Simulator::set_latch`].
    pub fn new(design: &'a Design) -> Simulator<'a> {
        Simulator::with_config(design, SimConfig::default())
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(design: &'a Design, config: SimConfig) -> Simulator<'a> {
        let latch_state = design
            .latches()
            .iter()
            .map(|l| matches!(l.init, crate::design::LatchInit::One))
            .collect();
        Simulator {
            design,
            config,
            latch_state,
            mem_state: vec![HashMap::new(); design.memories().len()],
            node_values: vec![false; design.aig.num_nodes()],
            cycle: 0,
        }
    }

    /// Cycles executed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Overrides the current value of a latch (used to install free initial
    /// values from a counterexample trace).
    pub fn set_latch(&mut self, latch: usize, value: bool) {
        self.latch_state[latch] = value;
    }

    /// Current value of a latch.
    pub fn latch(&self, latch: usize) -> bool {
        self.latch_state[latch]
    }

    /// Seeds a memory word (initial contents for arbitrary-init memories).
    pub fn seed_memory(&mut self, mem: MemoryId, addr: u64, value: u64) {
        let m = self.design.memory(mem);
        let mask = word_mask(m.data_width);
        self.mem_state[mem.0 as usize].insert(addr & word_mask(m.addr_width), value & mask);
    }

    /// Reads a memory word as the *next* cycle would see it.
    pub fn read_memory(&self, mem: MemoryId, addr: u64) -> u64 {
        let m = self.design.memory(mem);
        let addr = addr & word_mask(m.addr_width);
        match self.mem_state[mem.0 as usize].get(&addr) {
            Some(&v) => v,
            None => match m.init {
                MemInit::Zero => 0,
                MemInit::Arbitrary => 0,
            },
        }
    }

    /// Value of an arbitrary AIG edge after the most recent step.
    pub fn value(&self, bit: crate::aig::Bit) -> bool {
        bit.apply(self.node_values[bit.node().index()])
    }

    /// Value of a word after the most recent step.
    ///
    /// Latch-output bits evaluate to their **pre-step** values (the values
    /// the cycle computed with); for the post-step register state use
    /// [`Simulator::state_value`].
    pub fn word_value(&self, word: &Word) -> u64 {
        word.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| (self.value(b) as u64) << i)
            .sum()
    }

    /// Post-step value of a word of latch outputs (the current register
    /// state). Non-latch bits fall back to their most recent node values.
    pub fn state_value(&self, word: &Word) -> u64 {
        word.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let v = match self.design.input_kind_of(b) {
                    Some(InputKind::Latch(l)) => self.latch_state[l.0 as usize] ^ b.is_inverted(),
                    _ => self.value(b),
                };
                (v as u64) << i
            })
            .sum()
    }

    /// Executes one cycle with the given free-input values (indexed in
    /// free-input creation order).
    ///
    /// # Panics
    ///
    /// Panics if `free_inputs` is shorter than the design's free input
    /// count, or on a write race when [`SimConfig::panic_on_race`] is set.
    pub fn step(&mut self, free_inputs: &[bool]) -> StepReport {
        self.step_with_disabled_reads(free_inputs, &[])
    }

    /// Like [`Simulator::step`], but with explicit values for read ports
    /// whose enable is inactive this cycle: `disabled_reads[mem][port]`.
    ///
    /// In the paper's semantics a disabled read bus is *unconstrained*; a
    /// counterexample found by BMC may rely on a specific garbage value, and
    /// replaying it faithfully requires injecting that value here. An empty
    /// slice (or missing entry) falls back to
    /// [`SimConfig::disabled_read_value`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::step`].
    pub fn step_with_disabled_reads(
        &mut self,
        free_inputs: &[bool],
        disabled_reads: &[Vec<u64>],
    ) -> StepReport {
        let design = self.design;
        let aig = &design.aig;
        assert!(
            free_inputs.len() >= design.free_inputs().len(),
            "need {} free inputs, got {}",
            design.free_inputs().len(),
            free_inputs.len()
        );
        // Map dense input index -> free input position.
        let mut free_pos = vec![usize::MAX; design.num_inputs()];
        for (pos, &idx) in design.free_inputs().iter().enumerate() {
            free_pos[idx as usize] = pos;
        }
        // Forward pass in topological (id) order. Read-data pseudo-inputs
        // are resolved on the fly: their address/enable cones were built
        // before the port, so those nodes are already evaluated.
        for (id, node) in aig.iter() {
            let v = match node {
                Node::Const => false,
                Node::Input(i) => match design.input_kind(i as usize) {
                    InputKind::Free => free_inputs[free_pos[i as usize]],
                    InputKind::Latch(l) => self.latch_state[l.0 as usize],
                    InputKind::ReadData(mem, port, bit) => {
                        let m = design.memory(mem);
                        let rp = &m.read_ports[port as usize];
                        let en = rp.en.apply(self.node_values[rp.en.node().index()]);
                        let word = if en {
                            let addr = self.eval_word_now(&rp.addr);
                            self.read_memory(mem, addr)
                        } else {
                            disabled_reads
                                .get(mem.0 as usize)
                                .and_then(|ports| ports.get(port as usize))
                                .copied()
                                .unwrap_or(self.config.disabled_read_value)
                        };
                        (word >> bit) & 1 == 1
                    }
                },
                Node::And(a, b) => {
                    a.apply(self.node_values[a.node().index()])
                        && b.apply(self.node_values[b.node().index()])
                }
            };
            self.node_values[id.index()] = v;
        }
        // Evaluate report before state updates.
        let mut report = StepReport::default();
        for p in design.properties() {
            report.property_bad.push(self.value(p.bad));
        }
        for (i, &c) in design.constraints().iter().enumerate() {
            if !self.value(c) {
                report.violated_constraints.push(i);
            }
        }
        // Commit memory writes (visible next cycle); detect races.
        for (mi, m) in design.memories().iter().enumerate() {
            let mem_id = MemoryId(mi as u32);
            let mut written_this_cycle: HashMap<u64, usize> = HashMap::new();
            for (pi, wp) in m.write_ports.iter().enumerate() {
                if self.value(wp.en) {
                    let addr = self.word_value(&wp.addr);
                    let data = self.word_value(&wp.data);
                    if let Some(_prev) = written_this_cycle.insert(addr, pi) {
                        if self.config.panic_on_race {
                            panic!(
                                "write race on memory {} address {addr} at cycle {}",
                                m.name, self.cycle
                            );
                        }
                        report.write_races.push((mem_id, addr));
                    }
                    self.mem_state[mi].insert(addr, data);
                }
            }
        }
        // Advance latches.
        let next: Vec<bool> = design
            .latches()
            .iter()
            .map(|l| self.value(l.next.expect("checked design")))
            .collect();
        self.latch_state = next;
        self.cycle += 1;
        report
    }

    /// Evaluates a word whose cone has already been computed this pass.
    fn eval_word_now(&self, word: &Word) -> u64 {
        word.bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| (b.apply(self.node_values[b.node().index()]) as u64) << i)
            .sum()
    }
}

/// A counterexample/witness trace, replayable on the [`Simulator`].
///
/// Produced by the BMC engine from a SAT model; `validate` re-executes it on
/// the concrete semantics and confirms the property violation — the standard
/// sanity check that abstraction (EMM) did not manufacture a spurious trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Initial value of every latch (frame 0).
    pub initial_latches: Vec<bool>,
    /// Free-input values per frame, in free-input order.
    pub frames: Vec<Vec<bool>>,
    /// Initial memory contents implied by the trace: per memory, a list of
    /// `(address, word)` seeds.
    pub memory_seeds: Vec<Vec<(u64, u64)>>,
    /// Values observed on disabled read ports, `[frame][mem][port]`; empty
    /// when the trace never exercises a disabled read.
    pub disabled_reads: Vec<Vec<Vec<u64>>>,
    /// Index of the property this trace violates.
    pub property: usize,
}

impl Trace {
    /// Length of the trace in cycles.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Replays the trace; returns `Ok(())` if the property's `bad` condition
    /// holds in the final cycle and no environment constraint is violated.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence: a violated constraint
    /// mid-trace or the property not failing at the final frame.
    pub fn validate(&self, design: &Design) -> Result<(), String> {
        let mut sim = Simulator::new(design);
        for (l, &v) in self.initial_latches.iter().enumerate() {
            sim.set_latch(l, v);
        }
        for (mi, seeds) in self.memory_seeds.iter().enumerate() {
            for &(addr, word) in seeds {
                sim.seed_memory(MemoryId(mi as u32), addr, word);
            }
        }
        let empty: Vec<Vec<u64>> = Vec::new();
        let mut last: Option<StepReport> = None;
        for (k, frame) in self.frames.iter().enumerate() {
            let disabled = self.disabled_reads.get(k).unwrap_or(&empty);
            let report = sim.step_with_disabled_reads(frame, disabled);
            if !report.violated_constraints.is_empty() {
                return Err(format!(
                    "constraint {} violated at frame {k}",
                    report.violated_constraints[0]
                ));
            }
            last = Some(report);
        }
        match last {
            None => Err("empty trace".to_string()),
            Some(report) => {
                if report
                    .property_bad
                    .get(self.property)
                    .copied()
                    .unwrap_or(false)
                {
                    Ok(())
                } else {
                    Err(format!(
                        "property {} not violated at final frame {}",
                        self.property,
                        self.frames.len() - 1
                    ))
                }
            }
        }
    }
}

fn word_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{Design, LatchInit, MemInit};

    /// A 4-bit counter that wraps; property: counter != 9.
    fn counter_design() -> Design {
        let mut d = Design::new();
        let count = d.new_latch_word("count", 4, LatchInit::Zero);
        let next = d.aig.inc(&count);
        d.set_next_word(&count, &next);
        let bad = d.aig.eq_const(&count, 9);
        d.add_property("ne9", bad);
        d.check().expect("valid");
        d
    }

    #[test]
    fn counter_counts() {
        let d = counter_design();
        let mut sim = Simulator::new(&d);
        for expect in 0..20u64 {
            let report = sim.step(&[]);
            assert_eq!(report.property_bad[0], expect % 16 == 9, "cycle {expect}");
        }
    }

    /// Write then read the same address: data visible one cycle later.
    #[test]
    fn memory_write_read_latency() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 4, 8, MemInit::Zero);
        let waddr = d.new_input_word("waddr", 4);
        let wdata = d.new_input_word("wdata", 8);
        let we = d.new_input("we");
        d.add_write_port(mem, waddr, we, wdata);
        let raddr = d.new_input_word("raddr", 4);
        let re = d.new_input("re");
        let rd = d.add_read_port(mem, raddr, re);
        d.check().expect("valid");

        let mut sim = Simulator::new(&d);
        // Cycle 0: write 0xAB to address 3, read address 3 (same cycle).
        let mut inputs = Vec::new();
        inputs.extend((0..4).map(|i| (3u64 >> i) & 1 == 1)); // waddr
        inputs.extend((0..8).map(|i| (0xABu64 >> i) & 1 == 1)); // wdata
        inputs.push(true); // we
        inputs.extend((0..4).map(|i| (3u64 >> i) & 1 == 1)); // raddr
        inputs.push(true); // re
        sim.step(&inputs);
        assert_eq!(sim.word_value(&rd), 0, "same-cycle read sees old contents");
        // Cycle 1: no write, read address 3.
        let mut inputs2 = vec![false; inputs.len()];
        for i in 0..4 {
            inputs2[13 + i] = (3u64 >> i) & 1 == 1;
        }
        inputs2[17] = true; // re
        sim.step(&inputs2);
        assert_eq!(sim.word_value(&rd), 0xAB, "next-cycle read sees the write");
        // Disabled read returns the configured value.
        inputs2[17] = false;
        sim.step(&inputs2);
        assert_eq!(sim.word_value(&rd), 0);
    }

    #[test]
    fn race_detection() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 4, MemInit::Zero);
        let addr = d.new_input_word("addr", 2);
        let data = d.new_input_word("data", 4);
        let we = d.new_input("we");
        d.add_write_port(mem, addr.clone(), we, data.clone());
        d.add_write_port(mem, addr, we, data);
        d.check().expect("valid");
        let mut sim = Simulator::new(&d);
        let mut inputs = vec![false; 7];
        inputs[6] = true; // we for both ports, same address -> race
        let report = sim.step(&inputs);
        assert_eq!(report.write_races.len(), 1);
    }

    #[test]
    fn arbitrary_memory_seeding() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 4, 8, MemInit::Arbitrary);
        let raddr = d.new_input_word("raddr", 4);
        let re = d.new_input("re");
        let rd = d.add_read_port(mem, raddr, re);
        d.check().expect("valid");
        let mut sim = Simulator::new(&d);
        sim.seed_memory(mem, 5, 0x5A);
        let mut inputs: Vec<bool> = (0..4).map(|i| (5u64 >> i) & 1 == 1).collect();
        inputs.push(true);
        sim.step(&inputs);
        assert_eq!(sim.word_value(&rd), 0x5A);
    }

    #[test]
    fn trace_validation_detects_violation() {
        let d = counter_design();
        // A valid counterexample: 10 steps reach count == 9.
        let trace = Trace {
            initial_latches: vec![false; 4],
            frames: vec![vec![]; 10],
            memory_seeds: vec![],
            disabled_reads: vec![],
            property: 0,
        };
        assert!(trace.validate(&d).is_ok());
        // Too short: property not yet violated.
        let short = Trace {
            initial_latches: vec![false; 4],
            frames: vec![vec![]; 5],
            memory_seeds: vec![],
            disabled_reads: vec![],
            property: 0,
        };
        assert!(short.validate(&d).is_err());
    }

    #[test]
    fn free_init_latch_override() {
        let mut d = Design::new();
        let w = d.new_latch_word("x", 3, LatchInit::Free);
        let same = w.clone();
        d.set_next_word(&w, &same);
        let bad = d.aig.eq_const(&w, 6);
        d.add_property("x_ne_6", bad);
        let trace = Trace {
            initial_latches: vec![false, true, true], // 6 little-endian
            frames: vec![vec![]],
            memory_seeds: vec![],
            disabled_reads: vec![],
            property: 0,
        };
        assert!(trace.validate(&d).is_ok());
    }
}
