//! Word-level (bit-vector) operations over the AIG.
//!
//! A [`Word`] is a little-endian vector of [`Bit`]s. The operations here are
//! the vocabulary the case-study designs are written in: arithmetic,
//! comparisons, muxes, shifts — everything lowered immediately to AND gates.

use crate::aig::{Aig, Bit};

/// A little-endian bit vector over an [`Aig`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Word(pub Vec<Bit>);

impl Word {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The bits, least significant first.
    pub fn bits(&self) -> &[Bit] {
        &self.0
    }

    /// Single bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> Bit {
        self.0[i]
    }

    /// Wraps a single bit as a 1-wide word.
    pub fn from_bit(bit: Bit) -> Word {
        Word(vec![bit])
    }
}

impl From<Vec<Bit>> for Word {
    fn from(bits: Vec<Bit>) -> Word {
        Word(bits)
    }
}

impl Aig {
    /// A constant word of `width` bits holding `value` (truncated).
    pub fn const_word(&mut self, value: u64, width: usize) -> Word {
        Word(
            (0..width)
                .map(|i| Aig::constant(width > i && (value >> i) & 1 == 1))
                .collect(),
        )
    }

    /// A word of fresh inputs.
    pub fn input_word(&mut self, width: usize) -> Word {
        Word((0..width).map(|_| self.new_input()).collect())
    }

    /// Bitwise AND. Panics if widths differ.
    pub fn word_and(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width());
        Word(
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| self.and(x, y))
                .collect(),
        )
    }

    /// Bitwise OR. Panics if widths differ.
    pub fn word_or(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width());
        Word(a.0.iter().zip(&b.0).map(|(&x, &y)| self.or(x, y)).collect())
    }

    /// Bitwise XOR. Panics if widths differ.
    pub fn word_xor(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width());
        Word(
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| self.xor(x, y))
                .collect(),
        )
    }

    /// Bitwise NOT.
    pub fn word_not(&mut self, a: &Word) -> Word {
        Word(a.0.iter().map(|&x| !x).collect())
    }

    /// Ripple-carry addition (wrapping). Panics if widths differ.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.width(), b.width());
        let mut carry = Aig::FALSE;
        let mut out = Vec::with_capacity(a.width());
        for (&x, &y) in a.0.iter().zip(&b.0) {
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
        }
        Word(out)
    }

    /// Wrapping subtraction `a - b`.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        // a - b = a + !b + 1
        let nb = self.word_not(b);
        let mut carry = Aig::TRUE;
        let mut out = Vec::with_capacity(a.width());
        assert_eq!(a.width(), b.width());
        for (&x, &y) in a.0.iter().zip(&nb.0) {
            let xy = self.xor(x, y);
            out.push(self.xor(xy, carry));
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
        }
        Word(out)
    }

    /// Increment by one (wrapping).
    pub fn inc(&mut self, a: &Word) -> Word {
        let one = self.const_word(1, a.width());
        self.add(a, &one)
    }

    /// Decrement by one (wrapping).
    pub fn dec(&mut self, a: &Word) -> Word {
        let one = self.const_word(1, a.width());
        self.sub(a, &one)
    }

    /// Equality over words. Panics if widths differ.
    pub fn eq_word(&mut self, a: &Word, b: &Word) -> Bit {
        assert_eq!(a.width(), b.width());
        let bits: Vec<Bit> =
            a.0.iter()
                .zip(&b.0)
                .map(|(&x, &y)| self.xnor(x, y))
                .collect();
        self.and_many(&bits)
    }

    /// Unsigned less-than `a < b`.
    pub fn ult(&mut self, a: &Word, b: &Word) -> Bit {
        assert_eq!(a.width(), b.width());
        // Iterate from LSB: lt = (!x & y) | (x==y) & lt_prev
        let mut lt = Aig::FALSE;
        for (&x, &y) in a.0.iter().zip(&b.0) {
            let strict = self.and(!x, y);
            let eq = self.xnor(x, y);
            let keep = self.and(eq, lt);
            lt = self.or(strict, keep);
        }
        lt
    }

    /// Unsigned less-or-equal `a <= b`.
    pub fn ule(&mut self, a: &Word, b: &Word) -> Bit {
        let gt = self.ult(b, a);
        !gt
    }

    /// Unsigned greater-than `a > b`.
    pub fn ugt(&mut self, a: &Word, b: &Word) -> Bit {
        self.ult(b, a)
    }

    /// Word-level multiplexer `if sel { t } else { e }`. Panics if widths differ.
    pub fn mux_word(&mut self, sel: Bit, t: &Word, e: &Word) -> Word {
        assert_eq!(t.width(), e.width());
        Word(
            t.0.iter()
                .zip(&e.0)
                .map(|(&x, &y)| self.mux(sel, x, y))
                .collect(),
        )
    }

    /// Equality against a constant.
    pub fn eq_const(&mut self, a: &Word, value: u64) -> Bit {
        let c = self.const_word(value, a.width());
        self.eq_word(a, &c)
    }

    /// Zero-extends or truncates to `width`.
    pub fn resize(&mut self, a: &Word, width: usize) -> Word {
        let mut bits = a.0.clone();
        bits.resize(width, Aig::FALSE);
        bits.truncate(width);
        Word(bits)
    }

    /// Logical shift left by a constant amount.
    pub fn shl_const(&mut self, a: &Word, amount: usize) -> Word {
        let w = a.width();
        let mut bits = vec![Aig::FALSE; amount.min(w)];
        bits.extend_from_slice(&a.0[..w - amount.min(w)]);
        Word(bits)
    }

    /// Logical shift right by a constant amount.
    pub fn shr_const(&mut self, a: &Word, amount: usize) -> Word {
        let w = a.width();
        let mut bits: Vec<Bit> = a.0[amount.min(w)..].to_vec();
        bits.resize(w, Aig::FALSE);
        Word(bits)
    }

    /// Reduction OR over all bits of a word.
    pub fn redor(&mut self, a: &Word) -> Bit {
        self.or_many(&a.0)
    }

    /// Reduction AND over all bits of a word.
    pub fn redand(&mut self, a: &Word) -> Bit {
        self.and_many(&a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_combinational;

    /// Evaluates a word under concrete input values.
    fn eval_word(g: &Aig, w: &Word, inputs: &[bool]) -> u64 {
        let values = eval_combinational(g, inputs);
        w.0.iter()
            .enumerate()
            .map(|(i, &b)| (b.apply(values[b.node().index()]) as u64) << i)
            .sum()
    }

    fn check_binop(
        op: impl Fn(&mut Aig, &Word, &Word) -> Word,
        reference: impl Fn(u64, u64) -> u64,
        width: usize,
    ) {
        let mut g = Aig::new();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let out = op(&mut g, &a, &b);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        for (x, y) in [
            (0u64, 0u64),
            (1, 1),
            (3, 5),
            (7, 7),
            (6, 1),
            (5, 2),
            (7, 1),
            (2, 7),
        ] {
            let (x, y) = (x & mask, y & mask);
            let mut inputs = Vec::new();
            for i in 0..width {
                inputs.push((x >> i) & 1 == 1);
            }
            for i in 0..width {
                inputs.push((y >> i) & 1 == 1);
            }
            assert_eq!(
                eval_word(&g, &out, &inputs),
                reference(x, y) & mask,
                "op({x},{y}) width {width}"
            );
        }
    }

    #[test]
    fn add_matches_reference() {
        check_binop(|g, a, b| g.add(a, b), |x, y| x.wrapping_add(y), 3);
        check_binop(|g, a, b| g.add(a, b), |x, y| x.wrapping_add(y), 8);
    }

    #[test]
    fn sub_matches_reference() {
        check_binop(|g, a, b| g.sub(a, b), |x, y| x.wrapping_sub(y), 3);
        check_binop(|g, a, b| g.sub(a, b), |x, y| x.wrapping_sub(y), 8);
    }

    #[test]
    fn bitwise_match_reference() {
        check_binop(|g, a, b| g.word_and(a, b), |x, y| x & y, 4);
        check_binop(|g, a, b| g.word_or(a, b), |x, y| x | y, 4);
        check_binop(|g, a, b| g.word_xor(a, b), |x, y| x ^ y, 4);
    }

    #[test]
    fn comparisons_match_reference() {
        check_binop(
            |g, a, b| {
                let c = g.ult(a, b);
                Word::from_bit(c)
            },
            |x, y| (x < y) as u64,
            3,
        );
        check_binop(
            |g, a, b| {
                let c = g.ule(a, b);
                Word::from_bit(c)
            },
            |x, y| (x <= y) as u64,
            3,
        );
        check_binop(
            |g, a, b| {
                let c = g.eq_word(a, b);
                Word::from_bit(c)
            },
            |x, y| (x == y) as u64,
            3,
        );
    }

    #[test]
    fn const_word_roundtrip() {
        let mut g = Aig::new();
        let w = g.const_word(0b1011, 6);
        assert_eq!(eval_word(&g, &w, &[]), 0b1011);
        let w2 = g.const_word(0xFF, 4);
        assert_eq!(eval_word(&g, &w2, &[]), 0xF, "truncation");
    }

    #[test]
    fn shifts_match_reference() {
        let mut g = Aig::new();
        let a = g.input_word(6);
        let l = g.shl_const(&a, 2);
        let r = g.shr_const(&a, 3);
        let x = 0b101101u64;
        let inputs: Vec<bool> = (0..6).map(|i| (x >> i) & 1 == 1).collect();
        assert_eq!(eval_word(&g, &l, &inputs), (x << 2) & 0b111111);
        assert_eq!(eval_word(&g, &r, &inputs), x >> 3);
    }

    #[test]
    fn inc_dec() {
        let mut g = Aig::new();
        let a = g.input_word(3);
        let i = g.inc(&a);
        let d = g.dec(&a);
        for x in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|k| (x >> k) & 1 == 1).collect();
            assert_eq!(eval_word(&g, &i, &inputs), (x + 1) & 7);
            assert_eq!(eval_word(&g, &d, &inputs), x.wrapping_sub(1) & 7);
        }
    }

    #[test]
    fn mux_word_selects() {
        let mut g = Aig::new();
        let s = g.new_input();
        let a = g.input_word(4);
        let b = g.input_word(4);
        let m = g.mux_word(s, &a, &b);
        let mut inputs = vec![true];
        inputs.extend((0..4).map(|i| (0b1010u64 >> i) & 1 == 1));
        inputs.extend((0..4).map(|i| (0b0101u64 >> i) & 1 == 1));
        assert_eq!(eval_word(&g, &m, &inputs), 0b1010);
        inputs[0] = false;
        assert_eq!(eval_word(&g, &m, &inputs), 0b0101);
    }
}
