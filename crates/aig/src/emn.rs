//! EMN — a textual interchange format for embedded-memory netlists.
//!
//! An AIGER-inspired line format extended with the one thing AIGER lacks
//! and this project is about: first-class **memory modules with read and
//! write ports**. The writer emits a canonical build script; the parser
//! replays it through the public [`Design`] API, so a parsed design is
//! bit-for-bit identical to the original (same node ids, same port order —
//! asserted by the round-trip tests).
//!
//! ```text
//! emn 1
//! memory <name> <addr_width> <data_width> zero|arbitrary
//! node i <name>                      # free input
//! node l <name> 0|1|x                # latch (init value)
//! node a <lit> <lit>                 # AND node (lit = 2*node + invert)
//! node rport <mem> <en_lit> <addr_lits...>   # read port: creates DW nodes
//! wport <mem> <en_lit> <addr_lits...> : <data_lits...>
//! next <latch_index> <lit>
//! constraint <lit>
//! prop <name> <lit>
//! ```
//!
//! Node 0 is always the constant false and is implicit. Names must not
//! contain whitespace (the writer sanitizes them).

use std::fmt::Write as _;

use crate::aig::{Bit, Node, NodeId};
use crate::design::{Design, InputKind, LatchInit, MemInit, MemoryId};

/// Serializes a design to EMN text.
///
/// # Panics
///
/// Panics if the design fails [`Design::check`] (serialize finished
/// designs) or if a read port's data nodes are non-contiguous (impossible
/// for designs built through the public API).
pub fn write_emn(design: &Design) -> String {
    design.check().expect("serialize a well-formed design");
    let mut out = String::new();
    let _ = writeln!(out, "emn 1");
    for m in design.memories() {
        let init = match m.init {
            MemInit::Zero => "zero",
            MemInit::Arbitrary => "arbitrary",
        };
        let _ = writeln!(
            out,
            "memory {} {} {} {}",
            sanitize(&m.name),
            m.addr_width,
            m.data_width,
            init
        );
    }
    // Nodes in topological (id) order; read-port data nodes are emitted as
    // one `node rport` line at the position of their first bit.
    let mut skip_until: usize = 0;
    for (id, node) in design.aig.iter() {
        if id.index() < skip_until || id == NodeId::FALSE {
            continue;
        }
        match node {
            Node::Const => {}
            Node::And(a, b) => {
                let _ = writeln!(out, "node a {} {}", lit(a), lit(b));
            }
            Node::Input(i) => match design.input_kind(i as usize) {
                InputKind::Free => {
                    let name = input_name(design, i as usize);
                    let _ = writeln!(out, "node i {name}");
                }
                InputKind::Latch(l) => {
                    let latch = &design.latches()[l.0 as usize];
                    let init = match latch.init {
                        LatchInit::Zero => "0",
                        LatchInit::One => "1",
                        LatchInit::Free => "x",
                    };
                    let _ = writeln!(out, "node l {} {init}", sanitize(&latch.name));
                }
                InputKind::ReadData(m, p, bit) => {
                    assert_eq!(bit, 0, "read-data nodes must be contiguous");
                    let mem = design.memory(m);
                    let rp = &mem.read_ports[p as usize];
                    // Verify contiguity.
                    for (b, rd_bit) in rp.data.bits().iter().enumerate() {
                        assert_eq!(
                            rd_bit.node().index(),
                            id.index() + b,
                            "read-data nodes must be contiguous"
                        );
                    }
                    skip_until = id.index() + mem.data_width;
                    let mut line = format!("node rport {} {}", m.0, lit(rp.en));
                    for &a in rp.addr.bits() {
                        let _ = write!(line, " {}", lit(a));
                    }
                    let _ = writeln!(out, "{line}");
                }
            },
        }
    }
    for (mi, m) in design.memories().iter().enumerate() {
        for wp in &m.write_ports {
            let mut line = format!("wport {mi} {}", lit(wp.en));
            for &a in wp.addr.bits() {
                let _ = write!(line, " {}", lit(a));
            }
            let _ = write!(line, " :");
            for &d in wp.data.bits() {
                let _ = write!(line, " {}", lit(d));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    for (li, latch) in design.latches().iter().enumerate() {
        let _ = writeln!(out, "next {li} {}", lit(latch.next.expect("checked")));
    }
    for &c in design.constraints() {
        let _ = writeln!(out, "constraint {}", lit(c));
    }
    for p in design.properties() {
        let _ = writeln!(out, "prop {} {}", sanitize(&p.name), lit(p.bad));
    }
    out
}

/// Error from [`parse_emn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEmnError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseEmnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "emn parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseEmnError {}

/// Parses EMN text back into a [`Design`].
///
/// # Errors
///
/// Returns [`ParseEmnError`] on malformed input: unknown directives, badly
/// formed literals, references to nodes that do not exist yet (the format
/// is strictly topological), or wrong port arities.
pub fn parse_emn(text: &str) -> Result<Design, ParseEmnError> {
    let mut d = Design::new();
    let mut seen_header = false;
    // Map from file node index to Bit (node 0 = const false).
    let mut nodes: Vec<Bit> = vec![crate::Aig::FALSE];
    let err = |line: usize, message: &str| ParseEmnError {
        line,
        message: message.into(),
    };
    let get_lit = |nodes: &[Bit], tok: &str, line: usize| -> Result<Bit, ParseEmnError> {
        let code: usize = tok
            .parse()
            .map_err(|_| err(line, &format!("bad literal {tok:?}")))?;
        let idx = code >> 1;
        let bit = *nodes
            .get(idx)
            .ok_or_else(|| err(line, &format!("literal {tok} references future node {idx}")))?;
        Ok(if code & 1 == 1 { !bit } else { bit })
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "emn" => {
                if toks.get(1) != Some(&"1") {
                    return Err(err(line_no, "unsupported version"));
                }
                seen_header = true;
            }
            _ if !seen_header => return Err(err(line_no, "missing 'emn 1' header")),
            "memory" => {
                if toks.len() != 5 {
                    return Err(err(line_no, "memory needs: name aw dw init"));
                }
                let aw: usize = toks[2]
                    .parse()
                    .map_err(|_| err(line_no, "bad address width"))?;
                let dw: usize = toks[3]
                    .parse()
                    .map_err(|_| err(line_no, "bad data width"))?;
                let init = match toks[4] {
                    "zero" => MemInit::Zero,
                    "arbitrary" => MemInit::Arbitrary,
                    other => return Err(err(line_no, &format!("bad init {other:?}"))),
                };
                d.add_memory(toks[1], aw, dw, init);
            }
            "node" => match toks.get(1) {
                Some(&"i") => {
                    let name = toks
                        .get(2)
                        .ok_or_else(|| err(line_no, "input needs a name"))?;
                    nodes.push(d.new_input(name));
                }
                Some(&"l") => {
                    if toks.len() != 4 {
                        return Err(err(line_no, "latch needs: name init"));
                    }
                    let init = match toks[3] {
                        "0" => LatchInit::Zero,
                        "1" => LatchInit::One,
                        "x" => LatchInit::Free,
                        other => return Err(err(line_no, &format!("bad init {other:?}"))),
                    };
                    let (_, bit) = d.new_latch(toks[2], init);
                    nodes.push(bit);
                }
                Some(&"a") => {
                    if toks.len() != 4 {
                        return Err(err(line_no, "and needs two literals"));
                    }
                    let a = get_lit(&nodes, toks[2], line_no)?;
                    let b = get_lit(&nodes, toks[3], line_no)?;
                    let bit = d.aig.and(a, b);
                    nodes.push(bit);
                }
                Some(&"rport") => {
                    if toks.len() < 4 {
                        return Err(err(line_no, "rport needs: mem en addr..."));
                    }
                    let mi: u32 = toks[2]
                        .parse()
                        .map_err(|_| err(line_no, "bad memory index"))?;
                    if mi as usize >= d.memories().len() {
                        return Err(err(line_no, "memory index out of range"));
                    }
                    let mem = MemoryId(mi);
                    let aw = d.memory(mem).addr_width;
                    let en = get_lit(&nodes, toks[3], line_no)?;
                    if toks.len() != 4 + aw {
                        return Err(err(line_no, &format!("expected {aw} address literals")));
                    }
                    let mut addr = Vec::with_capacity(aw);
                    for t in &toks[4..] {
                        addr.push(get_lit(&nodes, t, line_no)?);
                    }
                    let data = d.add_read_port(mem, crate::Word::from(addr), en);
                    nodes.extend(data.bits().iter().copied());
                }
                other => return Err(err(line_no, &format!("unknown node kind {other:?}"))),
            },
            "wport" => {
                let mi: u32 = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "bad memory index"))?;
                if mi as usize >= d.memories().len() {
                    return Err(err(line_no, "memory index out of range"));
                }
                let mem = MemoryId(mi);
                let (aw, dw) = {
                    let m = d.memory(mem);
                    (m.addr_width, m.data_width)
                };
                let en = get_lit(
                    &nodes,
                    toks.get(2).ok_or_else(|| err(line_no, "missing en"))?,
                    line_no,
                )?;
                let sep = toks
                    .iter()
                    .position(|&t| t == ":")
                    .ok_or_else(|| err(line_no, "missing ':' separator"))?;
                if sep != 3 + aw || toks.len() != sep + 1 + dw {
                    return Err(err(line_no, "wport arity mismatch"));
                }
                let mut addr = Vec::with_capacity(aw);
                for t in &toks[3..sep] {
                    addr.push(get_lit(&nodes, t, line_no)?);
                }
                let mut data = Vec::with_capacity(dw);
                for t in &toks[sep + 1..] {
                    data.push(get_lit(&nodes, t, line_no)?);
                }
                d.add_write_port(mem, crate::Word::from(addr), en, crate::Word::from(data));
            }
            "next" => {
                if toks.len() != 3 {
                    return Err(err(line_no, "next needs: latch_index lit"));
                }
                let li: usize = toks[1]
                    .parse()
                    .map_err(|_| err(line_no, "bad latch index"))?;
                let output = d
                    .latches()
                    .get(li)
                    .map(|l| l.output)
                    .ok_or_else(|| err(line_no, "latch index out of range"))?;
                let n = get_lit(&nodes, toks[2], line_no)?;
                d.set_next(output, n);
            }
            "constraint" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "constraint needs one literal"));
                }
                let c = get_lit(&nodes, toks[1], line_no)?;
                d.add_constraint(c);
            }
            "prop" => {
                if toks.len() != 3 {
                    return Err(err(line_no, "prop needs: name lit"));
                }
                let bad = get_lit(&nodes, toks[2], line_no)?;
                d.add_property(toks[1], bad);
            }
            other => return Err(err(line_no, &format!("unknown directive {other:?}"))),
        }
    }
    d.check().map_err(|m| ParseEmnError {
        line: 0,
        message: m,
    })?;
    Ok(d)
}

fn lit(b: Bit) -> usize {
    b.code()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

fn input_name(_design: &Design, index: usize) -> String {
    // Names are not stored per input index; derive a stable placeholder.
    // The names map in Design is keyed by name; reverse lookup would be
    // ambiguous, so we emit positional names (round-trip preserves
    // structure, not free-input names).
    format!("in{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{Design, LatchInit, MemInit};
    use crate::Simulator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn sample_design() -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("buf", 3, 4, MemInit::Arbitrary);
        let ptr = d.new_latch_word("ptr", 3, LatchInit::Zero);
        let next = d.aig.inc(&ptr);
        d.set_next_word(&ptr, &next);
        let en = d.new_input("en");
        let data = d.new_input_word("data", 4);
        d.add_write_port(mem, ptr.clone(), en, data);
        let rd = d.add_read_port(mem, ptr.clone(), crate::Aig::TRUE);
        let (_, flag) = d.new_latch("flag", LatchInit::Free);
        let hot = d.aig.eq_const(&rd, 9);
        let nf = d.aig.or(flag, hot);
        d.set_next(flag, nf);
        d.add_constraint(!hot);
        d.add_property("never_9", flag);
        d.check().expect("valid");
        d
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let d = sample_design();
        let text = write_emn(&d);
        let back = parse_emn(&text).expect("parse");
        assert_eq!(back.num_latches(), d.num_latches());
        assert_eq!(back.memories().len(), d.memories().len());
        assert_eq!(back.properties().len(), d.properties().len());
        assert_eq!(back.constraints().len(), d.constraints().len());
        assert_eq!(
            back.aig.num_nodes(),
            d.aig.num_nodes(),
            "node-exact roundtrip"
        );
        assert_eq!(back.num_gates(), d.num_gates());
        // Second roundtrip is a fixpoint.
        assert_eq!(write_emn(&back), text);
    }

    #[test]
    fn roundtrip_simulates_identically() {
        let d = sample_design();
        let back = parse_emn(&write_emn(&d)).expect("parse");
        let mut rng = StdRng::seed_from_u64(0xE31);
        let mut sim_a = Simulator::new(&d);
        let mut sim_b = Simulator::new(&back);
        for a in 0..8 {
            sim_a.seed_memory(crate::MemoryId(0), a, a + 3);
            sim_b.seed_memory(crate::MemoryId(0), a, a + 3);
        }
        for cycle in 0..200 {
            let inputs: Vec<bool> = (0..d.free_inputs().len())
                .map(|_| rng.random_bool(0.5))
                .collect();
            let ra = sim_a.step(&inputs);
            let rb = sim_b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "cycle {cycle}");
            assert_eq!(
                ra.violated_constraints, rb.violated_constraints,
                "cycle {cycle}"
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_emn("nonsense").is_err());
        assert!(parse_emn("emn 2\n").is_err());
        assert!(
            parse_emn("emn 1\nnode a 2 4\n").is_err(),
            "future node reference"
        );
        assert!(
            parse_emn("emn 1\nnode rport 0 0\n").is_err(),
            "no such memory"
        );
        assert!(
            parse_emn("emn 1\nnode l dangling 0\n").is_err(),
            "missing next"
        );
        assert!(parse_emn("emn 1\nwport 0 0 :\n").is_err());
    }

    #[test]
    fn empty_design_roundtrips() {
        let mut d = Design::new();
        d.add_property("trivially_safe", crate::Aig::FALSE);
        let text = write_emn(&d);
        let back = parse_emn(&text).expect("parse");
        assert_eq!(back.properties().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "emn 1\n\n# a comment\nnode i x  # trailing comment\nprop p 2\n";
        let d = parse_emn(text).expect("parse");
        assert_eq!(d.free_inputs().len(), 1);
        assert_eq!(d.properties().len(), 1);
    }
}
