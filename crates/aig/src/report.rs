//! Human-readable counterexample reports.
//!
//! [`format_trace`] replays a [`Trace`] on the [`Simulator`] and renders a
//! cycle-by-cycle account: register values (bit-latches regrouped into
//! words by their `name[i]` naming convention), memory port activity, and
//! property status — the "waveform" a verification engineer reads before
//! opening a real wave viewer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::design::{Design, MemoryId};
use crate::fraig::FraigStats;
use crate::rewrite::RewriteStats;
use crate::sim::{Simulator, Trace};

/// Renders fraig-pass counters as a one-line summary, in the style the
/// bench harness prints design statistics.
pub fn format_fraig_stats(stats: &FraigStats) -> String {
    let truncated = if stats.buckets_truncated > 0 {
        format!(
            ", {} cones refused by full buckets",
            stats.buckets_truncated
        )
    } else {
        String::new()
    };
    format!(
        "fraig: {} -> {} ANDs (-{}; {} proved merges, {} const, {} structural), \
         {} SAT checks ({} refuted, {} unknown), {} cex patterns over {} total{truncated}",
        stats.ands_before,
        stats.ands_after,
        stats.ands_removed(),
        stats.merges,
        stats.const_merges,
        stats.structural_merges,
        stats.sat_checks,
        stats.refuted,
        stats.unknown,
        stats.cex_patterns,
        stats.sim_patterns,
    )
}

/// Renders rewrite-pass counters as a one-line summary, the companion of
/// [`format_fraig_stats`] for the cut-based rewriting stage.
pub fn format_rewrite_stats(stats: &RewriteStats) -> String {
    // Selection counters only appear when global selection actually ran
    // (candidates were collected); the greedy path leaves them at zero.
    let select = if stats.candidates_collected > 0 {
        format!(
            "; select {} -> {} kept ({} overlap-dropped, {} exchanges)",
            stats.candidates_collected,
            stats.candidates_collected - stats.select_dropped,
            stats.select_dropped,
            stats.exchange_swaps,
        )
    } else {
        String::new()
    };
    format!(
        "rewrite(k={}): {} -> {} ANDs (-{}; {} rewrites, {} xor, {} mux) in {} iters, \
         {} cuts, {} candidates ({} zero-gain){select}, {} NPN classes",
        stats.cut_size,
        stats.ands_before,
        stats.ands_after,
        stats.ands_removed(),
        stats.rewrites,
        stats.xor_rewrites,
        stats.mux_rewrites,
        stats.iterations,
        stats.cuts_enumerated,
        stats.candidates_tried,
        stats.zero_gain_skipped,
        stats.npn_classes,
    )
}

/// Renders a trace as a per-cycle textual report.
///
/// The trace is replayed on the concrete simulator (seeds, disabled-read
/// values and free initial latches installed), so the report shows real
/// execution, not raw SAT assignments.
///
/// # Panics
///
/// Panics if the trace's input vectors do not match the design.
pub fn format_trace(design: &Design, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} cycles, property #{} ({})",
        trace.frames.len(),
        trace.property,
        design
            .properties()
            .get(trace.property)
            .map(|p| p.name.as_str())
            .unwrap_or("?")
    );
    // Initial memory seeds.
    for (mi, seeds) in trace.memory_seeds.iter().enumerate() {
        if !seeds.is_empty() {
            let name = &design.memories()[mi].name;
            let cells: Vec<String> = seeds.iter().map(|(a, v)| format!("[{a}]={v:#x}")).collect();
            let _ = writeln!(out, "initial {name}: {}", cells.join(" "));
        }
    }

    // Group latches into words by "name[i]" convention.
    let groups = latch_groups(design);

    let mut sim = Simulator::new(design);
    for (l, &v) in trace.initial_latches.iter().enumerate() {
        sim.set_latch(l, v);
    }
    for (mi, seeds) in trace.memory_seeds.iter().enumerate() {
        for &(a, v) in seeds {
            sim.seed_memory(MemoryId(mi as u32), a, v);
        }
    }
    let empty: Vec<Vec<u64>> = Vec::new();
    for (k, inputs) in trace.frames.iter().enumerate() {
        let disabled = trace.disabled_reads.get(k).unwrap_or(&empty);
        // Render pre-step registers.
        let regs: Vec<String> = groups
            .iter()
            .map(|(name, bits)| {
                let value: u64 = bits
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (sim.latch(l) as u64) << i)
                    .sum();
                format!("{name}={value:#x}")
            })
            .collect();
        let report = sim.step_with_disabled_reads(inputs, disabled);
        let _ = write!(out, "cycle {k:>3}: {}", regs.join(" "));
        // Memory activity (evaluated combinational values of this cycle).
        for (mi, m) in design.memories().iter().enumerate() {
            for (pi, rp) in m.read_ports.iter().enumerate() {
                if sim.value(rp.en) {
                    let addr = sim.word_value(&rp.addr);
                    let data = sim.word_value(&rp.data);
                    let _ = write!(out, "  R {}#{pi}[{addr}]→{data:#x}", m.name);
                }
            }
            for (pi, wp) in m.write_ports.iter().enumerate() {
                if sim.value(wp.en) {
                    let addr = sim.word_value(&wp.addr);
                    let data = sim.word_value(&wp.data);
                    let _ = write!(out, "  W {}#{pi}[{addr}]←{data:#x}", m.name);
                }
            }
            let _ = mi;
        }
        let fired: Vec<&str> = report
            .property_bad
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| design.properties()[i].name.as_str())
            .collect();
        if !fired.is_empty() {
            let _ = write!(out, "  !! {}", fired.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

/// Groups latch indices into named words via the `name[i]` convention;
/// unindexed latches become single-bit entries.
fn latch_groups(design: &Design) -> Vec<(String, Vec<usize>)> {
    let mut map: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (idx, latch) in design.latches().iter().enumerate() {
        match split_indexed(&latch.name) {
            Some((base, bit)) => map.entry(base.to_string()).or_default().push((bit, idx)),
            None => map.entry(latch.name.clone()).or_default().push((0, idx)),
        }
    }
    map.into_iter()
        .map(|(name, mut bits)| {
            bits.sort_unstable();
            (name, bits.into_iter().map(|(_, idx)| idx).collect())
        })
        .collect()
}

fn split_indexed(name: &str) -> Option<(&str, usize)> {
    let open = name.rfind('[')?;
    let close = name.rfind(']')?;
    if close != name.len() - 1 || open + 1 >= close {
        return None;
    }
    let bit: usize = name[open + 1..close].parse().ok()?;
    Some((&name[..open], bit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{LatchInit, MemInit};

    #[test]
    fn split_indexed_parses_names() {
        assert_eq!(split_indexed("count[3]"), Some(("count", 3)));
        assert_eq!(split_indexed("x[0]"), Some(("x", 0)));
        assert_eq!(split_indexed("plain"), None);
        assert_eq!(split_indexed("odd[2"), None);
        assert_eq!(split_indexed("trail[2]x"), None);
    }

    #[test]
    fn report_shows_registers_memory_and_property() {
        let mut d = Design::new();
        let mem = d.add_memory("buf", 3, 4, MemInit::Arbitrary);
        let t = d.new_latch_word("t", 3, LatchInit::Zero);
        let nt = d.aig.inc(&t);
        d.set_next_word(&t, &nt);
        let raddr = d.aig.const_word(5, 3);
        let rd = d.add_read_port(mem, raddr, crate::Aig::TRUE);
        let bad = d.aig.eq_const(&rd, 0xC);
        d.add_property("sees_0xC", bad);
        d.check().expect("valid");

        let trace = Trace {
            initial_latches: vec![false; 3],
            frames: vec![vec![], vec![]],
            memory_seeds: vec![vec![(5, 0xC)]],
            disabled_reads: vec![],
            property: 0,
        };
        trace.validate(&d).expect("trace is real");
        let report = format_trace(&d, &trace);
        assert!(report.contains("property #0 (sees_0xC)"), "{report}");
        assert!(report.contains("initial buf: [5]=0xc"), "{report}");
        assert!(report.contains("t=0x0"), "{report}");
        assert!(report.contains("R buf#0[5]→0xc"), "{report}");
        assert!(report.contains("!! sees_0xC"), "{report}");
        assert!(report.contains("cycle   1: t=0x1"), "{report}");
    }
}
