//! BTOR2 reader and writer, with `sort array` mapped onto EMM memories.
//!
//! BTOR2 is the word-level model-checking format of the HWMCC family:
//! every line defines a numbered node (`<id> <op> <args…>`), ids are
//! strictly increasing, and operands must be defined before use. This
//! module maps BTOR2 onto [`Design`]:
//!
//! * `sort bitvec W` / `sort array A D` — bit-vector and array sorts
//!   (array index/element sorts must themselves be bit-vectors);
//! * `input` — [`Design::new_input`] / [`Design::new_input_word`];
//! * `state` of bit-vector sort — one latch per bit, default
//!   [`LatchInit::Free`] until an `init` line says otherwise;
//! * `state` of array sort — [`Design::add_memory`], the paper's EMM
//!   array model: default [`MemInit::Arbitrary`], `init` with the
//!   all-zero element constant → [`MemInit::Zero`];
//! * `read` — [`Design::add_read_port`] with a constant-true enable
//!   (BTOR2 has no read-enable concept);
//! * array `next` — a chain of `write(…)` and `ite(c, write(base,…),
//!   base)` nodes over the array state, each contributing one
//!   [`Design::add_write_port`] (the `ite` condition becomes the
//!   port's write enable);
//! * `bad` → [`Design::add_property`], `constraint` →
//!   [`Design::add_constraint`]; `output` lines are validated and
//!   ignored ([`Design`] has no observable concept).
//!
//! [`write_btor2`] serializes any checked design, memories included.
//! Read ports with non-constant enables are wrapped as
//! `ite(en, read(mem, addr), oracle)` with a fresh *oracle* input word
//! per port — a disabled EMM read yields an unconstrained value, which
//! is exactly a free input. For designs whose read enables are all
//! constant-true the writer emits plain `read` nodes and
//! `write_btor2(read_btor2(write_btor2(d)))` is byte-identical; with
//! oracle wrapping the fixed point is reached one round later.
//!
//! The parser returns structured [`ParseBtor2Error`]s — truncated
//! lines, unknown operators, width mismatches, out-of-order ids and
//! unsupported array patterns are all clean `Err`s, never panics.
//!
//! ```
//! use emm_aig::btor2::{read_btor2, write_btor2};
//!
//! let src = "\
//! 1 sort bitvec 1
//! 2 state 1 flip
//! 3 not 1 2
//! 4 next 1 2 3
//! 5 init 1 2 -6
//! 6 one 1
//! ";
//! // ids must increase, so the init constant comes via negation:
//! let src = src.replace("5 init 1 2 -6\n6 one 1\n", "5 zero 1\n6 init 1 2 5\n7 bad 2\n");
//! let d = read_btor2(&src).unwrap();
//! assert_eq!(d.num_latches(), 1);
//! let text = write_btor2(&d).unwrap();
//! assert_eq!(write_btor2(&read_btor2(&text).unwrap()).unwrap(), text);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::aig::{Aig, Bit, Node};
use crate::design::{Design, InputKind, LatchId, LatchInit, MemInit, MemoryId};
use crate::word::Word;

/// Hard cap on node ids, keeping fuzzed files from ballooning tables.
const MAX_ID: usize = 1 << 24;
/// Hard cap on bit-vector widths (constants are parsed through `u64`).
const MAX_WIDTH: usize = 64;
/// Hard cap on array address widths.
const MAX_ADDR_WIDTH: usize = 32;

/// Error from the BTOR2 parser, with the 1-based line it was detected
/// on (`line == 0` for whole-file errors such as a failing
/// [`Design::check`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBtor2Error {
    /// 1-based source line, or 0 for whole-file errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseBtor2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "btor2: {}", self.message)
        } else {
            write!(f, "btor2 line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseBtor2Error {}

/// Error from [`write_btor2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteBtor2Error {
    /// The design failed [`Design::check`].
    Invalid(String),
    /// A read port's address or enable depends (combinationally) on its
    /// own read data, which has no BTOR2 expression.
    CyclicReadPort(String),
}

impl fmt::Display for WriteBtor2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteBtor2Error::Invalid(m) => write!(f, "btor2: invalid design: {m}"),
            WriteBtor2Error::CyclicReadPort(m) => {
                write!(f, "btor2: cyclic read port: {m}")
            }
        }
    }
}

impl std::error::Error for WriteBtor2Error {}

fn err(line: usize, message: impl Into<String>) -> ParseBtor2Error {
    ParseBtor2Error {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum SortVal {
    Bv(usize),
    Arr { aw: usize, dw: usize },
}

/// An array-typed expression, kept symbolic until the `next` line of
/// the underlying state resolves it into write ports.
enum ArrKind {
    State,
    Write {
        base: usize,
        addr: Word,
        data: Word,
    },
    Ite {
        cond: Bit,
        then_id: usize,
        else_id: usize,
    },
}

enum NodeVal {
    Sort(SortVal),
    Bv {
        word: Word,
        /// `Some` iff this node is a bit-vector `state` line.
        state: Option<Vec<LatchId>>,
    },
    Arr {
        kind: ArrKind,
        mem: MemoryId,
    },
}

struct Parser {
    d: Design,
    nodes: HashMap<usize, NodeVal>,
    last_id: usize,
    /// State node ids whose `init` line has been seen.
    inited: Vec<usize>,
    /// State node ids whose `next` line has been seen.
    nexted: Vec<usize>,
    num_bads: usize,
}

impl Parser {
    fn node(&self, tok: &str, line: usize) -> Result<(usize, bool), ParseBtor2Error> {
        let (neg, body) = match tok.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, tok),
        };
        let id: usize = body
            .parse()
            .map_err(|_| err(line, format!("malformed node id {tok:?}")))?;
        if id == 0 || id > MAX_ID {
            return Err(err(line, format!("node id {id} out of range")));
        }
        if !self.nodes.contains_key(&id) {
            return Err(err(line, format!("node {id} used before definition")));
        }
        Ok((id, neg))
    }

    fn sort(&self, tok: &str, line: usize) -> Result<SortVal, ParseBtor2Error> {
        let (id, neg) = self.node(tok, line)?;
        match (neg, &self.nodes[&id]) {
            (false, NodeVal::Sort(s)) => Ok(*s),
            _ => Err(err(line, format!("node {id} is not a sort"))),
        }
    }

    fn bv_sort(&self, tok: &str, line: usize) -> Result<usize, ParseBtor2Error> {
        match self.sort(tok, line)? {
            SortVal::Bv(w) => Ok(w),
            SortVal::Arr { .. } => Err(err(line, "expected a bitvec sort, found an array sort")),
        }
    }

    /// Resolves a bit-vector operand of the given width; a leading `-`
    /// is BTOR2's inline bitwise negation.
    fn bv(&mut self, tok: &str, width: usize, line: usize) -> Result<Word, ParseBtor2Error> {
        let (id, neg) = self.node(tok, line)?;
        let word = match &self.nodes[&id] {
            NodeVal::Bv { word, .. } => word.clone(),
            _ => return Err(err(line, format!("node {id} is not a bitvec"))),
        };
        if word.width() != width {
            return Err(err(
                line,
                format!(
                    "width mismatch: node {id} has width {}, expected {width}",
                    word.width()
                ),
            ));
        }
        Ok(if neg {
            self.d.aig.word_not(&word)
        } else {
            word
        })
    }

    fn bit(&mut self, tok: &str, line: usize) -> Result<Bit, ParseBtor2Error> {
        Ok(self.bv(tok, 1, line)?.bit(0))
    }

    fn arr(&self, tok: &str, line: usize) -> Result<(usize, MemoryId), ParseBtor2Error> {
        let (id, neg) = self.node(tok, line)?;
        match (neg, &self.nodes[&id]) {
            (false, NodeVal::Arr { mem, .. }) => Ok((id, *mem)),
            _ => Err(err(line, format!("node {id} is not an array"))),
        }
    }

    fn define(&mut self, id: usize, val: NodeVal) {
        self.nodes.insert(id, val);
        self.last_id = id;
    }

    /// Turns the array `next` expression rooted at `id` into write
    /// ports on `mem`. `en` accumulates the `ite` conditions guarding
    /// the current branch.
    fn collect_write_ports(
        &mut self,
        mem: MemoryId,
        id: usize,
        en: Bit,
        line: usize,
    ) -> Result<(), ParseBtor2Error> {
        match &self.nodes[&id] {
            NodeVal::Arr {
                kind: ArrKind::State,
                mem: m,
            } => {
                if *m != mem {
                    return Err(err(line, "array next refers to a different array state"));
                }
                Ok(())
            }
            NodeVal::Arr {
                kind: ArrKind::Write { base, addr, data },
                mem: m,
            } => {
                if *m != mem {
                    return Err(err(line, "array next refers to a different array state"));
                }
                let (base, addr, data) = (*base, addr.clone(), data.clone());
                self.collect_write_ports(mem, base, en, line)?;
                self.d.add_write_port(mem, addr, en, data);
                Ok(())
            }
            NodeVal::Arr {
                kind:
                    ArrKind::Ite {
                        cond,
                        then_id,
                        else_id,
                    },
                ..
            } => {
                let (cond, then_id, else_id) = (*cond, *then_id, *else_id);
                // The supported shapes are `ite(c, write(base, …), base)`
                // and its mirror — a conditional write over a shared
                // base, which is exactly a guarded write port.
                if let NodeVal::Arr {
                    kind: ArrKind::Write { base, addr, data },
                    ..
                } = &self.nodes[&then_id]
                {
                    if *base == else_id {
                        let (addr, data) = (addr.clone(), data.clone());
                        self.collect_write_ports(mem, else_id, en, line)?;
                        let guarded = self.d.aig.and(en, cond);
                        self.d.add_write_port(mem, addr, guarded, data);
                        return Ok(());
                    }
                }
                if let NodeVal::Arr {
                    kind: ArrKind::Write { base, addr, data },
                    ..
                } = &self.nodes[&else_id]
                {
                    if *base == then_id {
                        let (addr, data) = (addr.clone(), data.clone());
                        self.collect_write_ports(mem, then_id, en, line)?;
                        let guarded = self.d.aig.and(en, !cond);
                        self.d.add_write_port(mem, addr, guarded, data);
                        return Ok(());
                    }
                }
                Err(err(
                    line,
                    "unsupported array next pattern: ite branches must be \
                     `write(base, …)` vs that same base",
                ))
            }
            _ => Err(err(line, format!("node {id} is not an array expression"))),
        }
    }
}

fn const_bits(aig_true: bool) -> Bit {
    if aig_true {
        Aig::TRUE
    } else {
        Aig::FALSE
    }
}

fn parse_width(tok: &str, line: usize, what: &str, max: usize) -> Result<usize, ParseBtor2Error> {
    let w: usize = tok
        .parse()
        .map_err(|_| err(line, format!("malformed {what} {tok:?}")))?;
    if w == 0 || w > max {
        return Err(err(line, format!("{what} {w} out of range (1..={max})")));
    }
    Ok(w)
}

fn const_word_of(value: u64, width: usize) -> Word {
    Word(
        (0..width)
            .map(|i| const_bits((value >> i) & 1 == 1))
            .collect(),
    )
}

/// Parses a BTOR2 file into a [`Design`]. See the [module docs]
/// (self) for the supported operator subset and the array → EMM
/// mapping.
///
/// # Errors
///
/// A [`ParseBtor2Error`] naming the offending line for malformed ids,
/// unknown or mis-arity operators, sort/width mismatches, duplicate
/// `init`/`next` lines, unsupported array patterns, and designs that
/// fail [`Design::check`] (e.g. a state with no `next`).
pub fn read_btor2(text: &str) -> Result<Design, ParseBtor2Error> {
    let mut p = Parser {
        d: Design::new(),
        nodes: HashMap::new(),
        last_id: 0,
        inited: Vec::new(),
        nexted: Vec::new(),
        num_bads: 0,
    };
    for (line0, raw) in text.lines().enumerate() {
        let line = line0 + 1;
        let body = match raw.find(';') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let toks: Vec<&str> = body.split_ascii_whitespace().collect();
        if toks.is_empty() {
            continue;
        }
        let id: usize = toks[0]
            .parse()
            .map_err(|_| err(line, format!("malformed line id {:?}", toks[0])))?;
        if id <= p.last_id || id > MAX_ID {
            return Err(err(
                line,
                format!(
                    "line id {id} must be strictly increasing (last was {})",
                    p.last_id
                ),
            ));
        }
        let op = *toks
            .get(1)
            .ok_or_else(|| err(line, "line needs an operator"))?;
        let args = &toks[2..];
        let need = |n: usize| -> Result<(), ParseBtor2Error> {
            if args.len() < n {
                Err(err(line, format!("`{op}` needs {n} arguments")))
            } else {
                Ok(())
            }
        };
        match op {
            "sort" => {
                need(1)?;
                match args[0] {
                    "bitvec" => {
                        need(2)?;
                        let w = parse_width(args[1], line, "bitvec width", MAX_WIDTH)?;
                        p.define(id, NodeVal::Sort(SortVal::Bv(w)));
                    }
                    "array" => {
                        need(3)?;
                        let aw = p.bv_sort(args[1], line)?;
                        let dw = p.bv_sort(args[2], line)?;
                        if aw > MAX_ADDR_WIDTH {
                            return Err(err(
                                line,
                                format!(
                                    "array index width {aw} out of range (1..={MAX_ADDR_WIDTH})"
                                ),
                            ));
                        }
                        p.define(id, NodeVal::Sort(SortVal::Arr { aw, dw }));
                    }
                    other => return Err(err(line, format!("unknown sort kind {other:?}"))),
                }
            }
            "input" => {
                need(1)?;
                let w = p.bv_sort(args[0], line)?;
                let name = args
                    .get(1)
                    .map_or_else(|| format!("n{id}"), |s| s.to_string());
                let word = if w == 1 {
                    Word::from_bit(p.d.new_input(&name))
                } else {
                    p.d.new_input_word(&name, w)
                };
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "state" => {
                need(1)?;
                let name = args
                    .get(1)
                    .map_or_else(|| format!("n{id}"), |s| s.to_string());
                match p.sort(args[0], line)? {
                    SortVal::Bv(w) => {
                        let mut lids = Vec::with_capacity(w);
                        let mut bits = Vec::with_capacity(w);
                        for i in 0..w {
                            let bn = if w == 1 {
                                name.clone()
                            } else {
                                format!("{name}[{i}]")
                            };
                            let (lid, bit) = p.d.new_latch(&bn, LatchInit::Free);
                            lids.push(lid);
                            bits.push(bit);
                        }
                        p.define(
                            id,
                            NodeVal::Bv {
                                word: Word(bits),
                                state: Some(lids),
                            },
                        );
                    }
                    SortVal::Arr { aw, dw } => {
                        let mem = p.d.add_memory(&name, aw, dw, MemInit::Arbitrary);
                        p.define(
                            id,
                            NodeVal::Arr {
                                kind: ArrKind::State,
                                mem,
                            },
                        );
                    }
                }
            }
            "init" => {
                need(3)?;
                let sort = p.sort(args[0], line)?;
                let (state_id, neg) = p.node(args[1], line)?;
                if neg {
                    return Err(err(line, "init state operand cannot be negated"));
                }
                if p.inited.contains(&state_id) {
                    return Err(err(line, format!("duplicate init for state {state_id}")));
                }
                match sort {
                    SortVal::Bv(w) => {
                        let lids = match &p.nodes[&state_id] {
                            NodeVal::Bv {
                                state: Some(lids), ..
                            } => lids.clone(),
                            _ => {
                                return Err(err(
                                    line,
                                    format!("init target {state_id} is not a bitvec state"),
                                ))
                            }
                        };
                        if lids.len() != w {
                            return Err(err(line, "init sort does not match the state sort"));
                        }
                        let value = p.bv(args[2], w, line)?;
                        for (i, &lid) in lids.iter().enumerate() {
                            let init = match value.bit(i) {
                                b if b == Aig::FALSE => LatchInit::Zero,
                                b if b == Aig::TRUE => LatchInit::One,
                                _ => {
                                    return Err(err(
                                        line,
                                        "only constant bitvec init values are supported",
                                    ))
                                }
                            };
                            p.d.set_latch_init(lid, init);
                        }
                    }
                    SortVal::Arr { dw, .. } => {
                        let (sid, mem) = p.arr(args[1], line)?;
                        debug_assert_eq!(sid, state_id);
                        if !matches!(
                            p.nodes[&state_id],
                            NodeVal::Arr {
                                kind: ArrKind::State,
                                ..
                            }
                        ) {
                            return Err(err(line, "array init target must be a state"));
                        }
                        let value = p.bv(args[2], dw, line)?;
                        if value.bits().iter().any(|&b| b != Aig::FALSE) {
                            return Err(err(
                                line,
                                "only the all-zero array init is supported (MemInit::Zero)",
                            ));
                        }
                        p.d.set_memory_init(mem, MemInit::Zero);
                    }
                }
                p.inited.push(state_id);
                p.last_id = id;
            }
            "next" => {
                need(3)?;
                let sort = p.sort(args[0], line)?;
                let (state_id, neg) = p.node(args[1], line)?;
                if neg {
                    return Err(err(line, "next state operand cannot be negated"));
                }
                if p.nexted.contains(&state_id) {
                    return Err(err(line, format!("duplicate next for state {state_id}")));
                }
                match sort {
                    SortVal::Bv(w) => {
                        let (word, lids) = match &p.nodes[&state_id] {
                            NodeVal::Bv {
                                word,
                                state: Some(lids),
                            } => (word.clone(), lids.clone()),
                            _ => {
                                return Err(err(
                                    line,
                                    format!("next target {state_id} is not a bitvec state"),
                                ))
                            }
                        };
                        if lids.len() != w {
                            return Err(err(line, "next sort does not match the state sort"));
                        }
                        let value = p.bv(args[2], w, line)?;
                        for i in 0..w {
                            p.d.set_next(word.bit(i), value.bit(i));
                        }
                    }
                    SortVal::Arr { .. } => {
                        let (_, mem) = p.arr(args[1], line)?;
                        if !matches!(
                            p.nodes[&state_id],
                            NodeVal::Arr {
                                kind: ArrKind::State,
                                ..
                            }
                        ) {
                            return Err(err(line, "array next target must be a state"));
                        }
                        let (next_id, nneg) = p.node(args[2], line)?;
                        if nneg {
                            return Err(err(line, "array next value cannot be negated"));
                        }
                        p.collect_write_ports(mem, next_id, Aig::TRUE, line)?;
                    }
                }
                p.nexted.push(state_id);
                p.last_id = id;
            }
            "bad" => {
                need(1)?;
                let bit = p.bit(args[0], line)?;
                let name = args
                    .get(1)
                    .map_or_else(|| format!("b{}", p.num_bads), |s| s.to_string());
                p.d.add_property(&name, bit);
                p.num_bads += 1;
                p.last_id = id;
            }
            "constraint" => {
                need(1)?;
                let bit = p.bit(args[0], line)?;
                p.d.add_constraint(bit);
                p.last_id = id;
            }
            "output" => {
                need(1)?;
                // Validated but ignored: Design has no observable concept.
                let _ = p.node(args[0], line)?;
                p.last_id = id;
            }
            "zero" | "one" | "ones" => {
                need(1)?;
                let w = p.bv_sort(args[0], line)?;
                let value = match op {
                    "zero" => 0,
                    "one" => 1,
                    _ => u64::MAX >> (64 - w),
                };
                p.define(
                    id,
                    NodeVal::Bv {
                        word: const_word_of(value, w),
                        state: None,
                    },
                );
            }
            "const" | "constd" | "consth" => {
                need(2)?;
                let w = p.bv_sort(args[0], line)?;
                let value = match op {
                    "const" => {
                        if args[1].len() != w {
                            return Err(err(
                                line,
                                format!("binary constant {:?} is not {w} bits", args[1]),
                            ));
                        }
                        u64::from_str_radix(args[1], 2)
                    }
                    "constd" => args[1].parse::<u64>(),
                    _ => u64::from_str_radix(args[1].trim_start_matches("0x"), 16),
                }
                .map_err(|_| err(line, format!("malformed constant {:?}", args[1])))?;
                if w < 64 && value >> w != 0 {
                    return Err(err(
                        line,
                        format!("constant {value} does not fit in {w} bits"),
                    ));
                }
                p.define(
                    id,
                    NodeVal::Bv {
                        word: const_word_of(value, w),
                        state: None,
                    },
                );
            }
            "not" => {
                need(2)?;
                let w = p.bv_sort(args[0], line)?;
                let a = p.bv(args[1], w, line)?;
                let word = p.d.aig.word_not(&a);
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "and" | "or" | "xor" | "nand" | "nor" | "xnor" | "implies" | "iff" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                if matches!(op, "implies" | "iff") && w != 1 {
                    return Err(err(line, format!("`{op}` requires a 1-bit sort")));
                }
                let a = p.bv(args[1], w, line)?;
                let b = p.bv(args[2], w, line)?;
                let aig = &mut p.d.aig;
                let word = match op {
                    "and" => aig.word_and(&a, &b),
                    "or" => aig.word_or(&a, &b),
                    "xor" => aig.word_xor(&a, &b),
                    "nand" => {
                        let t = aig.word_and(&a, &b);
                        aig.word_not(&t)
                    }
                    "nor" => {
                        let t = aig.word_or(&a, &b);
                        aig.word_not(&t)
                    }
                    "xnor" | "iff" => {
                        let t = aig.word_xor(&a, &b);
                        aig.word_not(&t)
                    }
                    _ => {
                        let na = aig.word_not(&a);
                        aig.word_or(&na, &b)
                    }
                };
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "eq" | "neq" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                if w != 1 {
                    return Err(err(line, format!("`{op}` produces a 1-bit result")));
                }
                // Operand width is taken from the first operand.
                let (aid, _) = p.node(args[1], line)?;
                let ow = match &p.nodes[&aid] {
                    NodeVal::Bv { word, .. } => word.width(),
                    _ => return Err(err(line, format!("node {aid} is not a bitvec"))),
                };
                let a = p.bv(args[1], ow, line)?;
                let b = p.bv(args[2], ow, line)?;
                let mut bit = p.d.aig.eq_word(&a, &b);
                if op == "neq" {
                    bit = !bit;
                }
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word::from_bit(bit),
                        state: None,
                    },
                );
            }
            "ult" | "ulte" | "ugt" | "ugte" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                if w != 1 {
                    return Err(err(line, format!("`{op}` produces a 1-bit result")));
                }
                let (aid, _) = p.node(args[1], line)?;
                let ow = match &p.nodes[&aid] {
                    NodeVal::Bv { word, .. } => word.width(),
                    _ => return Err(err(line, format!("node {aid} is not a bitvec"))),
                };
                let a = p.bv(args[1], ow, line)?;
                let b = p.bv(args[2], ow, line)?;
                let aig = &mut p.d.aig;
                let bit = match op {
                    "ult" => aig.ult(&a, &b),
                    "ulte" => aig.ule(&a, &b),
                    "ugt" => aig.ugt(&a, &b),
                    _ => aig.ule(&b, &a),
                };
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word::from_bit(bit),
                        state: None,
                    },
                );
            }
            "ite" => {
                need(4)?;
                match p.sort(args[0], line)? {
                    SortVal::Bv(w) => {
                        let cond = p.bit(args[1], line)?;
                        let t = p.bv(args[2], w, line)?;
                        let e = p.bv(args[3], w, line)?;
                        let word = p.d.aig.mux_word(cond, &t, &e);
                        p.define(id, NodeVal::Bv { word, state: None });
                    }
                    SortVal::Arr { .. } => {
                        let cond = p.bit(args[1], line)?;
                        let (then_id, tm) = p.arr(args[2], line)?;
                        let (else_id, em) = p.arr(args[3], line)?;
                        if tm != em {
                            return Err(err(line, "array ite branches mix different arrays"));
                        }
                        p.define(
                            id,
                            NodeVal::Arr {
                                kind: ArrKind::Ite {
                                    cond,
                                    then_id,
                                    else_id,
                                },
                                mem: tm,
                            },
                        );
                    }
                }
            }
            "add" | "sub" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                let a = p.bv(args[1], w, line)?;
                let b = p.bv(args[2], w, line)?;
                let aig = &mut p.d.aig;
                let word = if op == "add" {
                    aig.add(&a, &b)
                } else {
                    aig.sub(&a, &b)
                };
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "inc" | "dec" => {
                need(2)?;
                let w = p.bv_sort(args[0], line)?;
                let a = p.bv(args[1], w, line)?;
                let aig = &mut p.d.aig;
                let word = if op == "inc" {
                    aig.inc(&a)
                } else {
                    aig.dec(&a)
                };
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "redor" | "redand" => {
                need(2)?;
                let w = p.bv_sort(args[0], line)?;
                if w != 1 {
                    return Err(err(line, format!("`{op}` produces a 1-bit result")));
                }
                let (aid, _) = p.node(args[1], line)?;
                let ow = match &p.nodes[&aid] {
                    NodeVal::Bv { word, .. } => word.width(),
                    _ => return Err(err(line, format!("node {aid} is not a bitvec"))),
                };
                let a = p.bv(args[1], ow, line)?;
                let aig = &mut p.d.aig;
                let bit = if op == "redor" {
                    aig.redor(&a)
                } else {
                    aig.redand(&a)
                };
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word::from_bit(bit),
                        state: None,
                    },
                );
            }
            "concat" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                let (hid, _) = p.node(args[1], line)?;
                let hw = match &p.nodes[&hid] {
                    NodeVal::Bv { word, .. } => word.width(),
                    _ => return Err(err(line, format!("node {hid} is not a bitvec"))),
                };
                if hw >= w {
                    return Err(err(line, "concat high operand as wide as the result"));
                }
                let hi = p.bv(args[1], hw, line)?;
                let lo = p.bv(args[2], w - hw, line)?;
                let mut bits = lo.bits().to_vec();
                bits.extend_from_slice(hi.bits());
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word(bits),
                        state: None,
                    },
                );
            }
            "slice" => {
                need(4)?;
                let w = p.bv_sort(args[0], line)?;
                let (aid, _) = p.node(args[1], line)?;
                let ow = match &p.nodes[&aid] {
                    NodeVal::Bv { word, .. } => word.width(),
                    _ => return Err(err(line, format!("node {aid} is not a bitvec"))),
                };
                let upper: usize = args[2]
                    .parse()
                    .map_err(|_| err(line, format!("malformed slice bound {:?}", args[2])))?;
                let lower: usize = args[3]
                    .parse()
                    .map_err(|_| err(line, format!("malformed slice bound {:?}", args[3])))?;
                if lower > upper || upper >= ow {
                    return Err(err(
                        line,
                        format!("slice [{upper}:{lower}] out of range for width {ow}"),
                    ));
                }
                if upper - lower + 1 != w {
                    return Err(err(line, "slice sort does not match the bound width"));
                }
                let a = p.bv(args[1], ow, line)?;
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word(a.bits()[lower..=upper].to_vec()),
                        state: None,
                    },
                );
            }
            "uext" | "sext" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                let pad: usize = args[2]
                    .parse()
                    .map_err(|_| err(line, format!("malformed extension width {:?}", args[2])))?;
                if pad >= w {
                    return Err(err(line, "extension width as wide as the result"));
                }
                let a = p.bv(args[1], w - pad, line)?;
                let fill = if op == "uext" {
                    Aig::FALSE
                } else {
                    a.bit(a.width() - 1)
                };
                let mut bits = a.bits().to_vec();
                bits.resize(w, fill);
                p.define(
                    id,
                    NodeVal::Bv {
                        word: Word(bits),
                        state: None,
                    },
                );
            }
            "read" => {
                need(3)?;
                let w = p.bv_sort(args[0], line)?;
                let (arr_id, mem) = p.arr(args[1], line)?;
                if !matches!(
                    p.nodes[&arr_id],
                    NodeVal::Arr {
                        kind: ArrKind::State,
                        ..
                    }
                ) {
                    return Err(err(
                        line,
                        "reads of intermediate writes are not supported; read the state",
                    ));
                }
                let (aw, dw) = {
                    let m = p.d.memory(mem);
                    (m.addr_width, m.data_width)
                };
                if w != dw {
                    return Err(err(line, "read sort does not match the array element sort"));
                }
                let addr = p.bv(args[2], aw, line)?;
                let word = p.d.add_read_port(mem, addr, Aig::TRUE);
                p.define(id, NodeVal::Bv { word, state: None });
            }
            "write" => {
                need(4)?;
                let (aw, dw) = match p.sort(args[0], line)? {
                    SortVal::Arr { aw, dw } => (aw, dw),
                    SortVal::Bv(_) => return Err(err(line, "`write` requires an array sort")),
                };
                let (base, mem) = p.arr(args[1], line)?;
                let m = p.d.memory(mem);
                if m.addr_width != aw || m.data_width != dw {
                    return Err(err(line, "write sort does not match the array sort"));
                }
                let addr = p.bv(args[2], aw, line)?;
                let data = p.bv(args[3], dw, line)?;
                p.define(
                    id,
                    NodeVal::Arr {
                        kind: ArrKind::Write { base, addr, data },
                        mem,
                    },
                );
            }
            other => return Err(err(line, format!("unsupported operator {other:?}"))),
        }
    }
    p.d.check().map_err(|m| err(0, m))?;
    Ok(p.d)
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

#[derive(PartialEq, Eq, Hash, Clone, Copy)]
enum SortKey {
    Bv(usize),
    Arr(usize, usize),
}

struct Writer<'a> {
    d: &'a Design,
    out: String,
    next_id: usize,
    sorts: HashMap<SortKey, usize>,
    /// `Bit::code() → node id` for every lowered edge.
    bit_id: HashMap<usize, usize>,
    /// `MemoryId index → state node id`.
    mem_state: Vec<usize>,
    /// Read ports already emitted, per memory.
    read_done: Vec<Vec<bool>>,
    /// Read ports currently being emitted (cycle guard).
    read_busy: Vec<Vec<bool>>,
}

impl<'a> Writer<'a> {
    fn fresh(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn line(&mut self, id: usize, body: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "{id} {body}");
    }

    fn sort_id(&mut self, key: SortKey) -> usize {
        if let Some(&id) = self.sorts.get(&key) {
            return id;
        }
        let body = match key {
            SortKey::Bv(w) => format!("sort bitvec {w}"),
            SortKey::Arr(aw, dw) => {
                let a = self.sort_id(SortKey::Bv(aw));
                let d = self.sort_id(SortKey::Bv(dw));
                format!("sort array {a} {d}")
            }
        };
        let id = self.fresh();
        self.line(id, &body);
        self.sorts.insert(key, id);
        id
    }

    /// Appends the optional symbol for a name; names that would break
    /// tokenization (empty or containing whitespace) are dropped.
    fn symbol(name: &str) -> String {
        if !name.is_empty() && !name.contains(char::is_whitespace) {
            format!(" {name}")
        } else {
            String::new()
        }
    }

    fn lower_bit(&mut self, bit: Bit) -> Result<usize, WriteBtor2Error> {
        if let Some(&id) = self.bit_id.get(&bit.code()) {
            return Ok(id);
        }
        let id = if bit == Aig::FALSE {
            let s = self.sort_id(SortKey::Bv(1));
            let id = self.fresh();
            self.line(id, &format!("zero {s}"));
            id
        } else if bit == Aig::TRUE {
            let s = self.sort_id(SortKey::Bv(1));
            let id = self.fresh();
            self.line(id, &format!("one {s}"));
            id
        } else if bit.is_inverted() {
            let inner = self.lower_bit(!bit)?;
            let s = self.sort_id(SortKey::Bv(1));
            let id = self.fresh();
            self.line(id, &format!("not {s} {inner}"));
            id
        } else {
            match self.d.aig.node(bit.node()) {
                Node::And(a, b) => {
                    // The AIG stores operands sorted by Bit code, which
                    // is a function of node *creation* order — not stable
                    // across a parse. Order everything by emitted ids
                    // instead (`not` wrappers included, via the already
                    // emitted base nodes), so the output is a pure
                    // function of the graph and round trips byte-stably.
                    let base = |w: &Writer<'a>, bit: Bit| {
                        w.bit_id.get(&Bit::new(bit.node(), false).code()).copied()
                    };
                    let (first, second) = match (base(self, a), base(self, b)) {
                        (Some(x), Some(y)) if y < x => (b, a),
                        _ => (a, b),
                    };
                    let i1 = self.lower_bit(first)?;
                    let i2 = self.lower_bit(second)?;
                    let s = self.sort_id(SortKey::Bv(1));
                    let id = self.fresh();
                    let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
                    self.line(id, &format!("and {s} {lo} {hi}"));
                    id
                }
                Node::Input(idx) => match self.d.input_kind(idx as usize) {
                    InputKind::ReadData(mem, port, _) => {
                        self.emit_read_port(mem.0 as usize, port as usize)?;
                        *self
                            .bit_id
                            .get(&bit.code())
                            .expect("emit_read_port registers all data bits")
                    }
                    // Free inputs and latch outputs are all emitted up
                    // front, so a miss here is unreachable on a checked
                    // design; fail closed regardless.
                    _ => {
                        return Err(WriteBtor2Error::Invalid(format!(
                            "input {idx} reached the lowerer before being declared"
                        )))
                    }
                },
                Node::Const => unreachable!("constants handled above"),
            }
        };
        self.bit_id.insert(bit.code(), id);
        Ok(id)
    }

    /// Lowers a word and packs it into one `width(word)`-wide node via
    /// a concat chain (bit 0 is least significant).
    fn pack_word(&mut self, word: &Word) -> Result<usize, WriteBtor2Error> {
        let mut acc = self.lower_bit(word.bit(0))?;
        for i in 1..word.width() {
            let hi = self.lower_bit(word.bit(i))?;
            let s = self.sort_id(SortKey::Bv(i + 1));
            let id = self.fresh();
            self.line(id, &format!("concat {s} {hi} {acc}"));
            acc = id;
        }
        Ok(acc)
    }

    fn emit_read_port(&mut self, mi: usize, pi: usize) -> Result<(), WriteBtor2Error> {
        if self.read_done[mi][pi] {
            return Ok(());
        }
        if self.read_busy[mi][pi] {
            return Err(WriteBtor2Error::CyclicReadPort(format!(
                "memory {mi} read port {pi} feeds its own address or enable"
            )));
        }
        self.read_busy[mi][pi] = true;
        let mem = &self.d.memories()[mi];
        let port = mem.read_ports[pi].clone();
        let addr = self.pack_word(&port.addr)?;
        let dsort = self.sort_id(SortKey::Bv(mem.data_width));
        let state = self.mem_state[mi];
        let read = self.fresh();
        self.line(read, &format!("read {dsort} {state} {addr}"));
        let result = if port.en == Aig::TRUE {
            read
        } else {
            // A disabled EMM read is unconstrained: model it as a fresh
            // oracle input selected when the enable is low.
            let en = self.lower_bit(port.en)?;
            let oracle = self.fresh();
            let name = format!("{}_r{}_oracle", mem.name, pi);
            self.line(oracle, &format!("input {dsort}{}", Self::symbol(&name)));
            let id = self.fresh();
            self.line(id, &format!("ite {dsort} {en} {read} {oracle}"));
            id
        };
        for b in 0..mem.data_width {
            let bit_node = if mem.data_width == 1 {
                result
            } else {
                let s1 = self.sort_id(SortKey::Bv(1));
                let id = self.fresh();
                self.line(id, &format!("slice {s1} {result} {b} {b}"));
                id
            };
            self.bit_id.insert(port.data.bit(b).code(), bit_node);
        }
        self.read_busy[mi][pi] = false;
        self.read_done[mi][pi] = true;
        Ok(())
    }
}

/// Serializes a checked design (memories included) as BTOR2. See the
/// [module docs](self) for the mapping and the oracle-input treatment
/// of non-constant read enables.
///
/// # Errors
///
/// [`WriteBtor2Error::Invalid`] when [`Design::check`] fails, and
/// [`WriteBtor2Error::CyclicReadPort`] when a read port's address or
/// enable combinationally depends on that port's own data.
pub fn write_btor2(design: &Design) -> Result<String, WriteBtor2Error> {
    design.check().map_err(WriteBtor2Error::Invalid)?;
    let mut w = Writer {
        d: design,
        out: String::new(),
        next_id: 1,
        sorts: HashMap::new(),
        bit_id: HashMap::new(),
        mem_state: vec![0; design.memories().len()],
        read_done: design
            .memories()
            .iter()
            .map(|m| vec![false; m.read_ports.len()])
            .collect(),
        read_busy: design
            .memories()
            .iter()
            .map(|m| vec![false; m.read_ports.len()])
            .collect(),
    };
    // Resolve free-input names: lexicographically smallest alias wins,
    // so the choice is deterministic.
    let mut name_of: HashMap<usize, &str> = HashMap::new();
    for (name, bit) in design.names() {
        if bit.is_inverted() {
            continue;
        }
        let slot = name_of.entry(bit.code()).or_insert(name);
        if name < *slot {
            *slot = name;
        }
    }
    // Inputs, in dense free-input order.
    for (pos, &idx) in design.free_inputs().iter().enumerate() {
        let bit = design.input_bit(idx as usize);
        let s = w.sort_id(SortKey::Bv(1));
        let id = w.fresh();
        let name = name_of
            .get(&bit.code())
            .map_or_else(|| format!("i{pos}"), |n| n.to_string());
        w.line(id, &format!("input {s}{}", Writer::symbol(&name)));
        w.bit_id.insert(bit.code(), id);
    }
    // Latches, with init lines where the value is pinned.
    for latch in design.latches() {
        let s = w.sort_id(SortKey::Bv(1));
        let id = w.fresh();
        w.line(id, &format!("state {s}{}", Writer::symbol(&latch.name)));
        w.bit_id.insert(latch.output.code(), id);
        match latch.init {
            LatchInit::Zero => {
                let z = w.lower_bit(Aig::FALSE)?;
                let init = w.fresh();
                w.line(init, &format!("init {s} {id} {z}"));
            }
            LatchInit::One => {
                let o = w.lower_bit(Aig::TRUE)?;
                let init = w.fresh();
                w.line(init, &format!("init {s} {id} {o}"));
            }
            LatchInit::Free => {}
        }
    }
    // Memories.
    for (mi, mem) in design.memories().iter().enumerate() {
        let asort = w.sort_id(SortKey::Arr(mem.addr_width, mem.data_width));
        let id = w.fresh();
        w.line(id, &format!("state {asort}{}", Writer::symbol(&mem.name)));
        w.mem_state[mi] = id;
        if mem.init == MemInit::Zero {
            let dsort = w.sort_id(SortKey::Bv(mem.data_width));
            let z = w.fresh();
            w.line(z, &format!("zero {dsort}"));
            let init = w.fresh();
            w.line(init, &format!("init {asort} {id} {z}"));
        }
    }
    // The combinational graph, in AIG node order. Walking node ids
    // (instead of recursive descent from the roots) keeps the emission
    // order a pure function of the graph: the reader recreates nodes in
    // file order, so a re-write walks them in the same order and the
    // round trip is byte-stable. Read ports are expanded at their first
    // data-input node; `lower_bit`'s recursion covers the rare AIG
    // whose port address logic was renumbered above the data inputs.
    for (node_id, node) in design.aig.iter() {
        match node {
            Node::Const => {}
            Node::Input(idx) => {
                if let InputKind::ReadData(mem, port, _) = design.input_kind(idx as usize) {
                    w.emit_read_port(mem.0 as usize, port as usize)?;
                }
            }
            Node::And(_, _) => {
                w.lower_bit(Bit::new(node_id, false))?;
            }
        }
    }
    // Latch next-state functions.
    for latch in design.latches() {
        let next = latch.next.expect("checked design");
        let val = w.lower_bit(next)?;
        let s = w.sort_id(SortKey::Bv(1));
        let state = w.bit_id[&latch.output.code()];
        let id = w.fresh();
        w.line(id, &format!("next {s} {state} {val}"));
    }
    // Memory next-state: a write chain, guarded per port.
    for (mi, mem) in design.memories().iter().enumerate() {
        let asort = w.sort_id(SortKey::Arr(mem.addr_width, mem.data_width));
        let state = w.mem_state[mi];
        let mut cur = state;
        for port in mem.write_ports.clone() {
            let addr = w.pack_word(&port.addr)?;
            let data = w.pack_word(&port.data)?;
            let wid = w.fresh();
            w.line(wid, &format!("write {asort} {cur} {addr} {data}"));
            cur = if port.en == Aig::TRUE {
                wid
            } else {
                let en = w.lower_bit(port.en)?;
                let id = w.fresh();
                w.line(id, &format!("ite {asort} {en} {wid} {cur}"));
                id
            };
        }
        let id = w.fresh();
        w.line(id, &format!("next {asort} {state} {cur}"));
    }
    // Properties and constraints.
    for p in design.properties() {
        let bad = w.lower_bit(p.bad)?;
        let id = w.fresh();
        w.line(id, &format!("bad {bad}{}", Writer::symbol(&p.name)));
    }
    for &c in design.constraints() {
        let lit = w.lower_bit(c)?;
        let id = w.fresh();
        w.line(id, &format!("constraint {lit}"));
    }
    Ok(w.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// A memory-backed ring buffer: writes cycle through addresses, a
    /// read port watches address 0, and the property fires if it ever
    /// reads 0xF.
    fn ring() -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("buf", 2, 4, MemInit::Zero);
        let ptr = d.new_latch_word("ptr", 2, LatchInit::Zero);
        let next = d.aig.inc(&ptr);
        d.set_next_word(&ptr, &next);
        let data = d.new_input_word("data", 4);
        d.add_write_port(mem, ptr.clone(), Aig::TRUE, data);
        let zero = d.aig.const_word(0, 2);
        let rd = d.add_read_port(mem, zero, Aig::TRUE);
        let bad = d.aig.eq_const(&rd, 0xF);
        d.add_property("sees_f", bad);
        d.check().unwrap();
        d
    }

    /// Like `ring` but with a guarded write port and a guarded read
    /// port (exercises the ite-write and oracle-input paths).
    fn guarded_ring() -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("buf", 2, 4, MemInit::Zero);
        let ptr = d.new_latch_word("ptr", 2, LatchInit::Zero);
        let next = d.aig.inc(&ptr);
        d.set_next_word(&ptr, &next);
        let wen = d.new_input("wen");
        let ren = d.new_input("ren");
        let data = d.new_input_word("data", 4);
        d.add_write_port(mem, ptr.clone(), wen, data);
        let zero = d.aig.const_word(0, 2);
        let rd = d.add_read_port(mem, zero, ren);
        let bad = d.aig.eq_const(&rd, 0xF);
        d.add_property("sees_f", bad);
        d.check().unwrap();
        d
    }

    #[test]
    fn const_true_ring_roundtrips_byte_identically() {
        let d = ring();
        let text = write_btor2(&d).unwrap();
        let parsed = read_btor2(&text).unwrap();
        assert_eq!(parsed.num_latches(), d.num_latches());
        assert_eq!(parsed.memories().len(), 1);
        assert_eq!(parsed.memories()[0].init, MemInit::Zero);
        assert_eq!(parsed.memories()[0].read_ports.len(), 1);
        assert_eq!(parsed.memories()[0].write_ports.len(), 1);
        assert_eq!(write_btor2(&parsed).unwrap(), text);
    }

    #[test]
    fn guarded_ring_reaches_a_roundtrip_fixed_point() {
        let d = guarded_ring();
        let w1 = write_btor2(&d).unwrap();
        let p1 = read_btor2(&w1).unwrap();
        // The oracle inputs make the first re-write differ; the second
        // round must be the fixed point.
        let w2 = write_btor2(&p1).unwrap();
        let p2 = read_btor2(&w2).unwrap();
        assert_eq!(write_btor2(&p2).unwrap(), w2);
        // One write port with the guard folded into its enable.
        assert_eq!(p1.memories()[0].write_ports.len(), 1);
        assert!(p1.memories()[0].write_ports[0].en != Aig::TRUE);
    }

    #[test]
    fn guarded_ring_simulates_identically_with_zero_oracles() {
        let d = guarded_ring();
        let parsed = read_btor2(&write_btor2(&d).unwrap()).unwrap();
        // parsed has 4 extra oracle inputs; driving them 0 matches the
        // default disabled_read_value of the original.
        let extra = parsed.free_inputs().len() - d.free_inputs().len();
        assert_eq!(extra, 4);
        let mut a = Simulator::new(&d);
        let mut b = Simulator::new(&parsed);
        for step in 0..16u64 {
            let mut inputs = vec![
                step % 2 == 0, // wen
                step % 3 == 0, // ren
                step & 1 == 1, // data[0]
                step & 2 == 2, // data[1]
                step & 4 == 4, // data[2]
                step & 8 == 8, // data[3]
            ];
            let ra = a.step(&inputs);
            inputs.extend(std::iter::repeat_n(false, extra));
            let rb = b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "step {step}");
        }
    }

    #[test]
    fn init_lines_set_latch_and_memory_inits() {
        let src = "\
1 sort bitvec 1
2 state 1 a
3 one 1
4 init 1 2 3
5 not 1 2
6 next 1 2 5
7 sort bitvec 2
8 sort array 7 1
9 state 8 m
10 zero 1
11 init 8 9 10
12 bad 2
";
        let d = read_btor2(src).unwrap();
        assert_eq!(d.latches()[0].init, LatchInit::One);
        assert_eq!(d.memories()[0].init, MemInit::Zero);
        assert!(d.memories()[0].write_ports.is_empty());
    }

    #[test]
    fn guarded_write_patterns_become_enabled_ports() {
        let src = "\
1 sort bitvec 1
2 sort bitvec 2
3 sort array 2 2
4 state 3 m
5 input 1 en
6 input 2 addr
7 input 2 data
8 write 3 4 6 7
9 ite 3 5 8 4
10 next 3 4 9
11 read 2 4 6
12 redand 1 11
13 bad 12
";
        let d = read_btor2(src).unwrap();
        let m = &d.memories()[0];
        assert_eq!(m.write_ports.len(), 1);
        assert!(m.write_ports[0].en != Aig::TRUE);
        assert_eq!(m.read_ports.len(), 1);
    }

    #[test]
    fn wide_states_and_arithmetic_parse() {
        let src = "\
1 sort bitvec 4
2 state 1 count
3 one 1
4 add 1 2 3
5 next 1 2 4
6 constd 1 9
7 eq 1 2 6
";
        // `eq` must produce a 1-bit result: sort 1 is 4 bits wide.
        assert!(read_btor2(src).is_err());
        let src = src.replace("7 eq 1 2 6\n", "7 sort bitvec 1\n8 eq 7 2 6\n9 bad 8\n");
        let d = read_btor2(&src).unwrap();
        assert_eq!(d.num_latches(), 4);
        assert_eq!(d.properties().len(), 1);
    }

    #[test]
    fn malformed_inputs_err_cleanly() {
        let cases: &[&str] = &[
            "1 sort bitvec 0\n",                       // zero width
            "1 sort bitvec 65\n",                      // width cap
            "1 sort bitvec 1\n1 sort bitvec 1\n",      // non-increasing id
            "1 sort bitvec 1\n2 input 99\n",           // undefined sort
            "1 sort bitvec 1\n2 input 1\n3 and 1 2\n", // missing operand
            "1 sort bitvec 1\n2 sort bitvec 2\n3 input 1\n4 input 2\n5 and 1 3 4\n", // width mix
            "1 sort bitvec 1\n2 state 1\n3 next 1 2 2\n4 next 1 2 2\n", // duplicate next
            "1 sort bitvec 1\n2 input 1\n3 frobnicate 1 2\n", // unknown op
            "1 sort bitvec 1\n2 input 1\n3 bad 1\n",   // bad references a sort
            "1 sort bitvec 1\n2 sort array 1 1\n3 sort array 2 1\n", // array index sort is an array
            "1 sort bitvec 1\n2 state 1\n3 init 1 2 2\n", // non-constant init
            "1 sort bitvec 1\n2 const 1 01\n",         // binary constant width
            "x sort bitvec 1\n",                       // malformed id
            "1 sort bitvec 1\n2 state 1\n",            // state with no next (check fails)
        ];
        for (i, src) in cases.iter().enumerate() {
            assert!(read_btor2(src).is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "\
; a comment
1 sort bitvec 1   ; trailing comment

2 state 1 flip
3 not 1 2
4 next 1 2 3
5 bad 2
";
        assert!(read_btor2(src).is_ok());
    }

    #[test]
    fn latchless_combinational_properties_parse() {
        let src = "\
1 sort bitvec 1
2 input 1 a
3 input 1 b
4 and 1 2 3
5 constraint 4
6 bad 2
";
        let d = read_btor2(src).unwrap();
        assert_eq!(d.constraints().len(), 1);
        assert_eq!(d.properties().len(), 1);
    }
}
