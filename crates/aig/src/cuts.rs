//! K-feasible cut enumeration with truth tables.
//!
//! A *cut* of a node `n` is a set of nodes (the *leaves*) such that every
//! path from an input to `n` passes through a leaf; the logic between the
//! leaves and `n` — the cut's *cone* — computes `n` as a function of the
//! leaves alone. Enumerating all cuts with at most `k` leaves (the
//! *k-feasible* cuts) is the window-discovery step of cut-based rewriting
//! ([`crate::rewrite`]): each cut's function, captured as a truth table,
//! can be re-synthesized from scratch and compared against the cone it
//! would replace.
//!
//! Cuts are computed bottom-up in one topological pass, exactly as in
//! technology mappers: the cut set of an AND node is the pairwise merge of
//! its fanins' cut sets (unions of at most `k` leaves), plus the *trivial
//! cut* `{n}` that lets `n` itself serve as a leaf of its fanouts. Each
//! cut carries the truth table of the node over the cut leaves, maintained
//! during the merge, so no separate window simulation is needed.
//!
//! Truth tables are stored as full 6-variable tables (`u64`), with leaf
//! `i` bound to variable `i`; a cut with fewer than six leaves simply
//! does not depend on the higher variables. [`MAX_CUT_SIZE`] caps `k` at 6.

use crate::aig::{Aig, Node, NodeId};

/// Hard upper bound on cut width: a `u64` truth table covers 6 variables.
pub const MAX_CUT_SIZE: usize = 6;

/// Truth tables of the six cut variables (`x0` is bit 0 of the position
/// index). `VAR_TT[i]` is the table of the projection onto leaf `i`.
pub const VAR_TT: [u64; MAX_CUT_SIZE] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// One k-feasible cut: sorted leaves plus the node's function over them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Leaf nodes, sorted ascending, at most [`MAX_CUT_SIZE`] of them.
    pub leaves: Vec<NodeId>,
    /// Truth table of the cut's root over the leaves (leaf `i` ↔ variable
    /// `i` of [`VAR_TT`]); independent of variables `>= leaves.len()`.
    pub tt: u64,
}

impl Cut {
    /// The trivial cut `{n}`: the node as a function of itself.
    fn trivial(n: NodeId) -> Cut {
        Cut {
            leaves: vec![n],
            tt: VAR_TT[0],
        }
    }

    /// `true` for a single-leaf cut of the node itself.
    pub fn is_trivial(&self, n: NodeId) -> bool {
        self.leaves.len() == 1 && self.leaves[0] == n
    }
}

/// Knobs of the enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CutConfig {
    /// Maximum leaves per cut (clamped to `2..=`[`MAX_CUT_SIZE`]).
    pub cut_size: usize,
    /// Non-trivial cuts kept per node (smallest-leaf-count first).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> CutConfig {
        CutConfig {
            cut_size: MAX_CUT_SIZE,
            max_cuts: 8,
        }
    }
}

/// Re-expresses `tt`, a table over `leaves`, as a table over `union`
/// (which must contain every leaf). Both leaf slices are sorted.
fn expand(tt: u64, leaves: &[NodeId], union: &[NodeId]) -> u64 {
    if leaves.len() == union.len() {
        return tt;
    }
    // Position of each leaf variable inside the union.
    let mut pos = [0usize; MAX_CUT_SIZE];
    for (i, l) in leaves.iter().enumerate() {
        pos[i] = union.iter().position(|u| u == l).expect("leaf in union");
    }
    // Only the low 2^|union| positions carry information — this is the
    // hottest loop of the enumeration, so compute that block and fill
    // the rest by doubling (the table is constant in variables above
    // the union).
    let n = union.len();
    let mut out = 0u64;
    for p in 0..(1usize << n) {
        let mut q = 0usize;
        for (i, &src) in pos.iter().enumerate().take(leaves.len()) {
            q |= ((p >> src) & 1) << i;
        }
        out |= ((tt >> q) & 1) << p;
    }
    for i in n..MAX_CUT_SIZE {
        out |= out << (1usize << i);
    }
    out
}

/// Merges two operand cuts into a cut of the AND above them, or `None` if
/// the union exceeds `k` leaves.
fn merge(ca: &Cut, inv_a: bool, cb: &Cut, inv_b: bool, k: usize) -> Option<Cut> {
    // Sorted union of the leaf sets.
    let mut union: Vec<NodeId> = Vec::with_capacity(ca.leaves.len() + cb.leaves.len());
    let (mut i, mut j) = (0, 0);
    while i < ca.leaves.len() || j < cb.leaves.len() {
        let next = match (ca.leaves.get(i), cb.leaves.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
                a
            }
            (Some(&a), Some(&b)) if a < b => {
                i += 1;
                a
            }
            (Some(_), Some(&b)) => {
                j += 1;
                b
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => unreachable!(),
        };
        if union.len() == k {
            return None;
        }
        union.push(next);
    }
    let ta = expand(ca.tt, &ca.leaves, &union) ^ if inv_a { u64::MAX } else { 0 };
    let tb = expand(cb.tt, &cb.leaves, &union) ^ if inv_b { u64::MAX } else { 0 };
    Some(Cut {
        leaves: union,
        tt: ta & tb,
    })
}

/// Enumerates the k-feasible cuts of every node, indexed by node id.
///
/// Each AND node's set contains its trivial cut plus at most
/// [`CutConfig::max_cuts`] merged cuts, with dominated cuts (a superset of
/// another cut's leaves) removed and smaller cuts preferred. Inputs get
/// only their trivial cut; the constant node gets a single leafless cut
/// with the all-false table.
pub fn enumerate_cuts(aig: &Aig, config: &CutConfig) -> Vec<Vec<Cut>> {
    let k = config.cut_size.clamp(2, MAX_CUT_SIZE);
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    for (id, node) in aig.iter() {
        let cuts = match node {
            Node::Const => vec![Cut {
                leaves: Vec::new(),
                tt: 0,
            }],
            Node::Input(_) => vec![Cut::trivial(id)],
            Node::And(a, b) => {
                let mut cuts: Vec<Cut> = Vec::new();
                for ca in &all[a.node().index()] {
                    for cb in &all[b.node().index()] {
                        let Some(c) = merge(ca, a.is_inverted(), cb, b.is_inverted(), k) else {
                            continue;
                        };
                        if !cuts.contains(&c) {
                            cuts.push(c);
                        }
                    }
                }
                // Prefer small cuts, drop dominated ones (their cone is a
                // superset of a kept cut's cone and can only cost more).
                cuts.sort_by_key(|c| c.leaves.len());
                let mut kept: Vec<Cut> = Vec::new();
                for c in cuts {
                    let dominated = kept
                        .iter()
                        .any(|d| d.leaves.iter().all(|l| c.leaves.contains(l)));
                    if !dominated && kept.len() < config.max_cuts {
                        kept.push(c);
                    }
                }
                kept.push(Cut::trivial(id));
                kept
            }
        };
        all.push(cuts);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_combinational;

    /// Evaluates a cut's truth table under concrete leaf values.
    fn tt_eval(cut: &Cut, leaf_values: &[bool]) -> bool {
        let mut q = 0usize;
        for (i, &v) in leaf_values.iter().enumerate() {
            q |= (v as usize) << i;
        }
        (cut.tt >> q) & 1 == 1
    }

    #[test]
    fn expand_is_identity_on_equal_sets() {
        let l = vec![NodeId::FALSE];
        assert_eq!(expand(0xAAAA, &l, &l), 0xAAAA);
    }

    #[test]
    fn cuts_of_small_graph_match_simulation() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let c = g.new_input();
        let x = g.and(a, b);
        let y = g.and(!x, c);
        let z = g.and(x, !y);
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        // Every cut of every node must agree with concrete simulation on
        // all 8 input assignments.
        for p in 0..8u32 {
            let inputs: Vec<bool> = (0..3).map(|i| (p >> i) & 1 == 1).collect();
            let values = eval_combinational(&g, &inputs);
            for (nid, node_cuts) in cuts.iter().enumerate() {
                for cut in node_cuts {
                    let leaf_values: Vec<bool> =
                        cut.leaves.iter().map(|l| values[l.index()]).collect();
                    assert_eq!(
                        tt_eval(cut, &leaf_values),
                        values[nid],
                        "node {nid} cut {:?} pattern {p}",
                        cut.leaves
                    );
                }
            }
        }
        // z must have a cut over the primary inputs alone.
        let z_cuts = &cuts[z.node().index()];
        assert!(z_cuts
            .iter()
            .any(|cut| cut.leaves == vec![a.node(), b.node(), c.node()]));
    }

    #[test]
    fn trivial_cut_always_present() {
        let mut g = Aig::new();
        let a = g.new_input();
        let b = g.new_input();
        let x = g.and(a, b);
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        assert!(cuts[x.node().index()]
            .iter()
            .any(|c| c.is_trivial(x.node())));
        assert!(cuts[a.node().index()][0].is_trivial(a.node()));
    }

    #[test]
    fn cut_width_is_bounded() {
        let mut g = Aig::new();
        let inputs: Vec<_> = (0..8).map(|_| g.new_input()).collect();
        let mut acc = Aig::TRUE;
        for &i in &inputs {
            acc = g.and(acc, i);
        }
        for cuts in enumerate_cuts(&g, &CutConfig::default()) {
            for c in &cuts {
                assert!(c.leaves.len() <= MAX_CUT_SIZE);
            }
        }
    }
}
