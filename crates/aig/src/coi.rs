//! Cone-of-influence (COI) analysis.
//!
//! A standard front-end reduction of every verification platform,
//! including the paper's: only the latches and memories whose values can
//! reach a property matter for its truth. [`cone_of_influence`] computes
//! that set by a fixpoint over the structural dependency graph:
//!
//! * a property depends on the nodes in its combinational fan-in;
//! * a latch in the set pulls in the fan-in of its next-state function;
//! * a memory read-data input in the set pulls in the whole memory module
//!   (its read/write ports' address, enable, and data cones) — memory is
//!   treated monolithically, matching how EMM models it per-module.
//!
//! The result is expressed as kept-masks, directly usable as a sound
//! static abstraction (see `emm-bmc`'s `AbstractionSpec`): unlike
//! proof-based abstraction, COI never needs a refutation and never
//! over-abstracts, so it is the natural first pass before PBA sharpens it.

use crate::aig::{Bit, Node};
use crate::design::{Design, InputKind};

/// Latches and memories a set of properties can observe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cone {
    /// `true` for latches inside the cone.
    pub latches: Vec<bool>,
    /// `true` for memories inside the cone.
    pub memories: Vec<bool>,
    /// `true` for free inputs inside the cone (reporting only).
    pub free_inputs: Vec<bool>,
}

impl Cone {
    /// Number of latches in the cone.
    pub fn num_latches(&self) -> usize {
        self.latches.iter().filter(|&&k| k).count()
    }

    /// Number of memories in the cone.
    pub fn num_memories(&self) -> usize {
        self.memories.iter().filter(|&&k| k).count()
    }
}

/// Computes the cone of influence of the given properties (by index).
/// Environment constraints are always included: they restrict every
/// behavior, so dropping their cone would be unsound.
///
/// # Panics
///
/// Panics if a property index is out of range.
pub fn cone_of_influence(design: &Design, properties: &[usize]) -> Cone {
    let mut node_seen = vec![false; design.aig.num_nodes()];
    let mut latch_in = vec![false; design.num_latches()];
    let mut mem_in = vec![false; design.memories().len()];
    let mut stack: Vec<Bit> = Vec::new();

    for &p in properties {
        stack.push(design.properties()[p].bad);
    }
    for &c in design.constraints() {
        stack.push(c);
    }

    while let Some(bit) = stack.pop() {
        let id = bit.node();
        if node_seen[id.index()] {
            continue;
        }
        node_seen[id.index()] = true;
        match design.aig.node(id) {
            Node::Const => {}
            Node::And(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Node::Input(i) => match design.input_kind(i as usize) {
                InputKind::Free => {}
                InputKind::Latch(l) => {
                    let li = l.0 as usize;
                    if !latch_in[li] {
                        latch_in[li] = true;
                        stack.push(design.latches()[li].next.expect("well-formed design"));
                    }
                }
                InputKind::ReadData(m, _, _) => {
                    let mi = m.0 as usize;
                    if !mem_in[mi] {
                        mem_in[mi] = true;
                        // The whole module joins the cone: every port's
                        // address/enable/data cones.
                        let mem = design.memory(m);
                        for rp in &mem.read_ports {
                            stack.extend(rp.addr.bits().iter().copied());
                            stack.push(rp.en);
                        }
                        for wp in &mem.write_ports {
                            stack.extend(wp.addr.bits().iter().copied());
                            stack.push(wp.en);
                            stack.extend(wp.data.bits().iter().copied());
                        }
                    }
                }
            },
        }
    }

    let mut free_in = vec![false; design.free_inputs().len()];
    for (pos, &idx) in design.free_inputs().iter().enumerate() {
        let bit = design.input_bit(idx as usize);
        free_in[pos] = node_seen[bit.node().index()];
    }
    Cone {
        latches: latch_in,
        memories: mem_in,
        free_inputs: free_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{Design, LatchInit, MemInit};

    /// Two independent counters and a memory only one property observes.
    fn split_design() -> Design {
        let mut d = Design::new();
        let a = d.new_latch_word("a", 3, LatchInit::Zero);
        let na = d.aig.inc(&a);
        d.set_next_word(&a, &na);
        let b = d.new_latch_word("b", 4, LatchInit::Zero);
        let nb = d.aig.inc(&b);
        d.set_next_word(&b, &nb);
        let mem = d.add_memory("m", 2, 2, MemInit::Zero);
        let addr = d.new_input_word("addr", 2);
        let rd = d.add_read_port(mem, addr, crate::Aig::TRUE);
        let we = d.new_input("we");
        let waddr = d.new_input_word("waddr", 2);
        let wdata = d.new_input_word("wdata", 2);
        d.add_write_port(mem, waddr, we, wdata);
        let bad_a = d.aig.eq_const(&a, 5);
        d.add_property("on_a", bad_a);
        let bad_b = d.aig.eq_const(&b, 9);
        d.add_property("on_b", bad_b);
        let bad_m = d.aig.redor(&rd);
        d.add_property("on_mem", bad_m);
        d.check().expect("valid");
        d
    }

    #[test]
    fn property_on_counter_a_sees_only_a() {
        let d = split_design();
        let cone = cone_of_influence(&d, &[0]);
        assert_eq!(cone.num_latches(), 3, "only counter a");
        assert!(cone.latches[..3].iter().all(|&k| k));
        assert!(cone.latches[3..].iter().all(|&k| !k));
        assert_eq!(cone.num_memories(), 0);
    }

    #[test]
    fn property_on_memory_pulls_in_module_and_inputs() {
        let d = split_design();
        let cone = cone_of_influence(&d, &[2]);
        assert_eq!(cone.num_latches(), 0, "no latch feeds the memory ports");
        assert_eq!(cone.num_memories(), 1);
        // All free inputs feed the memory module (read addr + write port).
        assert!(cone.free_inputs.iter().all(|&k| k));
    }

    #[test]
    fn union_of_properties_unions_cones() {
        let d = split_design();
        let cone = cone_of_influence(&d, &[0, 1]);
        assert_eq!(cone.num_latches(), 7, "both counters");
        assert_eq!(cone.num_memories(), 0);
    }

    #[test]
    fn latch_chain_closure() {
        // l0 <- l1 <- l2: a property on l0 must pull in the whole chain.
        let mut d = Design::new();
        let (_, l0) = d.new_latch("l0", LatchInit::Zero);
        let (_, l1) = d.new_latch("l1", LatchInit::Zero);
        let (_, l2) = d.new_latch("l2", LatchInit::Zero);
        let i = d.new_input("i");
        d.set_next(l0, l1);
        d.set_next(l1, l2);
        d.set_next(l2, i);
        d.add_property("p", l0);
        d.check().expect("valid");
        let cone = cone_of_influence(&d, &[0]);
        assert_eq!(cone.num_latches(), 3);
        assert!(cone.free_inputs[0], "the driving input is in the cone");
    }

    #[test]
    fn constraints_always_included() {
        let mut d = Design::new();
        let (_, l) = d.new_latch("l", LatchInit::Zero);
        let lc = l;
        d.set_next(l, lc);
        let (_, other) = d.new_latch("other", LatchInit::Zero);
        let oc = other;
        d.set_next(other, oc);
        d.add_constraint(other); // environment pins `other` high
        d.add_property("p", l);
        d.check().expect("valid");
        let cone = cone_of_influence(&d, &[0]);
        assert_eq!(cone.num_latches(), 2, "constraint cone must be kept");
    }
}
