//! AIGER reader and writer (ASCII `aag` and binary `aig`, format 1.9).
//!
//! AIGER is the interchange format of the hardware model-checking
//! competitions: a sequential And-Inverter Graph of numbered variables,
//! where literal `2v` is variable `v` and `2v+1` its negation, literals
//! `0`/`1` are the constants, and the file lists inputs, latches (with
//! optional reset values), outputs, bad-state properties, invariant
//! constraints and 2-input AND gates. This module maps AIGER onto
//! [`Design`]:
//!
//! * inputs → [`Design::new_input`] (named from the symbol table, or
//!   `i<pos>`);
//! * latches → [`Design::new_latch`] with the 1.9 reset convention:
//!   reset `0` → [`LatchInit::Zero`], `1` → [`LatchInit::One`], the
//!   latch's own literal → [`LatchInit::Free`];
//! * outputs and `B` bad-state literals → [`Design::add_property`] (an
//!   AIGER output is the classic monitor encoding of a bad state);
//! * `C` invariant constraints → [`Design::add_constraint`];
//! * AND gates → [`Aig::and`](crate::Aig::and), which structurally hashes and
//!   constant-folds, so a parsed graph is always strashed.
//!
//! AIGER has no notion of embedded memories, so [`write_aiger_ascii`] /
//! [`write_aiger_binary`] refuse designs with memory modules
//! ([`WriteAigerError::Memories`]) — serialize those as BTOR2
//! ([`crate::btor2`]), or write out their explicit expansion. For
//! memory-free designs the writers and [`read_aiger`] round-trip:
//! `write(parse(write(d)))` is byte-identical to `write(d)`.
//!
//! Both parsers return structured [`ParseAigerError`]s — truncated
//! files, malformed delta codes, out-of-range literals and duplicate
//! symbol entries are all clean `Err`s, never panics.
//!
//! ```
//! use emm_aig::{Design, LatchInit};
//! use emm_aig::aiger::{read_aiger, write_aiger_ascii};
//!
//! let mut d = Design::new();
//! let (_, c) = d.new_latch("c", LatchInit::Zero);
//! let n = !c;
//! d.set_next(c, n);
//! d.add_property("bad", c);
//! let text = write_aiger_ascii(&d).unwrap();
//! let parsed = read_aiger(text.as_bytes()).unwrap();
//! assert_eq!(parsed.num_latches(), 1);
//! assert_eq!(write_aiger_ascii(&parsed).unwrap(), text);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::aig::{Bit, Node};
use crate::design::{Design, LatchInit};

/// Hard cap on every header count (`M`, `I`, `L`, `O`, `A`, `B`, `C`).
///
/// A fuzzed header claiming 10^18 variables must fail as a parse error,
/// not as an out-of-memory abort while pre-allocating tables.
const MAX_COUNT: u64 = 1 << 24;

/// Error from the AIGER parsers, with the 1-based line it was detected
/// on (`line == 0` for errors inside the binary AND-gate section, which
/// is not line-addressable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    /// 1-based source line, or 0 inside the binary section.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "aiger: {}", self.message)
        } else {
            write!(f, "aiger line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseAigerError {}

/// Error from the AIGER writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteAigerError {
    /// The design has embedded memory modules, which AIGER cannot
    /// express — use [`crate::btor2::write_btor2`] instead.
    Memories,
    /// The design failed [`Design::check`] (e.g. a dangling latch).
    Invalid(String),
    /// A name contains a newline, which the flat symbol table cannot
    /// carry.
    UnwritableName(String),
}

impl fmt::Display for WriteAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteAigerError::Memories => {
                write!(
                    f,
                    "aiger: designs with memories cannot be expressed in AIGER"
                )
            }
            WriteAigerError::Invalid(m) => write!(f, "aiger: invalid design: {m}"),
            WriteAigerError::UnwritableName(n) => {
                write!(f, "aiger: name contains a newline: {n:?}")
            }
        }
    }
}

impl std::error::Error for WriteAigerError {}

fn err(line: usize, message: impl Into<String>) -> ParseAigerError {
    ParseAigerError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Intermediate representation shared by the ASCII and binary parsers
// ---------------------------------------------------------------------

/// One fully parsed AIGER file, before Design construction. Literals are
/// raw AIGER literals; the `line` of every record is kept for error
/// reporting during the build step.
#[derive(Default)]
struct AigerFile {
    /// Input literals with their source line.
    inputs: Vec<(usize, usize)>,
    /// `(latch literal, next literal, reset literal, line)`.
    latches: Vec<(usize, usize, usize, usize)>,
    /// Output literals (monitor-style bad states) with source line.
    outputs: Vec<(usize, usize)>,
    /// 1.9 bad-state literals with source line.
    bads: Vec<(usize, usize)>,
    /// 1.9 invariant-constraint literals with source line.
    constraints: Vec<(usize, usize)>,
    /// `(lhs, rhs0, rhs1, line)` AND gates (`line == 0` for binary).
    ands: Vec<(usize, usize, usize, usize)>,
    /// Symbol table: `(section char, position) → name`.
    symbols: HashMap<(char, usize), String>,
}

/// Counts from an `aag`/`aig` header line.
#[derive(Clone, Copy)]
struct Header {
    binary: bool,
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
    b: usize,
    c: usize,
}

fn parse_count(token: &str, line: usize, what: &str) -> Result<usize, ParseAigerError> {
    let v: u64 = token
        .parse()
        .map_err(|_| err(line, format!("malformed {what} {token:?}")))?;
    if v > MAX_COUNT {
        return Err(err(
            line,
            format!("{what} {v} exceeds the supported maximum {MAX_COUNT}"),
        ));
    }
    Ok(v as usize)
}

fn parse_header(line_text: &str, line: usize) -> Result<Header, ParseAigerError> {
    let mut toks = line_text.split_ascii_whitespace();
    let magic = toks.next().ok_or_else(|| err(line, "empty header"))?;
    let binary = match magic {
        "aag" => false,
        "aig" => true,
        other => return Err(err(line, format!("unknown magic {other:?}"))),
    };
    let names = ["M", "I", "L", "O", "A", "B", "C"];
    let mut counts = [0usize; 7];
    let mut given = 0;
    for (slot, name) in names.iter().enumerate() {
        match toks.next() {
            Some(t) => {
                counts[slot] = parse_count(t, line, &format!("header count {name}"))?;
                given = slot + 1;
            }
            None => break,
        }
    }
    if given < 5 {
        return Err(err(line, "header needs at least the M I L O A counts"));
    }
    if toks.next().is_some() {
        return Err(err(line, "trailing tokens after header counts"));
    }
    let h = Header {
        binary,
        m: counts[0],
        i: counts[1],
        l: counts[2],
        o: counts[3],
        a: counts[4],
        b: counts[5],
        c: counts[6],
    };
    if h.i + h.l + h.a > h.m {
        return Err(err(
            line,
            format!(
                "header claims {} inputs + {} latches + {} ands with only M = {}",
                h.i, h.l, h.a, h.m
            ),
        ));
    }
    if h.binary && h.i + h.l + h.a != h.m {
        return Err(err(
            line,
            format!(
                "binary AIGER requires M = I + L + A ({} != {} + {} + {})",
                h.m, h.i, h.l, h.a
            ),
        ));
    }
    Ok(h)
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Parses an AIGER file, auto-detecting the ASCII (`aag`) or binary
/// (`aig`) variant from the magic word.
///
/// # Errors
///
/// A [`ParseAigerError`] naming the offending line for any malformed
/// input: bad counts, out-of-range or odd literals, truncated binary
/// sections, invalid delta codes, duplicate definitions or symbols, and
/// combinational cycles.
pub fn read_aiger(bytes: &[u8]) -> Result<Design, ParseAigerError> {
    let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let first = std::str::from_utf8(first).map_err(|_| err(1, "header is not valid UTF-8"))?;
    let header = parse_header(first.trim_end_matches('\r'), 1)?;
    if header.binary {
        read_binary(bytes, header)
    } else {
        let text = std::str::from_utf8(bytes).map_err(|_| err(1, "file is not valid UTF-8"))?;
        read_ascii(text, header)
    }
}

/// Parses the ASCII (`aag`) variant. See [`read_aiger`] for errors.
pub fn read_aiger_ascii(text: &str) -> Result<Design, ParseAigerError> {
    let first = text.lines().next().unwrap_or("");
    let header = parse_header(first, 1)?;
    if header.binary {
        return Err(err(1, "binary file passed to the ASCII parser"));
    }
    read_ascii(text, header)
}

fn parse_literal(
    token: &str,
    max_var: usize,
    line: usize,
    what: &str,
) -> Result<usize, ParseAigerError> {
    let v: u64 = token
        .parse()
        .map_err(|_| err(line, format!("malformed {what} literal {token:?}")))?;
    if v > 2 * max_var as u64 + 1 {
        return Err(err(
            line,
            format!("{what} literal {v} out of range (max variable {max_var})"),
        ));
    }
    Ok(v as usize)
}

fn read_ascii(text: &str, header: Header) -> Result<Design, ParseAigerError> {
    let mut file = AigerFile {
        ..AigerFile::default()
    };
    let mut lines = text.lines().enumerate().skip(1);
    let mut next_line = |what: &str| -> Result<(usize, &str), ParseAigerError> {
        lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| err(0, format!("file truncated: missing {what}")))
    };
    for pos in 0..header.i {
        let (line, t) = next_line(&format!("input {pos}"))?;
        let lit = parse_literal(t.trim(), header.m, line, "input")?;
        file.inputs.push((lit, line));
    }
    for pos in 0..header.l {
        let (line, t) = next_line(&format!("latch {pos}"))?;
        let toks: Vec<&str> = t.split_ascii_whitespace().collect();
        if toks.len() < 2 || toks.len() > 3 {
            return Err(err(line, "latch line needs `lit next [reset]`"));
        }
        let lit = parse_literal(toks[0], header.m, line, "latch")?;
        let next = parse_literal(toks[1], header.m, line, "latch next")?;
        let reset = if toks.len() == 3 {
            parse_literal(toks[2], header.m, line, "latch reset")?
        } else {
            0
        };
        file.latches.push((lit, next, reset, line));
    }
    for pos in 0..header.o {
        let (line, t) = next_line(&format!("output {pos}"))?;
        let lit = parse_literal(t.trim(), header.m, line, "output")?;
        file.outputs.push((lit, line));
    }
    for pos in 0..header.b {
        let (line, t) = next_line(&format!("bad state {pos}"))?;
        let lit = parse_literal(t.trim(), header.m, line, "bad state")?;
        file.bads.push((lit, line));
    }
    for pos in 0..header.c {
        let (line, t) = next_line(&format!("constraint {pos}"))?;
        let lit = parse_literal(t.trim(), header.m, line, "constraint")?;
        file.constraints.push((lit, line));
    }
    for pos in 0..header.a {
        let (line, t) = next_line(&format!("and gate {pos}"))?;
        let toks: Vec<&str> = t.split_ascii_whitespace().collect();
        if toks.len() != 3 {
            return Err(err(line, "and line needs `lhs rhs0 rhs1`"));
        }
        let lhs = parse_literal(toks[0], header.m, line, "and lhs")?;
        let rhs0 = parse_literal(toks[1], header.m, line, "and rhs0")?;
        let rhs1 = parse_literal(toks[2], header.m, line, "and rhs1")?;
        file.ands.push((lhs, rhs0, rhs1, line));
    }
    read_symbols(&mut file, header, lines.map(|(i, l)| (i + 1, l)))?;
    build(file, header)
}

/// Parses the symbol table and comment section shared by both variants.
fn read_symbols<'a>(
    file: &mut AigerFile,
    header: Header,
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Result<(), ParseAigerError> {
    for (line, text) in lines {
        let text = text.trim_end_matches('\r');
        if text == "c" {
            // Comment section: everything after is free-form.
            return Ok(());
        }
        if text.is_empty() {
            continue;
        }
        let kind = text.chars().next().expect("non-empty");
        let count = match kind {
            'i' => header.i,
            'l' => header.l,
            'o' => header.o,
            'b' => header.b,
            'c' => header.c,
            _ => return Err(err(line, format!("unknown symbol section {kind:?}"))),
        };
        let rest = &text[1..];
        let space = rest
            .find(' ')
            .ok_or_else(|| err(line, "symbol entry needs `<kind><pos> <name>`"))?;
        let pos: usize = rest[..space].parse().map_err(|_| {
            err(
                line,
                format!("malformed symbol position {:?}", &rest[..space]),
            )
        })?;
        if pos >= count {
            return Err(err(
                line,
                format!("symbol {kind}{pos} out of range (section has {count} entries)"),
            ));
        }
        let name = rest[space + 1..].to_string();
        if name.is_empty() {
            return Err(err(line, format!("symbol {kind}{pos} has an empty name")));
        }
        if file.symbols.insert((kind, pos), name).is_some() {
            return Err(err(line, format!("duplicate symbol entry {kind}{pos}")));
        }
    }
    Ok(())
}

/// Byte cursor over the binary variant, tracking the text-line count for
/// error reporting in the header sections.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn take_line(&mut self, what: &str) -> Result<&'a str, ParseAigerError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        if self.pos == self.bytes.len() {
            return Err(err(0, format!("file truncated: missing {what}")));
        }
        let text = &self.bytes[start..self.pos];
        self.pos += 1; // consume '\n'
        self.line += 1;
        std::str::from_utf8(text)
            .map(|t| t.trim_end_matches('\r'))
            .map_err(|_| err(self.line, format!("{what} is not valid UTF-8")))
    }

    /// Decodes one unsigned LEB128-style delta (7 bits per byte, high
    /// bit = continuation), as used by the binary AND-gate section.
    fn take_delta(&mut self) -> Result<u64, ParseAigerError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(err(0, "binary and section truncated mid-delta"));
            };
            self.pos += 1;
            if shift >= 63 {
                return Err(err(0, "binary delta code overflows 63 bits"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Parses the binary (`aig`) variant. See [`read_aiger`] for errors.
pub fn read_aiger_binary(bytes: &[u8]) -> Result<Design, ParseAigerError> {
    let mut cur = Cursor {
        bytes,
        pos: 0,
        line: 0,
    };
    let first = cur.take_line("header")?;
    let header = parse_header(first, 1)?;
    if !header.binary {
        return Err(err(1, "ASCII file passed to the binary parser"));
    }
    read_binary_body(cur, header)
}

fn read_binary(bytes: &[u8], header: Header) -> Result<Design, ParseAigerError> {
    let mut cur = Cursor {
        bytes,
        pos: 0,
        line: 0,
    };
    cur.take_line("header")?;
    read_binary_body(cur, header)
}

fn read_binary_body(mut cur: Cursor<'_>, header: Header) -> Result<Design, ParseAigerError> {
    let mut file = AigerFile {
        ..AigerFile::default()
    };
    // Inputs are implicit: variables 1..=I.
    for pos in 0..header.i {
        file.inputs.push((2 * (pos + 1), 0));
    }
    for pos in 0..header.l {
        let line_text = cur.take_line(&format!("latch {pos}"))?;
        let line = cur.line;
        let toks: Vec<&str> = line_text.split_ascii_whitespace().collect();
        if toks.is_empty() || toks.len() > 2 {
            return Err(err(line, "binary latch line needs `next [reset]`"));
        }
        let lit = 2 * (header.i + pos + 1);
        let next = parse_literal(toks[0], header.m, line, "latch next")?;
        let reset = if toks.len() == 2 {
            parse_literal(toks[1], header.m, line, "latch reset")?
        } else {
            0
        };
        file.latches.push((lit, next, reset, line));
    }
    for (count, what, dest) in [
        (header.o, "output", 0usize),
        (header.b, "bad state", 1),
        (header.c, "constraint", 2),
    ] {
        for pos in 0..count {
            let line_text = cur.take_line(&format!("{what} {pos}"))?;
            let line = cur.line;
            let lit = parse_literal(line_text.trim(), header.m, line, what)?;
            match dest {
                0 => file.outputs.push((lit, line)),
                1 => file.bads.push((lit, line)),
                _ => file.constraints.push((lit, line)),
            }
        }
    }
    // Delta-coded AND gates: lhs is implicit and strictly increasing.
    for j in 0..header.a {
        let lhs = 2 * (header.i + header.l + j + 1);
        let delta0 = cur.take_delta()?;
        if delta0 == 0 || delta0 > lhs as u64 {
            return Err(err(
                0,
                format!("and gate {j}: delta0 {delta0} out of range for lhs {lhs}"),
            ));
        }
        let rhs0 = lhs - delta0 as usize;
        let delta1 = cur.take_delta()?;
        if delta1 > rhs0 as u64 {
            return Err(err(
                0,
                format!("and gate {j}: delta1 {delta1} out of range for rhs0 {rhs0}"),
            ));
        }
        let rhs1 = rhs0 - delta1 as usize;
        file.ands.push((lhs, rhs0, rhs1, 0));
    }
    // Symbol table and comments are plain text again.
    let rest = std::str::from_utf8(&cur.bytes[cur.pos..])
        .map_err(|_| err(cur.line + 1, "symbol table is not valid UTF-8"))?;
    let base = cur.line;
    read_symbols(
        &mut file,
        header,
        rest.lines().enumerate().map(|(i, l)| (base + i + 1, l)),
    )?;
    build(file, header)
}

// ---------------------------------------------------------------------
// Design construction
// ---------------------------------------------------------------------

fn build(file: AigerFile, header: Header) -> Result<Design, ParseAigerError> {
    let mut d = Design::new();
    // `bit_of[v]` is the Design edge of AIGER variable `v` once defined.
    let mut bit_of: Vec<Option<Bit>> = vec![None; header.m + 1];
    bit_of[0] = Some(Bit::new(crate::aig::NodeId::FALSE, false));

    let define = |bit_of: &mut Vec<Option<Bit>>,
                  lit: usize,
                  line: usize,
                  what: &str,
                  bit: Bit|
     -> Result<(), ParseAigerError> {
        if !lit.is_multiple_of(2) {
            return Err(err(line, format!("{what} literal {lit} must be even")));
        }
        if lit == 0 {
            return Err(err(line, format!("{what} cannot define the constant")));
        }
        let slot = &mut bit_of[lit / 2];
        if slot.is_some() {
            return Err(err(
                line,
                format!("variable {} defined more than once", lit / 2),
            ));
        }
        *slot = Some(bit);
        Ok(())
    };

    for (pos, &(lit, line)) in file.inputs.iter().enumerate() {
        let name = match file.symbols.get(&('i', pos)) {
            Some(n) => n.clone(),
            None => format!("i{pos}"),
        };
        let bit = d.new_input(&name);
        define(&mut bit_of, lit, line, "input", bit)?;
    }
    for (pos, &(lit, _next, reset, line)) in file.latches.iter().enumerate() {
        let init = if reset == 0 {
            LatchInit::Zero
        } else if reset == 1 {
            LatchInit::One
        } else if reset == lit {
            LatchInit::Free
        } else {
            return Err(err(
                line,
                format!("latch reset {reset} must be 0, 1, or the latch literal {lit}"),
            ));
        };
        let name = match file.symbols.get(&('l', pos)) {
            Some(n) => n.clone(),
            None => format!("l{pos}"),
        };
        let (_, output) = d.new_latch(&name, init);
        define(&mut bit_of, lit, line, "latch", output)?;
    }

    // AND gates may appear in any order in the ASCII variant; resolve
    // them to a fixed point and reject anything cyclic or undefined.
    let mut remaining: Vec<(usize, usize, usize, usize)> = file.ands;
    for &(lhs, _, _, line) in &remaining {
        if !lhs.is_multiple_of(2) {
            return Err(err(line, format!("and lhs literal {lhs} must be even")));
        }
    }
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut deferred = Vec::with_capacity(remaining.len());
        for (lhs, rhs0, rhs1, line) in remaining {
            let (a, b) = (bit_of[rhs0 / 2], bit_of[rhs1 / 2]);
            match (a, b) {
                (Some(a), Some(b)) => {
                    let a = if rhs0 % 2 == 1 { !a } else { a };
                    let b = if rhs1 % 2 == 1 { !b } else { b };
                    let out = d.aig.and(a, b);
                    define(&mut bit_of, lhs, line, "and", out)?;
                    progressed = true;
                }
                _ => deferred.push((lhs, rhs0, rhs1, line)),
            }
        }
        if !progressed {
            let (lhs, _, _, line) = deferred[0];
            return Err(err(
                line,
                format!("and gate {lhs} depends on an undefined or cyclic literal"),
            ));
        }
        remaining = deferred;
    }

    let resolve =
        |bit_of: &[Option<Bit>], lit: usize, line: usize, what: &str| match bit_of[lit / 2] {
            Some(b) => Ok(if lit % 2 == 1 { !b } else { b }),
            None => Err(err(
                line,
                format!("{what} references undefined variable {}", lit / 2),
            )),
        };

    for (pos, &(_, next, _, line)) in file.latches.iter().enumerate() {
        let next = resolve(&bit_of, next, line, "latch next")?;
        let output = d.latches()[pos].output;
        d.set_next(output, next);
    }
    for (pos, &(lit, line)) in file.outputs.iter().enumerate() {
        let bad = resolve(&bit_of, lit, line, "output")?;
        let name = match file.symbols.get(&('o', pos)) {
            Some(n) => n.clone(),
            None => format!("o{pos}"),
        };
        d.add_property(&name, bad);
    }
    for (pos, &(lit, line)) in file.bads.iter().enumerate() {
        let bad = resolve(&bit_of, lit, line, "bad state")?;
        let name = match file.symbols.get(&('b', pos)) {
            Some(n) => n.clone(),
            None => format!("b{pos}"),
        };
        d.add_property(&name, bad);
    }
    for &(lit, line) in &file.constraints {
        let c = resolve(&bit_of, lit, line, "constraint")?;
        d.add_constraint(c);
    }
    d.check().map_err(|m| err(0, m))?;
    Ok(d)
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Variable numbering shared by the two writers: free inputs first (in
/// dense free-input order), then latches, then AND gates in topological
/// node order — exactly the contiguous layout the binary format
/// requires.
struct Layout {
    /// AIGER variable of every AIG node (`usize::MAX` = dead input slot,
    /// which cannot occur on a memory-free checked design).
    var_of: Vec<usize>,
    /// `(a, b)` operand edges of each AND gate, in emission order.
    ands: Vec<(Bit, Bit)>,
    /// Resolved free-input names, in dense free-input order.
    input_names: Vec<String>,
}

impl Layout {
    fn lit(&self, bit: Bit) -> usize {
        2 * self.var_of[bit.node().index()] + usize::from(bit.is_inverted())
    }
}

fn checked_name(name: &str) -> Result<&str, WriteAigerError> {
    if name.contains('\n') || name.contains('\r') {
        return Err(WriteAigerError::UnwritableName(name.to_string()));
    }
    Ok(name)
}

fn layout(design: &Design) -> Result<Layout, WriteAigerError> {
    if !design.memories().is_empty() {
        return Err(WriteAigerError::Memories);
    }
    design.check().map_err(WriteAigerError::Invalid)?;
    // Reverse name lookup for free inputs; pick the lexicographically
    // smallest alias so the choice is deterministic.
    let mut name_of: HashMap<usize, &str> = HashMap::new();
    for (name, bit) in design.names() {
        if bit.is_inverted() {
            continue;
        }
        let slot = name_of.entry(bit.code()).or_insert(name);
        if name < *slot {
            *slot = name;
        }
    }
    let free = design.free_inputs();
    let mut var_of = vec![usize::MAX; design.aig.num_nodes()];
    var_of[0] = 0;
    let mut input_names = Vec::with_capacity(free.len());
    for (pos, &idx) in free.iter().enumerate() {
        let bit = design.input_bit(idx as usize);
        var_of[bit.node().index()] = 1 + pos;
        let name = name_of
            .get(&bit.code())
            .map_or_else(|| format!("i{pos}"), |n| n.to_string());
        input_names.push(name);
    }
    for (pos, latch) in design.latches().iter().enumerate() {
        var_of[latch.output.node().index()] = 1 + free.len() + pos;
    }
    let mut next_var = 1 + free.len() + design.num_latches();
    let mut ands = Vec::with_capacity(design.aig.num_ands());
    for (id, node) in design.aig.iter() {
        if let Node::And(a, b) = node {
            var_of[id.index()] = next_var;
            next_var += 1;
            ands.push((a, b));
        }
    }
    Ok(Layout {
        var_of,
        ands,
        input_names,
    })
}

/// Header + latch/property/constraint sections shared by both writers;
/// `lit_of_latch` yields the latch's own literal for Free resets.
fn push_common(
    out: &mut String,
    design: &Design,
    lay: &Layout,
    binary: bool,
) -> Result<(), WriteAigerError> {
    use std::fmt::Write as _;
    let i = design.free_inputs().len();
    let l = design.num_latches();
    let a = lay.ands.len();
    let m = i + l + a;
    let b = design.properties().len();
    let c = design.constraints().len();
    let magic = if binary { "aig" } else { "aag" };
    if b == 0 && c == 0 {
        let _ = writeln!(out, "{magic} {m} {i} {l} 0 {a}");
    } else if c == 0 {
        let _ = writeln!(out, "{magic} {m} {i} {l} 0 {a} {b}");
    } else {
        let _ = writeln!(out, "{magic} {m} {i} {l} 0 {a} {b} {c}");
    }
    if !binary {
        for pos in 0..i {
            let _ = writeln!(out, "{}", 2 * (pos + 1));
        }
    }
    for (pos, latch) in design.latches().iter().enumerate() {
        let own = 2 * (1 + i + pos);
        let next = lay.lit(latch.next.expect("checked design"));
        if !binary {
            let _ = write!(out, "{own} ");
        }
        match latch.init {
            LatchInit::Zero => {
                let _ = writeln!(out, "{next}");
            }
            LatchInit::One => {
                let _ = writeln!(out, "{next} 1");
            }
            LatchInit::Free => {
                let _ = writeln!(out, "{next} {own}");
            }
        }
    }
    for p in design.properties() {
        let _ = writeln!(out, "{}", lay.lit(p.bad));
    }
    for &cst in design.constraints() {
        let _ = writeln!(out, "{}", lay.lit(cst));
    }
    Ok(())
}

fn push_symbols(out: &mut String, design: &Design, lay: &Layout) -> Result<(), WriteAigerError> {
    use std::fmt::Write as _;
    for (pos, name) in lay.input_names.iter().enumerate() {
        let _ = writeln!(out, "i{pos} {}", checked_name(name)?);
    }
    for (pos, latch) in design.latches().iter().enumerate() {
        if !latch.name.is_empty() {
            let _ = writeln!(out, "l{pos} {}", checked_name(&latch.name)?);
        }
    }
    for (pos, p) in design.properties().iter().enumerate() {
        if !p.name.is_empty() {
            let _ = writeln!(out, "b{pos} {}", checked_name(&p.name)?);
        }
    }
    Ok(())
}

/// Serializes a memory-free design as ASCII AIGER (`aag`, format 1.9):
/// properties become bad-state (`B`) literals, constraints become `C`
/// literals, and latch resets encode [`LatchInit`].
///
/// # Errors
///
/// [`WriteAigerError::Memories`] for designs with memory modules,
/// [`WriteAigerError::Invalid`] when [`Design::check`] fails.
pub fn write_aiger_ascii(design: &Design) -> Result<String, WriteAigerError> {
    use std::fmt::Write as _;
    let lay = layout(design)?;
    let mut out = String::new();
    push_common(&mut out, design, &lay, false)?;
    let i = design.free_inputs().len();
    let l = design.num_latches();
    for (pos, &(a, b)) in lay.ands.iter().enumerate() {
        let lhs = 2 * (1 + i + l + pos);
        let (la, lb) = (lay.lit(a), lay.lit(b));
        let (hi, lo) = if la >= lb { (la, lb) } else { (lb, la) };
        let _ = writeln!(out, "{lhs} {hi} {lo}");
    }
    push_symbols(&mut out, design, &lay)?;
    Ok(out)
}

/// Serializes a memory-free design as binary AIGER (`aig`, format 1.9)
/// with delta-coded AND gates. Same mapping and errors as
/// [`write_aiger_ascii`].
pub fn write_aiger_binary(design: &Design) -> Result<Vec<u8>, WriteAigerError> {
    let lay = layout(design)?;
    let mut text = String::new();
    push_common(&mut text, design, &lay, true)?;
    let mut out = text.into_bytes();
    let i = design.free_inputs().len();
    let l = design.num_latches();
    for (pos, &(a, b)) in lay.ands.iter().enumerate() {
        let lhs = 2 * (1 + i + l + pos);
        let (la, lb) = (lay.lit(a), lay.lit(b));
        let (hi, lo) = if la >= lb { (la, lb) } else { (lb, la) };
        debug_assert!(lhs > hi, "topological numbering violated");
        push_delta(&mut out, (lhs - hi) as u64);
        push_delta(&mut out, (hi - lo) as u64);
    }
    let mut symbols = String::new();
    push_symbols(&mut symbols, design, &lay)?;
    out.extend_from_slice(symbols.as_bytes());
    Ok(out)
}

fn push_delta(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::MemInit;
    use crate::sim::Simulator;

    /// A 3-bit counter with an unreachable and a reachable property, one
    /// free input gating the increment, and a mixed latch init.
    fn counter() -> Design {
        let mut d = Design::new();
        let en = d.new_input("en");
        let count = d.new_latch_word("count", 3, LatchInit::Zero);
        let inc = d.aig.inc(&count);
        let next = d.aig.mux_word(en, &inc, &count);
        d.set_next_word(&count, &next);
        let (_, sticky) = d.new_latch("sticky", LatchInit::One);
        d.set_next(sticky, sticky);
        let hit5 = d.aig.eq_const(&count, 5);
        let bad = d.aig.and(hit5, sticky);
        d.add_property("hits5", bad);
        d.add_constraint(sticky);
        d.check().unwrap();
        d
    }

    #[test]
    fn ascii_roundtrip_is_byte_identical() {
        let d = counter();
        let text = write_aiger_ascii(&d).unwrap();
        let parsed = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(parsed.num_latches(), d.num_latches());
        assert_eq!(parsed.free_inputs().len(), d.free_inputs().len());
        assert_eq!(parsed.properties().len(), d.properties().len());
        assert_eq!(parsed.constraints().len(), d.constraints().len());
        assert_eq!(write_aiger_ascii(&parsed).unwrap(), text);
    }

    #[test]
    fn binary_roundtrip_is_byte_identical() {
        let d = counter();
        let bytes = write_aiger_binary(&d).unwrap();
        let parsed = read_aiger(&bytes).unwrap();
        assert_eq!(write_aiger_binary(&parsed).unwrap(), bytes);
        // And the two variants describe the same design.
        let via_ascii = read_aiger(write_aiger_ascii(&d).unwrap().as_bytes()).unwrap();
        assert_eq!(
            write_aiger_binary(&via_ascii).unwrap(),
            write_aiger_binary(&parsed).unwrap()
        );
    }

    #[test]
    fn parsed_design_simulates_identically() {
        let d = counter();
        let parsed = read_aiger(write_aiger_ascii(&d).unwrap().as_bytes()).unwrap();
        let mut a = Simulator::new(&d);
        let mut b = Simulator::new(&parsed);
        for step in 0..12 {
            let inputs = [step % 3 != 0];
            let ra = a.step(&inputs);
            let rb = b.step(&inputs);
            assert_eq!(ra.property_bad, rb.property_bad, "step {step}");
        }
    }

    #[test]
    fn reset_values_map_to_latch_init() {
        let text = "aag 3 0 3 0 0 1\n2 1\n4 3 1\n6 5 6\n6\n";
        let d = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(d.latches()[0].init, LatchInit::Zero);
        assert_eq!(d.latches()[1].init, LatchInit::One);
        assert_eq!(d.latches()[2].init, LatchInit::Free);
    }

    #[test]
    fn latch_names_survive_roundtrip() {
        let d = counter();
        let parsed = read_aiger(write_aiger_ascii(&d).unwrap().as_bytes()).unwrap();
        assert_eq!(parsed.latches()[0].name, "count[0]");
        assert_eq!(parsed.properties()[0].name, "hits5");
        assert!(parsed.named("en").is_some());
    }

    #[test]
    fn outputs_become_properties() {
        let text = "aag 1 1 0 1 0\n2\n2\no0 watch_me\n";
        let d = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(d.properties().len(), 1);
        assert_eq!(d.properties()[0].name, "watch_me");
    }

    #[test]
    fn memory_designs_are_rejected_by_the_writer() {
        let mut d = Design::new();
        d.add_memory("m", 2, 2, MemInit::Zero);
        assert_eq!(write_aiger_ascii(&d), Err(WriteAigerError::Memories));
        assert_eq!(write_aiger_binary(&d), Err(WriteAigerError::Memories));
    }

    #[test]
    fn malformed_inputs_err_cleanly() {
        let cases: &[&[u8]] = &[
            b"",
            b"aag",
            b"nonsense 1 2 3",
            b"aag 1 1 1 1",                      // too few counts
            b"aag 1 2 0 0 0\n2\n4\n",            // I+L+A > M
            b"aag 99999999999999999 0 0 0 0\n",  // count overflow
            b"aag 1 1 0 0 0\n3\n",               // odd input literal
            b"aag 1 1 0 1 0\n2\n9\n",            // literal out of range
            b"aag 2 2 0 0 0\n2\n2\n",            // duplicate definition
            b"aag 2 1 1 0 0\n2\n",               // truncated latch section
            b"aag 2 1 1 0 0\n2\n4 2 5\n",        // bad reset literal
            b"aag 3 1 0 0 2\n2\n4 6 2\n6 4 2\n", // cyclic ands
            b"aag 1 1 0 0 0\n2\ni0 a\ni0 b\n",   // duplicate symbol
            b"aag 1 1 0 0 0\n2\ni7 a\n",         // symbol position out of range
            b"aag 1 1 0 0 0\n2\nz0 a\n",         // unknown symbol section
            b"aig 2 1 0 0 1\n",                  // truncated binary ands
            b"aig 2 1 0 0 1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff", // delta overflow
            b"aig 3 1 1 0 1\n4\n\x07\x01",       // delta0 out of range
        ];
        for (i, bytes) in cases.iter().enumerate() {
            assert!(read_aiger(bytes).is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn binary_requires_exact_variable_budget() {
        // M != I + L + A is legal ASCII (gaps allowed) but not binary.
        assert!(read_aiger(b"aig 5 1 0 0 1\n\x02\x01").is_err());
    }

    #[test]
    fn comment_section_is_ignored() {
        let text = "aag 1 1 0 1 0\n2\n2\nc\nanything at all\n1234\n";
        assert!(read_aiger(text.as_bytes()).is_ok());
    }
}
