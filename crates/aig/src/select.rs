//! Global candidate selection: maximum-weight non-overlapping choice.
//!
//! The rewriting pass ([`crate::rewrite`]) measures, for every candidate
//! cone replacement, the nodes it would *free* — the root plus its
//! maximal fanout-free cone. Accepting candidates greedily in traversal
//! order double-counts those savings whenever two candidates' freed sets
//! overlap: both claim the shared nodes, but the nodes die only once.
//! This module solves the underlying combinatorial problem instead: given
//! candidates that each **claim** a set of resources (node indices),
//! **read** another set (nodes they keep alive without freeing — for
//! rewriting, the cut leaves), and carry a **weight** (measured gain),
//! pick a maximum-weight subset in which no item's claims overlap
//! another's claims *or* reads. A read/claim overlap is a real conflict:
//! the reader would keep alive a node the claimer was credited with
//! freeing, silently shrinking the claimer's realized gain.
//!
//! The problem is weighted independent set on the conflict graph —
//! NP-hard in general, but the instances here are small (hundreds of
//! candidates, claim sets of a handful of nodes) and sparse, so a greedy
//! pass refined by 1-exchange is accurate in practice and, unlike the
//! traversal-order greedy it replaces, never counts a freed node twice:
//! the gains of a selected set add up.
//!
//! The solver is deliberately generic over plain `usize` resource slots so
//! it can be unit-tested (and reused) without dragging in AIG types.

/// One selectable item: the slots it claims and reads, plus its weight.
#[derive(Clone, Debug)]
pub struct Selectable {
    /// Resource slots this item claims exclusively (for rewriting: the
    /// node indices freed by the replacement, root included).
    pub claims: Vec<usize>,
    /// Slots this item keeps alive without claiming them (for rewriting:
    /// the cut leaves the replacement is built over). Reads conflict with
    /// other items' claims but not with other reads.
    pub reads: Vec<usize>,
    /// The item's value (for rewriting: the measured AND-count gain).
    pub weight: i64,
}

/// Counters of one [`select_nonoverlapping`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Items offered to the solver.
    pub candidates: usize,
    /// Items selected.
    pub selected: usize,
    /// Positive-weight items left unselected because of conflicts.
    pub dropped_overlap: usize,
    /// Improving 1-exchanges applied after the initial greedy pass.
    pub exchange_swaps: usize,
    /// Total weight of the selected set.
    pub selected_weight: i64,
}

/// Selected items currently conflicting with item `i`: owners of any slot
/// `i` claims or reads, plus selected readers of any slot `i` claims.
fn conflicts_of(
    items: &[Selectable],
    owner: &[Option<usize>],
    readers: &[Vec<usize>],
    i: usize,
) -> Vec<usize> {
    let mut c: Vec<usize> = Vec::new();
    for &s in &items[i].claims {
        if let Some(o) = owner[s] {
            c.push(o);
        }
        c.extend_from_slice(&readers[s]);
    }
    for &s in &items[i].reads {
        if let Some(o) = owner[s] {
            c.push(o);
        }
    }
    c.sort_unstable();
    c.dedup();
    c
}

fn deselect(
    items: &[Selectable],
    owner: &mut [Option<usize>],
    readers: &mut [Vec<usize>],
    selected: &mut [bool],
    j: usize,
) {
    selected[j] = false;
    for &s in &items[j].claims {
        owner[s] = None;
    }
    for &s in &items[j].reads {
        readers[s].retain(|&r| r != j);
    }
}

fn select(
    items: &[Selectable],
    owner: &mut [Option<usize>],
    readers: &mut [Vec<usize>],
    selected: &mut [bool],
    i: usize,
) {
    selected[i] = true;
    for &s in &items[i].claims {
        owner[s] = Some(i);
    }
    for &s in &items[i].reads {
        readers[s].push(i);
    }
}

/// Picks a maximum-weight subset of `items` with no claim/claim or
/// claim/read overlaps (greedy by weight, refined by 1-exchange).
/// `num_slots` bounds the slot indices appearing in any claim or read
/// set. Items without positive weight are never selected — they cannot
/// improve on leaving them out.
///
/// Returns a selection mask over `items` plus counters. Deterministic:
/// ties are broken by item index.
///
/// # Panics
///
/// Panics if an item claims or reads a slot `>= num_slots`.
///
/// # Examples
///
/// Two overlapping items and an independent one — the heavier of the
/// overlapping pair wins, the independent item rides along:
///
/// ```
/// use emm_aig::select::{select_nonoverlapping, Selectable};
///
/// let items = vec![
///     Selectable { claims: vec![0, 1], reads: vec![], weight: 3 },
///     Selectable { claims: vec![1, 2], reads: vec![], weight: 5 },
///     Selectable { claims: vec![7], reads: vec![2], weight: 1 },
/// ];
/// let (picked, stats) = select_nonoverlapping(&items, 8);
/// assert_eq!(picked, vec![false, true, false]);
/// assert_eq!(stats.selected_weight, 5);
/// ```
///
/// (The third item is rejected because it *reads* slot 2, which the
/// selected second item claims to free.)
pub fn select_nonoverlapping(
    items: &[Selectable],
    num_slots: usize,
) -> (Vec<bool>, SelectionStats) {
    let mut stats = SelectionStats {
        candidates: items.len(),
        ..SelectionStats::default()
    };
    let mut selected = vec![false; items.len()];
    // Owner of each slot (index of the selected item claiming it) and the
    // selected items reading it.
    let mut owner: Vec<Option<usize>> = vec![None; num_slots];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); num_slots];
    // Heaviest first; ties by index for determinism.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (-items[i].weight, i));

    // The first upward sweep is the pure greedy pass (nothing is selected
    // yet, so every admission has an empty conflict set). After that, two
    // exchange moves refine the set until neither improves:
    //
    // * **up**: a rejected item heavier than the selected items it
    //   conflicts with evicts them and takes their place;
    // * **down**: a selected item lighter than a disjoint packing of the
    //   rejected items *only it* blocks is evicted for that packing.
    //
    // Every applied move strictly increases the selected weight, so the
    // loop terminates; the round cap only bounds the tail.
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 4 {
        changed = false;
        rounds += 1;
        // Upward sweep: fill gaps, evict lighter conflict sets. Items
        // with no positive weight can never improve the selected total
        // over leaving them out, so they are never admitted.
        for &i in &order {
            if selected[i] || items[i].weight <= 0 {
                continue;
            }
            let conflicting = conflicts_of(items, &owner, &readers, i);
            let conflict_weight: i64 = conflicting.iter().map(|&j| items[j].weight).sum();
            if !conflicting.is_empty() && items[i].weight <= conflict_weight {
                continue;
            }
            for &j in &conflicting {
                deselect(items, &mut owner, &mut readers, &mut selected, j);
            }
            select(items, &mut owner, &mut readers, &mut selected, i);
            if !conflicting.is_empty() {
                stats.exchange_swaps += 1;
            }
            changed = true;
        }
        // Downward sweep: replace a selected item by a heavier packing of
        // the rejected items that conflict with it alone.
        for j in 0..items.len() {
            if !selected[j] {
                continue;
            }
            let mut pack: Vec<usize> = Vec::new();
            let mut pack_claims: Vec<usize> = Vec::new();
            let mut pack_reads: Vec<usize> = Vec::new();
            let mut pack_weight = 0i64;
            for &i in &order {
                if selected[i] || i == j || items[i].weight <= 0 {
                    continue;
                }
                // Conflicts with the current selection must be `j` alone,
                // and the pack itself must stay internally conflict-free
                // (claims disjoint from pack claims and reads; reads
                // disjoint from pack claims — read/read sharing is fine).
                if !conflicts_of(items, &owner, &readers, i)
                    .iter()
                    .all(|&c| c == j)
                {
                    continue;
                }
                let compatible = items[i]
                    .claims
                    .iter()
                    .all(|s| !pack_claims.contains(s) && !pack_reads.contains(s))
                    && items[i].reads.iter().all(|s| !pack_claims.contains(s));
                if !compatible {
                    continue;
                }
                pack.push(i);
                pack_claims.extend_from_slice(&items[i].claims);
                pack_reads.extend_from_slice(&items[i].reads);
                pack_weight += items[i].weight;
            }
            if pack_weight > items[j].weight {
                deselect(items, &mut owner, &mut readers, &mut selected, j);
                for &i in &pack {
                    select(items, &mut owner, &mut readers, &mut selected, i);
                }
                stats.exchange_swaps += 1;
                changed = true;
            }
        }
    }

    stats.selected = selected.iter().filter(|&&s| s).count();
    stats.dropped_overlap = items
        .iter()
        .zip(&selected)
        .filter(|(it, &s)| !s && it.weight > 0)
        .count();
    stats.selected_weight = (0..items.len())
        .filter(|&i| selected[i])
        .map(|i| items[i].weight)
        .sum();
    (selected, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(claims: &[usize], weight: i64) -> Selectable {
        Selectable {
            claims: claims.to_vec(),
            reads: Vec::new(),
            weight,
        }
    }

    fn reader(claims: &[usize], reads: &[usize], weight: i64) -> Selectable {
        Selectable {
            claims: claims.to_vec(),
            reads: reads.to_vec(),
            weight,
        }
    }

    #[test]
    fn empty_input_selects_nothing() {
        let (picked, stats) = select_nonoverlapping(&[], 4);
        assert!(picked.is_empty());
        assert_eq!(stats, SelectionStats::default());
    }

    #[test]
    fn disjoint_items_are_all_selected() {
        let items = vec![item(&[0], 1), item(&[1], 2), item(&[2, 3], 3)];
        let (picked, stats) = select_nonoverlapping(&items, 4);
        assert_eq!(picked, vec![true, true, true]);
        assert_eq!(stats.selected, 3);
        assert_eq!(stats.dropped_overlap, 0);
        assert_eq!(stats.selected_weight, 6);
    }

    #[test]
    fn heavier_of_two_overlapping_wins() {
        let items = vec![item(&[0, 1], 2), item(&[1, 2], 5)];
        let (picked, stats) = select_nonoverlapping(&items, 3);
        assert_eq!(picked, vec![false, true]);
        assert_eq!(stats.dropped_overlap, 1);
        assert_eq!(stats.selected_weight, 5);
    }

    #[test]
    fn reads_conflict_with_claims_but_not_reads() {
        // Item 1 reads slot 0, which item 0 claims to free: selecting
        // both would keep the "freed" node alive, so they conflict and
        // the heavier item 0 wins. Items 0 and 2 share only a *read*
        // (slot 9) — no conflict, both selected.
        let items = vec![
            reader(&[0, 1], &[9], 3),
            reader(&[5], &[0], 2),
            reader(&[6], &[9], 2),
        ];
        let (picked, stats) = select_nonoverlapping(&items, 10);
        assert_eq!(picked, vec![true, false, true]);
        assert_eq!(stats.selected_weight, 5);
        assert_eq!(stats.dropped_overlap, 1);
    }

    #[test]
    fn selected_reader_blocks_lighter_claimer() {
        // Item 0 (selected first) reads slot 3; item 1 claims to free it.
        // Selecting item 1 would kill a node item 0 relies on staying
        // alive — the conflict is caught through the readers index.
        let items = vec![reader(&[7], &[3], 5), item(&[3], 4)];
        let (picked, stats) = select_nonoverlapping(&items, 8);
        assert_eq!(picked, vec![true, false]);
        assert_eq!(stats.selected_weight, 5);
    }

    #[test]
    fn exchange_recovers_from_greedy_trap() {
        // Greedy takes the weight-10 hub first, blocking both spokes
        // (weight 6 each). The hub is then exchanged away for a spoke, and
        // the refill sweep admits the other spoke: total 12 > 10.
        let items = vec![item(&[0, 1], 10), item(&[0], 6), item(&[1], 6)];
        let (picked, stats) = select_nonoverlapping(&items, 2);
        assert_eq!(picked, vec![false, true, true]);
        assert_eq!(stats.selected_weight, 12);
        assert!(stats.exchange_swaps >= 1);
    }

    #[test]
    fn ties_break_by_index_deterministically() {
        let items = vec![item(&[0], 4), item(&[0], 4)];
        let (picked, _) = select_nonoverlapping(&items, 1);
        assert_eq!(picked, vec![true, false]);
    }

    #[test]
    fn non_positive_weights_are_never_selected() {
        // A conflict-free zero/negative item must stay out: admitting it
        // can only lower the total below the empty-set baseline. Such
        // items are also not "overlap-dropped" — they were never
        // eligible.
        let items = vec![item(&[0], -3), item(&[1], 0), item(&[2], 2)];
        let (picked, stats) = select_nonoverlapping(&items, 3);
        assert_eq!(picked, vec![false, false, true]);
        assert_eq!(stats.selected_weight, 2);
        assert_eq!(stats.dropped_overlap, 0);
    }

    #[test]
    fn selected_gains_add_up_exactly() {
        // Chain of pairwise overlaps: 1-2, 2-3, 3-4. Optimal is {1,3} or
        // alternating sets; whatever is chosen, claims must be disjoint.
        let items = vec![
            item(&[0, 1], 3),
            item(&[1, 2], 4),
            item(&[2, 3], 3),
            item(&[3, 4], 4),
        ];
        let (picked, stats) = select_nonoverlapping(&items, 5);
        let mut seen = std::collections::HashSet::new();
        for (i, &p) in picked.iter().enumerate() {
            if p {
                for &s in &items[i].claims {
                    assert!(seen.insert(s), "slot {s} claimed twice");
                }
            }
        }
        assert_eq!(stats.selected_weight, 8, "picks the two weight-4 items");
    }
}
