//! Property tests for cut enumeration, NPN semicanonicalization, and the
//! cut-based rewriting pass: on random graphs, rewriting must preserve
//! combinational semantics exactly (checked with the word-parallel
//! simulator) under both the default and the wide (k = 6, global
//! selection) configurations, never grow the graph, k = 6 cut truth
//! tables must agree with word-parallel simulation, and semicanonical
//! forms must be invariant under every NPN transform.

use emm_aig::cuts::{enumerate_cuts, CutConfig, MAX_CUT_SIZE};
use emm_aig::rewrite::{npn_semicanonical, rewrite_aig, NpnTransform, RewriteConfig};
use emm_aig::sim::eval_combinational_words;
use emm_aig::{Aig, Bit};
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministic pattern words (SplitMix64).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a random graph from an op tape: each op combines two existing
/// edges (with inversions) through AND, OR, XOR, or MUX. Returns the graph
/// and every edge created (inputs included).
fn build_graph(num_inputs: usize, ops: &[(u8, u16, u16)]) -> (Aig, Vec<Bit>) {
    let mut g = Aig::new();
    let mut edges: Vec<Bit> = (0..num_inputs).map(|_| g.new_input()).collect();
    for &(kind, a, b) in ops {
        let x = edges[a as usize % edges.len()];
        let x = if a & 0x8000 != 0 { !x } else { x };
        let y = edges[b as usize % edges.len()];
        let y = if b & 0x8000 != 0 { !y } else { y };
        let e = match kind % 4 {
            0 => g.and(x, y),
            1 => g.or(x, y),
            2 => g.xor(x, y),
            _ => {
                let s = edges[(kind as usize / 4) % edges.len()];
                g.mux(s, x, y)
            }
        };
        edges.push(e);
    }
    (g, edges)
}

/// The flat word-parallel input block for a graph, derived from `seed`.
fn input_words(g: &Aig, words: usize, seed: u64) -> Vec<u64> {
    (0..g.num_inputs() * words)
        .map(|i| mix(seed ^ mix(i as u64)))
        .collect()
}

/// Value of `bit` under pattern word `w` of a word-parallel evaluation.
fn word_of(values: &[u64], words: usize, bit: Bit, w: usize) -> u64 {
    let v = values[bit.node().index() * words + w];
    if bit.is_inverted() {
        !v
    } else {
        v
    }
}

/// A random permutation of `0..6` derived from a seed.
fn seeded_perm(seed: u64) -> [u8; MAX_CUT_SIZE] {
    let mut perm = [0u8, 1, 2, 3, 4, 5];
    for i in (1..MAX_CUT_SIZE).rev() {
        let j = (mix(seed ^ i as u64) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Checks one rewriting configuration against word-parallel simulation.
fn check_rewrite_preserves(g: &Aig, roots: &[Bit], config: &RewriteConfig, seed: u64) {
    let r = rewrite_aig(g, roots, config);
    assert!(r.stats.ands_after <= r.stats.ands_before);
    let words = 2usize;
    let values_old = eval_combinational_words(g, &input_words(g, words, seed), words);
    let values_new = eval_combinational_words(&r.aig, &input_words(&r.aig, words, seed), words);
    assert_eq!(g.num_inputs(), r.aig.num_inputs(), "inputs preserved");
    for (i, &root) in roots.iter().enumerate() {
        let mapped = r.map_bit(root);
        for w in 0..words {
            assert_eq!(
                word_of(&values_old, words, root, w),
                word_of(&values_new, words, mapped, w),
                "k={} root {} word {}",
                config.cut_size,
                i,
                w
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rewriting preserves the function of every root on 128 patterns of
    /// word-parallel simulation, and never grows the graph — under the
    /// default configuration, the wide k = 6 configuration, and the
    /// traversal-order greedy acceptance policy.
    #[test]
    fn rewrite_preserves_combinational_semantics(
        num_inputs in 2usize..8,
        ops in vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..60),
        seed in any::<u64>(),
    ) {
        let (g, edges) = build_graph(num_inputs, &ops);
        // The last few edges are the roots whose functions must survive.
        let roots: Vec<Bit> = edges.iter().rev().take(4).copied().collect();
        check_rewrite_preserves(&g, &roots, &RewriteConfig::default(), seed);
        check_rewrite_preserves(&g, &roots, &RewriteConfig::wide(), seed);
        check_rewrite_preserves(
            &g,
            &roots,
            &RewriteConfig { global_select: false, ..RewriteConfig::default() },
            seed,
        );
    }

    /// Every enumerated cut's truth table — k = 6, `u64` tables — agrees
    /// with word-parallel simulation of the graph on every node.
    #[test]
    fn cut_truth_tables_agree_with_simulation(
        num_inputs in 2usize..8,
        ops in vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..30),
        seed in any::<u64>(),
    ) {
        let (g, _) = build_graph(num_inputs, &ops);
        let config = CutConfig { cut_size: MAX_CUT_SIZE, max_cuts: 8 };
        let cuts = enumerate_cuts(&g, &config);
        let words = 1usize;
        let values = eval_combinational_words(&g, &input_words(&g, words, seed), words);
        for (nid, node_cuts) in cuts.iter().enumerate() {
            for cut in node_cuts {
                prop_assert!(cut.leaves.len() <= MAX_CUT_SIZE);
                for p in 0..64usize {
                    // Pattern p of the single simulation word.
                    let mut q = 0usize;
                    for (i, l) in cut.leaves.iter().enumerate() {
                        q |= (((values[l.index()] >> p) & 1) as usize) << i;
                    }
                    prop_assert_eq!(
                        (cut.tt >> q) & 1,
                        (values[nid] >> p) & 1,
                        "node {} cut {:?} pattern {}", nid, &cut.leaves, p
                    );
                }
            }
        }
    }

    /// Semicanonical forms are invariant under arbitrary input/output
    /// negations and permutations, and the returned transform actually
    /// reaches the semicanonical table.
    #[test]
    fn semicanonical_is_transform_invariant(
        tt in any::<u64>(),
        perm_seed in any::<u64>(),
        input_neg in 0u8..64,
        output_neg in any::<bool>(),
    ) {
        let (canon, reached_by) = npn_semicanonical(tt);
        prop_assert_eq!(reached_by.apply(tt), canon);
        let t = NpnTransform {
            perm: seeded_perm(perm_seed),
            input_neg,
            output_neg,
        };
        let transformed = t.apply(tt);
        prop_assert_eq!(
            npn_semicanonical(transformed).0, canon,
            "tt {:#018x} transformed {:#018x}", tt, transformed
        );
    }

    /// Narrow-support functions hiding in wide tables: a table depending
    /// on few variables must canonicalize identically however the unused
    /// variables are permuted or negated — the shape every cut with fewer
    /// than six leaves produces.
    #[test]
    fn semicanonical_ignores_unused_variables(
        low_tt in any::<u16>(),
        perm_seed in any::<u64>(),
        input_neg in 0u8..64,
    ) {
        // Expand a 4-variable table to 6 variables (x4/x5 unused).
        let mut tt = 0u64;
        for p in 0..64usize {
            if (low_tt >> (p & 15)) & 1 == 1 {
                tt |= 1 << p;
            }
        }
        let (canon, _) = npn_semicanonical(tt);
        let t = NpnTransform {
            perm: seeded_perm(perm_seed),
            input_neg,
            output_neg: false,
        };
        prop_assert_eq!(npn_semicanonical(t.apply(tt)).0, canon);
    }
}
