//! Property tests: word-level AIG operators agree with `u64` arithmetic.

use emm_aig::sim::eval_combinational;
use emm_aig::{Aig, Word};
use proptest::prelude::*;

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn to_inputs(values: &[(u64, usize)]) -> Vec<bool> {
    let mut out = Vec::new();
    for &(v, w) in values {
        for i in 0..w {
            out.push((v >> i) & 1 == 1);
        }
    }
    out
}

fn eval_word(g: &Aig, w: &Word, inputs: &[bool]) -> u64 {
    let values = eval_combinational(g, inputs);
    w.bits()
        .iter()
        .enumerate()
        .map(|(i, &b)| (b.apply(values[b.node().index()]) as u64) << i)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_sub_roundtrip(x in any::<u64>(), y in any::<u64>(), width in 1usize..16) {
        let (x, y) = (x & mask(width), y & mask(width));
        let mut g = Aig::new();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let sum = g.add(&a, &b);
        let back = g.sub(&sum, &b);
        let inputs = to_inputs(&[(x, width), (y, width)]);
        prop_assert_eq!(eval_word(&g, &sum, &inputs), x.wrapping_add(y) & mask(width));
        prop_assert_eq!(eval_word(&g, &back, &inputs), x, "(x+y)-y == x");
    }

    #[test]
    fn comparisons_total_order(x in any::<u64>(), y in any::<u64>(), width in 1usize..12) {
        let (x, y) = (x & mask(width), y & mask(width));
        let mut g = Aig::new();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let lt = g.ult(&a, &b);
        let le = g.ule(&a, &b);
        let gt = g.ugt(&a, &b);
        let eq = g.eq_word(&a, &b);
        let inputs = to_inputs(&[(x, width), (y, width)]);
        let values = eval_combinational(&g, &inputs);
        let read = |bit: emm_aig::Bit| bit.apply(values[bit.node().index()]);
        prop_assert_eq!(read(lt), x < y);
        prop_assert_eq!(read(le), x <= y);
        prop_assert_eq!(read(gt), x > y);
        prop_assert_eq!(read(eq), x == y);
        // Exactly one of lt/eq/gt holds.
        prop_assert_eq!(read(lt) as u32 + read(eq) as u32 + read(gt) as u32, 1);
    }

    #[test]
    fn bitwise_and_demorgan(x in any::<u64>(), y in any::<u64>(), width in 1usize..16) {
        let (x, y) = (x & mask(width), y & mask(width));
        let mut g = Aig::new();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let and = g.word_and(&a, &b);
        let or = g.word_or(&a, &b);
        let xor = g.word_xor(&a, &b);
        // De Morgan: !(a & b) == !a | !b
        let na = g.word_not(&a);
        let nb = g.word_not(&b);
        let nand = g.word_not(&and);
        let demorgan = g.word_or(&na, &nb);
        let inputs = to_inputs(&[(x, width), (y, width)]);
        prop_assert_eq!(eval_word(&g, &and, &inputs), x & y);
        prop_assert_eq!(eval_word(&g, &or, &inputs), x | y);
        prop_assert_eq!(eval_word(&g, &xor, &inputs), x ^ y);
        prop_assert_eq!(eval_word(&g, &nand, &inputs), eval_word(&g, &demorgan, &inputs));
    }

    #[test]
    fn mux_and_resize(x in any::<u64>(), y in any::<u64>(), sel in any::<bool>(),
                      width in 1usize..12) {
        let (x, y) = (x & mask(width), y & mask(width));
        let mut g = Aig::new();
        let s = g.new_input();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let m = g.mux_word(s, &a, &b);
        let wide = g.resize(&m, width + 4);
        let narrow = g.resize(&m, 1);
        let mut inputs = vec![sel];
        inputs.extend(to_inputs(&[(x, width), (y, width)]));
        let expect = if sel { x } else { y };
        prop_assert_eq!(eval_word(&g, &m, &inputs), expect);
        prop_assert_eq!(eval_word(&g, &wide, &inputs), expect, "zero extension");
        prop_assert_eq!(eval_word(&g, &narrow, &inputs), expect & 1, "truncation");
    }

    #[test]
    fn structural_hashing_is_idempotent(x in any::<u64>(), width in 1usize..10) {
        let x = x & mask(width);
        let mut g = Aig::new();
        let a = g.input_word(width);
        let b = g.input_word(width);
        let first = g.add(&a, &b);
        let gates_after_first = g.num_ands();
        let second = g.add(&a, &b);
        prop_assert_eq!(g.num_ands(), gates_after_first, "no new gates for a repeat build");
        prop_assert_eq!(&first, &second);
        let _ = x;
    }

    #[test]
    fn redor_redand(x in any::<u64>(), width in 1usize..16) {
        let x = x & mask(width);
        let mut g = Aig::new();
        let a = g.input_word(width);
        let ro = g.redor(&a);
        let ra = g.redand(&a);
        let inputs = to_inputs(&[(x, width)]);
        let values = eval_combinational(&g, &inputs);
        prop_assert_eq!(ro.apply(values[ro.node().index()]), x != 0);
        prop_assert_eq!(ra.apply(values[ra.node().index()]), x == mask(width));
    }
}
