//! Differential semantics testing of the EMM encoder: random multi-port
//! interface traffic is pinned to concrete values in the SAT instance, and
//! the forced read data is compared against a software memory model that
//! implements Section 2.3 directly.
//!
//! This checks the encoder itself (both forwarding encodings), independent
//! of the unroller and the engine, across random numbers of ports, widths,
//! depths, and both initial-state modes.

use std::collections::HashMap;

use emm_core::{
    EmmEncoder, EmmOptions, ForwardingEncoding, MemoryFrameLits, MemoryShape, PortLits,
};
use emm_sat::{CnfSink, Lit, SolveResult, Solver};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `(frame, port, data lits, expected value, observed address)` of a read.
type ReadCheck = (usize, usize, Vec<Lit>, Option<u64>, u64);

/// `(frame, port)` identifying one access.
type AccessKey = (usize, usize);

/// One concrete port action for a frame.
#[derive(Clone, Copy, Debug)]
struct Access {
    addr: u64,
    en: bool,
    data: u64,
}

fn fresh_port(s: &mut Solver, aw: usize, dw: usize) -> PortLits {
    PortLits {
        addr: (0..aw).map(|_| CnfSink::new_var(s).positive()).collect(),
        en: CnfSink::new_var(s).positive(),
        data: (0..dw).map(|_| CnfSink::new_var(s).positive()).collect(),
    }
}

fn fix(s: &mut Solver, l: Lit, v: bool) {
    s.add_clause(&[if v { l } else { !l }]);
}

fn fix_word(s: &mut Solver, lits: &[Lit], value: u64) {
    for (i, &l) in lits.iter().enumerate() {
        fix(s, l, (value >> i) & 1 == 1);
    }
}

fn read_word(s: &Solver, lits: &[Lit]) -> u64 {
    lits.iter()
        .enumerate()
        .map(|(i, &l)| (s.model_value(l).expect("model") as u64) << i)
        .sum()
}

/// The reference: a sparse memory with Section 2.3 semantics. Writes land
/// at end of frame (higher port wins a same-address race, matching the
/// encoder's chain order); reads see the pre-frame contents.
struct RefMemory {
    contents: HashMap<u64, u64>,
    /// Addresses never written so far (reads there return the initial
    /// value: `Some(0)` for zero-init, `None` = unconstrained for
    /// arbitrary-init, where the test only checks consistency).
    zero_init: bool,
}

impl RefMemory {
    fn read(&self, addr: u64) -> Option<u64> {
        match self.contents.get(&addr) {
            Some(&v) => Some(v),
            None => {
                if self.zero_init {
                    Some(0)
                } else {
                    None
                }
            }
        }
    }

    fn commit_writes(&mut self, writes: &[Access]) {
        // Ascending port order: later (higher) ports overwrite.
        for w in writes {
            if w.en {
                self.contents.insert(w.addr, w.data);
            }
        }
    }
}

fn run_scenario(rng: &mut StdRng, encoding: ForwardingEncoding, zero_init: bool) {
    let aw = rng.random_range(2..=4usize);
    let dw = rng.random_range(1..=5usize);
    let n_read = rng.random_range(1..=3usize);
    let n_write = rng.random_range(1..=3usize);
    let depth = rng.random_range(1..=6usize);
    let shape = MemoryShape {
        addr_width: aw,
        data_width: dw,
        read_ports: n_read,
        write_ports: n_write,
        arbitrary_init: !zero_init,
    };
    let mut enc = EmmEncoder::new(
        &[shape],
        EmmOptions {
            encoding,
            ..EmmOptions::default()
        },
    );
    let mut solver = Solver::new();

    let mut reference = RefMemory {
        contents: HashMap::new(),
        zero_init,
    };
    // (frame, port, lits, Option<expected>, observed addr) for checks.
    let mut read_checks: Vec<ReadCheck> = Vec::new();
    // For arbitrary init: track per-address consistency of initial reads.
    let mut first_seen: HashMap<u64, AccessKey> = HashMap::new();
    let mut consistency_pairs: Vec<(AccessKey, AccessKey, u64)> = Vec::new();

    for k in 0..depth {
        let frame = MemoryFrameLits {
            reads: (0..n_read)
                .map(|_| fresh_port(&mut solver, aw, dw))
                .collect(),
            writes: (0..n_write)
                .map(|_| fresh_port(&mut solver, aw, dw))
                .collect(),
        };
        enc.add_frame(&mut solver, std::slice::from_ref(&frame));

        // Concrete writes, avoiding same-frame same-address races (the
        // paper's no-race assumption; racy behavior is port-priority and
        // is covered by a dedicated unit test).
        let mut used_addrs: Vec<u64> = Vec::new();
        let mut writes: Vec<Access> = Vec::new();
        for w in 0..n_write {
            let mut addr = rng.random_range(0..(1u64 << aw));
            let en = rng.random_bool(0.6);
            if en {
                while used_addrs.contains(&addr) {
                    addr = (addr + 1) & ((1 << aw) - 1);
                }
                used_addrs.push(addr);
            }
            let data = rng.random_range(0..(1u64 << dw));
            fix_word(&mut solver, &frame.writes[w].addr, addr);
            fix(&mut solver, frame.writes[w].en, en);
            fix_word(&mut solver, &frame.writes[w].data, data);
            writes.push(Access { addr, en, data });
        }
        // Concrete reads (pre-frame contents).
        for r in 0..n_read {
            let addr = rng.random_range(0..(1u64 << aw));
            let en = rng.random_bool(0.8);
            fix_word(&mut solver, &frame.reads[r].addr, addr);
            fix(&mut solver, frame.reads[r].en, en);
            if en {
                let expected = reference.read(addr);
                if expected.is_none() {
                    // Arbitrary-init unwritten read: record for the
                    // consistency check instead.
                    match first_seen.get(&addr) {
                        None => {
                            first_seen.insert(addr, (k, r));
                        }
                        Some(&first) => {
                            consistency_pairs.push((first, (k, r), addr));
                        }
                    }
                }
                read_checks.push((k, r, frame.reads[r].data.clone(), expected, addr));
            }
        }
        reference.commit_writes(&writes);
    }

    assert_eq!(
        solver.solve(),
        SolveResult::Sat,
        "pinned traffic must be satisfiable"
    );
    // Forced reads match the reference.
    let mut values: HashMap<(usize, usize), u64> = HashMap::new();
    for (k, r, lits, expected, addr) in &read_checks {
        let got = read_word(&solver, lits);
        values.insert((*k, *r), got);
        if let Some(e) = expected {
            assert_eq!(
                got, *e,
                "frame {k} port {r} addr {addr}: encoding {encoding:?}, zero_init {zero_init}"
            );
        }
    }
    // Arbitrary-init: all unwritten reads of one address agree (eq. (6)).
    for (a, b, addr) in consistency_pairs {
        assert_eq!(
            values.get(&a),
            values.get(&b),
            "initial reads of address {addr} must agree: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn random_traffic_exclusive_zero_init() {
    let mut rng = StdRng::seed_from_u64(0xE101);
    for _ in 0..60 {
        run_scenario(&mut rng, ForwardingEncoding::Exclusive, true);
    }
}

#[test]
fn random_traffic_exclusive_arbitrary_init() {
    let mut rng = StdRng::seed_from_u64(0xE102);
    for _ in 0..60 {
        run_scenario(&mut rng, ForwardingEncoding::Exclusive, false);
    }
}

#[test]
fn random_traffic_direct_zero_init() {
    let mut rng = StdRng::seed_from_u64(0xE103);
    for _ in 0..60 {
        run_scenario(&mut rng, ForwardingEncoding::Direct, true);
    }
}

#[test]
fn random_traffic_direct_arbitrary_init() {
    let mut rng = StdRng::seed_from_u64(0xE104);
    for _ in 0..60 {
        run_scenario(&mut rng, ForwardingEncoding::Direct, false);
    }
}

/// The two encodings are logically equivalent: on random *symbolic*
/// scenarios (nothing pinned), requiring the exclusive model's read data
/// to differ from the direct model's — with interfaces tied together — is
/// unsatisfiable.
#[test]
fn encodings_are_equivalent() {
    let mut rng = StdRng::seed_from_u64(0xE105);
    for _ in 0..25 {
        let aw = rng.random_range(2..=3usize);
        let dw = rng.random_range(1..=3usize);
        let n_read = rng.random_range(1..=2usize);
        let n_write = rng.random_range(1..=2usize);
        let depth = rng.random_range(1..=4usize);
        let shape = MemoryShape {
            addr_width: aw,
            data_width: dw,
            read_ports: n_read,
            write_ports: n_write,
            arbitrary_init: false,
        };
        let mut solver = Solver::new();
        let mut enc_a = EmmEncoder::new(
            &[shape],
            EmmOptions {
                encoding: ForwardingEncoding::Exclusive,
                ..EmmOptions::default()
            },
        );
        let mut enc_b = EmmEncoder::new(
            &[shape],
            EmmOptions {
                encoding: ForwardingEncoding::Direct,
                ..EmmOptions::default()
            },
        );
        // Shared write interfaces and read addresses/enables; separate read
        // data variables for the two encodings.
        let mut diffs: Vec<Lit> = Vec::new();
        for _ in 0..depth {
            let writes: Vec<PortLits> = (0..n_write)
                .map(|_| fresh_port(&mut solver, aw, dw))
                .collect();
            let reads_a: Vec<PortLits> = (0..n_read)
                .map(|_| fresh_port(&mut solver, aw, dw))
                .collect();
            let reads_b: Vec<PortLits> = reads_a
                .iter()
                .map(|p| PortLits {
                    addr: p.addr.clone(),
                    en: p.en,
                    data: (0..dw)
                        .map(|_| CnfSink::new_var(&mut solver).positive())
                        .collect(),
                })
                .collect();
            enc_a.add_frame(
                &mut solver,
                &[MemoryFrameLits {
                    reads: reads_a.clone(),
                    writes: writes.clone(),
                }],
            );
            enc_b.add_frame(
                &mut solver,
                &[MemoryFrameLits {
                    reads: reads_b.clone(),
                    writes,
                }],
            );
            for (pa, pb) in reads_a.iter().zip(&reads_b) {
                for (&la, &lb) in pa.data.iter().zip(&pb.data) {
                    // diff <-> (la XOR lb), but only under RE (disabled
                    // reads are unconstrained in both encodings).
                    let diff = CnfSink::new_var(&mut solver).positive();
                    solver.add_clause(&[!diff, la, lb]);
                    solver.add_clause(&[!diff, !la, !lb]);
                    let gated = solver.add_and_gate(diff, pa.en);
                    diffs.push(gated);
                }
            }
        }
        // Some enabled read data differs?
        solver.add_clause(&diffs);
        assert_eq!(
            solver.solve(),
            SolveResult::Unsat,
            "the two encodings must force identical enabled read data"
        );
    }
}

// ---------------------------------------------------------------------
// Comparator memoization
// ---------------------------------------------------------------------

/// Runs `frames` frames of 1R1W traffic where every frame's ports reuse the
/// *same* address literal vectors (the situation BMC unrolling produces for
/// stalled or constant address cones) and returns the encoder stats.
type Traffic = (Solver, emm_core::EmmStats, Vec<(PortLits, PortLits)>);

fn encode_repeated_addr_traffic(cache: bool, frames: usize) -> Traffic {
    let shape = MemoryShape {
        addr_width: 4,
        data_width: 4,
        read_ports: 1,
        write_ports: 1,
        arbitrary_init: false,
    };
    let mut enc = EmmEncoder::new(
        &[shape],
        EmmOptions {
            comparator_cache: cache,
            ..EmmOptions::default()
        },
    );
    let mut s = Solver::new();
    // One shared address word for the write port and one for the read port,
    // reused by every frame.
    let waddr: Vec<Lit> = (0..4)
        .map(|_| CnfSink::new_var(&mut s).positive())
        .collect();
    let raddr: Vec<Lit> = (0..4)
        .map(|_| CnfSink::new_var(&mut s).positive())
        .collect();
    let mut ports = Vec::new();
    for _ in 0..frames {
        let rp = PortLits {
            addr: raddr.clone(),
            en: CnfSink::new_var(&mut s).positive(),
            data: (0..4)
                .map(|_| CnfSink::new_var(&mut s).positive())
                .collect(),
        };
        let wp = PortLits {
            addr: waddr.clone(),
            en: CnfSink::new_var(&mut s).positive(),
            data: (0..4)
                .map(|_| CnfSink::new_var(&mut s).positive())
                .collect(),
        };
        enc.add_frame(
            &mut s,
            &[MemoryFrameLits {
                reads: vec![rp.clone()],
                writes: vec![wp.clone()],
            }],
        );
        ports.push((rp, wp));
    }
    (s, enc.stats(), ports)
}

/// Every frame after the first compares the same (write addr, read addr)
/// literal pair: all but the first comparison must hit the cache, saving
/// `4m + 1` clauses each.
#[test]
fn comparator_cache_hits_on_repeated_address_pairs() {
    let frames = 6;
    let (_, cached, _) = encode_repeated_addr_traffic(true, frames);
    let (_, naive, _) = encode_repeated_addr_traffic(false, frames);
    assert_eq!(naive.cmp_cache_hits, 0);
    // Frame k (k >= 1) compares the read address against k write frames,
    // all with identical literals: 1 miss at frame 1, hits everywhere else.
    let total_cmps: usize = (0..frames).sum();
    assert_eq!(
        cached.cmp_cache_hits,
        total_cmps - 1,
        "all but one comparison memoized"
    );
    let m = 4;
    assert_eq!(
        naive.clauses - cached.clauses,
        (total_cmps - 1) * (4 * m + 1),
        "each hit saves the paper's 4m+1 comparator clauses"
    );
    assert_eq!(
        naive.aux_vars - cached.aux_vars,
        (total_cmps - 1) * (m + 1),
        "each hit saves m+1 comparator variables"
    );
}

/// The memoized encoding forces exactly the same read data as the naive
/// one on concrete forwarding traffic.
#[test]
fn comparator_cache_preserves_forwarding_semantics() {
    for cache in [false, true] {
        let (mut s, _, ports) = encode_repeated_addr_traffic(cache, 3);
        // All frames share addresses: write 0xB at frame 0 to address 6,
        // read it back at frame 2.
        fix_word(&mut s, &ports[0].1.addr, 6);
        fix_word(&mut s, &ports[0].0.addr, 6);
        for (k, (rp, wp)) in ports.iter().enumerate() {
            fix(&mut s, rp.en, k == 2);
            fix(&mut s, wp.en, k == 0);
            fix_word(&mut s, &wp.data, if k == 0 { 0xB } else { 0 });
        }
        assert_eq!(s.solve(), SolveResult::Sat, "cache={cache}");
        assert_eq!(read_word(&s, &ports[2].0.data), 0xB, "cache={cache}");
    }
}
