//! An in-tree work-stealing thread pool for parallel verification jobs.
//!
//! The container this crate builds in is offline, so no external
//! executor (rayon, crossbeam) is available; this module implements the
//! small slice of one the verification pipeline needs with nothing but
//! `std::thread` and mutex-guarded deques:
//!
//! * **Batch execution** — [`Pool::run`] takes a `Vec` of boxed jobs
//!   and returns one [`JobResult`] per job, *in submission order*,
//!   whatever order the workers finished in. Jobs may borrow from the
//!   caller's stack (the batch runs under [`std::thread::scope`]).
//! * **Work stealing** — each worker owns a deque seeded round-robin;
//!   an overflow injector holds the rest. A worker drains its own deque
//!   from the front, then the injector, then steals from the *back* of
//!   a sibling's deque, so long-running jobs don't strand work behind
//!   them.
//! * **Cooperative shutdown** — the pool carries a
//!   [`ResourceGovernor`]; once its cancellation token trips, remaining
//!   queued jobs are drained as [`JobResult::Skipped`] instead of
//!   executed. Jobs already running are expected to poll their own
//!   (usually [forked](ResourceGovernor::fork)) governor and stop
//!   early.
//! * **Panic containment** — a panicking job is caught and reported as
//!   [`JobResult::Panicked`] with its message; sibling jobs and the
//!   caller are unaffected.
//! * **Deterministic single-thread fallback** — with one worker (the
//!   default, and what `EMM_WORKERS=1` selects) the batch runs inline
//!   on the caller's thread in submission order, with no threads
//!   spawned at all. Differential tests lean on this: the parallel
//!   paths must produce bit-identical results at every worker count,
//!   and worker count 1 *is* the sequential reference.
//!
//! The pool deliberately has no long-lived worker threads: each
//! [`Pool::run`] call scopes its own. Verification batches are seconds
//! to minutes of SAT work, so thread spawn cost is noise, and scoping
//! lets jobs borrow the design/model being verified without `Arc`
//! gymnastics.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use emm_aig::fraig::{ClassReport, SweepRunner, SweepTask};
use emm_sat::ResourceGovernor;

/// A unit of work for [`Pool::run`]: boxed so batches are homogeneous,
/// `Send` so workers can execute it, `'env` so it may borrow from the
/// caller's stack (the batch is scoped).
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// An index-tagged job queue (a worker deque or the shared injector).
type JobQueue<'env, T> = Mutex<VecDeque<(usize, Job<'env, T>)>>;

/// Outcome of one job of a [`Pool::run`] batch.
#[derive(Debug)]
pub enum JobResult<T> {
    /// The job ran to completion.
    Done(T),
    /// The job was drained unexecuted because the pool's governor was
    /// cancelled before a worker picked it up.
    Skipped,
    /// The job panicked; the payload is the panic message. The panic
    /// was contained — sibling jobs and the caller are unaffected.
    Panicked(String),
}

impl<T> JobResult<T> {
    /// The completed value, if the job ran; `None` for skipped or
    /// panicked jobs.
    pub fn into_option(self) -> Option<T> {
        match self {
            JobResult::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the job ran to completion.
    pub fn is_done(&self) -> bool {
        matches!(self, JobResult::Done(_))
    }

    /// Whether the job was drained unexecuted by a cancellation.
    pub fn is_skipped(&self) -> bool {
        matches!(self, JobResult::Skipped)
    }
}

/// Jobs seeded directly into each worker's deque before the remainder
/// goes to the shared injector: enough to start every worker without a
/// lock convoy on the injector, small enough that most of a big batch
/// stays centrally available.
const SEED_PER_WORKER: usize = 2;

/// The work-stealing pool. See the [module docs](self) for the design.
///
/// # Examples
///
/// ```
/// use emm_core::pool::Pool;
///
/// let pool = Pool::new(4);
/// let inputs = [1u64, 2, 3, 4, 5];
/// let results = pool.run(
///     inputs
///         .iter()
///         .map(|&x| Box::new(move || x * x) as Box<dyn FnOnce() -> u64 + Send>)
///         .collect(),
/// );
/// let squares: Vec<u64> = results.into_iter().map(|r| r.into_option().unwrap()).collect();
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
    governor: ResourceGovernor,
}

impl Default for Pool {
    /// A single-worker (inline, deterministic) pool.
    fn default() -> Pool {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool with `workers` worker threads (clamped to at least 1) and
    /// an unlimited governor. One worker means strictly inline,
    /// deterministic execution.
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
            governor: ResourceGovernor::unlimited(),
        }
    }

    /// Returns a copy wired to `governor`: once its cancellation token
    /// trips, queued jobs are drained as [`JobResult::Skipped`].
    pub fn with_governor(mut self, governor: ResourceGovernor) -> Pool {
        self.governor = governor;
        self
    }

    /// A pool sized by the `EMM_WORKERS` environment variable (the CI
    /// parallel matrix sets it); defaults to 1 — sequential — when
    /// unset or unparsable.
    pub fn from_env() -> Pool {
        let workers = std::env::var("EMM_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Pool::new(workers)
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pool's shutdown governor.
    pub fn governor(&self) -> &ResourceGovernor {
        &self.governor
    }

    /// Runs a batch of jobs and returns their results in submission
    /// order. Blocks until every job is done, skipped, or panicked.
    pub fn run<'env, T: Send>(&self, jobs: Vec<Job<'env, T>>) -> Vec<JobResult<T>> {
        self.run_counted(jobs).0
    }

    /// [`Pool::run`] plus per-worker executed-job counts (index 0 is
    /// the inline path's count on the sequential fallback). The counts
    /// exist for the work-stealing unit tests; production callers use
    /// [`Pool::run`].
    fn run_counted<'env, T: Send>(
        &self,
        jobs: Vec<Job<'env, T>>,
    ) -> (Vec<JobResult<T>>, Vec<usize>) {
        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            // Deterministic fallback: inline, submission order, no
            // threads. Cancellation still drains the remainder.
            let mut out = Vec::with_capacity(n);
            let mut executed = 0usize;
            for job in jobs {
                if self.governor.is_cancelled() {
                    out.push(JobResult::Skipped);
                    continue;
                }
                executed += 1;
                out.push(Self::execute(job));
            }
            return (out, vec![executed]);
        }

        let deques: Vec<JobQueue<'env, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let injector: JobQueue<'env, T> = Mutex::new(VecDeque::new());
        {
            let mut inj = injector.lock().unwrap();
            for (idx, job) in jobs.into_iter().enumerate() {
                if idx < workers * SEED_PER_WORKER {
                    deques[idx % workers].lock().unwrap().push_back((idx, job));
                } else {
                    inj.push_back((idx, job));
                }
            }
        }
        let results: Vec<Mutex<Option<JobResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let remaining = AtomicUsize::new(n);
        let executed: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();

        /// Own deque front, then the injector, then steal from the back
        /// of a sibling's deque.
        fn next_job<'env, T>(
            deques: &[JobQueue<'env, T>],
            injector: &JobQueue<'env, T>,
            w: usize,
        ) -> Option<(usize, Job<'env, T>)> {
            if let Some(j) = deques[w].lock().unwrap().pop_front() {
                return Some(j);
            }
            if let Some(j) = injector.lock().unwrap().pop_front() {
                return Some(j);
            }
            for off in 1..deques.len() {
                let victim = (w + off) % deques.len();
                if let Some(j) = deques[victim].lock().unwrap().pop_back() {
                    return Some(j);
                }
            }
            None
        }

        std::thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                let injector = &injector;
                let results = &results;
                let remaining = &remaining;
                let executed = &executed;
                let governor = &self.governor;
                s.spawn(move || loop {
                    match next_job(deques, injector, w) {
                        Some((idx, job)) => {
                            let r = if governor.is_cancelled() {
                                JobResult::Skipped
                            } else {
                                executed[w].fetch_add(1, Ordering::Relaxed);
                                Self::execute(job)
                            };
                            *results[idx].lock().unwrap() = Some(r);
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            // No queued work anywhere; in-flight jobs
                            // on other workers cannot enqueue more, so
                            // an empty batch counter means done.
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });

        let out = results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("worker recorded every job")
            })
            .collect();
        let counts = executed.into_iter().map(|c| c.into_inner()).collect();
        (out, counts)
    }

    /// Executes one job with panic containment.
    fn execute<'env, T>(job: Job<'env, T>) -> JobResult<T> {
        match catch_unwind(AssertUnwindSafe(job)) {
            Ok(v) => JobResult::Done(v),
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "job panicked".to_string()
                };
                JobResult::Panicked(msg)
            }
        }
    }
}

impl SweepRunner for Pool {
    fn run_sweep<'a>(&self, tasks: Vec<SweepTask<'a>>) -> Vec<Option<ClassReport>> {
        self.run(tasks)
            .into_iter()
            .map(JobResult::into_option)
            .collect()
    }

    fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    use super::*;

    fn boxed<'env, T, F: FnOnce() -> T + Send + 'env>(f: F) -> Job<'env, T> {
        Box::new(f)
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let pool = Pool::new(4);
        let jobs: Vec<Job<'_, usize>> = (0..32)
            .map(|i| {
                boxed(move || {
                    // Stagger so completion order differs from
                    // submission order.
                    if i % 3 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i * 10
                })
            })
            .collect();
        let results = pool.run(jobs);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.into_option(), Some(i * 10));
        }
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = Pool::new(2);
        let data: Vec<u64> = (0..16).collect();
        let jobs: Vec<Job<'_, u64>> = data
            .chunks(4)
            .map(|chunk| boxed(move || chunk.iter().sum()))
            .collect();
        let sums: Vec<u64> = pool
            .run(jobs)
            .into_iter()
            .map(|r| r.into_option().unwrap())
            .collect();
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn work_is_stolen_from_a_busy_worker() {
        let pool = Pool::new(4);
        // 8 jobs seed 2 per worker; job 0 pins worker 0 long enough for
        // a sibling to steal its second seeded job (job 4).
        let jobs: Vec<Job<'_, ()>> = (0..8)
            .map(|i| {
                boxed(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(200));
                    }
                })
            })
            .collect();
        let (results, executed) = pool.run_counted(jobs);
        assert!(results.iter().all(JobResult::is_done));
        assert_eq!(executed.iter().sum::<usize>(), 8);
        assert!(
            executed[0] < 2,
            "worker 0 was seeded 2 jobs but slept through one; a sibling \
             should have stolen it (executed: {executed:?})"
        );
    }

    #[test]
    fn panic_in_a_job_is_contained() {
        let pool = Pool::new(2);
        let jobs: Vec<Job<'_, u32>> = vec![
            boxed(|| 1),
            boxed(|| panic!("deliberate test panic")),
            boxed(|| 3),
        ];
        let results = pool.run(jobs);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_done());
        assert!(results[2].is_done());
        match &results[1] {
            JobResult::Panicked(msg) => assert!(msg.contains("deliberate test panic")),
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_drains_the_queue_sequentially() {
        let governor = ResourceGovernor::unlimited();
        let pool = Pool::new(1).with_governor(governor.clone());
        let jobs: Vec<Job<'_, u32>> = vec![
            boxed(|| 1),
            boxed(move || {
                governor.cancel();
                2
            }),
            boxed(|| 3),
            boxed(|| 4),
        ];
        let results = pool.run(jobs);
        // Inline fallback runs in submission order: jobs after the
        // cancelling one are drained, not executed.
        assert!(results[0].is_done());
        assert!(results[1].is_done());
        assert!(results[2].is_skipped());
        assert!(results[3].is_skipped());
    }

    #[test]
    fn cancellation_drains_the_queue_in_parallel() {
        let governor = ResourceGovernor::unlimited();
        let cancelled = AtomicBool::new(true);
        let pool = Pool::new(2).with_governor(governor.clone());
        // Pre-cancelled governor: every job must drain as Skipped and
        // the batch must still terminate.
        governor.cancel();
        let jobs: Vec<Job<'_, ()>> = (0..16)
            .map(|_| {
                let cancelled = &cancelled;
                boxed(move || {
                    cancelled.store(false, Ordering::Relaxed);
                })
            })
            .collect();
        let results = pool.run(jobs);
        assert!(results.iter().all(JobResult::is_skipped));
        assert!(
            cancelled.load(Ordering::Relaxed),
            "no job body may run after cancellation"
        );
    }

    #[test]
    fn worker_count_is_clamped_and_capped() {
        assert_eq!(Pool::new(0).workers(), 1);
        let pool = Pool::new(8);
        // More workers than jobs: the batch still completes.
        let results = pool.run(
            (0..3)
                .map(|i| boxed(move || i))
                .collect::<Vec<Job<'_, i32>>>(),
        );
        assert_eq!(
            results
                .into_iter()
                .map(|r| r.into_option().unwrap())
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
