//! # emm-core — Efficient Memory Modeling
//!
//! The primary contribution of *"Verification of Embedded Memory Systems
//! using Efficient Memory Modeling"* (Ganai, Gupta, Ashar — DATE 2005),
//! reproduced as a library:
//!
//! * [`emm::EmmEncoder`] — per-depth memory-modeling constraints for
//!   SAT-based BMC supporting **multiple memories with multiple read and
//!   write ports** (Section 4.1), **arbitrary initial memory state** with
//!   the eq. (6) consistency constraints needed for induction proofs
//!   (Section 4.2), and **abstraction selectors** that let proof-based
//!   abstraction drop whole memories/ports from the model (Section 4.3);
//! * [`explicit::explicit_model`] — the *Explicit Modeling* baseline that
//!   expands memories into `2^AW × DW` latches, used in the paper's
//!   comparisons (Tables 1–2);
//! * [`iface`] — the interface-literal types and the paper's closed-form
//!   constraint-size formulas (`((4m+2n+1)kW + 2n+1)R` clauses, `3kWR`
//!   gates), asserted exactly by this crate's tests.
//!
//! The encoder is written against [`emm_sat::CnfSink`], so it can target a
//! live solver, a counting sink, or a CNF dump. The BMC driver that invokes
//! it after every unrolling lives in the `emm-bmc` crate.
//!
//! The crate also hosts [`pool`] — the in-tree work-stealing thread pool
//! the parallel verification paths (batched fraig sweeps, parallel PBA
//! dispatch, the `emm-bmc` verification server) schedule their jobs on.

#![warn(missing_docs)]

pub mod emm;
pub mod explicit;
pub mod iface;
pub mod pool;
pub mod races;

pub use emm::{
    EmmEncoder, EmmOptions, EmmStats, ForwardingEncoding, InitRead, SelectorGranularity,
};
pub use explicit::{explicit_model, ExplicitMap};
pub use iface::{MemoryFrameLits, MemoryShape, PortLits};
pub use pool::{Job, JobResult, Pool};
pub use races::add_race_checkers;

/// Derives the [`MemoryShape`]s of a design's memories (in design order).
pub fn memory_shapes(design: &emm_aig::Design) -> Vec<MemoryShape> {
    design
        .memories()
        .iter()
        .map(|m| MemoryShape {
            addr_width: m.addr_width,
            data_width: m.data_width,
            read_ports: m.read_ports.len(),
            write_ports: m.write_ports.len(),
            arbitrary_init: matches!(m.init, emm_aig::MemInit::Arbitrary),
        })
        .collect()
}
