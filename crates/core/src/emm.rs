//! Efficient Memory Modeling constraints (the paper's contribution).
//!
//! [`EmmEncoder`] implements Sections 3, 4.1 and 4.2 of the paper: at every
//! BMC unrolling depth it emits, per memory and per read port, the
//! constraints that preserve the data-forwarding semantics
//!
//! ```text
//! (E_{j,k,w,r} ∧ WE_{j,w} ∧ RE_{k,r} ∧ ∀p ∀ j<i<k (¬E_{i,k,p,r} ∨ ¬WE_{i,p}))
//!     → (RD_{k,r} = WD_{j,w})                                   — eq. (3)
//! ```
//!
//! using the *exclusive valid-read signals* of eq. (4):
//!
//! ```text
//! PS_{k,k,0,r} = RE_{k,r}
//! PS_{i,k,p,r} = ¬s_{i,k,p,r} ∧ PS_{i,k,p+1,r}    (PS_{i,k,W,r} = PS_{i+1,k,0,r})
//! S_{i,k,p,r}  =  s_{i,k,p,r} ∧ PS_{i,k,p+1,r}
//! ```
//!
//! where `s_{i,k,p,r} = E_{i,k,p,r} ∧ WE_{i,p}`. Once the SAT solver decides
//! some `S_{i,k,p,r} = 1`, every other matching pair is implied invalid
//! immediately — the property the paper credits for the speedup over a naive
//! encoding (provided here too, as [`ForwardingEncoding::Direct`], for
//! ablation).
//!
//! For memories with **arbitrary initial contents** (Section 4.2), each read
//! access gets a fresh symbolic word `V_{k,r}`; `PS_{0,k,0,r}` is exactly the
//! paper's `N` condition ("no write has occurred to this address"), and
//! eq. (6) consistency constraints tie equal-address initial reads together —
//! the ingredient that makes SAT-based induction proofs sound.
//!
//! Every read-data constraint can be guarded by a **selector literal**
//! (per memory or per read port): assuming the selector activates the
//! constraints, and a failed-assumption core names the memories/ports a
//! refutation actually used — how EMM combines with proof-based abstraction
//! (Section 4.3).

use std::collections::HashMap;

use emm_sat::{CnfSink, FaultSite, Lit, ResourceGovernor};

use crate::iface::{MemoryFrameLits, MemoryShape, PortLits};

/// Granularity of abstraction selectors.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SelectorGranularity {
    /// No selectors; constraints are unconditional.
    #[default]
    None,
    /// One selector per memory module.
    PerMemory,
    /// One selector per (memory, read port).
    PerReadPort,
}

/// Which forwarding encoding to emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ForwardingEncoding {
    /// The paper's exclusive valid-read chain (eq. (4)) — default.
    #[default]
    Exclusive,
    /// A direct implication encoding of eq. (3) without the one-hot
    /// exclusivity signals; used by the ablation benchmark to measure what
    /// the exclusivity constraints buy (the comparison in \[18\]).
    Direct,
}

/// Encoder options.
#[derive(Clone, Copy, Debug)]
pub struct EmmOptions {
    /// Abstraction selector granularity.
    pub selectors: SelectorGranularity,
    /// Forwarding encoding.
    pub encoding: ForwardingEncoding,
    /// Emit eq. (6) initial-state consistency constraints for arbitrary-init
    /// memories. Disabling reproduces the paper's remark that correctness of
    /// quicksort's P1/P2 "can not be shown without adding these constraints".
    pub skip_init_consistency: bool,
    /// Memoize address-equality comparators: when the same pair of address
    /// literal vectors is compared again (common once BMC unrolling makes
    /// address cones reuse earlier frames' literals), the cached equality
    /// literal is returned instead of re-encoding the `4m + 1` clauses of
    /// Section 3 — this covers both the forwarding comparisons and the
    /// eq. (6) pairs. On by default.
    pub comparator_cache: bool,
}

impl Default for EmmOptions {
    fn default() -> EmmOptions {
        EmmOptions {
            selectors: SelectorGranularity::default(),
            encoding: ForwardingEncoding::default(),
            skip_init_consistency: false,
            comparator_cache: true,
        }
    }
}

/// Size accounting in the paper's reporting categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmmStats {
    /// CNF clauses emitted (address comparison + read data + validity +
    /// eq. (6)).
    pub clauses: usize,
    /// 2-input gates emitted (the exclusivity chains of eq. (4)).
    pub gates: usize,
    /// Auxiliary variables created (comparison bits, chain signals, symbolic
    /// initial words).
    pub aux_vars: usize,
    /// eq. (6) read-pair constraints emitted.
    pub init_pairs: usize,
    /// Address comparators answered from the memo cache instead of being
    /// re-encoded (each hit saves `4m + 1` clauses and `m + 1` variables).
    pub cmp_cache_hits: usize,
}

impl EmmStats {
    fn add(&mut self, other: EmmStats) {
        self.clauses += other.clauses;
        self.gates += other.gates;
        self.aux_vars += other.aux_vars;
        self.init_pairs += other.init_pairs;
        self.cmp_cache_hits += other.cmp_cache_hits;
    }
}

/// One memoized comparator: the canonically ordered address pair and its
/// equality literal.
type CmpEntry = (Vec<Lit>, Vec<Lit>, Lit);

/// Pairwise memo of already-encoded address comparators, keyed by the
/// canonically ordered pair of address literal vectors (equality is
/// symmetric). Shared across memories and frames of one encoder — the
/// cross-frame reuse is what makes it effective: once unrolling feeds a
/// port the same address literals as an earlier frame (a stalled latch
/// word, a constant address, a shared cone), every comparison against it
/// is free.
#[derive(Debug, Default)]
struct CmpCache {
    enabled: bool,
    /// Buckets keyed by a hash of the canonically ordered pair; each entry
    /// stores the full pair for collision-safe comparison. Lookups hash
    /// and compare slices directly, so cache hits allocate nothing.
    map: HashMap<u64, Vec<CmpEntry>>,
}

impl CmpCache {
    /// Canonical operand order (equality is symmetric).
    fn ordered<'a>(a: &'a [Lit], b: &'a [Lit]) -> (&'a [Lit], &'a [Lit]) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn hash_pair(a: &[Lit], b: &[Lit]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        a.hash(&mut h);
        b.hash(&mut h);
        h.finish()
    }

    fn get(&self, a: &[Lit], b: &[Lit]) -> Option<Lit> {
        let (x, y) = Self::ordered(a, b);
        let bucket = self.map.get(&Self::hash_pair(x, y))?;
        bucket
            .iter()
            .find(|(ka, kb, _)| ka == x && kb == y)
            .map(|&(_, _, e)| e)
    }

    fn insert(&mut self, a: &[Lit], b: &[Lit], e: Lit) {
        let (x, y) = Self::ordered(a, b);
        self.map
            .entry(Self::hash_pair(x, y))
            .or_default()
            .push((x.to_vec(), y.to_vec(), e));
    }
}

/// A recorded initial-state read access (for eq. (6) and for extracting
/// initial memory contents from a counterexample model).
#[derive(Clone, Debug)]
pub struct InitRead {
    /// Read-address literals (LSB first) at the access frame.
    pub addr: Vec<Lit>,
    /// `N` — no write to this address before the access (`PS_{0,k,0,r}`).
    pub n: Lit,
    /// Fresh symbolic data word `V` (the initial contents read).
    pub v: Vec<Lit>,
    /// Read port index (for per-port selector guards).
    pub port: usize,
}

#[derive(Debug)]
struct MemState {
    shape: MemoryShape,
    /// Write-port literals of every frame seen so far.
    write_history: Vec<Vec<PortLits>>,
    /// Frames processed (equals `write_history.len()`).
    depth: usize,
    /// Selector literals: one (PerMemory) or one per read port (PerReadPort).
    selectors: Vec<Lit>,
    init_reads: Vec<InitRead>,
    stats: EmmStats,
    per_frame: Vec<EmmStats>,
}

/// The EMM constraint generator (`EMM_Constraints` in the paper's Fig. 2/3).
///
/// One encoder instance accompanies one BMC run; call
/// [`EmmEncoder::add_frame`] after each unrolling with the interface
/// literals of that frame.
#[derive(Debug)]
pub struct EmmEncoder {
    options: EmmOptions,
    mems: Vec<MemState>,
    /// Comparator memo shared by all memories (see [`CmpCache`]).
    cmp: CmpCache,
    /// Pipeline governor polled at comparator granularity during emission.
    governor: ResourceGovernor,
    /// Set once a governor trip aborted emission mid-frame.
    interrupted: bool,
}

impl EmmEncoder {
    /// Creates an encoder for memories of the given shapes.
    ///
    /// # Panics
    ///
    /// Panics if any shape has a zero address or data width.
    pub fn new(shapes: &[MemoryShape], options: EmmOptions) -> EmmEncoder {
        for s in shapes {
            assert!(
                s.addr_width > 0 && s.data_width > 0,
                "degenerate memory shape"
            );
        }
        EmmEncoder {
            options,
            mems: shapes
                .iter()
                .map(|&shape| MemState {
                    shape,
                    write_history: Vec::new(),
                    depth: 0,
                    selectors: Vec::new(),
                    init_reads: Vec::new(),
                    stats: EmmStats::default(),
                    per_frame: Vec::new(),
                })
                .collect(),
            cmp: CmpCache {
                enabled: options.comparator_cache,
                map: HashMap::new(),
            },
            governor: ResourceGovernor::unlimited(),
            interrupted: false,
        }
    }

    /// Installs a pipeline governor. [`EmmEncoder::add_frame`] polls it at
    /// comparator granularity (each `(write frame, write port)` pair of
    /// every read access) and aborts emission mid-frame when it trips,
    /// setting [`EmmEncoder::interrupted`]. Each encoded address
    /// comparator is also reported to the governor's fault injector as
    /// [`FaultSite::EmmComparator`].
    pub fn set_governor(&mut self, governor: ResourceGovernor) {
        self.governor = governor;
    }

    /// Whether a governor trip aborted constraint emission mid-frame.
    ///
    /// An interrupted encoder's most recent frame is **under-constrained**
    /// (its exclusivity chain and validity clause were not emitted), so
    /// satisfiable answers from the owning solver can no longer be
    /// trusted; the BMC engine treats such a context as poisoned and
    /// rebuilds it before the next query. Once set, the flag is sticky and
    /// later [`EmmEncoder::add_frame`] calls emit nothing.
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Number of memories.
    pub fn num_memories(&self) -> usize {
        self.mems.len()
    }

    /// Cumulative statistics across all memories.
    pub fn stats(&self) -> EmmStats {
        let mut total = EmmStats::default();
        for m in &self.mems {
            total.add(m.stats);
        }
        total
    }

    /// Statistics for one memory.
    pub fn memory_stats(&self, mem: usize) -> EmmStats {
        self.mems[mem].stats
    }

    /// Per-frame statistics increments for one memory (index = frame).
    pub fn per_frame_stats(&self, mem: usize) -> &[EmmStats] {
        &self.mems[mem].per_frame
    }

    /// Initial-state read accesses recorded for an arbitrary-init memory
    /// (empty for zero-init memories). A counterexample model assigns each
    /// access's `N`; when true, `(addr, v)` gives one word of the initial
    /// memory contents the trace relies on.
    pub fn init_reads(&self, mem: usize) -> &[InitRead] {
        &self.mems[mem].init_reads
    }

    /// All selector literals currently live, as `(memory, read port, lit)`;
    /// with [`SelectorGranularity::PerMemory`] the port is reported as 0.
    pub fn selectors(&self) -> Vec<(usize, usize, Lit)> {
        let mut out = Vec::new();
        for (mi, m) in self.mems.iter().enumerate() {
            for (pi, &l) in m.selectors.iter().enumerate() {
                out.push((mi, pi, l));
            }
        }
        out
    }

    /// Assumption literals that activate every memory's constraints.
    pub fn all_active_assumptions(&self) -> Vec<Lit> {
        self.selectors().into_iter().map(|(_, _, l)| l).collect()
    }

    /// Selector guarding `(mem, read port)` if selectors are enabled.
    pub fn selector_for(&self, mem: usize, port: usize) -> Option<Lit> {
        match self.options.selectors {
            SelectorGranularity::None => None,
            SelectorGranularity::PerMemory => self.mems[mem].selectors.first().copied(),
            SelectorGranularity::PerReadPort => self.mems[mem].selectors.get(port).copied(),
        }
    }

    /// Emits the constraints for frame `k` of every memory
    /// (`EMM_Constraints(k)` in Fig. 2); `frames[i]` must carry the
    /// interface literals of memory `i` at the new frame.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len()` differs from the number of memories or a
    /// port's literal widths disagree with the declared shape.
    pub fn add_frame(&mut self, sink: &mut dyn CnfSink, frames: &[MemoryFrameLits]) {
        assert_eq!(frames.len(), self.mems.len(), "one frame per memory");
        for (mi, frame) in frames.iter().enumerate() {
            self.add_memory_frame(sink, mi, frame);
        }
    }

    fn add_memory_frame(&mut self, sink: &mut dyn CnfSink, mi: usize, frame: &MemoryFrameLits) {
        let options = self.options;
        let governor = self.governor.clone();
        let mut interrupted = self.interrupted;
        let cmp = &mut self.cmp;
        let mem = &mut self.mems[mi];
        let shape = mem.shape;
        assert_eq!(frame.reads.len(), shape.read_ports, "read port count");
        assert_eq!(frame.writes.len(), shape.write_ports, "write port count");
        for p in &frame.reads {
            assert_eq!(p.addr.len(), shape.addr_width);
            assert_eq!(p.data.len(), shape.data_width);
        }
        for p in &frame.writes {
            assert_eq!(p.addr.len(), shape.addr_width);
            assert_eq!(p.data.len(), shape.data_width);
        }
        // Lazily create selectors.
        if mem.selectors.is_empty() {
            match options.selectors {
                SelectorGranularity::None => {}
                SelectorGranularity::PerMemory => {
                    mem.selectors.push(sink.new_var().positive());
                }
                SelectorGranularity::PerReadPort => {
                    for _ in 0..shape.read_ports {
                        mem.selectors.push(sink.new_var().positive());
                    }
                }
            }
        }

        let mut frame_stats = EmmStats::default();
        let k = mem.depth;
        for (r, rp) in frame.reads.iter().enumerate() {
            if interrupted {
                break;
            }
            let guard = match options.selectors {
                SelectorGranularity::None => None,
                SelectorGranularity::PerMemory => Some(!mem.selectors[0]),
                SelectorGranularity::PerReadPort => Some(!mem.selectors[r]),
            };
            match options.encoding {
                ForwardingEncoding::Exclusive => Self::encode_read_exclusive(
                    sink,
                    &options,
                    &shape,
                    &mem.write_history,
                    &mut mem.init_reads,
                    cmp,
                    &mut frame_stats,
                    k,
                    r,
                    rp,
                    guard,
                    &governor,
                    &mut interrupted,
                ),
                ForwardingEncoding::Direct => Self::encode_read_direct(
                    sink,
                    &options,
                    &shape,
                    &mem.write_history,
                    &mut mem.init_reads,
                    cmp,
                    &mut frame_stats,
                    k,
                    r,
                    rp,
                    guard,
                    &governor,
                    &mut interrupted,
                ),
            }
        }
        // The bookkeeping still advances on an interrupted frame: the
        // context is poisoned either way and the depth invariants (one
        // write-history entry per frame) must hold for the rebuild.
        mem.write_history.push(frame.writes.clone());
        mem.depth += 1;
        mem.stats.add(frame_stats);
        mem.per_frame.push(frame_stats);
        self.interrupted = interrupted;
    }

    /// The paper's encoding: exclusivity chain of eq. (4), read-data
    /// constraints of eq. (5), arbitrary-initial-state handling of eq. (6).
    #[allow(clippy::too_many_arguments)]
    fn encode_read_exclusive(
        sink: &mut dyn CnfSink,
        options: &EmmOptions,
        shape: &MemoryShape,
        write_history: &[Vec<PortLits>],
        init_reads: &mut Vec<InitRead>,
        cmp: &mut CmpCache,
        stats: &mut EmmStats,
        k: usize,
        r: usize,
        rp: &PortLits,
        guard: Option<Lit>,
        governor: &ResourceGovernor,
        interrupted: &mut bool,
    ) {
        let n = shape.data_width;
        // Build the chain from PS_{k,k,0,r} = RE downwards.
        let mut ps = rp.en;
        let mut matches: Vec<(usize, usize, Lit)> = Vec::new(); // (frame, port, S)
        'chain: for i in (0..k).rev() {
            for p in (0..shape.write_ports).rev() {
                if governor.poll().is_some() {
                    *interrupted = true;
                    break 'chain;
                }
                let wp = &write_history[i][p];
                let e = encode_addr_eq(sink, cmp, &wp.addr, &rp.addr, stats, governor);
                let s = sink.add_and_gate(e, wp.en); // s_{i,k,p,r}
                let s_excl = sink.add_and_gate(s, ps); // S_{i,k,p,r}
                ps = sink.add_and_gate(!s, ps); // PS_{i,k,p,r}
                stats.gates += 3;
                stats.aux_vars += 3;
                matches.push((i, p, s_excl));
            }
        }
        if *interrupted {
            // The chain is incomplete: `ps` is not the true N condition
            // and the validity clause would be missing match terms —
            // emitting either would wrongly *strengthen* the formula.
            // Stop here; the caller treats the whole context as poisoned.
            return;
        }
        let n_lit = ps; // PS_{0,k,0,r}: the paper's N condition.

        // eq. (5): RD equals the selected write's data.
        for &(i, p, s_excl) in &matches {
            let wd = &write_history[i][p].data;
            for (&rd, &w) in rp.data.iter().zip(wd) {
                emit(sink, stats, guard, &[!s_excl, !rd, w]);
                emit(sink, stats, guard, &[!s_excl, rd, !w]);
            }
        }
        // Initial-state term of eq. (5).
        if shape.arbitrary_init {
            let v: Vec<Lit> = (0..n).map(|_| sink.new_var().positive()).collect();
            stats.aux_vars += n;
            for (&rd, &vb) in rp.data.iter().zip(&v) {
                emit(sink, stats, guard, &[!n_lit, !rd, vb]);
                emit(sink, stats, guard, &[!n_lit, rd, !vb]);
            }
            let me = InitRead {
                addr: rp.addr.clone(),
                n: n_lit,
                v,
                port: r,
            };
            if !options.skip_init_consistency {
                for prev in init_reads.iter() {
                    if governor.poll().is_some() {
                        // eq. (6) pairs are pairwise-independent: a partial
                        // set only under-constrains (the context is poisoned
                        // anyway), so stopping mid-list is safe.
                        *interrupted = true;
                        break;
                    }
                    let _ = prev.port; // pairs span all ports, incl. same port
                    let ea = encode_addr_eq(sink, cmp, &prev.addr, &me.addr, stats, governor);
                    for b in 0..n {
                        emit(
                            sink,
                            stats,
                            guard,
                            &[!ea, !prev.n, !me.n, !prev.v[b], me.v[b]],
                        );
                        emit(
                            sink,
                            stats,
                            guard,
                            &[!ea, !prev.n, !me.n, prev.v[b], !me.v[b]],
                        );
                    }
                    stats.init_pairs += 1;
                }
            }
            init_reads.push(me);
        } else {
            // Zero-initialized memory: an un-written location reads 0.
            for b in 0..n {
                emit(sink, stats, guard, &[!n_lit, !rp.data[b]]);
            }
            // Keep clause accounting aligned with the paper's 2n formula by
            // emitting the complementary (trivially true under zero init)
            // direction as well: RD_b = 0 → both directions collapse to one
            // clause, so emit a redundant tautology-free strengthening:
            // (¬N ∨ RD_b ∨ ¬RD_b) would be a tautology; instead note the
            // deviation in stats (n clauses instead of 2n).
        }
        // Validity clause: RE implies some S or the initial term.
        let mut validity: Vec<Lit> = Vec::with_capacity(matches.len() + 2);
        validity.push(!rp.en);
        for &(_, _, s_excl) in &matches {
            validity.push(s_excl);
        }
        validity.push(n_lit);
        emit(sink, stats, guard, &validity);
    }

    /// Ablation encoding: eq. (3) as direct implications, no exclusivity.
    #[allow(clippy::too_many_arguments)]
    fn encode_read_direct(
        sink: &mut dyn CnfSink,
        options: &EmmOptions,
        shape: &MemoryShape,
        write_history: &[Vec<PortLits>],
        init_reads: &mut Vec<InitRead>,
        cmp: &mut CmpCache,
        stats: &mut EmmStats,
        k: usize,
        r: usize,
        rp: &PortLits,
        guard: Option<Lit>,
        governor: &ResourceGovernor,
        interrupted: &mut bool,
    ) {
        let n = shape.data_width;
        // later = "some write at a strictly later position matches".
        let mut later: Option<Lit> = None;
        let mut entries: Vec<(usize, usize, Lit, Option<Lit>)> = Vec::new();
        'scan: for i in (0..k).rev() {
            for p in (0..shape.write_ports).rev() {
                if governor.poll().is_some() {
                    *interrupted = true;
                    break 'scan;
                }
                let wp = &write_history[i][p];
                let e = encode_addr_eq(sink, cmp, &wp.addr, &rp.addr, stats, governor);
                let s = sink.add_and_gate(e, wp.en);
                stats.gates += 1;
                stats.aux_vars += 1;
                entries.push((i, p, s, later));
                later = Some(match later {
                    None => s,
                    Some(l) => {
                        stats.gates += 1;
                        stats.aux_vars += 1;
                        sink.add_or_gate(s, l)
                    }
                });
            }
        }
        if *interrupted {
            // `later` misses the unscanned writes, so both the forwarding
            // implications and the N condition built from it would be
            // wrong. Stop; the caller treats the context as poisoned.
            return;
        }
        // Forwarding implications: RE ∧ s ∧ ¬later → RD = WD.
        for &(i, p, s, later_here) in &entries {
            let wd = &write_history[i][p].data;
            for (&rd, &w) in rp.data.iter().zip(wd) {
                let mut c1 = vec![!rp.en, !s];
                let mut c2 = vec![!rp.en, !s];
                if let Some(l) = later_here {
                    c1.push(l);
                    c2.push(l);
                }
                c1.extend([!rd, w]);
                c2.extend([rd, !w]);
                emit(sink, stats, guard, &c1);
                emit(sink, stats, guard, &c2);
            }
        }
        // Initial term: N = RE ∧ no match anywhere.
        let n_lit = match later {
            None => rp.en,
            Some(l) => {
                stats.gates += 1;
                stats.aux_vars += 1;
                sink.add_and_gate(rp.en, !l)
            }
        };
        if shape.arbitrary_init {
            let v: Vec<Lit> = (0..n).map(|_| sink.new_var().positive()).collect();
            stats.aux_vars += n;
            for (&rd, &vb) in rp.data.iter().zip(&v) {
                emit(sink, stats, guard, &[!n_lit, !rd, vb]);
                emit(sink, stats, guard, &[!n_lit, rd, !vb]);
            }
            let me = InitRead {
                addr: rp.addr.clone(),
                n: n_lit,
                v,
                port: r,
            };
            if !options.skip_init_consistency {
                for prev in init_reads.iter() {
                    if governor.poll().is_some() {
                        *interrupted = true;
                        break;
                    }
                    let ea = encode_addr_eq(sink, cmp, &prev.addr, &me.addr, stats, governor);
                    for b in 0..n {
                        emit(
                            sink,
                            stats,
                            guard,
                            &[!ea, !prev.n, !me.n, !prev.v[b], me.v[b]],
                        );
                        emit(
                            sink,
                            stats,
                            guard,
                            &[!ea, !prev.n, !me.n, prev.v[b], !me.v[b]],
                        );
                    }
                    stats.init_pairs += 1;
                }
            }
            init_reads.push(me);
        } else {
            for b in 0..n {
                emit(sink, stats, guard, &[!n_lit, !rp.data[b]]);
            }
        }
    }
}

/// Emits one clause, appending the selector guard when present.
fn emit(sink: &mut dyn CnfSink, stats: &mut EmmStats, guard: Option<Lit>, lits: &[Lit]) {
    stats.clauses += 1;
    match guard {
        None => {
            sink.add_clause(lits);
        }
        Some(g) => {
            let mut with_guard = Vec::with_capacity(lits.len() + 1);
            with_guard.extend_from_slice(lits);
            with_guard.push(g);
            sink.add_clause(&with_guard);
        }
    }
}

/// Encodes the paper's address comparison (Section 3): `4m + 1` clauses over
/// `m + 1` fresh variables; returns the equality literal `E`. With the
/// comparator cache enabled, a pair already encoded (in either operand
/// order) returns its cached literal and emits nothing. Every call — cache
/// hit or not — counts as one [`FaultSite::EmmComparator`] event for the
/// governor's fault injector.
fn encode_addr_eq(
    sink: &mut dyn CnfSink,
    cmp: &mut CmpCache,
    a: &[Lit],
    b: &[Lit],
    stats: &mut EmmStats,
    governor: &ResourceGovernor,
) -> Lit {
    debug_assert_eq!(a.len(), b.len());
    governor.note(FaultSite::EmmComparator);
    if cmp.enabled {
        if let Some(e) = cmp.get(a, b) {
            stats.cmp_cache_hits += 1;
            return e;
        }
    }
    let m = a.len();
    let e_total = sink.new_var().positive();
    stats.aux_vars += 1;
    let mut final_clause: Vec<Lit> = Vec::with_capacity(m + 1);
    for i in 0..m {
        let ei = sink.new_var().positive();
        stats.aux_vars += 1;
        // E → (a_i ≡ b_i)
        emit(sink, stats, None, &[!e_total, !a[i], b[i]]);
        emit(sink, stats, None, &[!e_total, a[i], !b[i]]);
        // (a_i ≡ b_i) → e_i
        emit(sink, stats, None, &[!a[i], !b[i], ei]);
        emit(sink, stats, None, &[a[i], b[i], ei]);
        final_clause.push(!ei);
    }
    final_clause.push(e_total);
    emit(sink, stats, None, &final_clause);
    if cmp.enabled {
        cmp.insert(a, b, e_total);
    }
    e_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_sat::{CountingSink, SolveResult, Solver, Var};

    fn fresh_port(sink: &mut dyn CnfSink, aw: usize, dw: usize) -> PortLits {
        PortLits {
            addr: (0..aw).map(|_| sink.new_var().positive()).collect(),
            en: sink.new_var().positive(),
            data: (0..dw).map(|_| sink.new_var().positive()).collect(),
        }
    }

    fn fresh_frame(sink: &mut dyn CnfSink, shape: &MemoryShape) -> MemoryFrameLits {
        MemoryFrameLits {
            reads: (0..shape.read_ports)
                .map(|_| fresh_port(sink, shape.addr_width, shape.data_width))
                .collect(),
            writes: (0..shape.write_ports)
                .map(|_| fresh_port(sink, shape.addr_width, shape.data_width))
                .collect(),
        }
    }

    /// The per-frame clause/gate increments must match the paper's closed
    /// forms exactly for arbitrary-init memories.
    #[test]
    fn per_frame_counts_match_paper_formulas() {
        for (m, n, r_ports, w_ports) in [
            (10, 32, 1, 1),
            (10, 24, 1, 1),
            (12, 32, 3, 1),
            (4, 8, 2, 2),
            (3, 5, 2, 3),
        ] {
            let shape = MemoryShape {
                addr_width: m,
                data_width: n,
                read_ports: r_ports,
                write_ports: w_ports,
                arbitrary_init: true,
            };
            let mut enc = EmmEncoder::new(
                &[shape],
                EmmOptions {
                    // eq. (6) constraints are counted separately; disable to
                    // isolate the Section 4.1 formulas.
                    skip_init_consistency: true,
                    ..EmmOptions::default()
                },
            );
            let mut sink = CountingSink::new();
            for k in 0..8usize {
                let frame = fresh_frame(&mut sink, &shape);
                enc.add_frame(&mut sink, &[frame]);
                let inc = enc.per_frame_stats(0)[k];
                assert_eq!(
                    inc.clauses,
                    shape.clauses_at_depth(k),
                    "clauses at depth {k} for m={m},n={n},R={r_ports},W={w_ports}"
                );
                assert_eq!(
                    inc.gates,
                    shape.gates_at_depth(k),
                    "gates at depth {k} for m={m},n={n},R={r_ports},W={w_ports}"
                );
            }
        }
    }

    /// Accumulated constraints grow quadratically with depth (Section 3).
    #[test]
    fn accumulated_growth_is_quadratic() {
        let shape = MemoryShape {
            addr_width: 6,
            data_width: 8,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: true,
        };
        let mut enc = EmmEncoder::new(
            &[shape],
            EmmOptions {
                skip_init_consistency: true,
                ..EmmOptions::default()
            },
        );
        let mut sink = CountingSink::new();
        let mut totals = Vec::new();
        for _ in 0..12usize {
            let frame = fresh_frame(&mut sink, &shape);
            enc.add_frame(&mut sink, &[frame]);
            totals.push(enc.stats().clauses);
        }
        // Sum_{j<=k} (a*j + b) = a*k(k+1)/2 + b*(k+1): check the second
        // difference is the constant per-pair cost.
        let a = (4 * 6 + 2 * 8 + 1) as i64;
        for k in 2..totals.len() {
            let d2 = totals[k] as i64 - 2 * totals[k - 1] as i64 + totals[k - 2] as i64;
            assert_eq!(d2, a, "second difference at {k}");
        }
    }

    /// Helper: assign a literal a concrete value via a unit clause.
    fn fix(s: &mut Solver, l: Lit, v: bool) {
        s.add_clause(&[if v { l } else { !l }]);
    }

    fn fix_word(s: &mut Solver, lits: &[Lit], value: u64) {
        for (i, &l) in lits.iter().enumerate() {
            fix(s, l, (value >> i) & 1 == 1);
        }
    }

    fn read_word(s: &Solver, lits: &[Lit]) -> u64 {
        lits.iter()
            .enumerate()
            .map(|(i, &l)| (s.model_value(l).expect("model") as u64) << i)
            .sum()
    }

    /// Concrete forwarding scenario: write 0xA5 at frame 0, read it back at
    /// frame 2; an unrelated write at frame 1 must not interfere.
    fn forwarding_scenario(encoding: ForwardingEncoding) {
        let shape = MemoryShape {
            addr_width: 4,
            data_width: 8,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(
            &[shape],
            EmmOptions {
                encoding,
                ..EmmOptions::default()
            },
        );
        let mut s = Solver::new();
        let mut frames = Vec::new();
        for _ in 0..3 {
            let f = fresh_frame(&mut s, &shape);
            enc.add_frame(&mut s, std::slice::from_ref(&f));
            frames.push(f);
        }
        // Frame 0: write 0xA5 to address 7.
        fix_word(&mut s, &frames[0].writes[0].addr, 7);
        fix_word(&mut s, &frames[0].writes[0].data, 0xA5);
        fix(&mut s, frames[0].writes[0].en, true);
        fix(&mut s, frames[0].reads[0].en, false);
        // Frame 1: write 0x3C to address 9.
        fix_word(&mut s, &frames[1].writes[0].addr, 9);
        fix_word(&mut s, &frames[1].writes[0].data, 0x3C);
        fix(&mut s, frames[1].writes[0].en, true);
        fix(&mut s, frames[1].reads[0].en, false);
        // Frame 2: read address 7.
        fix(&mut s, frames[2].writes[0].en, false);
        fix_word(&mut s, &frames[2].writes[0].addr, 0);
        fix_word(&mut s, &frames[2].writes[0].data, 0);
        fix_word(&mut s, &frames[2].reads[0].addr, 7);
        fix(&mut s, frames[2].reads[0].en, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(
            read_word(&s, &frames[2].reads[0].data),
            0xA5,
            "{encoding:?}"
        );
    }

    #[test]
    fn forwarding_exclusive() {
        forwarding_scenario(ForwardingEncoding::Exclusive);
    }

    #[test]
    fn forwarding_direct() {
        forwarding_scenario(ForwardingEncoding::Direct);
    }

    /// Most recent write wins: two writes to the same address.
    #[test]
    fn latest_write_wins() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(&[shape], EmmOptions::default());
        let mut s = Solver::new();
        let mut frames = Vec::new();
        for _ in 0..3 {
            let f = fresh_frame(&mut s, &shape);
            enc.add_frame(&mut s, std::slice::from_ref(&f));
            frames.push(f);
        }
        for (k, val) in [(0usize, 0x3u64), (1, 0x9)] {
            fix_word(&mut s, &frames[k].writes[0].addr, 5);
            fix_word(&mut s, &frames[k].writes[0].data, val);
            fix(&mut s, frames[k].writes[0].en, true);
            fix(&mut s, frames[k].reads[0].en, false);
        }
        fix(&mut s, frames[2].writes[0].en, false);
        fix_word(&mut s, &frames[2].reads[0].addr, 5);
        fix(&mut s, frames[2].reads[0].en, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(read_word(&s, &frames[2].reads[0].data), 0x9);
    }

    /// Zero-initialized memory: reading an unwritten address returns 0 and
    /// nothing else is satisfiable.
    #[test]
    fn zero_init_unwritten_reads_zero() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(&[shape], EmmOptions::default());
        let mut s = Solver::new();
        let f = fresh_frame(&mut s, &shape);
        enc.add_frame(&mut s, std::slice::from_ref(&f));
        fix(&mut s, f.writes[0].en, false);
        fix_word(&mut s, &f.reads[0].addr, 2);
        fix(&mut s, f.reads[0].en, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(read_word(&s, &f.reads[0].data), 0);
        // Forcing a nonzero read must be UNSAT.
        fix(&mut s, f.reads[0].data[1], true);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// eq. (6): two reads of the same never-written address must agree; with
    /// `skip_init_consistency` they may differ (the extra behavior the paper
    /// warns about).
    #[test]
    fn init_consistency_forces_equal_reads() {
        for (skip, expect_equal) in [(false, true), (true, false)] {
            let shape = MemoryShape {
                addr_width: 3,
                data_width: 4,
                read_ports: 1,
                write_ports: 1,
                arbitrary_init: true,
            };
            let mut enc = EmmEncoder::new(
                &[shape],
                EmmOptions {
                    skip_init_consistency: skip,
                    ..EmmOptions::default()
                },
            );
            let mut s = Solver::new();
            let mut frames = Vec::new();
            for _ in 0..2 {
                let f = fresh_frame(&mut s, &shape);
                enc.add_frame(&mut s, std::slice::from_ref(&f));
                frames.push(f);
            }
            for f in &frames {
                fix(&mut s, f.writes[0].en, false);
                fix_word(&mut s, &f.writes[0].addr, 0);
                fix_word(&mut s, &f.writes[0].data, 0);
                fix_word(&mut s, &f.reads[0].addr, 6);
                fix(&mut s, f.reads[0].en, true);
            }
            // Ask for differing read data at the two frames.
            fix(&mut s, frames[0].reads[0].data[2], true);
            fix(&mut s, frames[1].reads[0].data[2], false);
            let result = s.solve();
            if expect_equal {
                assert_eq!(result, SolveResult::Unsat, "eq. (6) must force equality");
            } else {
                assert_eq!(result, SolveResult::Sat, "without eq. (6) reads are free");
            }
        }
    }

    /// Arbitrary-init read is overridden by a prior write.
    #[test]
    fn write_overrides_arbitrary_init() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: true,
        };
        let mut enc = EmmEncoder::new(&[shape], EmmOptions::default());
        let mut s = Solver::new();
        let mut frames = Vec::new();
        for _ in 0..2 {
            let f = fresh_frame(&mut s, &shape);
            enc.add_frame(&mut s, std::slice::from_ref(&f));
            frames.push(f);
        }
        fix_word(&mut s, &frames[0].writes[0].addr, 3);
        fix_word(&mut s, &frames[0].writes[0].data, 0xB);
        fix(&mut s, frames[0].writes[0].en, true);
        fix(&mut s, frames[0].reads[0].en, false);
        fix(&mut s, frames[1].writes[0].en, false);
        fix_word(&mut s, &frames[1].reads[0].addr, 3);
        fix(&mut s, frames[1].reads[0].en, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(read_word(&s, &frames[1].reads[0].data), 0xB);
    }

    /// Multi-port forwarding: a read port must see the value written through
    /// any write port; within-frame priority goes to the higher port.
    #[test]
    fn multiport_forwarding_and_priority() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 2,
            write_ports: 2,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(&[shape], EmmOptions::default());
        let mut s = Solver::new();
        let mut frames = Vec::new();
        for _ in 0..2 {
            let f = fresh_frame(&mut s, &shape);
            enc.add_frame(&mut s, std::slice::from_ref(&f));
            frames.push(f);
        }
        // Frame 0: port 0 writes 0x1 to addr 2; port 1 writes 0x7 to addr 4.
        fix_word(&mut s, &frames[0].writes[0].addr, 2);
        fix_word(&mut s, &frames[0].writes[0].data, 0x1);
        fix(&mut s, frames[0].writes[0].en, true);
        fix_word(&mut s, &frames[0].writes[1].addr, 4);
        fix_word(&mut s, &frames[0].writes[1].data, 0x7);
        fix(&mut s, frames[0].writes[1].en, true);
        for r in 0..2 {
            fix(&mut s, frames[0].reads[r].en, false);
        }
        // Frame 1: read port 0 reads addr 4, read port 1 reads addr 2.
        for w in 0..2 {
            fix(&mut s, frames[1].writes[w].en, false);
            fix_word(&mut s, &frames[1].writes[w].addr, 0);
            fix_word(&mut s, &frames[1].writes[w].data, 0);
        }
        fix_word(&mut s, &frames[1].reads[0].addr, 4);
        fix(&mut s, frames[1].reads[0].en, true);
        fix_word(&mut s, &frames[1].reads[1].addr, 2);
        fix(&mut s, frames[1].reads[1].en, true);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(read_word(&s, &frames[1].reads[0].data), 0x7);
        assert_eq!(read_word(&s, &frames[1].reads[1].data), 0x1);
    }

    /// Selector guards: with the selector unasserted the read data is free;
    /// asserting it restores forwarding.
    #[test]
    fn selectors_gate_the_constraints() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(
            &[shape],
            EmmOptions {
                selectors: SelectorGranularity::PerMemory,
                ..EmmOptions::default()
            },
        );
        let mut s = Solver::new();
        let f = fresh_frame(&mut s, &shape);
        enc.add_frame(&mut s, std::slice::from_ref(&f));
        fix(&mut s, f.writes[0].en, false);
        fix_word(&mut s, &f.reads[0].addr, 1);
        fix(&mut s, f.reads[0].en, true);
        // Demand a nonzero read from a zero-init memory.
        fix(&mut s, f.reads[0].data[0], true);
        // Without assuming the selector: free RD, so SAT.
        assert_eq!(s.solve(), SolveResult::Sat);
        // Assuming the selector: constraints active, so UNSAT, and the
        // failed assumptions name the selector.
        let sel = enc.all_active_assumptions();
        assert_eq!(sel.len(), 1);
        assert_eq!(s.solve_with(&sel), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &sel[..]);
    }

    #[test]
    fn per_read_port_selectors_identify_needed_port() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 2,
            read_ports: 2,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(
            &[shape],
            EmmOptions {
                selectors: SelectorGranularity::PerReadPort,
                ..EmmOptions::default()
            },
        );
        let mut s = Solver::new();
        let f = fresh_frame(&mut s, &shape);
        enc.add_frame(&mut s, std::slice::from_ref(&f));
        fix(&mut s, f.writes[0].en, false);
        // Only read port 1 is forced inconsistent.
        fix_word(&mut s, &f.reads[1].addr, 3);
        fix(&mut s, f.reads[1].en, true);
        fix(&mut s, f.reads[1].data[0], true);
        fix(&mut s, f.reads[0].en, false);
        fix_word(&mut s, &f.reads[0].addr, 0);
        let all = enc.all_active_assumptions();
        assert_eq!(all.len(), 2);
        assert_eq!(s.solve_with(&all), SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        let port1_sel = enc.selector_for(0, 1).expect("selector");
        assert_eq!(
            failed,
            vec![port1_sel],
            "only port 1's selector should fail"
        );
    }

    #[test]
    fn addr_eq_encoding_is_equality() {
        // Exhaustive check of the 4m+1 clause encoding on 2-bit addresses.
        for av in 0..4u64 {
            for bv in 0..4u64 {
                let mut s = Solver::new();
                let a: Vec<Lit> = (0..2).map(|_| Var::positive(s.new_var())).collect();
                let b: Vec<Lit> = (0..2).map(|_| Var::positive(s.new_var())).collect();
                let mut stats = EmmStats::default();
                let mut cmp = CmpCache {
                    enabled: true,
                    map: HashMap::new(),
                };
                let e = encode_addr_eq(
                    &mut s,
                    &mut cmp,
                    &a,
                    &b,
                    &mut stats,
                    &ResourceGovernor::unlimited(),
                );
                assert_eq!(stats.clauses, 4 * 2 + 1);
                fix_word(&mut s, &a, av);
                fix_word(&mut s, &b, bv);
                assert_eq!(s.solve(), SolveResult::Sat);
                assert_eq!(s.model_value(e), Some(av == bv), "{av} vs {bv}");
            }
        }
    }

    /// A cancelled governor aborts frame emission at the first comparator
    /// poll and the encoder reports itself interrupted. Frame 0 has no
    /// write history (no comparators, no polls), so it still emits; the
    /// first frame with a pending write aborts.
    #[test]
    fn cancelled_governor_poisons_frame_emission() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 4,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let mut enc = EmmEncoder::new(&[shape], EmmOptions::default());
        let gov = emm_sat::ResourceGovernor::unlimited();
        gov.cancel();
        enc.set_governor(gov);
        let mut sink = CountingSink::new();
        for _ in 0..2 {
            let frame = fresh_frame(&mut sink, &shape);
            enc.add_frame(&mut sink, &[frame]);
        }
        assert!(enc.interrupted(), "cancellation must poison the encoder");
        assert!(
            enc.per_frame_stats(0)[0].clauses > 0,
            "frame 0 has no comparators and emits fully"
        );
        assert_eq!(
            enc.per_frame_stats(0)[1].clauses,
            0,
            "frame 1 aborts before its first comparator"
        );
    }

    /// The fault injector trips emission deterministically after the Nth
    /// encoded comparator, and the interrupted flag is sticky: later
    /// frames emit nothing.
    #[test]
    fn fault_injection_interrupts_after_nth_comparator() {
        let shape = MemoryShape {
            addr_width: 3,
            data_width: 2,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: true,
        };
        let mut enc = EmmEncoder::new(
            &[shape],
            EmmOptions {
                // The closed-form per-frame clause count assumed below
                // excludes the eq. (6) pairs.
                skip_init_consistency: true,
                ..EmmOptions::default()
            },
        );
        // Frame k encodes k comparators (one per pending write frame):
        // cumulative 0, 1, 3, 6, ... The 3rd comparator completes during
        // frame 2, so frame 2 still emits fully and frame 3 aborts at its
        // first poll.
        enc.set_governor(
            emm_sat::ResourceGovernor::unlimited().with_fault(emm_sat::FaultSite::EmmComparator, 3),
        );
        let mut sink = CountingSink::new();
        for _ in 0..4 {
            let frame = fresh_frame(&mut sink, &shape);
            enc.add_frame(&mut sink, &[frame]);
        }
        assert!(enc.interrupted());
        assert_eq!(enc.per_frame_stats(0)[2].clauses, shape.clauses_at_depth(2));
        assert_eq!(enc.per_frame_stats(0)[3].clauses, 0);
    }
}
