//! Explicit memory modeling — the paper's comparison baseline.
//!
//! [`explicit_model`] rewrites a design with embedded memories into a plain
//! sequential design in which every memory word is a bank of latches:
//!
//! * `2^AW × DW` latches per memory (zero- or free-initialized according to
//!   [`MemInit`]);
//! * per write port, an address decoder gating each word's next-state mux
//!   (higher-numbered ports take priority within a cycle, mirroring the EMM
//!   chain order — irrelevant under the paper's no-data-race assumption);
//! * per read port, a full read multiplexer; when `RE` is inactive the read
//!   data falls back to fresh free inputs, preserving the "unconstrained
//!   when not enabled" semantics the EMM model has.
//!
//! This is the model the paper's Tables 1–2 call *Explicit Modeling*: it is
//! semantically equivalent to EMM (tests in this crate and `emm-bmc` check
//! agreement), but its size explodes with address width, which is exactly
//! the effect the experiments demonstrate.

use std::collections::HashMap;

use emm_aig::{Aig, Bit, Design, InputKind, LatchInit, MemInit, Node, Word};

/// Maps latches of the original design to latches of the explicit model.
///
/// Original latches appear first and in order in the rewritten design, so
/// the mapping is the identity on `0..original.num_latches()`; the memory
/// cell latches follow. [`ExplicitMap`] also locates each memory word's
/// latch bank for trace translation.
#[derive(Clone, Debug)]
pub struct ExplicitMap {
    /// Latch count of the original design (prefix of the new latch space).
    pub original_latches: usize,
    /// For each memory: index of its first cell latch; cells are laid out
    /// address-major (`addr * data_width + bit`).
    pub memory_base: Vec<usize>,
}

impl ExplicitMap {
    /// Latch index of `bit` of the word at `addr` of memory `mem`.
    pub fn cell_latch(&self, design: &Design, mem: usize, addr: u64, bit: usize) -> usize {
        let dw = design.memories()[mem].data_width;
        self.memory_base[mem] + addr as usize * dw + bit
    }
}

/// Expands every memory of `design` into latches; returns the rewritten
/// design and the latch mapping.
///
/// The rewritten design has **no** memory modules: BMC on it is the paper's
/// BMC-1 over an ordinary netlist. Free inputs of the original design keep
/// their order (new fallback inputs for disabled reads are appended after).
///
/// # Panics
///
/// Panics if `design.check()` fails.
pub fn explicit_model(design: &Design) -> (Design, ExplicitMap) {
    design.check().expect("input design must be well-formed");
    let mut out = Design::new();

    // 1. Recreate free inputs first (stable order for trace replay).
    //    `free_map[old_input_index] = new bit`.
    let mut input_map: HashMap<usize, Bit> = HashMap::new();
    for (pos, &idx) in design.free_inputs().iter().enumerate() {
        let bit = out.new_input(&format!("in{pos}"));
        input_map.insert(idx as usize, bit);
    }

    // 2. Recreate the original latches in order.
    let mut latch_out: Vec<Bit> = Vec::with_capacity(design.num_latches());
    for l in design.latches() {
        let (_, bit) = out.new_latch(&l.name, l.init);
        latch_out.push(bit);
    }

    // 3. Create the memory cell latches.
    let mut memory_base = Vec::with_capacity(design.memories().len());
    let mut cells: Vec<Vec<Word>> = Vec::new(); // per memory, per address
    for m in design.memories() {
        memory_base.push(out.num_latches());
        let init = match m.init {
            MemInit::Zero => LatchInit::Zero,
            MemInit::Arbitrary => LatchInit::Free,
        };
        let words = (0..(1usize << m.addr_width))
            .map(|a| out.new_latch_word(&format!("{}[{a}]", m.name), m.data_width, init))
            .collect();
        cells.push(words);
    }

    // 4. Walk the original AIG in topological order, mapping every node.
    let mut node_map: Vec<Bit> = vec![Aig::FALSE; design.aig.num_nodes()];
    let map_bit = |node_map: &[Bit], b: Bit| -> Bit {
        let base = node_map[b.node().index()];
        if b.is_inverted() {
            !base
        } else {
            base
        }
    };
    for (id, node) in design.aig.iter() {
        let new_bit = match node {
            Node::Const => Aig::FALSE,
            Node::Input(i) => match design.input_kind(i as usize) {
                InputKind::Free => input_map[&(i as usize)],
                InputKind::Latch(l) => latch_out[l.0 as usize],
                InputKind::ReadData(mem, port, bit) => {
                    let m = design.memory(mem);
                    let rp = &m.read_ports[port as usize];
                    // Address/enable cones are below this node: already mapped.
                    let addr: Vec<Bit> = rp
                        .addr
                        .bits()
                        .iter()
                        .map(|&a| map_bit(&node_map, a))
                        .collect();
                    let en = map_bit(&node_map, rp.en);
                    // Read mux: OR over addresses of (addr == a) & cell bit.
                    let mut hit = Aig::FALSE;
                    for (a, word) in cells[mem.0 as usize].iter().enumerate() {
                        let dec = decode(&mut out.aig, &addr, a as u64);
                        let sel = out.aig.and(dec, word.bit(bit as usize));
                        hit = out.aig.or(hit, sel);
                    }
                    // Disabled reads fall back to a fresh free input.
                    let fallback = out.new_input(&format!("{}_r{port}_b{bit}_x", m.name));
                    out.aig.mux(en, hit, fallback)
                }
            },
            Node::And(a, b) => {
                let x = map_bit(&node_map, a);
                let y = map_bit(&node_map, b);
                out.aig.and(x, y)
            }
        };
        node_map[id.index()] = new_bit;
    }

    // 5. Next-state for original latches.
    for (l, &bit) in design.latches().iter().zip(&latch_out) {
        let next = map_bit(&node_map, l.next.expect("checked design"));
        out.set_next(bit, next);
    }

    // 6. Next-state for memory cells: write decoders, later ports override.
    for (mi, m) in design.memories().iter().enumerate() {
        let writes: Vec<(Vec<Bit>, Bit, Vec<Bit>)> = m
            .write_ports
            .iter()
            .map(|wp| {
                (
                    wp.addr
                        .bits()
                        .iter()
                        .map(|&b| map_bit(&node_map, b))
                        .collect(),
                    map_bit(&node_map, wp.en),
                    wp.data
                        .bits()
                        .iter()
                        .map(|&b| map_bit(&node_map, b))
                        .collect(),
                )
            })
            .collect();
        for (a, word) in cells[mi].iter().enumerate() {
            let mut next: Vec<Bit> = word.bits().to_vec();
            for (addr, en, data) in &writes {
                let dec = decode(&mut out.aig, addr, a as u64);
                let strike = out.aig.and(dec, *en);
                for (b, n) in next.iter_mut().enumerate() {
                    *n = out.aig.mux(strike, data[b], *n);
                }
            }
            for (b, &bit) in word.bits().iter().enumerate() {
                out.set_next(bit, next[b]);
            }
        }
    }

    // 7. Properties and constraints.
    for p in design.properties() {
        let bad = map_bit(&node_map, p.bad);
        out.add_property(&p.name, bad);
    }
    for &c in design.constraints() {
        let mapped = map_bit(&node_map, c);
        out.add_constraint(mapped);
    }

    out.check().expect("rewritten design is well-formed");
    let map = ExplicitMap {
        original_latches: design.num_latches(),
        memory_base,
    };
    (out, map)
}

/// `addr == value` decoder over mapped address bits.
fn decode(aig: &mut Aig, addr: &[Bit], value: u64) -> Bit {
    let mut acc = Aig::TRUE;
    for (i, &b) in addr.iter().enumerate() {
        let want = (value >> i) & 1 == 1;
        let lit = if want { b } else { !b };
        acc = aig.and(acc, lit);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Design, MemInit, Simulator};

    /// A little memory design: one write port, one read port, streaming.
    fn small_mem_design(init: MemInit) -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 3, init);
        let waddr = d.new_input_word("waddr", 2);
        let wdata = d.new_input_word("wdata", 3);
        let we = d.new_input("we");
        d.add_write_port(mem, waddr, we, wdata);
        let raddr = d.new_input_word("raddr", 2);
        let re = d.new_input("re");
        let rd = d.add_read_port(mem, raddr, re);
        let bad = d.aig.eq_const(&rd, 5);
        d.add_property("rd_ne_5", bad);
        d.check().expect("valid");
        d
    }

    #[test]
    fn explicit_model_shape() {
        let d = small_mem_design(MemInit::Zero);
        let (e, map) = explicit_model(&d);
        assert_eq!(e.memories().len(), 0, "memories expanded away");
        assert_eq!(e.num_latches(), 4 * 3, "2^2 words x 3 bits");
        assert_eq!(map.original_latches, 0);
        assert_eq!(map.memory_base, vec![0]);
        // Free inputs: original 2+3+1+2+1 = 9 first, then 3 fallbacks.
        assert_eq!(e.free_inputs().len(), 9 + 3);
    }

    /// Randomized co-simulation: the explicit model and the memory-aware
    /// simulator must agree cycle by cycle on every property value.
    #[test]
    fn explicit_model_cosimulates() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let d = small_mem_design(MemInit::Zero);
        let (e, _) = explicit_model(&d);
        let mut rng = StdRng::seed_from_u64(42);
        let mut sim_orig = Simulator::new(&d);
        let mut sim_expl = Simulator::new(&e);
        for cycle in 0..200 {
            let orig_inputs: Vec<bool> = (0..d.free_inputs().len())
                .map(|_| rng.random_bool(0.5))
                .collect();
            // Explicit model: original inputs first, fallbacks after. Force
            // fallbacks to 0 to match the simulator's disabled_read_value.
            let mut expl_inputs = orig_inputs.clone();
            expl_inputs.resize(e.free_inputs().len(), false);
            let r1 = sim_orig.step(&orig_inputs);
            let r2 = sim_expl.step(&expl_inputs);
            assert_eq!(
                r1.property_bad, r2.property_bad,
                "divergence at cycle {cycle}"
            );
        }
    }

    #[test]
    fn explicit_model_write_read_roundtrip() {
        let d = small_mem_design(MemInit::Zero);
        let (e, map) = explicit_model(&d);
        let mut sim = Simulator::new(&e);
        // Write 5 to address 3 (inputs: waddr=3, wdata=5, we=1, raddr, re=0).
        let mut inputs = vec![false; e.free_inputs().len()];
        inputs[0] = true;
        inputs[1] = true; // waddr = 3
        inputs[2] = true;
        inputs[4] = true; // wdata = 5
        inputs[5] = true; // we
        sim.step(&inputs);
        // The cell latches now hold 5.
        let got: u64 = (0..3)
            .map(|b| (sim.latch(map.cell_latch(&d, 0, 3, b)) as u64) << b)
            .sum();
        assert_eq!(got, 5);
        // Read it back: raddr=3, re=1, we=0 -> property (rd == 5) fires.
        let mut inputs2 = vec![false; e.free_inputs().len()];
        inputs2[6] = true;
        inputs2[7] = true; // raddr = 3
        inputs2[8] = true; // re
        let report = sim.step(&inputs2);
        assert!(report.property_bad[0], "read must return 5");
    }

    #[test]
    fn arbitrary_init_becomes_free_latches() {
        let d = small_mem_design(MemInit::Arbitrary);
        let (e, map) = explicit_model(&d);
        let l = map.cell_latch(&d, 0, 0, 0);
        assert!(matches!(e.latches()[l].init, LatchInit::Free));
        let dzero = small_mem_design(MemInit::Zero);
        let (ez, mapz) = explicit_model(&dzero);
        let lz = mapz.cell_latch(&dzero, 0, 0, 0);
        assert!(matches!(ez.latches()[lz].init, LatchInit::Zero));
    }

    /// Multi-port: within-cycle priority must match EMM (higher port wins).
    #[test]
    fn multiport_same_cycle_priority() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 4, MemInit::Zero);
        let addr = d.new_input_word("addr", 2);
        let d0 = d.new_input_word("d0", 4);
        let d1 = d.new_input_word("d1", 4);
        let we = d.new_input("we");
        d.add_write_port(mem, addr.clone(), we, d0);
        d.add_write_port(mem, addr.clone(), we, d1);
        let re = d.new_input("re");
        let rd = d.add_read_port(mem, addr, re);
        let bad = d.aig.eq_const(&rd, 0);
        d.add_property("p", bad);
        d.check().expect("valid");
        let (e, map) = explicit_model(&d);
        let mut sim = Simulator::new(&e);
        // Both ports write addr 1 in the same cycle: d0=3, d1=9, port 1 wins.
        let mut inputs = vec![false; e.free_inputs().len()];
        inputs[0] = true; // addr = 1
        inputs[2] = true; // d0 bit 0
        inputs[3] = true; // d0 bit 1 -> d0 = 3
        inputs[6] = true; // d1 bit 0
        inputs[9] = true; // d1 bit 3 -> d1 = 9
        inputs[10] = true; // we
        sim.step(&inputs);
        let got: u64 = (0..4)
            .map(|b| (sim.latch(map.cell_latch(&d, 0, 1, b)) as u64) << b)
            .sum();
        assert_eq!(got, 9, "port 1 (later) wins the race, matching EMM order");
    }
}
