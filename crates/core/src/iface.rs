//! Per-frame memory interface literals — the handshake between the BMC
//! unroller and the EMM constraint generator.
//!
//! When the unroller instantiates frame `k` of a design, it knows which SAT
//! literal carries each memory interface signal (`Addr`, `WD`, `WE`, `RD`,
//! `RE`, per port) at that frame. It packages them into a
//! [`MemoryFrameLits`] and hands them to the
//! [`EmmEncoder`](crate::emm::EmmEncoder), which owns the cross-frame
//! bookkeeping.

use emm_sat::Lit;

/// Literals of one port's signals at one frame.
#[derive(Clone, Debug)]
pub struct PortLits {
    /// Address bus literals, LSB first (`AW` of them).
    pub addr: Vec<Lit>,
    /// Enable literal (`WE` for write ports, `RE` for read ports).
    pub en: Lit,
    /// Data bus literals, LSB first (`DW` of them): `WD` for write ports,
    /// `RD` for read ports.
    pub data: Vec<Lit>,
}

/// Literals of one memory's full interface at one frame.
#[derive(Clone, Debug)]
pub struct MemoryFrameLits {
    /// Read ports in design order.
    pub reads: Vec<PortLits>,
    /// Write ports in design order.
    pub writes: Vec<PortLits>,
}

/// Static shape of one memory, as the encoder needs it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryShape {
    /// Address width `m` in the paper's formulas.
    pub addr_width: usize,
    /// Data width `n` in the paper's formulas.
    pub data_width: usize,
    /// Number of read ports `R`.
    pub read_ports: usize,
    /// Number of write ports `W`.
    pub write_ports: usize,
    /// Whether the initial contents are arbitrary (quicksort) or zero
    /// (the industry designs).
    pub arbitrary_init: bool,
}

impl MemoryShape {
    /// Paper Section 4.1: clauses added for all `R` read ports when frame
    /// `k` is processed — `((4m + 2n + 1)·k·W + 2n + 1)·R`.
    pub fn clauses_at_depth(&self, k: usize) -> usize {
        let m = self.addr_width;
        let n = self.data_width;
        let w = self.write_ports;
        ((4 * m + 2 * n + 1) * k * w + 2 * n + 1) * self.read_ports
    }

    /// Paper Section 4.1: gates added at frame `k` — `3·k·W·R`.
    pub fn gates_at_depth(&self, k: usize) -> usize {
        3 * k * self.write_ports * self.read_ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_paper_single_port() {
        // Single memory, single read/write port (Section 3): at depth k the
        // hybrid representation adds (4m + 2n + 1)k + 2n + 1 clauses and 3k
        // gates.
        let shape = MemoryShape {
            addr_width: 10,
            data_width: 32,
            read_ports: 1,
            write_ports: 1,
            arbitrary_init: false,
        };
        let (m, n) = (10usize, 32usize);
        for k in 0..20 {
            assert_eq!(
                shape.clauses_at_depth(k),
                (4 * m + 2 * n + 1) * k + 2 * n + 1
            );
            assert_eq!(shape.gates_at_depth(k), 3 * k);
        }
    }

    #[test]
    fn closed_forms_scale_with_ports() {
        let shape = MemoryShape {
            addr_width: 12,
            data_width: 32,
            read_ports: 3,
            write_ports: 1,
            arbitrary_init: false,
        };
        let single = MemoryShape {
            read_ports: 1,
            ..shape
        };
        for k in 0..10 {
            assert_eq!(shape.clauses_at_depth(k), 3 * single.clauses_at_depth(k));
            assert_eq!(shape.gates_at_depth(k), 3 * single.gates_at_depth(k));
        }
    }
}
