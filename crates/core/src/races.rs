//! Data-race checking for multi-port memories.
//!
//! Section 4.1 of the paper assumes race freedom — "a memory location can
//! be updated at any given cycle through only one write port" — and notes
//! that *"we can easily extend our approach to check for data races but
//! details are beyond the scope of the paper"*. This module is that
//! extension: [`add_race_checkers`] instruments a design with one safety
//! property per memory that fires exactly when two write ports hit the
//! same address with both enables active in the same cycle.
//!
//! The generated properties are ordinary [`emm_aig::Property`]s, so the
//! whole BMC/EMM stack applies unchanged: a race witness is a validated
//! counterexample trace, and race *freedom* is provable by the usual
//! induction machinery. The check is purely an interface-signal property —
//! it needs no memory contents — so EMM verifies it without ever modeling
//! the array (PBA typically abstracts the memory module itself away).
//! End-to-end BMC tests live in the workspace `tests/` directory.

use emm_aig::{Aig, Design, MemoryId, PropertyId};

/// Instruments every multi-write-port memory of `design` with a race
/// property; returns `(memory, property)` pairs for the added checks.
///
/// Memories with fewer than two write ports cannot race and are skipped.
/// The property's `bad` condition is
/// `∃ p < q:  WE_p ∧ WE_q ∧ (Addr_p = Addr_q)`.
pub fn add_race_checkers(design: &mut Design) -> Vec<(MemoryId, PropertyId)> {
    let mut out = Vec::new();
    let num_memories = design.memories().len();
    for mi in 0..num_memories {
        let mem_id = MemoryId(mi as u32);
        let ports: Vec<(emm_aig::Word, emm_aig::Bit)> = design.memories()[mi]
            .write_ports
            .iter()
            .map(|wp| (wp.addr.clone(), wp.en))
            .collect();
        if ports.len() < 2 {
            continue;
        }
        let name = design.memories()[mi].name.clone();
        let g = &mut design.aig;
        let mut any_race = Aig::FALSE;
        for p in 0..ports.len() {
            for q in p + 1..ports.len() {
                let same_addr = g.eq_word(&ports[p].0, &ports[q].0);
                let both = g.and(ports[p].1, ports[q].1);
                let race = g.and(same_addr, both);
                any_race = g.or(any_race, race);
            }
        }
        let prop = design.add_property(&format!("race_free_{name}"), any_race);
        out.push((mem_id, prop));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emm_aig::{Design, MemInit, Simulator};

    fn two_port_design() -> Design {
        let mut d = Design::new();
        let mem = d.add_memory("m", 3, 4, MemInit::Zero);
        let a0 = d.new_input_word("a0", 3);
        let e0 = d.new_input("e0");
        let d0 = d.new_input_word("d0", 4);
        d.add_write_port(mem, a0, e0, d0);
        let a1 = d.new_input_word("a1", 3);
        let e1 = d.new_input("e1");
        let d1 = d.new_input_word("d1", 4);
        d.add_write_port(mem, a1, e1, d1);
        d
    }

    #[test]
    fn checker_fires_exactly_on_races() {
        let mut d = two_port_design();
        let checks = add_race_checkers(&mut d);
        assert_eq!(checks.len(), 1);
        d.check().expect("valid");
        let prop = checks[0].1 .0 as usize;
        let mut sim = Simulator::new(&d);
        // a0=5, e0=1, d0=x, a1=5, e1=1 -> race.
        let mk = |a0: u64, e0: bool, a1: u64, e1: bool| -> Vec<bool> {
            let mut v = Vec::new();
            for b in 0..3 {
                v.push((a0 >> b) & 1 == 1);
            }
            v.push(e0);
            v.extend([false; 4]); // d0
            for b in 0..3 {
                v.push((a1 >> b) & 1 == 1);
            }
            v.push(e1);
            v.extend([false; 4]); // d1
            v
        };
        let race = sim.step(&mk(5, true, 5, true));
        assert!(race.property_bad[prop], "same address, both enabled");
        assert_eq!(race.write_races.len(), 1, "simulator agrees");
        let ok1 = sim.step(&mk(5, true, 6, true));
        assert!(!ok1.property_bad[prop], "different addresses");
        let ok2 = sim.step(&mk(5, true, 5, false));
        assert!(!ok2.property_bad[prop], "second port disabled");
        let ok3 = sim.step(&mk(5, false, 5, false));
        assert!(!ok3.property_bad[prop], "nothing enabled");
    }

    #[test]
    fn three_ports_cover_all_pairs() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 2, MemInit::Zero);
        let mut ens = Vec::new();
        for p in 0..3 {
            let a = d.new_input_word(&format!("a{p}"), 2);
            let e = d.new_input(&format!("e{p}"));
            let data = d.new_input_word(&format!("d{p}"), 2);
            d.add_write_port(mem, a, e, data);
            ens.push(e);
        }
        let checks = add_race_checkers(&mut d);
        assert_eq!(checks.len(), 1);
        d.check().expect("valid");
        let prop = checks[0].1 .0 as usize;
        let mut sim = Simulator::new(&d);
        // All three ports write address 0: ports 1 and 2 racing is enough.
        let mut inputs = vec![false; d.free_inputs().len()];
        // enable ports 1 and 2 (inputs: [a0(2) e0 d0(2)] [a1(2) e1 d1(2)] ...)
        inputs[7] = true; // e1
        inputs[12] = true; // e2
        let report = sim.step(&inputs);
        assert!(report.property_bad[prop], "ports 1/2 race at address 0");
    }

    #[test]
    fn single_port_memories_skipped() {
        let mut d = Design::new();
        let mem = d.add_memory("m", 2, 2, MemInit::Zero);
        let a = d.new_input_word("a", 2);
        let e = d.new_input("e");
        let data = d.new_input_word("d", 2);
        d.add_write_port(mem, a, e, data);
        assert!(add_race_checkers(&mut d).is_empty());
    }
}
