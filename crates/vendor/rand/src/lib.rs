//! A minimal, dependency-free, deterministic stand-in for the `rand` crate.
//!
//! The workspace builds in an offline container without a crates.io mirror,
//! so the small API subset the test suites use — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] and
//! [`RngExt::random_bool`] — is vendored here. The generator is SplitMix64:
//! not cryptographic, but statistically fine for randomized testing, fully
//! reproducible from the seed, and identical across platforms.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator of this stand-in: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span =
                    (end as i64 as u64).wrapping_sub(start as i64 as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods (the `rand` 0.9 `Rng` surface the tests use).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..14usize);
            assert!((3..14).contains(&x));
            let y = rng.random_range(2..=3usize);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn bool_probabilities_are_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
